//! Scheduler comparison: the paper's headline result in one screen.
//!
//! Runs the same workload under LB, LALB, and LALB+O3 and prints a
//! side-by-side comparison — a single-workload slice of Fig 4 plus the
//! abstract's headline speedup ("a speedup of 48x compared to the
//! default, load balancing only schedulers").
//!
//! ```text
//! cargo run --release -p gfaas-bench --example scheduler_comparison -- [WS]
//! ```

use gfaas_core::{Cluster, ClusterConfig, Policy, RunMetrics};
use gfaas_models::ModelRegistry;
use gfaas_trace::AzureTraceConfig;

fn main() {
    let ws: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let trace = AzureTraceConfig::paper(ws, 7).generate();
    println!(
        "workload: working set {ws}, {} requests over 6 minutes, 12 GPUs\n",
        trace.len()
    );

    let mut results: Vec<(Policy, RunMetrics)> = Vec::new();
    for policy in [Policy::lb(), Policy::lalb(), Policy::lalbo3()] {
        let mut cluster = Cluster::new(
            ClusterConfig::paper_testbed(policy),
            ModelRegistry::table1(),
        );
        results.push((policy, cluster.run(&trace)));
    }

    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "policy", "avg_lat(s)", "miss_ratio", "sm_util", "dup", "speedup"
    );
    let lb_latency = results[0].1.avg_latency_secs;
    for (policy, m) in &results {
        println!(
            "{:>10} {:>12.2} {:>12.3} {:>10.3} {:>10.2} {:>9.1}x",
            policy.name(),
            m.avg_latency_secs,
            m.miss_ratio,
            m.sm_utilization,
            m.avg_duplicates,
            lb_latency / m.avg_latency_secs
        );
    }
    println!("\n(the paper's abstract reports locality-aware scheduling reaching a");
    println!("48x speedup over the default load-balancing scheduler)");
}
