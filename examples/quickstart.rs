//! Quickstart: deploy a GPU inference function and run a workload.
//!
//! Walks the full public API surface once:
//! 1. stand up the FaaS substrate (Datastore + Gateway),
//! 2. register a GPU-enabled inference function (the Gateway performs the
//!    paper's transparent interface replacement),
//! 3. build the 12-GPU cluster with the locality-aware scheduler,
//! 4. run a small Azure-like workload and read the metrics — including
//!    the GPU status and latency records the cluster mirrors into the
//!    same etcd-like Datastore the real system would use.
//!
//! ```text
//! cargo run --release -p gfaas-bench --example quickstart
//! ```

use std::sync::Arc;

use gfaas_core::{Cluster, ClusterConfig, Policy};
use gfaas_faas::{Datastore, FunctionSpec, Gateway, Runtime};
use gfaas_models::ModelRegistry;
use gfaas_trace::AzureTraceConfig;

fn main() {
    // --- 1. FaaS substrate -------------------------------------------------
    let datastore = Arc::new(Datastore::new());
    let gateway = Gateway::new(Arc::clone(&datastore));

    // --- 2. Register inference functions -----------------------------------
    // The user ships a Dockerfile with a GPU-enable flag; the Gateway
    // assigns the GpuRedirect runtime, replacing torch.load()/model() with
    // redirection to the GPU Manager.
    let registry = ModelRegistry::table1();
    for (i, name) in ["resnet50", "vgg16", "squeezenet1.1"].iter().enumerate() {
        let runtime = gateway
            .register(FunctionSpec::gpu_inference(
                format!("classify-{i}"),
                name.to_string(),
                32,
            ))
            .expect("function registers");
        assert_eq!(runtime, Runtime::GpuRedirect);
        println!("registered classify-{i} -> {name} ({runtime:?})");
    }
    println!(
        "gateway now serves {} functions; datastore holds {} keys\n",
        gateway.list().len(),
        datastore.len()
    );

    // --- 3. The GPU cluster ------------------------------------------------
    let mut config = ClusterConfig::paper_testbed(Policy::lalbo3());
    config.report_to_datastore = true;
    let mut cluster = Cluster::new(config, registry).with_datastore(Arc::clone(&datastore));

    // --- 4. Run a workload -------------------------------------------------
    let trace = AzureTraceConfig::paper(15, 7).generate();
    println!(
        "replaying {} requests over {:.0} s of virtual time...",
        trace.len(),
        trace.stats().span_secs
    );
    let metrics = cluster.run(&trace);

    println!("\nresults (LALB+O3 on 12 simulated RTX 2080s):");
    println!("  completed:        {}", metrics.completed);
    println!("  avg latency:      {:.2} s", metrics.avg_latency_secs);
    println!("  cache miss ratio: {:.3}", metrics.miss_ratio);
    println!("  SM utilisation:   {:.3}", metrics.sm_utilization);
    println!("  makespan:         {:.1} s", metrics.makespan_secs);

    // The components coordinated through the datastore, like the paper's
    // etcd deployment: GPU statuses and per-request latencies are there.
    let statuses = datastore.range("/gpu/");
    println!(
        "\ndatastore mirror: {} GPU keys, e.g. {} = {:?}",
        statuses.len(),
        statuses[0].key,
        String::from_utf8_lossy(&statuses[0].value)
    );
    let latencies = datastore.range("/latency/");
    println!("  {} per-request latency records", latencies.len());
}
