//! Live serving: Gateway → LiveServer → real CPU inference.
//!
//! The fifth execution mode: GPU-enabled functions registered at the
//! Gateway are dispatched into a [`gfaas_core::LiveServer`], which makes
//! the same residency-first placement and LRU eviction decisions as the
//! experiments but executes each request as an actual forward pass over
//! the model's miniature network. The response carries both the real
//! wall-clock compute time and the virtual latency the full-size model
//! would have had (profiled load + inference).
//!
//! ```text
//! cargo run --release -p gfaas-bench --example live_serving
//! ```

use gfaas_core::LiveServer;
use gfaas_gpu::GpuSpec;
use gfaas_models::ModelRegistry;

fn main() {
    let mut server = LiveServer::new(2, GpuSpec::rtx2080(), ModelRegistry::table1());

    // A warm-up/steady-state request mix: repeats hit, new models miss
    // and eventually evict.
    let workload = [
        "resnet50",
        "resnet50",
        "vgg16",
        "resnet50",
        "vgg19",
        "vgg16",
        "squeezenet1.1",
        "resnet50",
    ];

    println!(
        "{:>16} {:>5} {:>6} {:>14} {:>12}  labels",
        "model", "gpu", "hit", "virtual_lat(s)", "wall(ms)"
    );
    for (i, name) in workload.iter().enumerate() {
        let resp = server.serve(name, 4, i as u64).expect("model in zoo");
        println!(
            "{:>16} {:>5} {:>6} {:>14.2} {:>12.1}  {:?}",
            name,
            resp.gpu.to_string(),
            resp.cache_hit,
            resp.virtual_latency.as_secs_f64(),
            resp.wall.as_secs_f64() * 1e3,
            resp.labels
        );
    }
    println!("\nserved {} requests on 2 simulated GPUs", server.served());
    println!("hits skip the model upload: compare the virtual latencies above");
    println!("(a miss pays the Table I load time, a hit only the inference).");
}
