//! Dynamic request batching end to end, configured purely with
//! `PolicySpec` strings.
//!
//! ```text
//! cargo run --release --example dynamic_batching
//! ```
//!
//! Builds the paper's 12-GPU testbed three times — per-request dispatch
//! (`none`), greedy coalescing (`coalesce:max=8,wait=0.05`), and
//! SLO-aware adaptive sizing (`adaptive:slo=30,max=32,wait=0.05`) — and
//! replays the same bursty trace through each, showing what coalescing
//! does to latency, misses, effective batch, and GPU busy time.

use gfaas_core::{Cluster, ClusterConfig, Policy};
use gfaas_models::ModelRegistry;
use gfaas_workload::{scenario::find, Scale};

fn main() {
    let scale = Scale::paper();
    let trace = find("burst")
        .expect("burst scenario registered")
        .trace(&scale, 11);
    println!(
        "Replaying `burst` at paper scale ({} requests over {} min) under LALBO3\n",
        trace.len(),
        scale.minutes
    );
    println!(
        "{:<34} {:>9} {:>8} {:>7} {:>7} {:>9} {:>9}",
        "batching", "avg_lat", "p95", "miss", "eff_b", "busy_s", "req/busy"
    );

    // The whole batching axis is a config string: `none` is the paper's
    // per-request dispatch, the other two engage gfaas-core::batching.
    for spec in [
        "none",
        "coalesce:max=8,wait=0.05",
        "adaptive:slo=30,max=32,wait=0.05",
    ] {
        let mut cfg = ClusterConfig::paper_testbed(Policy::lalbo3());
        cfg.batching = spec.parse().expect("valid batching spec");
        let mut cluster = Cluster::new(cfg, ModelRegistry::table1());
        let name = cluster.batcher_name();
        let m = cluster.run(&trace);
        println!(
            "{:<34} {:>8.2}s {:>7.2}s {:>7.3} {:>7.2} {:>8.0}s {:>9.4}",
            name,
            m.avg_latency_secs,
            m.p95_latency_secs,
            m.miss_ratio,
            m.avg_effective_batch,
            m.gpu_busy_seconds,
            m.completed as f64 / m.gpu_busy_seconds
        );
    }

    println!(
        "\nCoalescing merges same-model queue backlogs into single GPU invocations\n\
         (the registry's latency model is affine in batch size), so each completed\n\
         request costs fewer busy GPU-seconds; `adaptive` additionally caps each\n\
         batch so its predicted service time fits the latency SLO.\n\
         See `cargo run --release -p gfaas-bench --bin fig_batching` for the full\n\
         multi-seed study."
    );
}
