//! Trace replay: run any workload trace through the cluster.
//!
//! Usage:
//! ```text
//! cargo run --release -p gfaas-bench --example trace_replay -- [POLICY] [WS|trace.csv]
//! ```
//!
//! * `POLICY` — `lb`, `lalb`, or `lalbo3` (default `lalbo3`).
//! * second argument — either a working-set size (a synthetic Azure-like
//!   trace is generated) or a path to a CSV trace with columns
//!   `time_secs,function,model` (e.g. an extract of the real Azure
//!   Functions trace mapped to Table I model ids).
//!
//! The example also writes the replayed trace back out as CSV next to the
//! metrics so runs are fully reproducible artifacts.

use std::fs::File;
use std::io::BufReader;

use gfaas_core::{Cluster, ClusterConfig, Policy};
use gfaas_models::ModelRegistry;
use gfaas_trace::{AzureTraceConfig, Trace};

fn parse_policy(s: &str) -> Policy {
    match s {
        "lb" => Policy::lb(),
        "lalb" => Policy::lalb(),
        "lalbo3" => Policy::lalbo3(),
        other => {
            eprintln!("unknown policy {other:?}; expected lb | lalb | lalbo3");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let policy = parse_policy(args.get(1).map(String::as_str).unwrap_or("lalbo3"));
    let source = args.get(2).map(String::as_str).unwrap_or("25");

    let trace: Trace = if source.ends_with(".csv") {
        let file = File::open(source).unwrap_or_else(|e| {
            eprintln!("cannot open {source}: {e}");
            std::process::exit(2);
        });
        Trace::read_csv(BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("cannot parse {source}: {e}");
            std::process::exit(2);
        })
    } else {
        let ws: usize = source.parse().unwrap_or_else(|_| {
            eprintln!("expected a working-set size or a .csv path, got {source:?}");
            std::process::exit(2);
        });
        AzureTraceConfig::paper(ws, 7).generate()
    };

    let stats = trace.stats();
    println!(
        "trace: {} requests, working set {}, {} models, {:.0} req/min over {:.0} s",
        stats.total, stats.working_set, stats.distinct_models, stats.rate_per_min, stats.span_secs
    );
    println!(
        "top-15 share: {:.1}% (the paper's Azure trace: 56%)\n",
        stats.top15_share * 100.0
    );

    let mut cluster = Cluster::new(
        ClusterConfig::paper_testbed(policy),
        ModelRegistry::table1(),
    );
    let m = cluster.run(&trace);

    println!("policy {}:", policy.name());
    println!("  avg latency      {:.2} s", m.avg_latency_secs);
    println!("  p/max latency    {:.2} s", m.max_latency_secs);
    println!("  miss ratio       {:.3}", m.miss_ratio);
    println!("  false-miss ratio {:.3}", m.false_miss_ratio);
    println!("  SM utilisation   {:.3}", m.sm_utilization);
    println!("  hot duplicates   {:.2}", m.avg_duplicates);
    println!("  evictions        {}", cluster.evictions());
    println!("  local-queue hits {}", cluster.local_moves());

    // Persist the exact workload for reproduction.
    let out = std::env::temp_dir().join("gfaas_replayed_trace.csv");
    if let Ok(f) = File::create(&out) {
        if trace.write_csv(f).is_ok() {
            println!("\ntrace written to {}", out.display());
        }
    }
}
