//! Live inference: actually execute CNN forward passes on the CPU.
//!
//! The experiments drive the cluster with Table I's latency profiles; this
//! example exercises the other half of the substitution — the
//! `gfaas-tensor` inference engine — end to end: build a miniature network
//! per model family, classify synthetic CIFAR-shaped batches, and profile
//! inference latency against batch size exactly as §IV-A prescribes
//! (linear regression over a batch sweep).
//!
//! ```text
//! cargo run --release -p gfaas-bench --example image_classification
//! ```

use std::time::Instant;

use gfaas_models::live::{live_model, synthetic_batch};
use gfaas_models::regression::fit_line;
use gfaas_models::ModelRegistry;

fn main() {
    let registry = ModelRegistry::table1();

    // --- classify a batch with three different model families -------------
    for name in ["squeezenet1.1", "resnet50", "vgg16"] {
        let id = registry.by_name(name).expect("model in zoo");
        let live = live_model(&registry, id);
        let batch = synthetic_batch(live.input, 8, 42);
        let start = Instant::now();
        let labels = live.network.classify(&batch);
        let elapsed = start.elapsed();
        println!(
            "{:>16} ({:>14}): labels {:?} in {:.1} ms",
            name,
            live.network.name,
            labels,
            elapsed.as_secs_f64() * 1e3
        );
    }

    // --- profile inference time vs batch size (the §IV-A regression) ------
    println!("\nbatch-size profiling of the live mini_resnet (wall clock):");
    let id = registry.by_name("resnet50").unwrap();
    let live = live_model(&registry, id);
    let mut samples = Vec::new();
    for batch_size in [1usize, 2, 4, 8, 16] {
        let batch = synthetic_batch(live.input, batch_size, 1);
        // Warm up once, then time three repetitions.
        live.network.forward(&batch);
        let start = Instant::now();
        for _ in 0..3 {
            live.network.forward(&batch);
        }
        let per_run = start.elapsed().as_secs_f64() / 3.0;
        println!("  batch {batch_size:>2}: {:.2} ms", per_run * 1e3);
        samples.push((batch_size as f64, per_run));
    }
    let fit = fit_line(&samples).expect("enough samples");
    println!(
        "  fitted: t(b) = {:.3} ms + {:.3} ms/image  (R^2 = {:.3})",
        fit.intercept * 1e3,
        fit.slope * 1e3,
        fit.r_squared
    );
    println!("\nThe same regression, applied to the simulated device, regenerates");
    println!("Table I — see `cargo run -p gfaas-bench --bin table1_profiles`.");
}
