//! Trace one simulated run end to end with every recorder attached.
//!
//! ```text
//! cargo run --release --example trace_a_run
//! ```
//!
//! Builds the paper's 12-GPU testbed, attaches the observability layer
//! via `ClusterConfig::record` (lifecycle ledger + Perfetto exporter +
//! 30 s time-series sampler, 10 s SLO), replays the `flash_crowd`
//! scenario, and then shows what each recorder captured: where request
//! time actually went (queued vs hold vs load vs inference — segments
//! that sum exactly to the reported latency), which Algorithm-2 arm
//! served each request, the sampled cluster time series, and a
//! ready-to-open Perfetto trace written to `/tmp/gfaas_trace.json`.

use gfaas_core::{Cluster, ClusterConfig, Policy, RecordSpec};
use gfaas_models::ModelRegistry;
use gfaas_workload::{scenario::find, Scale};

fn main() {
    let scale = Scale::paper();
    let trace = find("flash_crowd")
        .expect("flash_crowd scenario registered")
        .trace(&scale, 11);

    let mut cfg = ClusterConfig::paper_testbed(Policy::lalbo3());
    // The whole observability layer is one config field; `off` (the
    // default) keeps the run byte-identical and recorder-free.
    cfg.record = "ledger,perfetto,sample=30,slo=10"
        .parse::<RecordSpec>()
        .expect("valid record spec");

    let mut cluster = Cluster::new(cfg, ModelRegistry::table1());
    let m = cluster.run(&trace);
    println!(
        "flash_crowd / LALBO3: {} requests, avg {:.2}s, p95 {:.2}s, miss {:.3}\n",
        m.completed, m.avg_latency_secs, m.p95_latency_secs, m.miss_ratio
    );

    // --- Ledger: per-request latency decomposition --------------------
    let ledger = cluster.ledger().expect("ledger recorder attached");
    println!(
        "Where the time went ({} requests, {} SLO misses at 10s):",
        ledger.completed(),
        ledger.slo_misses()
    );
    println!("  mean segments: {}", ledger.segment_summary());
    println!("Algorithm-2 arms:");
    let total = ledger.completed().max(1) as f64;
    for (arm, n) in ledger.arm_counts() {
        println!("  {arm:<12} {n:>6}  ({:.1}%)", 100.0 * n as f64 / total);
    }
    let slowest = ledger
        .rows()
        .iter()
        .filter(|r| r.completed)
        .max_by_key(|r| r.latency)
        .expect("completed requests exist");
    println!(
        "  slowest: request {} on {:?} — queued {:.2}s, load {:.2}s, infer {:.2}s\n",
        slowest.req,
        slowest.gpu.expect("completed requests have a GPU"),
        slowest.queued.as_secs_f64(),
        slowest.load.as_secs_f64(),
        slowest.infer.as_secs_f64(),
    );

    // --- Sampler: the cluster as a time series ------------------------
    let series = cluster.time_series().expect("sampler recorder attached");
    println!("Cluster time series (30s windows):");
    println!(
        "  {:>6} {:>6} {:>5} {:>9} {:>10}",
        "t(s)", "queue", "busy", "arrivals", "miss_ewma"
    );
    for row in series.rows() {
        println!(
            "  {:>6.0} {:>6} {:>5} {:>9} {:>10.3}",
            row.t.as_secs_f64(),
            row.queue_depth,
            row.busy,
            row.arrivals,
            row.miss_ewma
        );
    }

    // --- Perfetto: scrub the run visually -----------------------------
    let json = cluster.perfetto_json().expect("perfetto recorder attached");
    let path = "/tmp/gfaas_trace.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!(
            "\nWrote {} ({} bytes) — open it in https://ui.perfetto.dev\n\
             (one track per GPU: load + inference slices; counter tracks\n\
             for queue depth, hot replicas, provisioned GPUs).",
            path,
            json.len()
        ),
        Err(e) => println!("\n(could not write {path}: {e})"),
    }
}
