//! Scenario tour: compose a custom workload from parts, then sweep the
//! named registry.
//!
//! ```text
//! cargo run --release --example workload_scenarios
//! ```
//!
//! Part 1 builds a workload the registry does *not* ship — a flash crowd
//! landing on top of bursty on-off arrivals — straight from the
//! composable pieces, and shows what it does to LALB+O3. Part 2 replays
//! every registered scenario under the paper's three schedulers.

use gfaas_bench::{run_on_trace, ScenarioSuite};
use gfaas_core::Policy;
use gfaas_workload::{registry, Arrival, ModelMapping, Popularity, Scale, WorkloadSpec};

fn main() {
    // Part 1: a one-off composed workload — no fork of the Azure
    // generator required.
    let spec = WorkloadSpec {
        arrival: Arrival::OnOff {
            base_rate_per_min: 150.0,
            burst_rate_per_min: 900.0,
            mean_base_secs: 40.0,
            mean_burst_secs: 15.0,
        },
        popularity: Popularity::FlashCrowd {
            working_set: 25,
            alpha: 1.2176,
            crowd_function: 25,
            start_secs: 120.0,
            duration_secs: 120.0,
            crowd_share: 0.4,
        },
        mapping: ModelMapping::InterleavedSizes { num_models: 22 },
        horizon_secs: 360.0,
        seed: 11,
    };
    let trace = spec.generate();
    let s = trace.stats();
    println!("custom spec: bursty arrivals + mid-trace flash crowd");
    println!(
        "  {} requests, {} functions, minute CV {:.2}, top-15 share {:.0}%",
        s.total,
        s.working_set,
        s.minute_cv,
        s.top15_share * 100.0
    );
    for policy in [Policy::lb(), Policy::lalbo3()] {
        let m = run_on_trace(policy, &trace);
        println!(
            "  {:<7} avg {:6.2} s   p95 {:6.2} s   miss {:.3}",
            policy.name(),
            m.avg_latency_secs,
            m.p95_latency_secs,
            m.miss_ratio
        );
    }

    // Part 2: the named registry, one seed, paper scale.
    println!(
        "\nregistry sweep ({} scenarios, paper scale, seed 11):",
        registry().len()
    );
    let mut suite = ScenarioSuite::new(Scale::paper(), vec![11]);
    suite.policies = vec![Policy::lb().into(), Policy::lalbo3().into()];
    for cell in suite.run().cells {
        println!(
            "  {:<12} {:<7} avg {:6.2} s   p95 {:6.2} s   miss {:.3}",
            cell.scenario,
            cell.policy_name,
            cell.metrics.avg_latency_secs,
            cell.metrics.p95_latency_secs,
            cell.metrics.miss_ratio
        );
    }
}
