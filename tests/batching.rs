//! Dynamic-batching correctness across the scenario registry:
//! conservation, determinism, throughput monotonicity, and the headline
//! coalescing claim.
//!
//! * For any smoke scenario, seed, and batching policy, a batched run
//!   completes every trace request *exactly once* (verified per request
//!   id through the datastore latency mirror — coalescing neither drops
//!   nor double-serves), and is byte-deterministic.
//! * On the smoke `burst` scenario, `coalesce` never lowers completed
//!   requests per busy GPU-second vs per-request dispatch.
//! * On `burst` at paper scale over the report seeds, the default
//!   `coalesce` policy must lift busy-time throughput by ≥ 19% without
//!   worsening p95 — the claim `fig_batching` reports.

use std::sync::Arc;

use gfaas_bench::{run_batched_on_trace, AveragedMetrics, REPORT_SEEDS};
use gfaas_core::{Cluster, ClusterConfig, Policy, PolicySpec, RunMetrics};
use gfaas_faas::Datastore;
use gfaas_models::ModelRegistry;
use gfaas_trace::Trace;
use gfaas_workload::{registry, scenario::find, Scale};
use proptest::prelude::*;

/// Runs a paper-testbed cluster on `trace` with the datastore mirror on,
/// returning the metrics and the datastore.
fn run_mirrored(batching: &str, trace: &Trace, crash_rate: f64) -> (RunMetrics, Arc<Datastore>) {
    let mut cfg = ClusterConfig::paper_testbed(Policy::lalbo3());
    cfg.batching = batching.parse().unwrap();
    cfg.report_to_datastore = true;
    cfg.crash_rate = crash_rate;
    let ds = Arc::new(Datastore::new());
    let mut cluster = Cluster::new(cfg, ModelRegistry::table1()).with_datastore(Arc::clone(&ds));
    (cluster.run(trace), ds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Conservation + determinism over every smoke scenario and batching
    /// policy: every trace id completes exactly once.
    #[test]
    fn batched_smoke_runs_serve_every_request_exactly_once(
        seed in any::<u64>(),
        batching_idx in 0usize..3,
    ) {
        let scale = Scale::smoke();
        let batching = ["none", "coalesce", "adaptive"][batching_idx];
        for sc in registry() {
            let trace = sc.trace(&scale, seed);
            let (m1, ds) = run_mirrored(batching, &trace, 0.0);
            let (m2, _) = run_mirrored(batching, &trace, 0.0);
            prop_assert_eq!(
                m1.completed as usize,
                trace.len(),
                "{} seed {seed} {batching}: completion count off",
                sc.name
            );
            prop_assert_eq!(&m1, &m2, "{} seed {seed} {batching}: not deterministic", sc.name);
            // Exactly once: `completed == len` bounds the total, and a
            // latency key per id proves each request finished at least
            // once.
            for id in 0..trace.len() as u64 {
                prop_assert!(
                    ds.get(format!("/latency/{id}")).is_some(),
                    "{} seed {seed} {batching}: request {id} never completed",
                    sc.name
                );
            }
            // Coalescing accounting stays coherent.
            prop_assert_eq!(
                m1.invocations >= 1 && m1.invocations <= m1.completed,
                true,
                "{} seed {seed} {batching}: invocations {} vs completed {}",
                sc.name,
                m1.invocations,
                m1.completed
            );
        }
    }

    /// Conservation holds under failure injection too: a crashed batch
    /// retries whole and still completes every request exactly once.
    #[test]
    fn batched_runs_survive_crashes(seed in any::<u64>()) {
        let trace = find("burst").unwrap().trace(&Scale::smoke(), seed);
        let (m, ds) = run_mirrored("coalesce", &trace, 0.2);
        prop_assert_eq!(m.completed as usize, trace.len());
        for id in 0..trace.len() as u64 {
            let key = format!("/latency/{id}");
            prop_assert!(ds.get(&key).is_some(), "request {} never completed", id);
        }
    }

    /// `coalesce` never lowers completed requests per *busy* GPU-second
    /// vs per-request dispatch on the smoke `burst` scenario: coalescing
    /// only merges work (amortising invocation overhead and sharing
    /// uploads), and holds consume no GPU time.
    #[test]
    fn coalescing_never_lowers_smoke_burst_throughput(seed in any::<u64>()) {
        let trace = find("burst").unwrap().trace(&Scale::smoke(), seed);
        let policy: PolicySpec = Policy::lalbo3().into();
        let lru = PolicySpec::bare("lru");
        let none = run_batched_on_trace(&policy, &lru, &"none".parse().unwrap(), None, &trace);
        let coalesce =
            run_batched_on_trace(&policy, &lru, &"coalesce".parse().unwrap(), None, &trace);
        prop_assert_eq!(coalesce.completed, none.completed);
        let thr = |m: &RunMetrics| m.completed as f64 / m.gpu_busy_seconds.max(1e-9);
        prop_assert!(
            thr(&coalesce) >= thr(&none),
            "seed {seed}: coalesce {} < none {} req/busy-gpu-s",
            thr(&coalesce),
            thr(&none)
        );
    }
}

/// The acceptance bar for the batching claim: on `burst` at paper scale
/// over the report seeds, the default `coalesce` policy lifts completed
/// requests per busy GPU-second by ≥ 19% (seed mean; `fig_batching`
/// prints +20%) while *improving* the seed-mean p95, and `adaptive` must
/// not trail far behind.
#[test]
fn burst_coalescing_lifts_throughput_without_hurting_p95() {
    let scale = Scale::paper();
    let scenario = find("burst").expect("burst scenario registered");
    let policy: PolicySpec = Policy::lalbo3().into();
    let lru = PolicySpec::bare("lru");

    let mode = |batching: &str| -> AveragedMetrics {
        let spec: PolicySpec = batching.parse().unwrap();
        let runs: Vec<RunMetrics> = REPORT_SEEDS
            .iter()
            .map(|&s| run_batched_on_trace(&policy, &lru, &spec, None, &scenario.trace(&scale, s)))
            .collect();
        AveragedMetrics::from_runs(&runs)
    };
    let none = mode("none");
    let coalesce = mode("coalesce");
    let adaptive = mode("adaptive");

    assert_eq!(none.completed, coalesce.completed);
    let gain = coalesce.requests_per_busy_gpu_second() / none.requests_per_busy_gpu_second();
    assert!(
        gain >= 1.19,
        "coalesce busy-throughput gain {:.4} below the 1.19 bar",
        gain
    );
    assert!(
        coalesce.p95_latency_secs <= none.p95_latency_secs,
        "coalesce p95 {} must not exceed the per-request baseline {}",
        coalesce.p95_latency_secs,
        none.p95_latency_secs
    );
    assert!(
        coalesce.avg_effective_batch > 2.0,
        "burst queues must actually coalesce (eff batch {})",
        coalesce.avg_effective_batch
    );
    let adaptive_gain =
        adaptive.requests_per_busy_gpu_second() / none.requests_per_busy_gpu_second();
    assert!(
        adaptive_gain >= 1.15,
        "adaptive busy-throughput gain {:.4} below the 1.15 bar",
        adaptive_gain
    );
    assert!(adaptive.p95_latency_secs <= none.p95_latency_secs);
}
