//! Observability-layer contracts (PR 7):
//!
//! * **Recorder neutrality** — attaching every recorder must not change
//!   a single metric bit. Recording is a read-only tap on the event
//!   loop: the `RunMetrics` of a recorded run are byte-identical to the
//!   unrecorded run for every smoke scenario, including batching and
//!   autoscaling cells (those exercise the hold/ObsTick interleavings
//!   where a buggy tap would perturb event order).
//! * **Perfetto schema** — the exported Chrome trace-event JSON parses,
//!   timestamps are monotone per track, and begin/end slices balance,
//!   so the file opens in `ui.perfetto.dev` rather than erroring there.
//! * **Ledger exactness** — per-request lifecycle segments
//!   (queued + hold + load + inference) sum *tick-exactly* to the
//!   latency the metrics pipeline reports; the decomposition is an
//!   identity, not an approximation.
//! * **Sampler cadence** — time-series rows land on the configured
//!   cadence with sequential window ids.

use gfaas_bench::{run_batched_on_trace, run_recorded_on_trace, RecordedRun};
use gfaas_core::obs::perfetto::validate_chrome_trace;
use gfaas_core::{AutoscaleSpec, PolicySpec, RecordSpec};
use gfaas_workload::scenario::{find, registry};
use gfaas_workload::Scale;

fn record_all() -> RecordSpec {
    RecordSpec {
        ledger: true,
        perfetto: true,
        sample_secs: Some(5.0),
        slo_secs: Some(10.0),
    }
}

fn recorded_flash_crowd(seed: u64) -> RecordedRun {
    let trace = find("flash_crowd")
        .expect("flash_crowd scenario registered")
        .trace(&Scale::smoke(), seed);
    run_recorded_on_trace(
        &"lalbo3".parse::<PolicySpec>().unwrap(),
        &PolicySpec::bare("lru"),
        &PolicySpec::bare("none"),
        None,
        &record_all(),
        &trace,
    )
}

#[test]
fn recorders_are_metric_neutral_across_smoke_registry() {
    let policy: PolicySpec = "lalbo3".parse().unwrap();
    let replacement = PolicySpec::bare("lru");
    let batchings = ["none", "coalesce", "adaptive"];
    let autoscale = AutoscaleSpec::default();
    for (i, sc) in registry().iter().enumerate() {
        let trace = sc.trace(&Scale::smoke(), 11);
        // Rotate batching policies and alternate the autoscaler across
        // scenarios so every subsystem gets a recorded cell without
        // running the full cross product.
        let batching = PolicySpec::bare(batchings[i % batchings.len()]);
        let scaling = if i % 2 == 1 { Some(&autoscale) } else { None };
        let plain = run_batched_on_trace(&policy, &replacement, &batching, scaling, &trace);
        let recorded = run_recorded_on_trace(
            &policy,
            &replacement,
            &batching,
            scaling,
            &record_all(),
            &trace,
        );
        assert_eq!(
            plain,
            recorded.metrics,
            "{}/{}/autoscale={}: recording changed the metrics",
            sc.name,
            batching.key(),
            scaling.is_some(),
        );
        // Byte-for-byte, not just PartialEq.
        assert_eq!(format!("{plain:?}"), format!("{:?}", recorded.metrics));
    }
}

#[test]
fn perfetto_export_is_valid_chrome_trace() {
    let run = recorded_flash_crowd(11);
    let json = run.perfetto_json.expect("perfetto recorder attached");
    let check = validate_chrome_trace(&json)
        .unwrap_or_else(|e| panic!("flash_crowd trace failed validation: {e}"));
    assert!(check.events > 0, "empty trace");
    assert_eq!(check.begins, check.ends, "unbalanced duration slices");
    assert!(
        check.counters > 0,
        "no counter samples (queue depth / hot replicas / provisioned GPUs)"
    );
    // At least one track per GPU (smoke testbed has several) plus the
    // cluster counter tracks.
    assert!(
        check.tracks >= 3,
        "suspiciously few tracks: {}",
        check.tracks
    );
}

#[test]
fn ledger_segments_sum_exactly_to_latency() {
    let run = recorded_flash_crowd(23);
    let ledger = run.ledger.expect("ledger recorder attached");
    assert_eq!(
        ledger.completed() as u64,
        run.metrics.completed,
        "ledger row count disagrees with the metrics pipeline"
    );
    assert!(ledger.completed() > 0, "smoke run completed nothing");
    for row in ledger.rows() {
        if !row.completed {
            continue;
        }
        // Tick-exact identity, not an epsilon comparison: the segments
        // are carved out of the same SimTime arithmetic the metrics use.
        assert_eq!(
            row.segments_sum(),
            row.latency,
            "request {}: queued {:?} + hold {:?} + load {:?} + infer {:?} != latency {:?}",
            row.req,
            row.queued,
            row.hold,
            row.load,
            row.infer,
            row.latency,
        );
        assert_eq!(
            row.slo_miss,
            row.latency.as_secs_f64() > 10.0,
            "request {}: slo_miss flag disagrees with the 10s SLO",
            row.req,
        );
    }
}

#[test]
fn sampler_rows_follow_cadence() {
    let run = recorded_flash_crowd(47);
    let series = run.series.expect("sampler recorder attached");
    let rows = series.rows();
    assert!(
        rows.len() >= 2,
        "expected multiple 5s windows, got {}",
        rows.len()
    );
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.window, i, "window ids must be sequential");
        if i > 0 {
            assert!(
                row.t > rows[i - 1].t,
                "sample times must be strictly increasing"
            );
        }
    }
    // Every row except a possible end-of-run flush lands on the cadence.
    for row in &rows[..rows.len() - 1] {
        let t = row.t.as_secs_f64();
        let rem = t % 5.0;
        assert!(
            rem.abs() < 1e-9 || (5.0 - rem).abs() < 1e-9,
            "sample at {t}s is off the 5s cadence"
        );
    }
    // Window accumulators cover the whole run: every request completes
    // in this engine, so windowed arrivals can't exceed completions.
    let total_arrivals: u64 = rows.iter().map(|r| r.arrivals).sum();
    assert!(total_arrivals <= run.metrics.completed);
    // Per-GPU detail exists for every window.
    assert!(!series.gpu_rows().is_empty());
    assert_eq!(
        series.gpu_rows().iter().map(|g| g.window).max(),
        Some(rows.len() - 1)
    );
}
