//! End-to-end integration: FaaS substrate + trace + cluster + metrics.

use std::sync::Arc;

use gfaas_core::{Cluster, ClusterConfig, Policy};
use gfaas_faas::{Datastore, FunctionSpec, Gateway, Runtime};
use gfaas_models::ModelRegistry;
use gfaas_trace::{AzureTraceConfig, Trace};

#[test]
fn gateway_to_cluster_to_datastore() {
    let ds = Arc::new(Datastore::new());
    let gateway = Gateway::new(Arc::clone(&ds));
    // Register one function per zoo model through the Gateway.
    let registry = ModelRegistry::table1();
    for id in registry.ids() {
        let name = registry.spec(id).name;
        let rt = gateway
            .register(FunctionSpec::gpu_inference(format!("fn-{name}"), name, 32))
            .unwrap();
        assert_eq!(rt, Runtime::GpuRedirect);
    }
    assert_eq!(gateway.list().len(), 22);
    assert_eq!(ds.range("/functions/").len(), 22);

    // Run a workload with datastore mirroring on.
    let mut cfg = ClusterConfig::paper_testbed(Policy::lalbo3());
    cfg.report_to_datastore = true;
    let mut cluster = Cluster::new(cfg, registry).with_datastore(Arc::clone(&ds));
    let trace = AzureTraceConfig::paper(15, 3).generate();
    let m = cluster.run(&trace);

    assert_eq!(m.completed as usize, trace.len());
    // Every GPU reported a final status, every request a latency.
    for g in 0..12 {
        let kv = ds.get(format!("/gpu/{g}/status")).expect("status key");
        assert_eq!(kv.value.as_ref(), b"idle", "all GPUs idle after drain");
    }
    assert_eq!(ds.range("/latency/").len(), trace.len());
    // The mean of mirrored latencies equals the reported average.
    let sum: f64 = ds
        .range("/latency/")
        .iter()
        .map(|kv| String::from_utf8_lossy(&kv.value).parse::<f64>().unwrap())
        .sum();
    let mean = sum / trace.len() as f64;
    assert!((mean - m.avg_latency_secs).abs() < 1e-3);
}

#[test]
fn csv_trace_round_trips_through_the_cluster() {
    let trace = AzureTraceConfig::paper(25, 9).generate();
    let mut buf = Vec::new();
    trace.write_csv(&mut buf).unwrap();
    let parsed = Trace::read_csv(std::io::BufReader::new(&buf[..])).unwrap();
    assert_eq!(parsed.len(), trace.len());

    let run = |t: &Trace| {
        Cluster::new(
            ClusterConfig::paper_testbed(Policy::lalb()),
            ModelRegistry::table1(),
        )
        .run(t)
    };
    let a = run(&trace);
    let b = run(&parsed);
    // CSV timestamps are µs-exact, so the runs are identical.
    assert_eq!(a, b);
}

#[test]
fn watch_observes_gpu_status_transitions() {
    let ds = Arc::new(Datastore::new());
    let watcher = ds.watch("/gpu/");
    let mut cfg = ClusterConfig::paper_testbed(Policy::lalb());
    cfg.report_to_datastore = true;
    let mut cluster = Cluster::new(cfg, ModelRegistry::table1()).with_datastore(Arc::clone(&ds));
    cluster.run(&AzureTraceConfig::paper(15, 5).generate());
    let events = watcher.drain();
    assert!(!events.is_empty());
    // Status events alternate busy/idle per GPU; ensure both appear.
    let busy = events.iter().any(|e| e.value.as_ref() == b"busy");
    let idle = events.iter().any(|e| e.value.as_ref() == b"idle");
    assert!(busy && idle);
    // Revisions are monotone in delivery order.
    for pair in events.windows(2) {
        assert!(pair[0].revision < pair[1].revision);
    }
}

#[test]
fn all_policies_complete_every_request() {
    let trace = AzureTraceConfig::paper(35, 13).generate();
    for policy in [Policy::lb(), Policy::lalb(), Policy::lalbo3()] {
        let m = Cluster::new(
            ClusterConfig::paper_testbed(policy),
            ModelRegistry::table1(),
        )
        .run(&trace);
        assert_eq!(m.completed as usize, trace.len(), "{}", policy.name());
        assert!(m.makespan_secs >= 360.0 - 60.0, "{}", policy.name());
        assert!(m.sm_utilization > 0.0 && m.sm_utilization <= 1.0);
    }
}
