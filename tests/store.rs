//! Integration tests for the model-storage hierarchy: the `gfaas-store`
//! tier stack wired through the cluster's load path.
//!
//! The two contracts under test, end to end:
//!
//! * **Byte identity** — `store=flat` (the default) must reproduce the
//!   paper pipeline bit for bit, across scenarios, policies, autoscale
//!   and batching cells. The flat gate is what lets every published
//!   number survive this subsystem.
//! * **Conservation & determinism** — the tiered store is a modelled
//!   resource: host-tier bytes never exceed capacity, every counter is
//!   a pure function of (config, seed), and demoted models actually
//!   come back from the host tier instead of the origin.

use gfaas_core::{Cluster, ClusterConfig, Policy, RunMetrics, StoreStats};
use gfaas_models::ModelRegistry;
use gfaas_workload::scenario::find;
use gfaas_workload::Scale;
use proptest::prelude::*;

/// One fully configured smoke-scale cell, returning the run metrics and
/// the store's own counters (which the `run_*_on_trace` helpers do not
/// expose).
fn run_cell(
    scenario: &str,
    seed: u64,
    replacement: &str,
    batching: &str,
    autoscale: Option<&str>,
    store: &str,
) -> (RunMetrics, StoreStats) {
    let trace = find(scenario)
        .expect("scenario registered")
        .trace(&Scale::smoke(), seed);
    let mut cfg = ClusterConfig::paper_testbed(Policy::lalbo3());
    cfg.replacement = replacement.parse().expect("replacement spec");
    cfg.batching = batching.parse().expect("batching spec");
    cfg.autoscale = autoscale.map(|s| s.parse().expect("autoscale spec"));
    cfg.store = store.parse().expect("store spec");
    let mut cluster = Cluster::new(cfg, ModelRegistry::table1());
    let metrics = cluster.run(&trace);
    let stats = cluster.store_stats();
    (metrics, stats)
}

const AUTOSCALE: &str = "queue:min=2,max=8,up=6,down=1,cadence=2";

// ---------------------------------------------------------------------
// Flat-vs-default byte identity
// ---------------------------------------------------------------------

/// An explicit `store=flat` run is the default config, bit for bit —
/// across scenarios and the autoscale/batching cells. A divergence here
/// means the flat gate leaked a store call into the paper pipeline.
#[test]
fn flat_store_is_byte_identical_to_the_default_config() {
    let cells: &[(&str, &str, Option<&str>)] = &[
        ("none", "lru", None),
        ("none", "lru", Some(AUTOSCALE)),
        ("coalesce", "lru", None),
        ("adaptive", "tinylfu", Some(AUTOSCALE)),
    ];
    for scenario in ["paper", "diurnal", "churn"] {
        for &(batching, replacement, autoscale) in cells {
            let trace = find(scenario).unwrap().trace(&Scale::smoke(), 11);
            let run = |explicit_flat: bool| -> RunMetrics {
                let mut cfg = ClusterConfig::paper_testbed(Policy::lalbo3());
                cfg.replacement = replacement.parse().unwrap();
                cfg.batching = batching.parse().unwrap();
                cfg.autoscale = autoscale.map(|s| s.parse().unwrap());
                if explicit_flat {
                    cfg.store = "flat".parse().unwrap();
                }
                Cluster::new(cfg, ModelRegistry::table1()).run(&trace)
            };
            let default_run = run(false);
            let flat_run = run(true);
            assert_eq!(
                default_run, flat_run,
                "{scenario}/{batching}/{replacement}: explicit flat diverged from default"
            );
            assert_eq!(format!("{default_run:?}"), format!("{flat_run:?}"));
        }
    }
}

/// The flat store never touches tier state: every counter stays zero.
#[test]
fn flat_store_reports_no_tier_activity() {
    let (_, stats) = run_cell("churn", 11, "lru", "none", Some(AUTOSCALE), "flat");
    assert_eq!(stats, StoreStats::default());
}

// ---------------------------------------------------------------------
// Capacity conservation (property)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the cell — seed, host size, origin bandwidth, autoscale
    /// on/off, batching on/off — the host tier conserves bytes: usage
    /// never exceeds capacity, residency implies usage, and every entry
    /// ever displaced was first staged (demotion or prefetch).
    #[test]
    fn tiered_store_conserves_host_capacity(
        seed in 0u64..500,
        host_g in prop_oneof![Just(1u64), Just(4), Just(16), Just(64)],
        bw in prop_oneof![Just("1G"), Just("4G")],
        autoscale in any::<bool>(),
        batching in prop_oneof![Just("none"), Just("adaptive")],
    ) {
        let store = format!("tiered:host={host_g}G,origin_bw={bw}");
        let (metrics, s) = run_cell(
            "churn",
            seed,
            "lru",
            batching,
            autoscale.then_some(AUTOSCALE),
            &store,
        );
        prop_assert!(metrics.completed > 0, "cell completed nothing");
        prop_assert_eq!(s.host_capacity, host_g << 30);
        prop_assert!(
            s.host_bytes_used <= s.host_capacity,
            "host tier over capacity: {} > {}",
            s.host_bytes_used,
            s.host_capacity
        );
        prop_assert_eq!(s.host_models == 0, s.host_bytes_used == 0);
        // Every displaced host entry was first staged by one of the three
        // insert paths: demotion, prefetch, or a demand fetch passing
        // through the host tier on its way to HBM.
        prop_assert!(
            s.host_evictions <= s.demotions + s.prefetches + s.origin_loads,
            "displaced more entries than were ever staged"
        );
    }
}

// ---------------------------------------------------------------------
// Determinism with background transfers
// ---------------------------------------------------------------------

/// Prefetches ride the same virtual clock as everything else: two
/// identically seeded tiered runs — prefetch and scale-up staging on,
/// autoscaler churning the fleet — agree on every metric and every
/// store counter, bit for bit.
#[test]
fn tiered_runs_are_seed_deterministic_with_prefetch() {
    let cell = || {
        run_cell(
            "diurnal",
            23,
            "lru",
            "none",
            Some(AUTOSCALE),
            "tiered:host=8G,origin_bw=1G,prefetch=2,hot=4",
        )
    };
    let (m1, s1) = cell();
    let (m2, s2) = cell();
    assert_eq!(m1, m2, "metrics diverged between identical tiered runs");
    assert_eq!(s1, s2, "store counters diverged between identical runs");
    // The cell must actually exercise the background path, or the
    // assertions above are vacuous.
    assert!(s1.demotions > 0, "cell never demoted");
}

// ---------------------------------------------------------------------
// Demote-then-rehit
// ---------------------------------------------------------------------

/// Evicted models come back from the host tier: with a host cache big
/// enough to hold the churned working set, re-misses are host hits and
/// origin traffic drops; with a token 1-byte host tier nothing can
/// stage, so every miss crosses the origin link.
#[test]
fn demoted_models_rehit_from_host_not_origin() {
    let (_, with_host) = run_cell("churn", 11, "lru", "none", None, "tiered:host=64G");
    let (_, without) = run_cell("churn", 11, "lru", "none", None, "tiered:host=1");
    assert!(with_host.demotions > 0, "churn cell never evicted");
    assert!(
        with_host.host_hits > 0,
        "no demoted model was re-served from the host tier"
    );
    assert_eq!(without.host_hits, 0, "1-byte host tier served a hit");
    assert!(
        without.host_rejects > 0,
        "1-byte host tier accepted a staged model"
    );
    assert!(
        with_host.origin_loads < without.origin_loads,
        "host cache did not divert origin traffic ({} >= {})",
        with_host.origin_loads,
        without.origin_loads
    );
}

// ---------------------------------------------------------------------
// tinylfu:auto pinning
// ---------------------------------------------------------------------

/// The auto-tuned TinyLFU holds its own against hand tuning on the two
/// cells the presets were tuned for: drift's hand choice is the
/// stable-regime default, churn's is the churn preset. On each cell
/// `auto` must (a) never lose to the cell's *mis*-tuned preset — the
/// whole point of auto is not having to know the workload — and (b) land
/// within noise of the cell's correctly hand-tuned preset. The pinned
/// regression is the regime detector latching the wrong parameter set.
///
/// Paper scale, not smoke: at 60 requests the decay window never fills,
/// so every TinyLFU parameterisation is bit-identical there and a smoke
/// assertion would be vacuous.
#[test]
fn tinylfu_auto_matches_hand_tuned_presets() {
    const DEFAULTS: &str = "tinylfu";
    const CHURN_TUNED: &str = "tinylfu:0.3,256,front=1";
    let seeds = [11u64, 23, 47];
    // (scenario, the preset a human would pick for it, the mis-pick)
    for (scenario, right, wrong) in [
        ("drift", DEFAULTS, CHURN_TUNED),
        ("churn", CHURN_TUNED, DEFAULTS),
    ] {
        let miss = |replacement: &str| -> f64 {
            let mut sum = 0.0;
            for &seed in &seeds {
                let trace = find(scenario).unwrap().trace(&Scale::paper(), seed);
                let mut cfg = ClusterConfig::paper_testbed(Policy::lalbo3());
                cfg.replacement = replacement.parse().unwrap();
                let m = Cluster::new(cfg, ModelRegistry::table1()).run(&trace);
                sum += m.miss_ratio;
            }
            sum / seeds.len() as f64
        };
        let auto = miss("tinylfu:auto");
        let mistuned = miss(wrong);
        let tuned = miss(right);
        assert!(
            auto <= mistuned,
            "{scenario}: tinylfu:auto miss {auto:.4} loses to the mis-tuned preset \
             {wrong:?} at {mistuned:.4}"
        );
        assert!(
            auto <= tuned + 0.0075,
            "{scenario}: tinylfu:auto miss {auto:.4} not within noise of hand-tuned \
             {right:?} at {tuned:.4}"
        );
    }
}
