//! End-to-end checks of the scenario subsystem through the umbrella
//! crate: the suite runner is deterministic, its `paper` cells agree with
//! the fig4 pipeline, and composed specs drive the cluster directly.

use gfaas::bench::{run_replicated, ScenarioSuite, REPORT_SEEDS};
use gfaas::core::Policy;
use gfaas::workload::{Arrival, ModelMapping, Popularity, WorkloadSpec};

#[test]
fn suite_matrix_covers_every_cell_deterministically() {
    let suite = ScenarioSuite::smoke();
    let a = suite.run().cells;
    assert_eq!(a.len(), 6 * 3);
    let b = suite.run().cells;
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.metrics, y.metrics, "{} {}", x.scenario, x.policy_name);
        assert!(x.metrics.avg_latency_secs > 0.0);
        assert!(x.metrics.makespan_secs > 0.0);
        assert!(x.metrics.p50_latency_secs <= x.metrics.p95_latency_secs);
        assert!(x.metrics.p95_latency_secs <= x.metrics.p99_latency_secs);
    }
}

#[test]
fn paper_scenario_cells_equal_fig4_numbers() {
    // The suite runs the spec-resolved trait path; `run_replicated` runs
    // the compat enum path. Their `paper` cells must stay bit-equal.
    let mut suite = ScenarioSuite::paper_default();
    suite.scenarios.retain(|s| s.name == "paper");
    for (policy, cell) in gfaas::bench::paper_policies().iter().zip(suite.run().cells) {
        assert_eq!(cell.policy_name, policy.name());
        let fig4 = run_replicated(*policy, 25, &REPORT_SEEDS);
        assert_eq!(cell.metrics, fig4, "{}", cell.policy_name);
    }
}

#[test]
fn composed_spec_feeds_cluster_run_unchanged() {
    let spec = WorkloadSpec {
        arrival: Arrival::Poisson {
            rate_per_min: 120.0,
        },
        popularity: Popularity::Zipf {
            working_set: 15,
            alpha: 1.2176,
        },
        mapping: ModelMapping::InterleavedSizes { num_models: 22 },
        horizon_secs: 120.0,
        seed: 5,
    };
    let trace = spec.generate();
    let m = gfaas::bench::run_on_trace(Policy::lalbo3(), &trace);
    assert_eq!(m.completed, trace.len() as u64);
    assert!(m.avg_latency_secs > 0.0);
}
