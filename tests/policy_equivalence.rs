//! The pluggable-policy acceptance bar: every route into the policy layer
//! — enum constructors, parsed string specs, and directly injected trait
//! objects — must drive bit-identical simulations, and the new TinyLFU
//! evictor must actually pay off on the drifting workload it was built
//! for.

use gfaas::bench::{run_spec_on_trace, ScenarioSuite, REPORT_SEEDS};
use gfaas::core::{Cluster, ClusterConfig, Policy, PolicySpec, ReplacementPolicy, RunMetrics};
use gfaas::models::ModelRegistry;
use gfaas::workload::{registry, Scale};

/// The paper's scheduler enums zipped with their canonical spec strings.
const SCHEDULERS: [(Policy, &str); 3] = [
    (Policy::LoadBalance, "lb"),
    (Policy::Lalb { o3_limit: 0 }, "lalb"),
    (Policy::Lalb { o3_limit: 25 }, "lalbo3:25"),
];

/// The paper's replacement enums zipped with their spec strings.
const EVICTORS: [(ReplacementPolicy, &str); 3] = [
    (ReplacementPolicy::Lru, "lru"),
    (ReplacementPolicy::Fifo, "fifo"),
    (ReplacementPolicy::Random, "random"),
];

fn run_cfg(cfg: ClusterConfig, trace: &gfaas::trace::Trace) -> RunMetrics {
    Cluster::new(cfg, ModelRegistry::table1()).run(trace)
}

#[test]
fn spec_path_equals_enum_path_for_every_policy_pair() {
    // 3 schedulers × 3 evictors on every smoke scenario: the registry
    // path (parsed strings) and the compat path (enum constructors) must
    // produce byte-identical RunMetrics.
    let scale = Scale::smoke();
    for sc in registry() {
        let trace = sc.trace(&scale, REPORT_SEEDS[0]);
        for (policy, pspec) in SCHEDULERS {
            for (repl, rspec) in EVICTORS {
                let mut enum_cfg = ClusterConfig::paper_testbed(policy);
                enum_cfg.replacement = repl.into();
                let via_enum = run_cfg(enum_cfg, &trace);
                let via_spec =
                    run_spec_on_trace(&pspec.parse().unwrap(), &rspec.parse().unwrap(), &trace);
                assert_eq!(
                    via_enum, via_spec,
                    "{}: {pspec} x {rspec} diverged from the enum baseline",
                    sc.name
                );
            }
        }
    }
}

#[test]
fn injected_trait_objects_equal_the_registry_path() {
    // Handing `Cluster::with_policies` explicitly constructed trait
    // objects (no registry involved) must match spec resolution too —
    // the registry is wiring, not behaviour.
    let trace = registry()[0].trace(&Scale::smoke(), REPORT_SEEDS[0]);
    for (policy, pspec) in SCHEDULERS {
        for (repl, rspec) in EVICTORS {
            let cfg = ClusterConfig::paper_testbed(policy);
            let seed = cfg.seed;
            let mut injected = Cluster::with_policies(
                cfg,
                ModelRegistry::table1(),
                policy.build(),
                repl.build(seed),
            )
            .unwrap();
            let via_injection = injected.run(&trace);
            let via_spec =
                run_spec_on_trace(&pspec.parse().unwrap(), &rspec.parse().unwrap(), &trace);
            assert_eq!(via_injection, via_spec, "{pspec} x {rspec}");
        }
    }
}

#[test]
fn suite_replacement_axis_threads_through_to_cells() {
    // A suite configured with a non-default evictor must actually run it:
    // under memory pressure FIFO and LRU diverge on the paper scenario.
    // (Smoke scale never evicts, so this needs the paper-scale horizon.)
    let mut lru = ScenarioSuite::new(Scale::paper(), vec![REPORT_SEEDS[0]]);
    lru.policies = vec!["lalbo3".parse().unwrap()];
    lru.scenarios.retain(|s| s.name == "paper");
    let mut fifo = lru.clone();
    fifo.replacement = PolicySpec::bare("fifo");
    let lru_cells = lru.run().cells;
    let fifo_cells = fifo.run().cells;
    assert_eq!(lru_cells.len(), fifo_cells.len());
    assert!(
        lru_cells
            .iter()
            .zip(&fifo_cells)
            .any(|(a, b)| a.metrics != b.metrics),
        "swapping the suite's evictor changed nothing"
    );
}

#[test]
fn tinylfu_beats_lru_on_the_drift_scenario() {
    // The ROADMAP's drift-aware-caching claim, as a property over seeds:
    // under the `drift` scenario (the Zipf head rotating through the
    // horizon) the frequency-decay evictor must out-hit LRU. The smoke
    // horizon (60 requests) never fills a GPU, so the property is checked
    // at paper scale — the same rows `scenarios --scenario drift` prints.
    let drift = registry()
        .into_iter()
        .find(|s| s.name == "drift")
        .expect("drift scenario registered");
    let lalbo3: PolicySpec = "lalbo3:25".parse().unwrap();
    let lru: PolicySpec = "lru".parse().unwrap();
    let tinylfu: PolicySpec = "tinylfu:0.3".parse().unwrap();
    let mut lru_miss = 0.0;
    let mut tinylfu_miss = 0.0;
    for &seed in &REPORT_SEEDS {
        let trace = drift.trace(&Scale::paper(), seed);
        let l = run_spec_on_trace(&lalbo3, &lru, &trace);
        let t = run_spec_on_trace(&lalbo3, &tinylfu, &trace);
        assert!(
            t.miss_ratio <= l.miss_ratio,
            "seed {seed}: tinylfu {:.4} vs lru {:.4}",
            t.miss_ratio,
            l.miss_ratio
        );
        lru_miss += l.miss_ratio;
        tinylfu_miss += t.miss_ratio;
    }
    assert!(
        tinylfu_miss < lru_miss,
        "mean miss ratio must strictly improve: tinylfu {:.4} vs lru {:.4}",
        tinylfu_miss / REPORT_SEEDS.len() as f64,
        lru_miss / REPORT_SEEDS.len() as f64
    );
}

#[test]
fn tinylfu_keeps_the_static_paper_scenario_close_to_lru() {
    // Frequency decay must not wreck the static workload the paper tunes
    // on: stay within 10% relative miss ratio of LRU there.
    let paper = registry()[0];
    let trace = paper.trace(&Scale::paper(), REPORT_SEEDS[0]);
    let lalbo3: PolicySpec = "lalbo3:25".parse().unwrap();
    let l = run_spec_on_trace(&lalbo3, &"lru".parse().unwrap(), &trace);
    let t = run_spec_on_trace(&lalbo3, &"tinylfu".parse().unwrap(), &trace);
    assert!(
        t.miss_ratio <= l.miss_ratio * 1.10,
        "tinylfu {:.4} vs lru {:.4}",
        t.miss_ratio,
        l.miss_ratio
    );
}
