//! Determinism smoke test: the whole pipeline — trace synthesis, the
//! DES engine, scheduling, caching, metric accumulation — must be a pure
//! function of (config, seed). Two identically-seeded runs have to agree
//! on every metric bit-for-bit, or none of the paper's figures are
//! reproducible.

use gfaas_core::{Cluster, ClusterConfig, Policy, RunMetrics};
use gfaas_models::ModelRegistry;
use gfaas_trace::AzureTraceConfig;

fn run_once(policy: Policy, working_set: usize, seed: u64) -> RunMetrics {
    let trace = AzureTraceConfig::paper(working_set, seed).generate();
    let mut cluster = Cluster::new(
        ClusterConfig::paper_testbed(policy),
        ModelRegistry::table1(),
    );
    cluster.run(&trace)
}

#[test]
fn same_seed_byte_identical_metrics() {
    for policy in [Policy::lb(), Policy::lalb(), Policy::lalbo3()] {
        let a = run_once(policy, 25, 42);
        let b = run_once(policy, 25, 42);
        assert_eq!(a, b, "{policy:?}: metrics diverged between identical runs");
        // PartialEq could in principle tolerate differences Debug would
        // show (it cannot today, but keep the stronger check cheap):
        // compare the full rendering too, byte for byte.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

#[test]
fn different_seed_different_metrics() {
    // Not a tautology: a buggy engine that ignored the trace would pass
    // the identity test above. Distinct seeds must actually reach the
    // metrics.
    let a = run_once(Policy::lalb(), 25, 42);
    let c = run_once(Policy::lalb(), 25, 43);
    assert_ne!(a, c, "different seeds produced identical metrics");
}
