//! Result-shape regression tests: the paper's qualitative findings must
//! hold on every build. These encode *who wins and by roughly what
//! factor*, not absolute numbers (EXPERIMENTS.md records those).

use gfaas_bench::{paper_trace, run_on_trace};
use gfaas_core::{Cluster, ClusterConfig, Policy};
use gfaas_models::ModelRegistry;

const SEED: u64 = 11;

#[test]
fn lalb_beats_lb_by_a_large_factor_everywhere() {
    for ws in [15, 25, 35] {
        let trace = paper_trace(ws, SEED);
        let lb = run_on_trace(Policy::lb(), &trace);
        let lalb = run_on_trace(Policy::lalb(), &trace);
        // Paper: 79–98% latency reduction → at least 5x here.
        assert!(
            lalb.avg_latency_secs * 5.0 < lb.avg_latency_secs,
            "ws{ws}: LALB {:.2}s vs LB {:.2}s",
            lalb.avg_latency_secs,
            lb.avg_latency_secs
        );
        // Paper: 65–94% miss-ratio reduction → at least 2x here.
        assert!(
            lalb.miss_ratio * 2.0 < lb.miss_ratio,
            "ws{ws}: miss {:.3} vs {:.3}",
            lalb.miss_ratio,
            lb.miss_ratio
        );
    }
}

#[test]
fn o3_wins_at_the_large_working_set() {
    let trace = paper_trace(35, SEED);
    let lalb = run_on_trace(Policy::lalb(), &trace);
    let o3 = run_on_trace(Policy::lalbo3(), &trace);
    // Paper Fig 7: out-of-order dispatch sharply cuts latency and misses
    // at WS35.
    assert!(
        o3.avg_latency_secs < lalb.avg_latency_secs * 0.8,
        "O3 {:.2}s vs LALB {:.2}s",
        o3.avg_latency_secs,
        lalb.avg_latency_secs
    );
    assert!(o3.miss_ratio <= lalb.miss_ratio * 1.02);
    // Paper: the larger limit also *reduces* latency variance.
    assert!(o3.latency_variance < lalb.latency_variance * 0.6);
}

#[test]
fn miss_ratio_degrades_with_working_set_for_lalb() {
    // Paper Fig 4b: locality gets harder as the working set grows.
    let m15 = run_on_trace(Policy::lalb(), &paper_trace(15, SEED));
    let m35 = run_on_trace(Policy::lalb(), &paper_trace(35, SEED));
    assert!(
        m35.miss_ratio > m15.miss_ratio,
        "ws35 {:.3} should exceed ws15 {:.3}",
        m35.miss_ratio,
        m15.miss_ratio
    );
}

#[test]
fn lb_has_the_worst_false_miss_ratio() {
    // Paper Fig 5: LB up to ~96%; locality-aware schedulers much lower.
    for ws in [15, 35] {
        let trace = paper_trace(ws, SEED);
        let lb = run_on_trace(Policy::lb(), &trace);
        let lalb = run_on_trace(Policy::lalb(), &trace);
        let o3 = run_on_trace(Policy::lalbo3(), &trace);
        assert!(
            lb.false_miss_ratio > 0.6,
            "LB false-miss {:.3}",
            lb.false_miss_ratio
        );
        assert!(lalb.false_miss_ratio < lb.false_miss_ratio, "ws{ws}");
        assert!(o3.false_miss_ratio < lb.false_miss_ratio, "ws{ws}");
    }
}

#[test]
fn locality_reduces_hot_model_duplicates() {
    // Paper Fig 6: LB churns the most replicas of the hottest model.
    let trace = paper_trace(15, SEED);
    let lb = run_on_trace(Policy::lb(), &trace);
    let lalb = run_on_trace(Policy::lalb(), &trace);
    assert!(
        lalb.avg_duplicates < lb.avg_duplicates,
        "LALB {:.2} vs LB {:.2}",
        lalb.avg_duplicates,
        lb.avg_duplicates
    );
    // Bounded by the GPU count.
    assert!(lb.avg_duplicates <= 12.0);
}

#[test]
fn o3_limit_sweep_is_beneficial_and_saturates() {
    // Paper Fig 7: latency and miss ratio fall as the limit grows, then
    // flatten. Check endpoint ordering and saturation.
    let trace = paper_trace(35, SEED);
    let at = |limit: u32| run_on_trace(Policy::lalb_with_limit(limit), &trace);
    let l0 = at(0);
    let l25 = at(25);
    let l45 = at(45);
    assert!(l25.avg_latency_secs < l0.avg_latency_secs);
    assert!(
        l45.avg_latency_secs <= l25.avg_latency_secs * 1.1,
        "saturation"
    );
    assert!(l45.latency_variance < l0.latency_variance * 0.5);
}

#[test]
fn sm_utilization_anticorrelates_with_miss_ratio() {
    // Paper Fig 4c: utilisation is highest where misses are fewest,
    // because SMs idle during model uploads.
    let trace = paper_trace(25, SEED);
    let lb = run_on_trace(Policy::lb(), &trace);
    let o3 = run_on_trace(Policy::lalbo3(), &trace);
    assert!(o3.miss_ratio < lb.miss_ratio);
    assert!(
        o3.sm_utilization > lb.sm_utilization,
        "O3 util {:.3} vs LB {:.3}",
        o3.sm_utilization,
        lb.sm_utilization
    );
    // 100% is unreachable (§V-C).
    assert!(o3.sm_utilization < 1.0);
}

#[test]
fn headline_speedup_is_double_digit() {
    // Abstract: "a speedup of 48x compared to the default, load balancing
    // only schedulers". Require at least ~20x on the averaged grid.
    let trace = paper_trace(25, SEED);
    let lb = run_on_trace(Policy::lb(), &trace);
    let o3 = run_on_trace(Policy::lalbo3(), &trace);
    let speedup = lb.avg_latency_secs / o3.avg_latency_secs;
    assert!(speedup > 20.0, "speedup {speedup:.1}x");
}

#[test]
fn runs_are_deterministic() {
    let trace = paper_trace(35, SEED);
    let a = run_on_trace(Policy::lalbo3(), &trace);
    let b = run_on_trace(Policy::lalbo3(), &trace);
    assert_eq!(a, b);
}

#[test]
fn replacement_policy_ablation_keeps_lalbo3_ahead() {
    // §VI: locality-aware scheduling helps regardless of the replacement
    // policy.
    use gfaas_core::ReplacementPolicy;
    let trace = paper_trace(25, SEED);
    for repl in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
    ] {
        let mut lb_cfg = ClusterConfig::paper_testbed(Policy::lb());
        lb_cfg.replacement = repl.into();
        let lb = Cluster::new(lb_cfg, ModelRegistry::table1()).run(&trace);
        let mut o3_cfg = ClusterConfig::paper_testbed(Policy::lalbo3());
        o3_cfg.replacement = repl.into();
        let o3 = Cluster::new(o3_cfg, ModelRegistry::table1()).run(&trace);
        assert!(
            o3.avg_latency_secs * 3.0 < lb.avg_latency_secs,
            "{repl:?}: O3 {:.2}s vs LB {:.2}s",
            o3.avg_latency_secs,
            lb.avg_latency_secs
        );
    }
}

#[test]
fn estimation_ablation_shapes() {
    use gfaas_core::config::BusyWaitPolicy;
    let trace = paper_trace(25, SEED);
    let run_bw = |bw: BusyWaitPolicy| {
        let mut cfg = ClusterConfig::paper_testbed(Policy::lalbo3());
        cfg.busy_wait = bw;
        Cluster::new(cfg, ModelRegistry::table1()).run(&trace)
    };
    let est = run_bw(BusyWaitPolicy::Estimate);
    let never = run_bw(BusyWaitPolicy::Never);
    let always = run_bw(BusyWaitPolicy::Always);
    // The paper's co-design: estimation beats both degenerate rules.
    assert!(est.avg_latency_secs < never.avg_latency_secs);
    assert!(est.avg_latency_secs < always.avg_latency_secs);
    // Never-wait replicates more → more misses than estimation.
    assert!(never.miss_ratio > est.miss_ratio);
    // Always-wait trades misses for convoys → fewest misses, worst latency.
    assert!(always.miss_ratio < est.miss_ratio);
}
