//! Property tests over the whole cluster: conservation laws and bounds
//! that must hold for *any* workload, policy, and seed.

use gfaas_core::{Cluster, ClusterConfig, Policy};
use gfaas_models::zoo::{Family, ModelSpec};
use gfaas_models::ModelRegistry;
use gfaas_sim::time::SimTime;
use gfaas_trace::{Trace, TraceRequest};
use proptest::prelude::*;

fn toy_registry(n: usize) -> ModelRegistry {
    let specs: Vec<ModelSpec> = (0..n)
        .map(|i| ModelSpec {
            name: Box::leak(format!("m{i}").into_boxed_str()),
            occupancy_mib: 80 + (i as u64 % 5) * 40,
            load_secs: 0.5 + (i % 3) as f64 * 0.5,
            infer_secs_b32: 0.4 + (i % 4) as f64 * 0.3,
            family: Family::ResNet,
        })
        .collect();
    ModelRegistry::from_specs(specs)
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::lb()),
        Just(Policy::lalb()),
        (0u32..50).prop_map(Policy::lalb_with_limit),
    ]
}

fn arb_trace(nmodels: u32) -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0u64..120_000u64, 0..nmodels), 1..120).prop_map(|reqs| {
        Trace::new(
            reqs.into_iter()
                .map(|(ms, m)| TraceRequest {
                    at: SimTime::from_micros(ms * 1000),
                    function: m,
                    model: m,
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: every request completes exactly once; hits + misses
    /// equal completions; all ratios live in [0, 1].
    #[test]
    fn conservation_and_bounds(
        policy in arb_policy(),
        trace in arb_trace(6),
        gpus in 1usize..5,
    ) {
        let mut cluster = Cluster::new(
            ClusterConfig::test(gpus, 500, policy),
            toy_registry(6),
        );
        let m = cluster.run(&trace);
        prop_assert_eq!(m.completed as usize, trace.len());
        prop_assert!((m.hit_ratio + m.miss_ratio - 1.0).abs() < 1e-9);
        for v in [m.miss_ratio, m.hit_ratio, m.false_miss_ratio, m.sm_utilization] {
            prop_assert!((0.0..=1.0).contains(&v), "ratio out of range: {v}");
        }
        prop_assert!(m.avg_duplicates >= 0.0 && m.avg_duplicates <= gpus as f64);
        prop_assert!(m.avg_latency_secs <= m.max_latency_secs + 1e-9);
        prop_assert!(m.latency_variance >= 0.0);
        // The run cannot end before the last arrival plus one inference.
        let last_arrival = trace.requests().last().unwrap().at.as_secs_f64();
        prop_assert!(m.makespan_secs >= last_arrival);
    }

    /// False misses never exceed misses, and a single-GPU cluster can
    /// never produce a false miss (there is no "other GPU").
    #[test]
    fn false_misses_are_a_subset_of_misses(
        policy in arb_policy(),
        trace in arb_trace(4),
    ) {
        let mut cluster = Cluster::new(
            ClusterConfig::test(1, 400, policy),
            toy_registry(4),
        );
        let m = cluster.run(&trace);
        prop_assert!(m.false_misses <= m.misses);
        prop_assert_eq!(m.false_misses, 0, "single GPU cannot false-miss");
    }

    /// Determinism: identical inputs give identical metrics.
    #[test]
    fn identical_runs_identical_metrics(
        policy in arb_policy(),
        trace in arb_trace(5),
    ) {
        let run = || {
            Cluster::new(ClusterConfig::test(3, 400, policy), toy_registry(5)).run(&trace)
        };
        prop_assert_eq!(run(), run());
    }

    /// The first request for each model in a fresh cluster is always a
    /// miss; total misses are at least the number of distinct models.
    #[test]
    fn cold_start_misses_lower_bound(
        policy in arb_policy(),
        trace in arb_trace(6),
    ) {
        let distinct = {
            let mut m: Vec<u32> = trace.requests().iter().map(|r| r.model).collect();
            m.sort_unstable();
            m.dedup();
            m.len() as u64
        };
        let mut cluster = Cluster::new(
            ClusterConfig::test(4, 1000, policy),
            toy_registry(6),
        );
        let m = cluster.run(&trace);
        prop_assert!(m.misses >= distinct, "misses {} < distinct {}", m.misses, distinct);
    }

    /// Adding GPUs never loses requests and keeps ratios sane (smoke test
    /// for the scheduler across cluster sizes).
    #[test]
    fn scales_across_cluster_sizes(trace in arb_trace(8), gpus in 1usize..9) {
        let mut cluster = Cluster::new(
            ClusterConfig::test(gpus, 700, Policy::lalbo3()),
            toy_registry(8),
        );
        let m = cluster.run(&trace);
        prop_assert_eq!(m.completed as usize, trace.len());
    }
}
