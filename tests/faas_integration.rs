//! Cross-component FaaS substrate integration: Gateway + Watchdog +
//! Datastore + container scaling working together, as in the paper's
//! Fig 1 baseline platform.

use std::sync::Arc;

use bytes::Bytes;
use gfaas_faas::container::{ContainerPool, ScalingPolicy};
use gfaas_faas::datastore::{Compare, Op};
use gfaas_faas::gateway::CpuRunner;
use gfaas_faas::watchdog::Watchdog;
use gfaas_faas::{Datastore, FunctionSpec, Gateway, Invocation};
use gfaas_sim::time::{SimDuration, SimTime};

struct Upper;
impl CpuRunner for Upper {
    fn run(&mut self, inv: &Invocation) -> Bytes {
        Bytes::from(
            String::from_utf8_lossy(&inv.payload)
                .to_uppercase()
                .into_bytes(),
        )
    }
}

#[test]
fn cpu_function_lifecycle_with_metrics() {
    let ds = Arc::new(Datastore::new());
    let gateway = Gateway::new(Arc::clone(&ds));
    let watchdog = Watchdog::new(Arc::clone(&ds));
    gateway
        .register(FunctionSpec::cpu("shout", "alpine"))
        .unwrap();

    // Invoke through the gateway; then report via the watchdog, as the
    // container would.
    let inv = gateway
        .make_invocation("shout", Bytes::from_static(b"hello"), SimTime::from_secs(1))
        .unwrap();
    let result = watchdog.execute(
        &inv,
        &mut Upper,
        SimTime::from_secs(1),
        SimTime::from_secs(1) + SimDuration::from_millis(120),
    );
    assert_eq!(result.output, Bytes::from_static(b"HELLO"));
    assert!((result.latency.as_secs_f64() - 0.12).abs() < 1e-9);
    // Metrics landed in the datastore under both key families.
    assert_eq!(ds.range("/metrics/invocations/shout/").len(), 1);
    assert!(ds.get("/metrics/functions/shout").is_some());
    assert_eq!(watchdog.stats("shout").count, 1);
}

#[test]
fn scaling_driven_by_observed_rate() {
    // The datastore's metrics feed a scaling loop: reconcile replicas to
    // the invocation rate like the paper's "request scaling" arrow.
    let mut pool = ContainerPool::new(SimDuration::from_secs(2));
    let policy = ScalingPolicy {
        min_replicas: 1,
        max_replicas: 8,
        target_per_replica: 60,
    };
    // Minute 1: 325 invocations → 6 replicas.
    assert_eq!(pool.reconcile("infer", 325, policy, SimTime::ZERO), 5 + 1);
    assert_eq!(pool.replicas("infer"), 6);
    // Containers become ready after cold start.
    assert_eq!(pool.running("infer"), 0);
    pool.tick(SimTime::from_secs(2));
    assert_eq!(pool.running("infer"), 6);
    // Demand collapses → scale back to the floor.
    pool.reconcile("infer", 10, policy, SimTime::from_secs(60));
    assert_eq!(pool.replicas("infer"), 1);
}

#[test]
fn cas_transaction_serialises_competing_schedulers() {
    // Two schedulers racing to claim a GPU through etcd-style CAS: only
    // one wins, the other observes the claim.
    let ds = Datastore::new();
    ds.put("/gpu/3/claim", "free");
    let claim = |who: &str| {
        ds.txn(
            &[Compare::ValueEquals(
                "/gpu/3/claim".into(),
                Bytes::from_static(b"free"),
            )],
            &[Op::Put("/gpu/3/claim".into(), Bytes::from(who.to_string()))],
            &[],
        )
        .succeeded
    };
    assert!(claim("sched-a"));
    assert!(!claim("sched-b"));
    assert_eq!(
        ds.get("/gpu/3/claim").unwrap().value,
        Bytes::from_static(b"sched-a")
    );
}

#[test]
fn lease_expiry_clears_stale_gpu_status() {
    // A GPU Manager heartbeats its status under a lease; if it dies the
    // status disappears instead of attracting dispatches forever.
    let ds = Datastore::new();
    let lease = ds.lease_grant(SimTime::ZERO, SimDuration::from_secs(5));
    ds.put_with_lease("/gpu/7/status", "idle", lease);
    // Heartbeats keep it alive...
    for s in [2u64, 4, 6] {
        assert!(ds.lease_keepalive(lease, SimTime::from_secs(s)));
        assert!(ds.expire_leases(SimTime::from_secs(s)).is_empty());
    }
    // ...until the manager crashes and stops refreshing.
    let dead = ds.expire_leases(SimTime::from_secs(11));
    assert_eq!(dead, vec!["/gpu/7/status".to_string()]);
    assert!(ds.get("/gpu/7/status").is_none());
}

#[test]
fn gateway_crud_is_visible_in_datastore_watches() {
    let ds = Arc::new(Datastore::new());
    let watcher = ds.watch("/functions/");
    let gateway = Gateway::new(Arc::clone(&ds));
    gateway
        .register(FunctionSpec::gpu_inference("cls", "resnet18", 32))
        .unwrap();
    gateway.deregister("cls").unwrap();
    let events = watcher.drain();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].key, "/functions/cls");
    assert!(matches!(
        events[1].kind,
        gfaas_faas::datastore::WatchEventKind::Delete
    ));
}
