//! Autoscaling correctness across the scenario registry: conservation,
//! determinism, fleet bounds, and the headline elasticity claim.
//!
//! * For any smoke scenario, seed, and paper policy, an autoscaled run
//!   completes every request exactly once (scale-down draining loses
//!   nothing, scale-up double-dispatches nothing), is byte-deterministic,
//!   and keeps the online fleet inside the configured `[min, max]` band.
//! * On the `diurnal` scenario at paper scale (the ROADMAP's motivating
//!   case), the default queue-pressure autoscaler must cut provisioned
//!   GPU-seconds below the fixed 12-GPU testbed while improving both
//!   average and p95 latency — the elasticity claim `fig_autoscale`
//!   reports.

use gfaas_bench::{paper_policy_specs, run_configured_on_trace, REPORT_SEEDS};
use gfaas_core::{AutoscaleSpec, Cluster, ClusterConfig, Policy, PolicySpec};
use gfaas_models::ModelRegistry;
use gfaas_workload::{registry, scenario::find, Scale};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation + determinism + bounds over every smoke scenario.
    #[test]
    fn autoscaled_smoke_runs_conserve_requests_and_respect_bounds(
        seed in any::<u64>(),
        policy_idx in 0usize..3,
    ) {
        let scale = Scale::smoke();
        let spec: AutoscaleSpec = "queue:min=2,max=6,up=4,down=1,cadence=2".parse().unwrap();
        let policy = paper_policy_specs()[policy_idx].clone();
        for sc in registry() {
            let trace = sc.trace(&scale, seed);
            let run = || {
                let mut cfg = ClusterConfig::paper_testbed(policy.clone());
                cfg.num_gpus = 4; // initial fleet inside the band
                cfg.autoscale = Some(spec.clone());
                let mut cluster = Cluster::new(cfg, ModelRegistry::table1());
                let metrics = cluster.run(&trace);
                let bounds = cluster.online_bounds();
                (metrics, bounds)
            };
            let (m1, bounds1) = run();
            let (m2, bounds2) = run();
            prop_assert_eq!(
                m1.completed as usize,
                trace.len(),
                "{} seed {}: requests dropped or double-dispatched",
                sc.name,
                seed
            );
            prop_assert_eq!(&m1, &m2, "{} seed {}: not deterministic", sc.name, seed);
            prop_assert_eq!(bounds1, bounds2);
            let (low, high) = bounds1;
            prop_assert!(
                (2..=6).contains(&low) && (2..=6).contains(&high) && low <= high,
                "{} seed {}: fleet left the [2, 6] band: ({low}, {high})",
                sc.name,
                seed
            );
            prop_assert!(m1.gpu_seconds_provisioned > 0.0);
        }
    }
}

/// The acceptance bar for the elasticity claim: on `diurnal` at paper
/// scale over the report seeds, the default queue-pressure autoscaler
/// must beat the fixed testbed on all three axes at once — fewer
/// provisioned GPU-seconds (seed mean), and equal-or-better average and
/// p95 latency (every seed).
#[test]
fn diurnal_autoscaling_cuts_gpu_seconds_at_equal_or_better_latency() {
    let scale = Scale::paper();
    let scenario = find("diurnal").expect("diurnal scenario registered");
    let policy: PolicySpec = Policy::lalbo3().into();
    let replacement = PolicySpec::bare("lru");
    let autoscale = AutoscaleSpec::default();

    let (mut fixed_gpu_s, mut auto_gpu_s) = (0.0f64, 0.0f64);
    let mut scale_events = 0u64;
    for &seed in &REPORT_SEEDS {
        let trace = scenario.trace(&scale, seed);
        let fixed = run_configured_on_trace(&policy, &replacement, None, &trace);
        let auto = run_configured_on_trace(&policy, &replacement, Some(&autoscale), &trace);
        assert_eq!(auto.completed, fixed.completed, "seed {seed}");
        assert!(
            auto.avg_latency_secs <= fixed.avg_latency_secs,
            "seed {seed}: avg {} vs fixed {}",
            auto.avg_latency_secs,
            fixed.avg_latency_secs
        );
        assert!(
            auto.p95_latency_secs <= fixed.p95_latency_secs,
            "seed {seed}: p95 {} vs fixed {}",
            auto.p95_latency_secs,
            fixed.p95_latency_secs
        );
        fixed_gpu_s += fixed.gpu_seconds_provisioned;
        auto_gpu_s += auto.gpu_seconds_provisioned;
        scale_events += auto.scale_up_events + auto.scale_down_events;
    }
    assert!(
        auto_gpu_s < fixed_gpu_s,
        "elasticity must cut provisioned GPU-seconds: {auto_gpu_s} vs {fixed_gpu_s}"
    );
    assert!(scale_events > 0, "the sinusoid must trigger scale events");
}
