//! Exercises the runtime invariant sanitizer (`gfaas_core::simcheck`)
//! end to end. Compiled only with `--features simcheck`; the checks
//! themselves are assertions inside the cluster event loop, so these
//! tests "pass" by running representative configurations to completion
//! — a conservation or capacity violation panics with the failing
//! quantity, and the queue-integral mirror is compared to the published
//! `avg_queue_depth` bit for bit at the end of every run.
//!
//! The byte-identity half of the contract (a `simcheck` build reports
//! the same metrics as a default build) cannot be tested in one process
//! — the feature is compile-time — so CI diffs a smoke-report run under
//! both builds instead.
#![cfg(feature = "simcheck")]

use gfaas_core::{AutoscaleSpec, Cluster, ClusterConfig, Policy};
use gfaas_models::ModelRegistry;
use gfaas_trace::AzureTraceConfig;
use gfaas_workload::scenario::find;
use gfaas_workload::Scale;

#[test]
fn paper_policies_pass_the_sanitizer() {
    for policy in [Policy::lb(), Policy::lalb(), Policy::lalbo3()] {
        let trace = AzureTraceConfig::paper(25, 42).generate();
        let mut cluster = Cluster::new(
            ClusterConfig::paper_testbed(policy),
            ModelRegistry::table1(),
        );
        let m = cluster.run(&trace);
        assert!(m.completed > 0);
    }
}

#[test]
fn elastic_tiered_batched_cell_passes_the_sanitizer() {
    // The densest configuration: autoscaling exercises the ScaleTick
    // audit and drain/crash requeue paths, the tiered store exercises
    // the host-tier capacity check, batching exercises hold-slot
    // accounting in the conservation sum.
    let trace = find("churn")
        .expect("scenario registered")
        .trace(&Scale::smoke(), 11);
    let mut cfg = ClusterConfig::paper_testbed(Policy::lalbo3());
    cfg.autoscale = Some(AutoscaleSpec::default());
    cfg.store = "tiered:host=8G,origin_bw=1G,prefetch=2,hot=4"
        .parse()
        .expect("store spec");
    cfg.batching = "coalesce".parse().expect("batching spec");
    let mut cluster = Cluster::new(cfg, ModelRegistry::table1());
    let m = cluster.run(&trace);
    assert!(m.completed > 0);
}
