//! Property tests for the `gfaas-snap` versioned-state subsystem:
//! rollback must restore the cluster byte-identically, and a
//! checkpointed warm start must reproduce the full run, for *any*
//! workload, pause point, and smoke registry cell — including the
//! batching, autoscaling, and tiered-store variants whose state lives
//! behind the component save/load hooks.
//!
//! The oracle is deterministic replay: a freshly built cluster advanced
//! to the same virtual time must serialize to the same checkpoint bytes
//! as the snapshot-rolled-back (or restored) one. Byte equality of
//! [`Cluster::checkpoint`] is a *deep* comparison — the wire image
//! covers every mutable field, so a single leaked byte anywhere in the
//! cache, batcher, store, autoscaler, RNG, or event queue fails the
//! property.

use gfaas_core::{Cluster, ClusterConfig, Policy};
use gfaas_models::zoo::{Family, ModelSpec};
use gfaas_models::ModelRegistry;
use gfaas_sim::time::SimTime;
use gfaas_trace::{Trace, TraceRequest};
use proptest::prelude::*;

fn toy_registry(n: usize) -> ModelRegistry {
    let specs: Vec<ModelSpec> = (0..n)
        .map(|i| ModelSpec {
            name: Box::leak(format!("m{i}").into_boxed_str()),
            occupancy_mib: 80 + (i as u64 % 5) * 40,
            load_secs: 0.5 + (i % 3) as f64 * 0.5,
            infer_secs_b32: 0.4 + (i % 4) as f64 * 0.3,
            family: Family::ResNet,
        })
        .collect();
    ModelRegistry::from_specs(specs)
}

/// The smoke registry cells: plain LALBO3, plus the batching,
/// autoscaling, and tiered-store layers — separately and stacked.
#[derive(Debug, Clone, Copy)]
enum Cell {
    Plain,
    Batched,
    Autoscaled,
    Tiered,
    Stacked,
}

fn arb_cell() -> impl Strategy<Value = Cell> {
    prop_oneof![
        Just(Cell::Plain),
        Just(Cell::Batched),
        Just(Cell::Autoscaled),
        Just(Cell::Tiered),
        Just(Cell::Stacked),
    ]
}

fn config_of(cell: Cell, gpus: usize, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::test(gpus, 300, Policy::lalbo3());
    cfg.seed = seed;
    let batched = matches!(cell, Cell::Batched | Cell::Stacked);
    let autoscaled = matches!(cell, Cell::Autoscaled | Cell::Stacked);
    let tiered = matches!(cell, Cell::Tiered | Cell::Stacked);
    if batched {
        cfg.batching = "coalesce:max=4,wait=0.05".parse().unwrap();
    }
    if autoscaled {
        cfg.autoscale = Some("queue:min=2,max=4,up=6,down=1".parse().unwrap());
    }
    if tiered {
        cfg.store = "tiered:host=8G,origin_bw=1G,prefetch=2,hot=4"
            .parse()
            .unwrap();
    }
    cfg
}

fn arb_trace(nmodels: u32) -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0u64..8_000u64, 0..nmodels), 8..48).prop_map(|reqs| {
        Trace::new(
            reqs.into_iter()
                .map(|(ms, m)| TraceRequest {
                    at: SimTime::from_micros(ms * 1000),
                    function: m,
                    model: m,
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot → random mutations → rollback lands byte-identically on
    /// the replay oracle: a fresh cluster advanced to the pause point.
    /// The "random mutations" are the simulation itself — advancing the
    /// event loop a random distance touches every journal-managed field
    /// (queues, caches, batches, RNG, autoscaler, store tiers).
    #[test]
    fn rollback_restores_the_replay_oracle_bytes(
        cell in arb_cell(),
        gpus in 2usize..5,
        seed in 0u64..1_000,
        trace in arb_trace(6),
        cut_ms in 200u64..6_000,
        mutate_ms in 100u64..6_000,
    ) {
        let cfg = config_of(cell, gpus, seed);
        let t1 = SimTime::from_micros(cut_ms * 1000);
        let t2 = SimTime::from_micros((cut_ms + mutate_ms) * 1000);

        let mut c = Cluster::new(cfg.clone(), toy_registry(6));
        c.run_until(&trace, t1);
        let id = c.snapshot();
        c.run_until(&trace, t2);
        prop_assert!(c.rollback(id), "a live pin must roll back");

        let mut oracle = Cluster::new(cfg, toy_registry(6));
        oracle.run_until(&trace, t1);
        prop_assert_eq!(
            c.checkpoint(&trace),
            oracle.checkpoint(&trace),
            "rollback must restore the pause-point state byte-identically"
        );
        // And the rolled-back timeline must finish exactly like the
        // never-forked one.
        prop_assert_eq!(c.resume(&trace), oracle.resume(&trace));
    }

    /// Rolling back across a *stack* of pins to the oldest one is as
    /// good as never having taken the younger ones.
    #[test]
    fn rollback_skips_younger_pins_byte_identically(
        cell in arb_cell(),
        seed in 0u64..1_000,
        trace in arb_trace(6),
        cuts in proptest::collection::vec(100u64..3_000, 3),
    ) {
        let cfg = config_of(cell, 3, seed);
        let mut at = 0u64;
        let mut c = Cluster::new(cfg.clone(), toy_registry(6));
        let mut first = None;
        for &step in &cuts {
            at += step;
            c.run_until(&trace, SimTime::from_micros(at * 1000));
            let id = c.snapshot();
            first.get_or_insert(id);
        }
        prop_assert_eq!(c.journal_depth(), 3);
        prop_assert!(c.rollback(first.unwrap()));
        prop_assert_eq!(c.journal_depth(), 1, "younger pins are truncated");

        let mut oracle = Cluster::new(cfg, toy_registry(6));
        oracle.run_until(&trace, SimTime::from_micros(cuts[0] * 1000));
        prop_assert_eq!(c.checkpoint(&trace), oracle.checkpoint(&trace));
    }

    /// A warm start from checkpoint bytes reproduces the full run's
    /// metrics byte-for-byte, wherever the checkpoint was cut.
    #[test]
    fn warm_start_reproduces_the_full_run(
        cell in arb_cell(),
        gpus in 2usize..5,
        seed in 0u64..1_000,
        trace in arb_trace(6),
        cut_ms in 100u64..9_000,
    ) {
        let cfg = config_of(cell, gpus, seed);
        let full = Cluster::new(cfg.clone(), toy_registry(6)).run(&trace);

        let mut paused = Cluster::new(cfg.clone(), toy_registry(6));
        paused.run_until(&trace, SimTime::from_micros(cut_ms * 1000));
        let bytes = paused.checkpoint(&trace);

        let mut warm = Cluster::new(cfg, toy_registry(6));
        warm.restore(&bytes, &trace).expect("own checkpoint restores");
        prop_assert_eq!(
            warm.resume(&trace),
            full,
            "a warm start must be indistinguishable from never pausing"
        );
    }
}
