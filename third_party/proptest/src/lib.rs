//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest the gfaas test-suite uses: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`, ranges / tuples / `Just`
//! as strategies, [`arbitrary::any`], [`collection::vec`], [`prop_oneof!`],
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports its message and case number
//!   but is not minimised;
//! * **deterministic** — the RNG seed is derived from the test name, so a
//!   failure always reproduces (the real crate defaults to random seeds
//!   plus a persistence file).

#![warn(missing_docs)]

pub mod test_runner {
    //! Runner configuration, RNG, and failure plumbing.

    /// How many cases a property test runs, mirroring
    /// `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; the case is retried.
        Reject(String),
        /// A `prop_assert*!` failed; the whole test fails.
        Fail(String),
    }

    /// SplitMix64 generator: deterministic, seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG seeded from `seed`.
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Creates an RNG whose seed is an FNV-1a hash of `name`, so each
        /// property test gets a distinct but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self::new(h)
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0, "empty sampling range");
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike the real crate there is no value tree: `sample` draws a
    /// concrete value directly (no shrinking).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy, used by [`crate::prop_oneof!`].
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Uniform choice between type-erased variants; built by
    /// [`crate::prop_oneof!`].
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `variants`; must be non-empty.
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !variants.is_empty(),
                "prop_oneof! needs at least one variant"
            );
            Self { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.variants.len() as u64) as usize;
            self.variants[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                    (*self.start() as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// The strategy [`any`] returns.
        type Strategy: Strategy<Value = Self>;

        /// The whole-domain strategy for `Self`.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy drawing uniformly from a primitive's whole domain.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    macro_rules! arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = Any<$t>;

                fn arbitrary() -> Any<$t> {
                    Any { _marker: std::marker::PhantomData }
                }
            }
        )*};
    }

    arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = Any<bool>;

        fn arbitrary() -> Any<bool> {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    /// The canonical strategy for `T` (e.g. `any::<u8>()`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec()`], convertible from `usize` and
    /// `Range<usize>` like the real crate's `SizeRange`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]` runner that samples the strategies
/// `config.cases` times and executes the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut case: u32 = 0;
            let mut rejects: u32 = 0;
            while case < config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => case += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(msg)) => {
                        rejects += 1;
                        assert!(
                            rejects < config.cases.saturating_mul(64).max(4096),
                            "`{}`: too many prop_assume! rejections (last: {})",
                            stringify!($name),
                            msg,
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("`{}` failed at case {}: {}", stringify!($name), case, msg);
                    }
                }
            }
        }
    )*};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test; on failure the current
/// case is reported (with its inputs' case number) and the test fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r,
        );
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l,
        );
    }};
}

/// Skips the current case (without failing) when its inputs don't satisfy
/// a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..17, y in 5usize..6) {
            prop_assert!((3..17).contains(&x));
            prop_assert_eq!(y, 5);
        }

        #[test]
        fn tuples_and_vec(pairs in crate::collection::vec((0u64..10, any::<bool>()), 1..20)) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 20);
            for (v, _) in pairs {
                prop_assert!(v < 10);
            }
        }

        #[test]
        fn oneof_and_map_cover_variants(v in prop_oneof![
            Just(0u32),
            (1u32..5).prop_map(|x| x * 10),
        ]) {
            prop_assert!(v == 0 || (10..50).contains(&v));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
