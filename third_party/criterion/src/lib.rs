//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! The build environment has no crates.io access, so this crate implements
//! the API surface the gfaas benches use — `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`, `BenchmarkId`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros — over a simple
//! calibrated wall-clock loop. It reports mean ns/iteration per benchmark;
//! there is no statistical analysis, plotting, or baseline comparison.
//!
//! Like the real crate with `harness = false`, the generated `main`
//! understands being launched by `cargo test` (any `--test`-ish argument):
//! it then runs each routine once, as a smoke test, instead of measuring.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long the measurement loop for one benchmark aims to run.
const TARGET_MEASURE_TIME: Duration = Duration::from_millis(300);

/// The benchmark manager: registered routines run as they are declared.
pub struct Criterion {
    smoke_only: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes "--bench"; `cargo test` passes "--test"
        // (plus possible filters). In test mode we only smoke-run.
        let smoke_only = std::env::args().any(|a| a == "--test");
        Self {
            smoke_only,
            default_sample_size: 100,
        }
    }
}

impl Criterion {
    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.smoke_only, self.default_sample_size, &mut routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count. The measurement budget scales
    /// linearly with it relative to the default of 100, so e.g.
    /// `sample_size(10)` spends a tenth of the default wall-clock on
    /// each benchmark — the same lever the real crate offers for
    /// heavyweight routines.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_one(&full, self.criterion.smoke_only, samples, &mut |b| {
            routine(b, input)
        });
        self
    }

    /// Benchmarks a routine with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.label);
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_one(&full, self.criterion.smoke_only, samples, &mut routine);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: function name plus parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Passed to each routine; [`Bencher::iter`] runs the measured closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `self.iters` times, timing the whole batch.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(id: &str, smoke_only: bool, samples: usize, routine: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // One warm-up/smoke iteration.
    routine(&mut b);
    if smoke_only {
        println!("{id}: ok (smoke)");
        return;
    }
    // Calibrate the batch size so measurement takes ~TARGET_MEASURE_TIME,
    // scaled by the group's sample_size relative to the default of 100.
    let target = TARGET_MEASURE_TIME.mul_f64((samples.max(1) as f64 / 100.0).min(10.0));
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
    b.iters = iters;
    routine(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / iters as f64;
    println!("{id}: {:>12.1} ns/iter ({} iters)", ns, iters);
}

/// Declares a function that runs the listed benchmark targets, mirroring
/// criterion's macro of the same name (simple form only).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion {
            smoke_only: true,
            default_sample_size: 10,
        };
        c.bench_function("t", |b| b.iter(|| calls += 1));
        assert!(calls >= 1);
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::new("ws", 15);
        assert_eq!(id.label, "ws/15");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
