//! Offline stand-in for [`parking_lot`](https://docs.rs/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's ergonomics: `lock()`
//! returns a guard directly (no `Result`), and poisoning is transparently
//! cleared — matching parking_lot, which has no lock poisoning at all.

#![warn(missing_docs)]

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard, TryLockError};

/// A mutual-exclusion primitive; `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock; `read`/`write` never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
