//! Offline stand-in for [`crossbeam`](https://docs.rs/crossbeam).
//!
//! Provides the two pieces gfaas uses:
//!
//! * [`scope`] — scoped threads with crossbeam's signature (the spawn
//!   closure receives the scope, and the outer call returns a
//!   `thread::Result`), implemented over `std::thread::scope`;
//! * [`channel`] — unbounded MPSC channels with crossbeam's non-poisoning
//!   `try_recv`, implemented over `std::sync::mpsc`.

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scoped-thread support mirroring `crossbeam::thread`.
pub mod thread {
    /// A scope handle passed to [`super::scope`]'s closure; spawn borrows
    /// data from the enclosing stack frame through it.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        pub(crate) inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }
}

/// Creates a scope for spawning threads that may borrow from the caller's
/// stack. Returns `Err` (with the panic payload) if any spawned thread —
/// or the closure itself — panicked, like crossbeam.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&thread::Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&thread::Scope { inner: s }))
    }))
}

/// Multi-producer channels mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, never blocking (the channel is unbounded).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Pops the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let mut acc = vec![0u32; 4];
        super::scope(|s| {
            for (i, slot) in acc.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u32 + 1);
            }
        })
        .unwrap();
        assert_eq!(acc, vec![1, 2, 3, 4]);
    }

    #[test]
    fn scope_propagates_panic_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_round_trip() {
        use super::channel::{unbounded, TryRecvError};
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
