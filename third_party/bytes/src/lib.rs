//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) subset of the real API that gfaas uses: a cheaply cloneable,
//! immutable byte buffer. Storage is a shared `Arc<[u8]>`, so `clone` is a
//! reference-count bump exactly like the real `Bytes`.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` from a static slice (copied here; the real crate
    /// borrows, but callers only rely on the value semantics).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self { data: bytes.into() }
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self {
            data: s.as_bytes().into(),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Self { data: b.into() }
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &*self.data == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        &*self.data == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        &*self.data == other.as_bytes()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        iter.into_iter().collect::<Vec<u8>>().into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_semantics() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0], 1);
        let c = a.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn empty_and_debug() {
        assert!(Bytes::new().is_empty());
        assert_eq!(format!("{:?}", Bytes::from_static(b"hi")), "b\"hi\"");
    }
}
