//! Trace containers, statistics, and CSV IO.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

use gfaas_sim::time::SimTime;

/// One invocation in a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRequest {
    /// Arrival time.
    pub at: SimTime,
    /// Function rank in the trace's popularity order (0 = most popular).
    pub function: u32,
    /// The Table I model this function maps to.
    pub model: u32,
}

/// A workload trace, sorted by arrival time.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    requests: Vec<TraceRequest>,
}

/// Summary statistics of a trace (the §V-A1 quantities).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total invocations.
    pub total: usize,
    /// Number of distinct functions (the working set).
    pub working_set: usize,
    /// Number of distinct models referenced.
    pub distinct_models: usize,
    /// Fraction of invocations going to the 15 most popular functions.
    pub top15_share: f64,
    /// Trace duration from first to last arrival.
    pub span_secs: f64,
    /// Invocations per minute, averaged over the span.
    pub rate_per_min: f64,
    /// Burstiness: coefficient of variation (population std dev / mean) of
    /// the per-minute request counts. 0 for a perfectly steady trace (the
    /// paper's normalised 325/min gives ≈0); a homogeneous Poisson process
    /// at rate λ/min gives ≈ 1/√λ; on-off and diurnal arrivals push it
    /// well above that. Under [`Trace::stats`] the window ends at the last
    /// arrival — a trace alone does not know its intended horizon, so
    /// trailing idle minutes are not observed; callers that do know the
    /// horizon (e.g. a scenario registry) should use
    /// [`Trace::stats_with_horizon`], which counts them.
    pub minute_cv: f64,
}

impl Trace {
    /// Builds a trace, sorting requests by arrival time (stable, so equal
    /// timestamps keep generation order).
    pub fn new(mut requests: Vec<TraceRequest>) -> Self {
        requests.sort_by_key(|r| r.at);
        Trace { requests }
    }

    /// The requests, in arrival order.
    pub fn requests(&self) -> &[TraceRequest] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True iff the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Per-function invocation counts, keyed by function rank.
    pub fn function_counts(&self) -> BTreeMap<u32, usize> {
        let mut counts = BTreeMap::new();
        for r in &self.requests {
            *counts.entry(r.function).or_insert(0) += 1;
        }
        counts
    }

    /// The most invoked model (ties broken toward the lower id), if any.
    ///
    /// Model ids are dense small integers, so this counts into a flat
    /// array rather than a map — `Cluster::run` calls it once per cell
    /// and the map version showed up in profiles at million-request
    /// scales.
    pub fn hottest_model(&self) -> Option<u32> {
        let mut counts: Vec<usize> = Vec::new();
        for r in &self.requests {
            let m = r.model as usize;
            if m >= counts.len() {
                counts.resize(m + 1, 0);
            }
            counts[m] += 1;
        }
        let mut best: Option<(u32, usize)> = None;
        for (m, &n) in counts.iter().enumerate() {
            // Strict `>` keeps the first (lowest-id) model on count ties.
            if n > 0 && best.is_none_or(|(_, bn)| n > bn) {
                best = Some((m as u32, n));
            }
        }
        best.map(|(m, _)| m)
    }

    /// Per-minute request counts over the observed window, which ends at
    /// the last arrival (the quantity the paper normalises to 325). When
    /// the intended horizon is known, prefer
    /// [`Trace::minute_counts_with_horizon`] — a trace ending mid-off-phase
    /// otherwise under-counts trailing idle minutes.
    pub fn minute_counts(&self) -> Vec<usize> {
        match self.requests.last() {
            Some(last) => self.minute_counts_with_horizon(last.at.as_secs_f64()),
            None => Vec::new(),
        }
    }

    /// Per-minute request counts over `[0, horizon_secs)`. Minutes after
    /// the last arrival but inside the horizon count as (observed) zeros;
    /// arrivals past the horizon still extend the window so no request is
    /// dropped.
    pub fn minute_counts_with_horizon(&self, horizon_secs: f64) -> Vec<usize> {
        let last_minute = self
            .requests
            .last()
            .map(|r| (r.at.as_secs_f64() / 60.0) as usize + 1);
        let horizon_minutes = (horizon_secs / 60.0).ceil() as usize;
        let minutes = horizon_minutes.max(last_minute.unwrap_or(0));
        if minutes == 0 {
            return Vec::new();
        }
        let mut counts = vec![0usize; minutes];
        for r in &self.requests {
            counts[(r.at.as_secs_f64() / 60.0) as usize] += 1;
        }
        counts
    }

    /// True iff arrival times are nondecreasing — the invariant
    /// [`Trace::new`] establishes and `Cluster::run` depends on. Useful
    /// for validating externally produced or hand-assembled traces.
    pub fn is_sorted_by_arrival(&self) -> bool {
        self.requests.windows(2).all(|w| w[0].at <= w[1].at)
    }

    /// Computes the summary statistics over the observed window (ending at
    /// the last arrival). Use [`Trace::stats_with_horizon`] when the
    /// trace's intended horizon is known.
    pub fn stats(&self) -> TraceStats {
        self.stats_inner(self.minute_counts(), self.span().map(|s| s / 60.0))
    }

    /// Computes the summary statistics horizon-aware: per-minute counts
    /// (and therefore `minute_cv`) cover `[0, horizon_secs)` including
    /// trailing idle minutes, and `rate_per_min` is normalised over the
    /// horizon rather than the first→last-arrival span. This is the
    /// honest burstiness of a generated trace whose arrival process was
    /// sampled over a known horizon — a bursty trace ending mid-off-phase
    /// otherwise understates its own variability.
    pub fn stats_with_horizon(&self, horizon_secs: f64) -> TraceStats {
        let counts = self.minute_counts_with_horizon(horizon_secs);
        // Rate over the actual window (not the whole-minute bin count,
        // which would bias fractional-minute horizons low); arrivals
        // past the horizon extend the window like they extend the bins.
        let window_secs = self
            .requests
            .last()
            .map_or(horizon_secs, |r| horizon_secs.max(r.at.as_secs_f64()));
        let minutes = (window_secs > 0.0).then_some(window_secs / 60.0);
        self.stats_inner(counts, minutes)
    }

    /// First→last arrival span in seconds, `None` when empty.
    fn span(&self) -> Option<f64> {
        match (self.requests.first(), self.requests.last()) {
            (Some(f), Some(l)) => Some(l.at.duration_since(f.at).as_secs_f64()),
            _ => None,
        }
    }

    /// Shared statistics core; `rate_minutes` is the window (in minutes)
    /// the arrival rate is averaged over (`None` ⇒ degenerate window, the
    /// raw total is reported as the rate, matching the span convention).
    fn stats_inner(&self, per_min: Vec<usize>, rate_minutes: Option<f64>) -> TraceStats {
        let total = self.requests.len();
        let counts = self.function_counts();
        let mut by_count: Vec<usize> = counts.values().copied().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        let top15: usize = by_count.iter().take(15).sum();
        let distinct_models = {
            let mut models: Vec<u32> = self.requests.iter().map(|r| r.model).collect();
            models.sort_unstable();
            models.dedup();
            models.len()
        };
        let span_secs = self.span().unwrap_or(0.0);
        let minute_cv = {
            let n = per_min.len() as f64;
            let mean = per_min.iter().sum::<usize>() as f64 / n.max(1.0);
            if per_min.is_empty() || mean == 0.0 {
                0.0
            } else {
                let var = per_min
                    .iter()
                    .map(|&c| {
                        let d = c as f64 - mean;
                        d * d
                    })
                    .sum::<f64>()
                    / n;
                var.sqrt() / mean
            }
        };
        TraceStats {
            total,
            working_set: counts.len(),
            distinct_models,
            top15_share: if total == 0 {
                0.0
            } else {
                top15 as f64 / total as f64
            },
            span_secs,
            rate_per_min: match rate_minutes {
                Some(m) if m > 0.0 => total as f64 / m,
                _ => total as f64,
            },
            minute_cv,
        }
    }

    /// Writes the trace as CSV (`time_secs,function,model`).
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "time_secs,function,model")?;
        for r in &self.requests {
            writeln!(w, "{:.6},{},{}", r.at.as_secs_f64(), r.function, r.model)?;
        }
        Ok(())
    }

    /// Parses a CSV trace written by [`Trace::write_csv`] (or extracted
    /// from the real Azure trace with the same columns).
    pub fn read_csv<R: BufRead>(r: R) -> std::io::Result<Trace> {
        let mut requests = Vec::new();
        for (lineno, line) in r.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || (lineno == 0 && line.starts_with("time_secs")) {
                continue;
            }
            let mut parts = line.split(',');
            let parse_err = |what: &str| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {}: bad {what}: {line}", lineno + 1),
                )
            };
            let secs: f64 = parts
                .next()
                .ok_or_else(|| parse_err("time"))?
                .parse()
                .map_err(|_| parse_err("time"))?;
            let function: u32 = parts
                .next()
                .ok_or_else(|| parse_err("function"))?
                .parse()
                .map_err(|_| parse_err("function"))?;
            let model: u32 = parts
                .next()
                .ok_or_else(|| parse_err("model"))?
                .parse()
                .map_err(|_| parse_err("model"))?;
            requests.push(TraceRequest {
                at: SimTime::from_secs_f64(secs),
                function,
                model,
            });
        }
        Ok(Trace::new(requests))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(s: f64, f: u32, m: u32) -> TraceRequest {
        TraceRequest {
            at: SimTime::from_secs_f64(s),
            function: f,
            model: m,
        }
    }

    #[test]
    fn new_sorts_by_time() {
        let t = Trace::new(vec![req(5.0, 0, 0), req(1.0, 1, 1), req(3.0, 2, 2)]);
        let times: Vec<f64> = t.requests().iter().map(|r| r.at.as_secs_f64()).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn stats_compute_shares() {
        // 3 functions: f0 ×6, f1 ×3, f2 ×1 over 60 s.
        let mut reqs = Vec::new();
        for i in 0..6 {
            reqs.push(req(i as f64, 0, 0));
        }
        for i in 0..3 {
            reqs.push(req(10.0 + i as f64, 1, 1));
        }
        reqs.push(req(60.0, 2, 0));
        let s = Trace::new(reqs).stats();
        assert_eq!(s.total, 10);
        assert_eq!(s.working_set, 3);
        assert_eq!(s.distinct_models, 2);
        assert_eq!(s.top15_share, 1.0); // all functions are within top 15
        assert!((s.span_secs - 60.0).abs() < 1e-9);
        assert!((s.rate_per_min - 10.0).abs() < 1e-9);
    }

    #[test]
    fn minute_counts_bucket_correctly() {
        let t = Trace::new(vec![
            req(0.0, 0, 0),
            req(59.999, 1, 0),
            req(60.0, 2, 0),
            req(125.0, 3, 0),
        ]);
        assert_eq!(t.minute_counts(), vec![2, 1, 1]);
        assert!(Trace::default().minute_counts().is_empty());
    }

    #[test]
    fn hottest_model_majority() {
        let t = Trace::new(vec![req(0.0, 0, 3), req(1.0, 1, 3), req(2.0, 2, 7)]);
        assert_eq!(t.hottest_model(), Some(3));
        assert_eq!(Trace::default().hottest_model(), None);
    }

    #[test]
    fn csv_round_trip() {
        let t = Trace::new(vec![req(0.25, 3, 1), req(1.5, 0, 2), req(59.999999, 7, 0)]);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let parsed = Trace::read_csv(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed.requests(), t.requests());
    }

    #[test]
    fn csv_rejects_garbage() {
        let bad = "time_secs,function,model\nnot-a-number,0,0\n";
        assert!(Trace::read_csv(std::io::BufReader::new(bad.as_bytes())).is_err());
        let short = "1.0,2\n";
        assert!(Trace::read_csv(std::io::BufReader::new(short.as_bytes())).is_err());
    }

    #[test]
    fn csv_skips_header_and_blank_lines() {
        let s = "time_secs,function,model\n\n1.000000,2,3\n\n";
        let t = Trace::read_csv(std::io::BufReader::new(s.as_bytes())).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.requests()[0].function, 2);
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let s = Trace::default().stats();
        assert_eq!(s.total, 0);
        assert_eq!(s.top15_share, 0.0);
        assert_eq!(s.working_set, 0);
        assert_eq!(s.minute_cv, 0.0);
    }

    #[test]
    fn minute_cv_zero_when_steady_positive_when_bursty() {
        // 3 requests in each of 3 minutes → CV 0.
        let steady = Trace::new(
            (0..9)
                .map(|i| req(20.0 * i as f64, i as u32, 0))
                .collect::<Vec<_>>(),
        );
        assert_eq!(steady.minute_counts(), vec![3, 3, 3]);
        assert_eq!(steady.stats().minute_cv, 0.0);

        // Counts [8, 0, 1]: mean 3, std √(38/3) → CV ≈ 1.185.
        let mut reqs: Vec<TraceRequest> = (0..8).map(|i| req(i as f64, i, 0)).collect();
        reqs.push(req(130.0, 9, 0));
        let bursty = Trace::new(reqs);
        assert_eq!(bursty.minute_counts(), vec![8, 0, 1]);
        let cv = bursty.stats().minute_cv;
        assert!((cv - (38.0f64 / 3.0).sqrt() / 3.0).abs() < 1e-12, "cv {cv}");
    }

    #[test]
    fn horizon_counts_include_trailing_idle_minutes() {
        // All 6 requests land in minute 0 of a 3-minute horizon.
        let t = Trace::new((0..6).map(|i| req(i as f64, i, 0)).collect::<Vec<_>>());
        assert_eq!(t.minute_counts(), vec![6]);
        assert_eq!(t.minute_counts_with_horizon(180.0), vec![6, 0, 0]);
        // A fractional horizon rounds up to whole minutes.
        assert_eq!(t.minute_counts_with_horizon(61.0), vec![6, 0]);
        // Arrivals beyond the horizon still extend the window.
        assert_eq!(t.minute_counts_with_horizon(30.0), vec![6]);
        // An empty trace over a known horizon is that many idle minutes.
        assert_eq!(
            Trace::default().minute_counts_with_horizon(120.0),
            vec![0, 0]
        );
        assert!(Trace::default().minute_counts_with_horizon(0.0).is_empty());
    }

    #[test]
    fn stats_with_horizon_sees_the_off_phase() {
        // A burst confined to minute 0 of a 4-minute window: the
        // last-arrival window sees a single steady minute (CV 0), the
        // horizon window sees counts [6, 0, 0, 0] — maximal burstiness.
        let t = Trace::new((0..6).map(|i| req(i as f64, i, 0)).collect::<Vec<_>>());
        assert_eq!(t.stats().minute_cv, 0.0, "horizon-blind stats are steady");
        let s = t.stats_with_horizon(240.0);
        // Counts [6,0,0,0]: mean 1.5, std √(3·1.5² + 4.5²)/2 = √3 · 1.5 /
        // ... population std = sqrt(((6-1.5)² + 3·1.5²)/4) = 2.598.
        assert!(
            (s.minute_cv - 3.0f64.sqrt()).abs() < 1e-12,
            "{}",
            s.minute_cv
        );
        assert!((s.rate_per_min - 1.5).abs() < 1e-12);
        // A fractional-minute horizon normalises over the true window,
        // not the whole-minute bin count: 6 requests / 1.5 min = 4.
        let s90 = t.stats_with_horizon(90.0);
        assert!(
            (s90.rate_per_min - 4.0).abs() < 1e-12,
            "{}",
            s90.rate_per_min
        );
        // Span and per-function shares are unaffected by the horizon.
        assert_eq!(s.span_secs, t.stats().span_secs);
        assert_eq!(s.total, 6);
    }

    #[test]
    fn stats_with_horizon_matches_stats_when_trace_fills_the_window() {
        let t = Trace::new(
            (0..12)
                .map(|i| req(15.0 * i as f64, i % 3, 0))
                .collect::<Vec<_>>(),
        );
        // Last arrival at 165 s → the observed window is 3 minutes either way.
        let a = t.stats();
        let b = t.stats_with_horizon(180.0);
        assert_eq!(a.minute_cv, b.minute_cv);
        assert_eq!(a.total, b.total);
        assert_eq!(a.working_set, b.working_set);
    }

    #[test]
    fn sortedness_helper() {
        assert!(Trace::default().is_sorted_by_arrival());
        let t = Trace::new(vec![req(5.0, 0, 0), req(1.0, 1, 1)]);
        assert!(t.is_sorted_by_arrival());
    }
}
