//! Loader for the *real* Azure Functions per-minute dataset format.
//!
//! Shahrad et al.'s public dataset (`invocations_per_function_md.anon.*`)
//! is CSV with hashed identity columns followed by one column per minute
//! of the day:
//!
//! ```text
//! HashOwner,HashApp,HashFunction,Trigger,1,2,3,…,1440
//! a1b2…,c3d4…,e5f6…,http,0,3,1,…,0
//! ```
//!
//! [`AzureFunctionsDataset::read_csv`] parses that shape (any number of
//! minute columns ≥ 1; duplicate function rows are summed), and the
//! dataset then produces:
//!
//! * [`AzureFunctionsDataset::trace`] — a [`Trace`] replaying the top-N
//!   functions' per-minute counts verbatim (counts placed uniformly at
//!   random within their minute, deterministically per seed), with
//!   function popularity ranks mapped onto Table I models exactly like
//!   the synthetic generator ([`crate::interleaved_model_of`]);
//! * [`AzureFunctionsDataset::per_minute_totals`] — the aggregate
//!   per-minute counts, directly usable as a `gfaas-workload`
//!   `Arrival::Replay` process.
//!
//! The `scenarios` runner registers an `azure_real` scenario when a
//! dataset path is supplied (`--azure-data <csv>`), so real-trace replay
//! slots into the same policy × scenario matrix as the synthetic presets.

use std::collections::BTreeMap;
use std::io::{BufRead, Error, ErrorKind, Result};

use gfaas_sim::rng::DetRng;
use gfaas_sim::time::{SimTime, TICKS_PER_SEC};

use crate::azure::interleaved_model_of;
use crate::trace::{Trace, TraceRequest};

/// One function's row: identity plus per-minute invocation counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionRow {
    /// The hashed identity columns, joined with `/` (owner/app/function).
    pub id: String,
    /// Invocations per minute of the capture window.
    pub per_minute: Vec<u64>,
    /// Total invocations over the window.
    pub total: u64,
}

/// A parsed Azure Functions per-minute invocation dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AzureFunctionsDataset {
    /// Functions sorted by total invocations, descending (popularity rank
    /// order; ties break on the identity string for determinism).
    pub functions: Vec<FunctionRow>,
    /// Number of per-minute columns in the capture window.
    pub minutes: usize,
}

fn malformed(lineno: usize, what: impl std::fmt::Display) -> Error {
    Error::new(
        ErrorKind::InvalidData,
        format!("azure csv line {lineno}: {what}"),
    )
}

impl AzureFunctionsDataset {
    /// Parses the dataset from its CSV form. The header row must contain
    /// the identity columns followed by numeric minute columns named
    /// `1..N` (N ≥ 1); every data row needs a count for each minute.
    /// Duplicate function identities (the real dataset splits some
    /// functions across files) are summed. Malformed headers, short rows,
    /// and non-numeric counts produce `InvalidData` errors naming the
    /// offending line.
    pub fn read_csv<R: BufRead>(r: R) -> Result<AzureFunctionsDataset> {
        let mut lines = r.lines();
        let header = lines
            .next()
            .ok_or_else(|| malformed(1, "empty file (missing header)"))??;
        let columns: Vec<&str> = header.trim().split(',').collect();
        // Minute columns are the numeric tail `1,2,3,…`; everything before
        // the column literally named "1" is function identity.
        let first_minute = columns
            .iter()
            .position(|c| *c == "1")
            .ok_or_else(|| malformed(1, "no minute column named \"1\" in header"))?;
        if first_minute == 0 {
            return Err(malformed(
                1,
                "no identity columns before the minute columns",
            ));
        }
        let minutes = columns.len() - first_minute;
        for (i, c) in columns[first_minute..].iter().enumerate() {
            if c.parse::<usize>() != Ok(i + 1) {
                return Err(malformed(
                    1,
                    format!("minute columns must be 1..{minutes}, got {c:?}"),
                ));
            }
        }

        let mut functions: Vec<FunctionRow> = Vec::new();
        // The real dataset has tens of thousands of rows; an id → index
        // map keeps duplicate merging near-linear instead of O(rows²).
        // A `BTreeMap` keeps the trace crate free of hash-order state
        // (lookup-only here, but determinism is cheaper to prove without
        // `HashMap` at all — see `gfaas-analyze` rule D1).
        let mut index: BTreeMap<String, usize> = BTreeMap::new();
        for (i, line) in lines.enumerate() {
            let lineno = i + 2;
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != columns.len() {
                return Err(malformed(
                    lineno,
                    format!("expected {} fields, got {}", columns.len(), fields.len()),
                ));
            }
            let id = fields[..first_minute].join("/");
            let mut per_minute = Vec::with_capacity(minutes);
            for (m, f) in fields[first_minute..].iter().enumerate() {
                let count: u64 = f.trim().parse().map_err(|_| {
                    malformed(lineno, format!("bad count {f:?} for minute {}", m + 1))
                })?;
                per_minute.push(count);
            }
            match index.get(&id) {
                Some(&at) => {
                    let existing = &mut functions[at];
                    for (a, b) in existing.per_minute.iter_mut().zip(&per_minute) {
                        *a += b;
                    }
                    existing.total += per_minute.iter().sum::<u64>();
                }
                None => {
                    index.insert(id.clone(), functions.len());
                    let total = per_minute.iter().sum();
                    functions.push(FunctionRow {
                        id,
                        per_minute,
                        total,
                    });
                }
            }
        }
        if functions.is_empty() {
            return Err(malformed(2, "dataset has no function rows"));
        }
        functions.sort_by(|a, b| b.total.cmp(&a.total).then(a.id.cmp(&b.id)));
        Ok(AzureFunctionsDataset { functions, minutes })
    }

    /// The capture window in seconds.
    pub fn horizon_secs(&self) -> f64 {
        60.0 * self.minutes as f64
    }

    /// Aggregate invocations per minute across the `working_set` most
    /// popular functions (all of them when `working_set` ≥ the function
    /// count) — the shape usable as a `gfaas-workload` `Arrival::Replay`.
    pub fn per_minute_totals(&self, working_set: usize) -> Vec<usize> {
        let mut totals = vec![0usize; self.minutes];
        for f in self.functions.iter().take(working_set) {
            for (t, &c) in totals.iter_mut().zip(&f.per_minute) {
                *t += c as usize;
            }
        }
        totals
    }

    /// Builds the replay [`Trace`]: the `working_set` most popular
    /// functions keep their real per-minute counts, each invocation
    /// placed uniformly at random within its minute (deterministically
    /// per seed, like the synthetic generator's per-minute shuffle), and
    /// popularity rank `r` maps to Table I model
    /// [`interleaved_model_of`]`(r, num_models)`.
    pub fn trace(&self, working_set: usize, num_models: u32, seed: u64) -> Trace {
        let mut rng = DetRng::new(seed ^ 0xa2e5);
        let mut requests = Vec::new();
        for (rank, f) in self.functions.iter().take(working_set).enumerate() {
            let function = rank as u32;
            let model = interleaved_model_of(function, num_models);
            for (minute, &count) in f.per_minute.iter().enumerate() {
                let start = 60.0 * minute as f64;
                for _ in 0..count {
                    let at = start + rng.range_f64(0.0, 60.0);
                    // Floor to the tick so every instant stays inside its
                    // minute (mirrors `gfaas-workload`'s replay sampler).
                    requests.push(TraceRequest {
                        at: SimTime::from_micros((at * TICKS_PER_SEC as f64) as u64),
                        function,
                        model,
                    });
                }
            }
        }
        Trace::new(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    const SAMPLE: &str = "\
HashOwner,HashApp,HashFunction,Trigger,1,2,3
o1,a1,hot,http,6,0,3
o2,a2,warm,timer,1,2,1
o3,a3,cold,queue,0,1,0
";

    fn parse(s: &str) -> Result<AzureFunctionsDataset> {
        AzureFunctionsDataset::read_csv(BufReader::new(s.as_bytes()))
    }

    #[test]
    fn parses_and_ranks_by_total() {
        let ds = parse(SAMPLE).unwrap();
        assert_eq!(ds.minutes, 3);
        assert_eq!(ds.horizon_secs(), 180.0);
        let ids: Vec<&str> = ds.functions.iter().map(|f| f.id.as_str()).collect();
        assert_eq!(
            ids,
            vec!["o1/a1/hot/http", "o2/a2/warm/timer", "o3/a3/cold/queue"]
        );
        assert_eq!(ds.functions[0].total, 9);
        assert_eq!(ds.functions[0].per_minute, vec![6, 0, 3]);
    }

    #[test]
    fn duplicate_rows_are_summed() {
        let dup = "\
HashOwner,HashApp,HashFunction,Trigger,1,2
o1,a1,f,http,1,2
o1,a1,f,http,3,4
";
        let ds = parse(dup).unwrap();
        assert_eq!(ds.functions.len(), 1);
        assert_eq!(ds.functions[0].per_minute, vec![4, 6]);
        assert_eq!(ds.functions[0].total, 10);
    }

    #[test]
    fn per_minute_totals_respect_the_working_set() {
        let ds = parse(SAMPLE).unwrap();
        assert_eq!(ds.per_minute_totals(3), vec![7, 3, 4]);
        assert_eq!(ds.per_minute_totals(1), vec![6, 0, 3]);
        assert_eq!(ds.per_minute_totals(99), vec![7, 3, 4]);
    }

    #[test]
    fn trace_replays_counts_in_rank_order() {
        let ds = parse(SAMPLE).unwrap();
        let t = ds.trace(2, 22, 7);
        assert_eq!(t.len(), 13, "top-2 functions' 9 + 4 invocations");
        assert!(t.is_sorted_by_arrival());
        // Rank 0 (hot) keeps its per-minute shape.
        let hot: Vec<usize> = {
            let mut counts = vec![0usize; 3];
            for r in t.requests().iter().filter(|r| r.function == 0) {
                counts[(r.at.as_secs_f64() / 60.0) as usize] += 1;
            }
            counts
        };
        assert_eq!(hot, vec![6, 0, 3]);
        // Models follow the interleaved mapping.
        assert!(t
            .requests()
            .iter()
            .all(|r| r.model == interleaved_model_of(r.function, 22)));
        // Deterministic per seed.
        assert_eq!(t.requests(), ds.trace(2, 22, 7).requests());
        assert_ne!(t.requests(), ds.trace(2, 22, 8).requests());
    }

    #[test]
    fn committed_sample_dataset_parses_and_replays() {
        // The sanitised per-minute sample shipped with the crate: 24
        // functions x 60 minutes in the real dataset's column format.
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/data/azure_functions_sample.csv"
        );
        let file = std::fs::File::open(path).expect("committed sample dataset");
        let ds = AzureFunctionsDataset::read_csv(BufReader::new(file)).unwrap();
        assert_eq!(ds.minutes, 60);
        assert_eq!(ds.functions.len(), 24);
        let total: u64 = ds.functions.iter().map(|f| f.total).sum();
        assert_eq!(total, 3218, "sample volume is pinned");
        assert!(
            ds.functions.windows(2).all(|w| w[0].total >= w[1].total),
            "functions rank by total"
        );
        let t = ds.trace(15, 22, 11);
        assert!(t.is_sorted_by_arrival());
        let top15: u64 = ds
            .per_minute_totals(15)
            .iter()
            .map(|&c| c as u64)
            .sum::<u64>();
        assert_eq!(t.len() as u64, top15);
        assert_eq!(t.requests(), ds.trace(15, 22, 11).requests());
    }

    #[test]
    fn malformed_inputs_name_the_line() {
        let cases: [(&str, &str); 5] = [
            ("", "missing header"),
            ("HashOwner,HashApp\n", "no minute column"),
            ("1,2,3\no,a", "no identity columns"),
            ("HashOwner,1,2\no1,5\n", "line 2"),
            ("HashOwner,1,2\no1,5,x\n", "bad count \"x\""),
        ];
        for (input, needle) in cases {
            let err = parse(input).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::InvalidData, "{input:?}");
            assert!(
                err.to_string().contains(needle),
                "{input:?} → {err} (wanted {needle:?})"
            );
        }
        // Header with non-sequential minute columns.
        let err = parse("HashOwner,1,3\no,1,2\n").unwrap_err();
        assert!(err.to_string().contains("minute columns must be"));
        // No data rows at all.
        let err = parse("HashOwner,1,2\n").unwrap_err();
        assert!(err.to_string().contains("no function rows"));
    }
}
