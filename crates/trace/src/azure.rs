//! Synthetic Azure-like workload generation.
//!
//! The generator reproduces the paper's published trace statistics without
//! the (non-redistributable) raw trace:
//!
//! * Popularity follows Zipf(α) over the full 46,413-function population.
//!   α = 1.2176 is calibrated so the top-15 functions carry ≈56% of the
//!   per-minute invocations, matching §V-A1 exactly (α = 1.0 would give
//!   ~29%, α = 1.3 ~66%).
//! * The working set keeps only the `working_set` most popular functions
//!   and renormalises each minute to exactly `requests_per_min` requests
//!   (the paper's 325, sized for its 12-GPU testbed).
//! * Function rank *r* maps to Table I model `r mod num_models` with the
//!   models in size order, which spreads the size classes evenly across
//!   popularity ranks (the paper's "models with different sizes are
//!   distributed evenly in the workload").
//! * Within each minute, invocations are placed uniformly at random
//!   (deterministically, per seed), as in the paper's per-minute shuffle.

use gfaas_sim::rng::DetRng;
use gfaas_sim::time::SimTime;

use crate::trace::{Trace, TraceRequest};

/// Number of unique functions in the real Azure trace.
pub const AZURE_TOTAL_FUNCTIONS: usize = 46_413;
/// Zipf exponent calibrated to the paper's 56% top-15 share: solving
/// `H_15(α) / H_46413(α) = 0.56` numerically gives α ≈ 1.2176.
pub const AZURE_ZIPF_ALPHA: f64 = 1.2176;
/// The paper's normalised request rate.
pub const PAPER_REQUESTS_PER_MIN: usize = 325;
/// The paper's trace horizon in minutes.
pub const PAPER_MINUTES: usize = 6;
/// Default per-minute burstiness (see [`AzureTraceConfig::burstiness`]).
pub const PAPER_BURSTINESS: f64 = 1.0;

/// Configuration for one synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AzureTraceConfig {
    /// Working-set size (the paper sweeps 15 / 25 / 35).
    pub working_set: usize,
    /// Requests per minute after normalisation.
    pub requests_per_min: usize,
    /// Trace length in minutes.
    pub minutes: usize,
    /// Number of models the functions map onto (22 for Table I).
    pub num_models: usize,
    /// Population size the popularity law is defined over.
    pub total_functions: usize,
    /// Zipf exponent.
    pub alpha: f64,
    /// Per-minute burstiness of each function's demand. The real Azure
    /// trace's per-minute composition varies heavily (Shahrad et al. report
    /// highly bursty, timer-driven invocation patterns); the paper keeps
    /// that variation and only rescales each minute's total to 325. We
    /// model it by multiplying each function's weight, per minute, by an
    /// `Exp(1)` sample raised to this power before renormalising:
    /// 0.0 = perfectly steady composition, 1.0 = CV≈1 per-minute demand.
    pub burstiness: f64,
    /// RNG seed; same seed → identical trace.
    pub seed: u64,
}

impl AzureTraceConfig {
    /// The paper's configuration for a given working-set size.
    pub fn paper(working_set: usize, seed: u64) -> Self {
        AzureTraceConfig {
            working_set,
            requests_per_min: PAPER_REQUESTS_PER_MIN,
            minutes: PAPER_MINUTES,
            num_models: 22,
            total_functions: AZURE_TOTAL_FUNCTIONS,
            alpha: AZURE_ZIPF_ALPHA,
            burstiness: PAPER_BURSTINESS,
            seed,
        }
    }

    /// Popularity weights of the working set: the head of the Zipf law over
    /// the full population, renormalised to sum to 1.
    pub fn working_set_weights(&self) -> Vec<f64> {
        assert!(self.working_set > 0, "working set must be nonempty");
        assert!(
            self.working_set <= self.total_functions,
            "working set exceeds population"
        );
        let head: Vec<f64> = (1..=self.working_set)
            .map(|k| 1.0 / (k as f64).powf(self.alpha))
            .collect();
        let sum: f64 = head.iter().sum();
        head.into_iter().map(|w| w / sum).collect()
    }

    /// The model a function rank maps to.
    ///
    /// Table I's models are size-ordered, so a plain `rank % n` would give
    /// the most popular working set exclusively the *smallest* models. The
    /// paper instead "ensures models with different sizes are distributed
    /// evenly in the workload": we interleave the size order
    /// (smallest, largest, 2nd smallest, 2nd largest, …) so that every
    /// working-set prefix spans the full size spectrum.
    pub fn model_of(&self, function: u32) -> u32 {
        interleaved_model_of(function, self.num_models as u32)
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        let weights = self.working_set_weights();
        let mut rng = DetRng::new(self.seed);
        let mut requests = Vec::with_capacity(self.requests_per_min * self.minutes);
        for minute in 0..self.minutes {
            let minute_weights = if self.burstiness > 0.0 {
                // Modulate each function's demand for this minute, then
                // renormalise; apportion() rescales to exactly 325.
                let modulated: Vec<f64> = weights
                    .iter()
                    .map(|&w| w * rng.exponential(1.0).powf(self.burstiness))
                    .collect();
                let total: f64 = modulated.iter().sum();
                modulated.into_iter().map(|w| w / total).collect()
            } else {
                weights.clone()
            };
            let counts = apportion(&minute_weights, self.requests_per_min);
            let minute_start = 60.0 * minute as f64;
            for (rank, &count) in counts.iter().enumerate() {
                for _ in 0..count {
                    let offset = rng.range_f64(0.0, 60.0);
                    requests.push(TraceRequest {
                        at: SimTime::from_secs_f64(minute_start + offset),
                        function: rank as u32,
                        model: self.model_of(rank as u32),
                    });
                }
            }
        }
        Trace::new(requests)
    }

    /// The top-15 share implied by this configuration over the *full*
    /// population (before working-set truncation) — the statistic the
    /// paper quotes for the raw Azure trace.
    pub fn population_top15_share(&self) -> f64 {
        let mut head = 0.0;
        let mut total = 0.0;
        for k in 1..=self.total_functions {
            let w = 1.0 / (k as f64).powf(self.alpha);
            total += w;
            if k <= 15 {
                head += w;
            }
        }
        head / total
    }
}

/// The size-interleaved function-rank → model mapping shared by every
/// workload generator (see [`AzureTraceConfig::model_of`]): slots
/// alternate between the small end and the large end of the size-ordered
/// model list, so any popularity prefix spans the full size spectrum.
/// `num_models` must be nonzero.
pub fn interleaved_model_of(function: u32, num_models: u32) -> u32 {
    assert!(num_models > 0, "need at least one model");
    let slot = function % num_models;
    if slot.is_multiple_of(2) {
        slot / 2 // 0, 1, 2, … from the small end
    } else {
        num_models - 1 - slot / 2 // n-1, n-2, … from the large end
    }
}

/// Largest-remainder apportionment: integer counts proportional to
/// `weights` summing exactly to `total`.
fn apportion(weights: &[f64], total: usize) -> Vec<usize> {
    let mut counts: Vec<usize> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let exact = w * total as f64;
        let floor = exact.floor() as usize;
        counts.push(floor);
        assigned += floor;
        remainders.push((i, exact - floor as f64));
    }
    // Hand out the leftover requests to the largest remainders
    // (deterministic tie-break by rank).
    remainders.sort_by(|a, b| {
        // gfaas-lint: allow(float-ord, remainders are fractional parts in [0 - 1) of finite rates; expect() panics on NaN)
        b.1.partial_cmp(&a.1)
            .expect("finite remainders")
            .then(a.0.cmp(&b.0))
    });
    let mut leftover = total - assigned;
    for &(i, _) in &remainders {
        if leftover == 0 {
            break;
        }
        counts[i] += 1;
        leftover -= 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfaas_sim::rng::Zipf;

    #[test]
    fn calibrated_alpha_gives_paper_top15_share() {
        let cfg = AzureTraceConfig::paper(15, 1);
        let share = cfg.population_top15_share();
        assert!(
            (share - 0.56).abs() < 0.03,
            "top-15 share {share:.3}, paper reports 0.56"
        );
    }

    #[test]
    fn trace_has_exact_volume_and_horizon() {
        for ws in [15, 25, 35] {
            let t = AzureTraceConfig::paper(ws, 7).generate();
            assert_eq!(t.len(), 325 * 6);
            let s = t.stats();
            assert_eq!(s.working_set, ws, "ws {ws}");
            assert!(s.span_secs < 360.0);
            // Each minute holds exactly 325 requests.
            for m in 0..6 {
                let lo = SimTime::from_secs(60 * m);
                let hi = SimTime::from_secs(60 * (m + 1));
                let n = t
                    .requests()
                    .iter()
                    .filter(|r| r.at >= lo && r.at < hi)
                    .count();
                assert_eq!(n, 325, "minute {m} of ws {ws}");
            }
        }
    }

    #[test]
    fn popularity_is_monotone_in_rank_without_burstiness() {
        let mut cfg = AzureTraceConfig::paper(35, 3);
        cfg.burstiness = 0.0;
        let t = cfg.generate();
        let counts = t.function_counts();
        let by_rank: Vec<usize> = (0..35u32).map(|r| counts[&r]).collect();
        for w in by_rank.windows(2) {
            assert!(w[0] >= w[1], "rank counts not monotone: {by_rank:?}");
        }
        // The head dominates: rank 0 well above the tail.
        assert!(by_rank[0] > 10 * by_rank[34]);
    }

    #[test]
    fn burstiness_modulates_minutes_but_preserves_skew() {
        // Default burstiness. Per-minute counts of rank 0 should vary
        // across minutes.
        let t = AzureTraceConfig::paper(35, 3).generate();
        let mut per_min = [0usize; 6];
        for r in t.requests().iter().filter(|r| r.function == 0) {
            per_min[(r.at.as_secs_f64() / 60.0) as usize] += 1;
        }
        let min = per_min.iter().min().unwrap();
        let max = per_min.iter().max().unwrap();
        assert!(
            max > min,
            "burstiness must vary per-minute demand: {per_min:?}"
        );
        // Aggregate skew survives: the top-3 ranks dominate the tail-3.
        let counts = t.function_counts();
        let head: usize = (0..3u32).map(|r| counts[&r]).sum();
        let tail: usize = (32..35u32).map(|r| counts[&r]).sum();
        assert!(head > 5 * tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn model_mapping_spreads_sizes() {
        let cfg = AzureTraceConfig::paper(35, 1);
        // 35 functions over 22 models: models 0..12 are used twice.
        let mut used = [0; 22];
        for f in 0..35u32 {
            used[cfg.model_of(f) as usize] += 1;
        }
        assert!(used.iter().all(|&u| u == 1 || u == 2));
        assert_eq!(used.iter().sum::<i32>(), 35);
        // WS 15 uses 15 distinct models.
        let t = AzureTraceConfig::paper(15, 1).generate();
        assert_eq!(t.stats().distinct_models, 15);
    }

    #[test]
    fn same_seed_same_trace_different_seed_differs() {
        let a = AzureTraceConfig::paper(25, 11).generate();
        let b = AzureTraceConfig::paper(25, 11).generate();
        assert_eq!(a.requests(), b.requests());
        let c = AzureTraceConfig::paper(25, 12).generate();
        assert_ne!(a.requests(), c.requests());
    }

    #[test]
    fn apportion_sums_exactly() {
        let w = [0.5, 0.3, 0.2];
        assert_eq!(apportion(&w, 10), vec![5, 3, 2]);
        let counts = apportion(&[0.334, 0.333, 0.333], 100);
        assert_eq!(counts.iter().sum::<usize>(), 100);
        // Pathological remainders still sum exactly.
        let thirds = apportion(&[1.0 / 3.0; 3], 1);
        assert_eq!(thirds.iter().sum::<usize>(), 1);
    }

    #[test]
    fn weights_sum_to_one_and_decrease() {
        let w = AzureTraceConfig::paper(25, 0).working_set_weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    fn zipf_sampler_consistent_with_weights() {
        // Sanity link between the shared Zipf sampler and our weights.
        let z = Zipf::new(15, AZURE_ZIPF_ALPHA);
        let w = AzureTraceConfig::paper(15, 0).working_set_weights();
        assert_eq!(w.len(), 15);
        for (k, wk) in w.iter().enumerate() {
            assert!((z.pmf(k) - wk).abs() < 1e-9);
        }
    }
}
