//! `gfaas-trace` — workload synthesis matching the paper's Azure trace.
//!
//! The paper evaluates on the Microsoft Azure Functions trace
//! (Shahrad et al., ATC '20): 14 days of per-minute invocation counts for
//! 46,413 functions. It uses the trace through exactly four statistics
//! (§V-A1):
//!
//! 1. extreme popularity skew — the top-15 functions carry 56% of
//!    invocations per minute, every function below the top 15 carries
//!    <0.01% each;
//! 2. a 6-minute horizon;
//! 3. per-minute volume normalised to 325 requests (sized for 12 GPUs);
//! 4. working sets of the 15 / 25 / 35 most popular functions, each mapped
//!    to a Table I model with size classes spread evenly.
//!
//! [`azure::AzureTraceConfig`] synthesises traces that reproduce those
//! statistics from a calibrated Zipf popularity law (the real trace is not
//! redistributable); [`trace::Trace`] carries the result, computes the same
//! statistics back for validation, and round-trips through CSV so a real
//! trace extract can be dropped in instead.

#![warn(missing_docs)]

pub mod azure;
pub mod azure_real;
pub mod trace;

pub use azure::{interleaved_model_of, AzureTraceConfig};
pub use azure_real::AzureFunctionsDataset;
pub use trace::{Trace, TraceRequest, TraceStats};
