//! `gfaas-bench` — the experiment harness.
//!
//! One report binary per table/figure of the paper (see DESIGN.md §4):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1_profiles` | Table I (model occupancy / load / inference) |
//! | `fig4_comparison` | Fig 4a/4b/4c (latency, miss ratio, SM util) |
//! | `fig5_false_miss` | Fig 5 (false-miss ratio) |
//! | `fig6_duplicates` | Fig 6 (hot-model duplicates) |
//! | `fig7_o3_sensitivity` | Fig 7 (O3 limit sweep) |
//! | `ablation_replacement` | §VI replacement-policy discussion |
//! | `ablation_estimation` | finish-time-estimation ablation |
//! | `scenarios` | policy × scenario matrix over the `gfaas-workload` registry |
//!
//! Criterion benches (`cargo bench`) measure the *implementation's* costs:
//! scheduler decision throughput, cache-manager ops, the tensor kernels,
//! and full-experiment wall time.
//!
//! This library holds the shared experiment-running and table-formatting
//! code those binaries use. Policies are named by `gfaas-core` policy
//! specs (`"lalbo3:25"`, `"tinylfu:0.9"`), so anything in the
//! [`PolicyRegistry`](gfaas_core::PolicyRegistry) — including evictors
//! beyond the paper's LRU — can be swept without touching this crate.

use gfaas_core::obs::ledger::Ledger;
use gfaas_core::obs::sampler::TimeSeries;
use gfaas_core::{
    AutoscaleSpec, Cluster, ClusterConfig, Policy, PolicySpec, RecordSpec, RunMetrics, SelfProfile,
    StoreSpec,
};
use gfaas_models::ModelRegistry;
use gfaas_trace::{AzureFunctionsDataset, AzureTraceConfig, Trace, TraceStats};
use gfaas_workload::scenario::NUM_MODELS;
use gfaas_workload::{registry, Scale, Scenario};

/// The working-set sizes the paper sweeps in Figs 4–6.
pub const WORKING_SETS: [usize; 3] = [15, 25, 35];

/// The three schedulers Figs 4–6 compare.
pub fn paper_policies() -> [Policy; 3] {
    [Policy::lb(), Policy::lalb(), Policy::lalbo3()]
}

/// The paper schedulers as policy specs (the suite's default policy axis).
pub fn paper_policy_specs() -> Vec<PolicySpec> {
    paper_policies().map(PolicySpec::from).to_vec()
}

/// Generates the paper's workload for a working-set size and seed.
pub fn paper_trace(working_set: usize, seed: u64) -> Trace {
    AzureTraceConfig::paper(working_set, seed).generate()
}

/// Runs one experiment: the paper testbed (12 GPUs) under `policy` on a
/// working set of `working_set`, with the trace generated from `seed`.
pub fn run_experiment(policy: Policy, working_set: usize, seed: u64) -> RunMetrics {
    let trace = paper_trace(working_set, seed);
    run_on_trace(policy, &trace)
}

/// Runs one experiment on a pre-generated trace.
pub fn run_on_trace(policy: Policy, trace: &Trace) -> RunMetrics {
    run_spec_on_trace(&policy.into(), &PolicySpec::bare("lru"), trace)
}

/// Runs one experiment on a pre-generated trace with explicit scheduler
/// and replacement specs (the registry-keyed path; `run_on_trace` is the
/// enum shorthand for it).
pub fn run_spec_on_trace(
    policy: &PolicySpec,
    replacement: &PolicySpec,
    trace: &Trace,
) -> RunMetrics {
    run_configured_on_trace(policy, replacement, None, trace)
}

/// Runs one experiment on the paper testbed with explicit scheduler and
/// replacement specs plus an optional autoscale spec. With
/// `autoscale: None` the run is the fixed 12-GPU configuration every
/// published number uses; with a spec, the cluster starts at 12 online
/// GPUs (clamped into the spec's band) and scales on queue pressure.
pub fn run_configured_on_trace(
    policy: &PolicySpec,
    replacement: &PolicySpec,
    autoscale: Option<&AutoscaleSpec>,
    trace: &Trace,
) -> RunMetrics {
    run_batched_on_trace(
        policy,
        replacement,
        &PolicySpec::bare("none"),
        autoscale,
        trace,
    )
}

/// The fully configured paper-testbed run: scheduler, replacement, and
/// request-batching specs plus an optional autoscale spec. Batching
/// `none` is the per-request dispatch every published number uses;
/// `coalesce`/`adaptive` engage the `gfaas-core::batching` subsystem.
pub fn run_batched_on_trace(
    policy: &PolicySpec,
    replacement: &PolicySpec,
    batching: &PolicySpec,
    autoscale: Option<&AutoscaleSpec>,
    trace: &Trace,
) -> RunMetrics {
    run_profiled_on_trace(policy, replacement, batching, autoscale, trace).0
}

/// Like [`run_batched_on_trace`], additionally returning the event
/// loop's [`SelfProfile`] (schedule passes, estimator calls, heap peak).
/// The profile counters are always-on integer bumps, so the metrics are
/// byte-identical to the plain entry points.
pub fn run_profiled_on_trace(
    policy: &PolicySpec,
    replacement: &PolicySpec,
    batching: &PolicySpec,
    autoscale: Option<&AutoscaleSpec>,
    trace: &Trace,
) -> (RunMetrics, SelfProfile) {
    run_stored_on_trace(
        policy,
        replacement,
        batching,
        autoscale,
        &StoreSpec::default(),
        trace,
    )
}

/// Like [`run_profiled_on_trace`] with an explicit model-store spec (the
/// `--store` CLI axis). The `flat` default keeps every published number
/// byte-identical; `tiered:…` prices cache-miss loads through the
/// HBM ↔ host ↔ origin hierarchy.
pub fn run_stored_on_trace(
    policy: &PolicySpec,
    replacement: &PolicySpec,
    batching: &PolicySpec,
    autoscale: Option<&AutoscaleSpec>,
    store: &StoreSpec,
    trace: &Trace,
) -> (RunMetrics, SelfProfile) {
    let mut cfg = ClusterConfig::paper_testbed(policy.clone());
    cfg.replacement = replacement.clone();
    cfg.batching = batching.clone();
    cfg.autoscale = autoscale.cloned();
    cfg.store = store.clone();
    let mut cluster = Cluster::new(cfg, ModelRegistry::table1());
    let metrics = cluster.run(trace);
    let profile = cluster.self_profile();
    (metrics, profile)
}

/// Everything one recorded run produces: the usual metrics plus whatever
/// sinks the [`RecordSpec`] attached.
#[derive(Debug, Clone)]
pub struct RecordedRun {
    /// The run's metrics — byte-identical to an unrecorded run on the
    /// same trace and specs.
    pub metrics: RunMetrics,
    /// Per-request lifecycle ledger (`record.ledger`).
    pub ledger: Option<Ledger>,
    /// Perfetto/Chrome trace-event JSON (`record.perfetto`).
    pub perfetto_json: Option<String>,
    /// Sampled time series (`record.sample_secs`).
    pub series: Option<TimeSeries>,
    /// The event loop's self-profile.
    pub profile: SelfProfile,
}

/// Runs one fully configured paper-testbed experiment with the given
/// recorders attached, returning the metrics and every recorded sink.
pub fn run_recorded_on_trace(
    policy: &PolicySpec,
    replacement: &PolicySpec,
    batching: &PolicySpec,
    autoscale: Option<&AutoscaleSpec>,
    record: &RecordSpec,
    trace: &Trace,
) -> RecordedRun {
    run_recorded_stored_on_trace(
        policy,
        replacement,
        batching,
        autoscale,
        &StoreSpec::default(),
        record,
        trace,
    )
}

/// Like [`run_recorded_on_trace`] with an explicit model-store spec.
pub fn run_recorded_stored_on_trace(
    policy: &PolicySpec,
    replacement: &PolicySpec,
    batching: &PolicySpec,
    autoscale: Option<&AutoscaleSpec>,
    store: &StoreSpec,
    record: &RecordSpec,
    trace: &Trace,
) -> RecordedRun {
    let mut cfg = ClusterConfig::paper_testbed(policy.clone());
    cfg.replacement = replacement.clone();
    cfg.batching = batching.clone();
    cfg.autoscale = autoscale.cloned();
    cfg.store = store.clone();
    cfg.record = *record;
    let mut cluster = Cluster::new(cfg, ModelRegistry::table1());
    let metrics = cluster.run(trace);
    RecordedRun {
        metrics,
        ledger: cluster.ledger(),
        perfetto_json: cluster.perfetto_json(),
        series: cluster.time_series(),
        profile: cluster.self_profile(),
    }
}

/// Averages metrics across `seeds` trace realisations (reduces the
/// shuffle-noise in reported numbers; the paper runs real minutes, we can
/// afford replication).
pub fn run_replicated(policy: Policy, working_set: usize, seeds: &[u64]) -> AveragedMetrics {
    let runs: Vec<RunMetrics> = seeds
        .iter()
        .map(|&s| run_experiment(policy, working_set, s))
        .collect();
    AveragedMetrics::from_runs(&runs)
}

/// Seed set used by the report binaries.
pub const REPORT_SEEDS: [u64; 3] = [11, 23, 47];

/// Metrics averaged over several trace realisations.
#[derive(Debug, Clone, PartialEq)]
pub struct AveragedMetrics {
    /// Mean of per-run average latencies (seconds).
    pub avg_latency_secs: f64,
    /// Mean of per-run median latencies (seconds).
    pub p50_latency_secs: f64,
    /// Mean of per-run 95th-percentile latencies (seconds).
    pub p95_latency_secs: f64,
    /// Mean of per-run 99th-percentile latencies (seconds).
    pub p99_latency_secs: f64,
    /// Mean of per-run latency variances.
    pub latency_variance: f64,
    /// Mean miss ratio.
    pub miss_ratio: f64,
    /// Mean false-miss ratio.
    pub false_miss_ratio: f64,
    /// Mean SM utilisation.
    pub sm_utilization: f64,
    /// Mean hot-model duplicates.
    pub avg_duplicates: f64,
    /// Mean makespan (seconds).
    pub makespan_secs: f64,
    /// Mean provisioned GPU-seconds (the autoscaling cost axis; equals
    /// `12 × makespan` for fixed paper-testbed runs).
    pub gpu_seconds_provisioned: f64,
    /// Mean GPUs brought online per run (0 without autoscaling).
    pub scale_up_events: f64,
    /// Mean GPUs drained per run (0 without autoscaling).
    pub scale_down_events: f64,
    /// Mean requests completed per run.
    pub completed: f64,
    /// Mean integrated GPU busy time (uploads + inference), GPU-seconds.
    pub gpu_busy_seconds: f64,
    /// Mean effective batch (coalesced requests per GPU invocation; 1.0
    /// under per-request dispatch).
    pub avg_effective_batch: f64,
    /// Mean requests served by multi-request invocations (0 under
    /// per-request dispatch).
    pub batched_requests: f64,
    /// Number of runs averaged.
    pub runs: usize,
}

impl AveragedMetrics {
    /// Averages a set of runs.
    pub fn from_runs(runs: &[RunMetrics]) -> Self {
        let n = runs.len().max(1) as f64;
        let sum = |f: fn(&RunMetrics) -> f64| runs.iter().map(f).sum::<f64>() / n;
        AveragedMetrics {
            avg_latency_secs: sum(|r| r.avg_latency_secs),
            p50_latency_secs: sum(|r| r.p50_latency_secs),
            p95_latency_secs: sum(|r| r.p95_latency_secs),
            p99_latency_secs: sum(|r| r.p99_latency_secs),
            latency_variance: sum(|r| r.latency_variance),
            miss_ratio: sum(|r| r.miss_ratio),
            false_miss_ratio: sum(|r| r.false_miss_ratio),
            sm_utilization: sum(|r| r.sm_utilization),
            avg_duplicates: sum(|r| r.avg_duplicates),
            makespan_secs: sum(|r| r.makespan_secs),
            gpu_seconds_provisioned: sum(|r| r.gpu_seconds_provisioned),
            scale_up_events: sum(|r| r.scale_up_events as f64),
            scale_down_events: sum(|r| r.scale_down_events as f64),
            completed: sum(|r| r.completed as f64),
            gpu_busy_seconds: sum(|r| r.gpu_busy_seconds),
            avg_effective_batch: sum(|r| r.avg_effective_batch),
            batched_requests: sum(|r| r.batched_requests as f64),
            runs: runs.len(),
        }
    }

    /// Completed requests per provisioned GPU-second (for a fixed fleet
    /// the denominator is `num_gpus × makespan`).
    pub fn requests_per_gpu_second(&self) -> f64 {
        if self.gpu_seconds_provisioned <= 0.0 {
            0.0
        } else {
            self.completed / self.gpu_seconds_provisioned
        }
    }

    /// Completed requests per *busy* GPU-second — service throughput over
    /// the GPU time actually consumed (uploads + inference), the
    /// hardware-cost metric the batching study optimises: coalescing
    /// amortises per-invocation overhead and shares uploads, so each
    /// completed request costs fewer busy seconds.
    pub fn requests_per_busy_gpu_second(&self) -> f64 {
        if self.gpu_busy_seconds <= 0.0 {
            0.0
        } else {
            self.completed / self.gpu_busy_seconds
        }
    }
}

/// A policy × scenario sweep: every registered scenario's trace is
/// generated once per seed, every policy runs on the identical traces,
/// and each cell reports seed-averaged metrics. The whole sweep is a pure
/// function of (scale, policies, replacement, autoscale, seeds).
#[derive(Debug, Clone)]
pub struct ScenarioSuite {
    /// Workload volume (paper / production / smoke).
    pub scale: Scale,
    /// Scenarios to sweep (defaults to the full registry).
    pub scenarios: Vec<Scenario>,
    /// Scheduler specs to compare (defaults to the paper's three).
    pub policies: Vec<PolicySpec>,
    /// Replacement spec every cell runs under (default `lru`; set
    /// `"tinylfu"` etc. to sweep a different evictor).
    pub replacement: PolicySpec,
    /// Request-batching spec every cell runs under (default `none`, the
    /// per-request dispatch of every published number; `coalesce` /
    /// `adaptive` engage dynamic batching).
    pub batching: PolicySpec,
    /// Elastic-capacity spec every cell runs under (`None`, the default,
    /// is the paper's fixed 12-GPU testbed).
    pub autoscale: Option<AutoscaleSpec>,
    /// Model-store spec every cell runs under (default `flat`, the
    /// uniform load times of every published number; `tiered:…` prices
    /// loads through the HBM ↔ host ↔ origin hierarchy).
    pub store: StoreSpec,
    /// A real Azure Functions per-minute dataset: when set, the sweep
    /// registers an extra `azure_real` scenario replaying the dataset's
    /// top `scale.working_set` functions verbatim (the `scenarios` CLI
    /// loads one with `--azure-data <csv>`). Replay is deterministic per
    /// seed, so the seed axis still averages placement noise.
    pub azure_real: Option<AzureFunctionsDataset>,
    /// Trace realisations to average over.
    pub seeds: Vec<u64>,
    /// Worker threads for the policy × scenario cells (the `--threads N`
    /// CLI axis). Cells are pure functions of their inputs and are
    /// written into pre-indexed slots, so the report is byte-identical
    /// for every thread count; `1` (the default) runs in place without
    /// spawning.
    pub threads: usize,
}

/// One cell of the policy × scenario matrix.
#[derive(Debug, Clone)]
pub struct SuiteCell {
    /// Scenario registry name.
    pub scenario: &'static str,
    /// The scheduler spec this cell ran.
    pub policy: PolicySpec,
    /// The scheduler's display name (`LB` / `LALB` / `LALBO3` / …).
    pub policy_name: String,
    /// Seed-averaged metrics.
    pub metrics: AveragedMetrics,
}

/// The output of one suite sweep: per-scenario workload shapes plus the
/// full policy × scenario matrix.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Workload shape of each scenario's first-seed realisation, in
    /// registry order.
    pub scenario_stats: Vec<(&'static str, TraceStats)>,
    /// Matrix cells, scenario-major in registry order, policies in the
    /// order configured.
    pub cells: Vec<SuiteCell>,
}

impl ScenarioSuite {
    /// The full registry × paper policies at the given scale and seeds.
    pub fn new(scale: Scale, seeds: Vec<u64>) -> Self {
        ScenarioSuite {
            scale,
            scenarios: registry(),
            policies: paper_policy_specs(),
            replacement: PolicySpec::bare("lru"),
            batching: PolicySpec::bare("none"),
            autoscale: None,
            store: StoreSpec::default(),
            azure_real: None,
            seeds,
            threads: 1,
        }
    }

    /// The default suite: paper scale, the report binaries' seed set — the
    /// configuration whose `paper` rows match `fig4_comparison` (WS 25).
    pub fn paper_default() -> Self {
        ScenarioSuite::new(Scale::paper(), REPORT_SEEDS.to_vec())
    }

    /// CI configuration: one seed, the shortest horizon.
    pub fn smoke() -> Self {
        ScenarioSuite::new(Scale::smoke(), vec![REPORT_SEEDS[0]])
    }

    /// True iff this suite is `paper_default()` unmodified — the
    /// configuration whose `paper` rows are byte-identical to
    /// `fig4_comparison`'s WS 25 numbers.
    pub fn is_paper_default(&self) -> bool {
        self.scale == Scale::paper()
            && self.seeds == REPORT_SEEDS
            && self.policies == paper_policy_specs()
            && self.replacement == PolicySpec::bare("lru")
            && self.batching == PolicySpec::bare("none")
            && self.autoscale.is_none()
            && self.store.is_flat()
            && self.azure_real.is_none()
            && self.scenarios.len() == registry().len()
    }

    /// Runs the sweep. Each scenario's traces are generated once per seed
    /// and shared by every policy cell and the report's shape table, so
    /// all cells of a row see identical workloads.
    ///
    /// # Panics
    /// If a policy or replacement spec does not resolve in the builtin
    /// registry (the binaries validate specs before building a suite).
    pub fn run(&self) -> SuiteReport {
        let policy_names: Vec<String> = {
            let reg = gfaas_core::PolicyRegistry::builtin();
            self.policies
                .iter()
                .map(|p| {
                    reg.scheduler_name(p)
                        .unwrap_or_else(|e| panic!("bad policy spec {p}: {e}"))
                })
                .collect()
        };
        // `GFAAS_TIMING=1` prints a wall-clock decomposition (trace
        // generation vs each policy cell) plus each cell's structured
        // event-loop self-profile ([`SelfProfile`]: schedule passes,
        // estimator calls, heap peak, merged across seeds) to stderr;
        // stdout reports are unaffected.
        let timing = std::env::var_os("GFAAS_TIMING").is_some();
        let t0 = std::time::Instant::now();
        // Registry scenarios first, then — when a dataset is supplied —
        // the `azure_real` replay row on the same policy axis.
        let mut rows: Vec<(&'static str, Vec<Trace>, f64)> = self
            .scenarios
            .iter()
            .map(|sc| {
                let traces: Vec<Trace> = self
                    .seeds
                    .iter()
                    .map(|&s| sc.trace(&self.scale, s))
                    .collect();
                (sc.name, traces, self.scale.horizon_secs())
            })
            .collect();
        if let Some(ds) = &self.azure_real {
            let traces: Vec<Trace> = self
                .seeds
                .iter()
                .map(|&s| ds.trace(self.scale.working_set, NUM_MODELS, s))
                .collect();
            rows.push(("azure_real", traces, ds.horizon_secs()));
        }
        if timing {
            eprintln!("[timing] trace generation: {:?}", t0.elapsed());
        }
        let mut scenario_stats = Vec::with_capacity(rows.len());
        for (name, traces, horizon) in &rows {
            if let Some(first) = traces.first() {
                // Horizon-aware: the registry knows each scenario's
                // intended horizon, so trailing idle minutes (e.g. a
                // diurnal trough ending the trace) count toward burstiness
                // instead of being silently dropped.
                scenario_stats.push((*name, first.stats_with_horizon(*horizon)));
            }
        }
        // Every cell is a pure function of (row, policy); compute them
        // scenario-major into pre-indexed slots so the report is
        // byte-identical no matter how many workers ran.
        let jobs: Vec<(usize, usize)> = (0..rows.len())
            .flat_map(|r| (0..self.policies.len()).map(move |p| (r, p)))
            .collect();
        let compute = |&(r, p): &(usize, usize)| -> SuiteCell {
            let (name, traces, _) = &rows[r];
            let policy = &self.policies[p];
            let tc = std::time::Instant::now();
            let mut profile = SelfProfile::default();
            let runs: Vec<RunMetrics> = traces
                .iter()
                .map(|t| {
                    let (m, p) = run_stored_on_trace(
                        policy,
                        &self.replacement,
                        &self.batching,
                        self.autoscale.as_ref(),
                        &self.store,
                        t,
                    );
                    profile.merge(&p);
                    m
                })
                .collect();
            if timing {
                eprintln!("[timing] cell {name}/{policy}: {:?}", tc.elapsed());
                eprintln!("[profile] cell {name}/{policy}: {profile}");
            }
            SuiteCell {
                scenario: name,
                policy: policy.clone(),
                policy_name: policy_names[p].clone(),
                metrics: AveragedMetrics::from_runs(&runs),
            }
        };
        let workers = self.threads.max(1).min(jobs.len().max(1));
        let cells: Vec<SuiteCell> = if workers <= 1 {
            jobs.iter().map(compute).collect()
        } else {
            let mut slots: Vec<Option<SuiteCell>> = vec![None; jobs.len()];
            let compute = &compute;
            let jobs = &jobs;
            let done: Vec<Vec<(usize, SuiteCell)>> = crossbeam::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        s.spawn(move |_| {
                            jobs.iter()
                                .enumerate()
                                .skip(w)
                                .step_by(workers)
                                .map(|(j, job)| (j, compute(job)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("suite worker panicked"))
                    .collect()
            })
            .expect("suite worker panicked");
            for (j, cell) in done.into_iter().flatten() {
                slots[j] = Some(cell);
            }
            slots
                .into_iter()
                .map(|c| c.expect("every cell computed exactly once"))
                .collect()
        };
        SuiteReport {
            scenario_stats,
            cells,
        }
    }
}

/// Which [`gfaas_core::PolicyRegistry`] namespace a CLI spec names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// A scheduler spec (`lb`, `lalbo3:25`, …).
    Scheduler,
    /// An evictor spec (`lru`, `tinylfu:0.9`, …).
    Evictor,
    /// A request-batching spec (`none`, `coalesce:max=8,wait=0.05`, …).
    Batcher,
    /// A model-store spec (`flat`, `tiered:host=64G,origin_bw=2G`, …).
    Store,
}

/// Parses a CLI-facing policy spec and validates it against the builtin
/// registry, returning a ready-to-print error message (including the
/// known keys) on failure. Shared by the `gfaas` and `scenarios`
/// binaries so spec grammar and diagnostics stay in one place.
pub fn parse_cli_spec(s: &str, kind: SpecKind) -> Result<PolicySpec, String> {
    let reg = gfaas_core::PolicyRegistry::builtin();
    let spec = PolicySpec::parse(s).map_err(|e| e.to_string())?;
    match kind {
        SpecKind::Scheduler => reg
            .scheduler(&spec)
            .map(drop)
            .map_err(|e| format!("{e} (known: {:?})", reg.scheduler_keys()))?,
        SpecKind::Evictor => reg
            .evictor(&spec, 0)
            .map(drop)
            .map_err(|e| format!("{e} (known: {:?})", reg.evictor_keys()))?,
        SpecKind::Batcher => reg
            .batcher(&spec)
            .map(drop)
            .map_err(|e| format!("{e} (known: {:?})", reg.batcher_keys()))?,
        SpecKind::Store => reg
            .store(&spec)
            .map(drop)
            .map_err(|e| format!("{e} (known: {:?})", reg.store_keys()))?,
    }
    Ok(spec)
}

/// Parses and validates a CLI-facing `--store` spec, returning the
/// typed [`StoreSpec`] the cluster config carries. Validation runs
/// through the builtin registry so diagnostics list the known backends.
pub fn parse_cli_store(s: &str) -> Result<StoreSpec, String> {
    parse_cli_spec(s, SpecKind::Store)?;
    s.parse::<StoreSpec>().map_err(|e| e.to_string())
}

/// Relative reduction `(base - ours) / base`, formatted as the paper
/// quotes it ("reduces X by NN%").
pub fn reduction_pct(base: f64, ours: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (base - ours) / base * 100.0
    }
}

/// Fixed-width table printer for the report binaries.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// A printer with the given column widths.
    pub fn new(widths: &[usize]) -> Self {
        TablePrinter {
            widths: widths.to_vec(),
        }
    }

    /// Formats one row.
    pub fn row(&self, cells: &[String]) -> String {
        cells
            .iter()
            .zip(&self.widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    }

    /// Formats a header row plus separator.
    pub fn header(&self, cells: &[&str]) -> String {
        let head = self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
        let sep = "-".repeat(head.len());
        format!("{head}\n{sep}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_pct_matches_paper_convention() {
        assert!((reduction_pct(10.0, 2.0) - 80.0).abs() < 1e-9);
        assert_eq!(reduction_pct(0.0, 1.0), 0.0);
    }

    #[test]
    fn averaged_metrics_mean_runs() {
        let a = run_experiment(Policy::lalbo3(), 15, 1);
        let b = a.clone();
        let avg = AveragedMetrics::from_runs(&[a.clone(), b]);
        assert_eq!(avg.runs, 2);
        assert!((avg.avg_latency_secs - a.avg_latency_secs).abs() < 1e-12);
    }

    #[test]
    fn suite_paper_rows_match_fig4_pipeline() {
        // The acceptance bar for the scenario runner: its `paper` cells
        // must reproduce the numbers the existing fig4 pipeline prints
        // for WS 25 — same traces, same cluster, bit-equal metrics.
        let mut suite = ScenarioSuite::paper_default();
        suite.scenarios.retain(|s| s.name == "paper");
        suite.policies = vec![Policy::lalb().into()];
        let report = suite.run();
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].policy_name, "LALB");
        let via_fig4 = run_replicated(Policy::lalb(), 25, &REPORT_SEEDS);
        assert_eq!(report.cells[0].metrics, via_fig4);
    }

    #[test]
    fn smoke_suite_is_deterministic_and_full() {
        let suite = ScenarioSuite::smoke();
        let a = suite.run();
        let b = suite.run();
        assert_eq!(a.cells.len(), 6 * 3, "6 scenarios x 3 policies");
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.scenario, y.scenario);
            assert_eq!(x.policy, y.policy);
            assert_eq!(x.metrics, y.metrics);
            assert!(x.metrics.avg_latency_secs > 0.0, "{}", x.scenario);
        }
        assert_eq!(a.scenario_stats.len(), 6);
        // The shape table reports the same trace the cells ran.
        assert!(a
            .scenario_stats
            .iter()
            .all(|(_, s)| s.total > 0 && s.minute_cv >= 0.0));
    }

    #[test]
    fn parallel_sweep_matches_single_thread_exactly() {
        // The crossbeam fan-out must be invisible in the output: cells
        // are compared field-for-field (bit-equal metrics), not
        // approximately. Together with the debug_assert oracle inside
        // `estimated_wait_fast` (incremental aggregate vs naive
        // recompute, checked on every query in debug builds), this pins
        // the refactor's two invariants — worker count never changes a
        // byte, and the indexed state never drifts from the ground truth.
        let single = ScenarioSuite::smoke();
        let mut multi = ScenarioSuite::smoke();
        multi.threads = 4;
        let a = single.run();
        let b = multi.run();
        assert_eq!(a.scenario_stats, b.scenario_stats);
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.scenario, y.scenario);
            assert_eq!(x.policy, y.policy);
            assert_eq!(x.policy_name, y.policy_name);
            assert_eq!(x.metrics, y.metrics, "{}/{}", x.scenario, x.policy_name);
        }
    }

    #[test]
    fn paper_default_detection() {
        assert!(ScenarioSuite::paper_default().is_paper_default());
        let mut s = ScenarioSuite::paper_default();
        s.replacement = PolicySpec::bare("tinylfu");
        assert!(!s.is_paper_default());
        let mut s = ScenarioSuite::paper_default();
        s.autoscale = Some(AutoscaleSpec::default());
        assert!(!s.is_paper_default());
        let mut s = ScenarioSuite::paper_default();
        s.policies = vec![Policy::lalbo3().into()];
        assert!(!s.is_paper_default());
        let mut s = ScenarioSuite::paper_default();
        s.store = "tiered:host=8G".parse().unwrap();
        assert!(!s.is_paper_default());
        assert!(!ScenarioSuite::smoke().is_paper_default());
    }

    #[test]
    fn store_specs_parse_and_validate_via_cli_helper() {
        assert!(parse_cli_store("flat").unwrap().is_flat());
        let tiered = parse_cli_store("tiered:host=8G,origin_bw=2G").unwrap();
        assert!(!tiered.is_flat());
        assert_eq!(tiered.host_bytes, 8 * 1024 * 1024 * 1024);
        let err = parse_cli_store("s3").unwrap_err();
        assert!(
            err.contains("flat"),
            "diagnostic lists known backends: {err}"
        );
        assert!(parse_cli_store("tiered:wat=1").is_err());
    }

    #[test]
    fn autoscaled_suite_is_deterministic_and_reports_scale_activity() {
        let mut suite = ScenarioSuite::smoke();
        suite.scenarios.retain(|s| s.name == "diurnal");
        suite.policies = vec![Policy::lalbo3().into()];
        suite.autoscale = Some("queue:min=2,max=8,up=6,down=1,cadence=2".parse().unwrap());
        let a = suite.run();
        let b = suite.run();
        assert_eq!(a.cells.len(), 1);
        let m = &a.cells[0].metrics;
        assert_eq!(m, &b.cells[0].metrics, "autoscaled sweeps are seeded");
        assert!(m.gpu_seconds_provisioned > 0.0);
        // The elastic fleet must not bill the full 12-GPU testbed for the
        // whole makespan (the smoke diurnal load needs nowhere near it).
        assert!(m.gpu_seconds_provisioned < 12.0 * m.makespan_secs);
        assert!(m.scale_down_events > 0.0, "quiet smoke load must shed GPUs");
    }

    #[test]
    fn spec_and_enum_paths_agree_on_a_trace() {
        let trace = paper_trace(15, 7);
        let via_enum = run_on_trace(Policy::lalbo3(), &trace);
        let via_spec = run_spec_on_trace(
            &"lalbo3:25".parse().unwrap(),
            &"lru".parse().unwrap(),
            &trace,
        );
        assert_eq!(via_enum, via_spec);
    }

    #[test]
    fn table_printer_alignment() {
        let t = TablePrinter::new(&[5, 8]);
        let r = t.row(&["ab".into(), "1.23".into()]);
        assert_eq!(r, "   ab      1.23");
    }
}
