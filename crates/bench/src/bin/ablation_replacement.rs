//! Ablation (§VI "Cache Replacement Policy"): LRU vs FIFO vs random
//! eviction under LALB+O3.
//!
//! The paper argues its design "can easily support other cache replacement
//! policies" and that locality-aware scheduling helps regardless of the
//! policy. This ablation quantifies both claims: every policy benefits
//! from LALB+O3 over LB, and LRU retains an edge because the hot models'
//! recency tracks their popularity.
//!
//! ```text
//! cargo run --release -p gfaas-bench --bin ablation_replacement
//! ```

use gfaas_bench::{paper_trace, TablePrinter, REPORT_SEEDS, WORKING_SETS};
use gfaas_core::{Cluster, ClusterConfig, Policy, ReplacementPolicy};
use gfaas_models::ModelRegistry;

fn run(policy: Policy, replacement: ReplacementPolicy, ws: usize) -> (f64, f64) {
    let mut lat = 0.0;
    let mut miss = 0.0;
    for &s in &REPORT_SEEDS {
        let mut cfg = ClusterConfig::paper_testbed(policy);
        cfg.replacement = replacement;
        let m = Cluster::new(cfg, ModelRegistry::table1()).run(&paper_trace(ws, s));
        lat += m.avg_latency_secs;
        miss += m.miss_ratio;
    }
    let n = REPORT_SEEDS.len() as f64;
    (lat / n, miss / n)
}

fn main() {
    println!("Ablation — cache replacement policy under LB and LALBO3\n");
    let t = TablePrinter::new(&[4, 8, 8, 12, 12]);
    println!(
        "{}",
        t.header(&["WS", "sched", "repl", "avg_lat(s)", "miss_ratio"])
    );
    for ws in WORKING_SETS {
        for policy in [Policy::lb(), Policy::lalbo3()] {
            for repl in [
                ReplacementPolicy::Lru,
                ReplacementPolicy::Fifo,
                ReplacementPolicy::Random,
            ] {
                let (lat, miss) = run(policy, repl, ws);
                println!(
                    "{}",
                    t.row(&[
                        ws.to_string(),
                        policy.name(),
                        format!("{repl:?}"),
                        format!("{lat:.2}"),
                        format!("{miss:.3}"),
                    ])
                );
            }
        }
        println!();
    }
    println!("Expected shape: LALBO3 beats LB under every replacement policy;");
    println!("LRU ≤ FIFO ≤ Random in miss ratio under locality-aware scheduling.");
}
