//! Ablation (§VI "Cache Replacement Policy"): LRU vs FIFO vs random vs
//! TinyLFU eviction under LB and LALB+O3.
//!
//! The paper argues its design "can easily support other cache replacement
//! policies" and that locality-aware scheduling helps regardless of the
//! policy. This ablation quantifies both claims: every policy benefits
//! from LALB+O3 over LB, and LRU retains an edge on the *static* paper
//! trace because the hot models' recency tracks their popularity (the
//! frequency-decay TinyLFU row pays off under the drifting workloads of
//! the `scenarios` matrix instead — see `scenarios --replacement tinylfu`).
//!
//! ```text
//! cargo run --release -p gfaas-bench --bin ablation_replacement
//! ```

use gfaas_bench::{paper_trace, run_spec_on_trace, TablePrinter, REPORT_SEEDS, WORKING_SETS};
use gfaas_core::PolicySpec;

fn run(policy: &PolicySpec, replacement: &PolicySpec, ws: usize) -> (f64, f64) {
    let mut lat = 0.0;
    let mut miss = 0.0;
    for &s in &REPORT_SEEDS {
        let m = run_spec_on_trace(policy, replacement, &paper_trace(ws, s));
        lat += m.avg_latency_secs;
        miss += m.miss_ratio;
    }
    let n = REPORT_SEEDS.len() as f64;
    (lat / n, miss / n)
}

fn main() {
    println!("Ablation — cache replacement policy under LB and LALBO3\n");
    let t = TablePrinter::new(&[4, 8, 8, 12, 12]);
    println!(
        "{}",
        t.header(&["WS", "sched", "repl", "avg_lat(s)", "miss_ratio"])
    );
    let spec = |s: &str| PolicySpec::parse(s).expect("builtin spec");
    for ws in WORKING_SETS {
        for (policy, pname) in [(spec("lb"), "LB"), (spec("lalbo3"), "LALBO3")] {
            for repl in ["lru", "fifo", "random", "tinylfu"] {
                let (lat, miss) = run(&policy, &spec(repl), ws);
                println!(
                    "{}",
                    t.row(&[
                        ws.to_string(),
                        pname.to_string(),
                        repl.to_string(),
                        format!("{lat:.2}"),
                        format!("{miss:.3}"),
                    ])
                );
            }
        }
        println!();
    }
    println!("Expected shape: LALBO3 beats LB under every replacement policy;");
    println!("LRU ≤ FIFO ≤ Random in miss ratio under locality-aware scheduling.");
}
