//! A fully recorded single-cell run: lifecycle ledger, Perfetto trace,
//! and sampled time series for one scenario/policy/seed — the
//! observability layer's demo and its own CI gate.
//!
//! ```text
//! cargo run --release -p gfaas-bench --bin fig_timeline                 # flash_crowd / lalbo3 / seed 11
//! cargo run --release -p gfaas-bench --bin fig_timeline -- --smoke      # CI: smoke scale
//! cargo run --release -p gfaas-bench --bin fig_timeline -- \
//!     --scenario burst --policy lalb --batching adaptive --out /tmp/trace.json
//! ```
//!
//! The run always executes with every recorder attached (`--record all`
//! semantics plus an SLO for miss marking), prints the request-latency
//! decomposition (queued/hold/load/inference — segments that sum exactly
//! to the reported latency), the Algorithm-2 arm breakdown, and the
//! sampler's per-window table, then validates the Perfetto JSON
//! (parseable, monotonic timestamps, balanced begin/end slices) and
//! exits non-zero if the trace is malformed — so running this binary
//! *is* the telemetry smoke test. `--out` keeps the JSON for
//! `ui.perfetto.dev`.

use gfaas_bench::{
    parse_cli_spec, parse_cli_store, run_recorded_stored_on_trace, SpecKind, TablePrinter,
};
use gfaas_core::obs::perfetto::validate_chrome_trace;
use gfaas_core::{PolicySpec, RecordSpec, StoreSpec};
use gfaas_workload::scenario::find;
use gfaas_workload::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: fig_timeline [--smoke] [--scenario NAME] [--policy SPEC] [--batching SPEC]\n\
         \x20                  [--store SPEC] [--seed S] [--sample SECS] [--slo SECS]\n\
         \x20                  [--out FILE] [--ledger-out FILE] [--series-out FILE]"
    );
    std::process::exit(2);
}

fn write_file(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {what} to {path}: {e}");
        std::process::exit(2);
    }
    println!("wrote {what} to {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut scenario = "flash_crowd".to_string();
    let mut policy: Option<PolicySpec> = None;
    let mut batching = PolicySpec::bare("none");
    let mut store = StoreSpec::default();
    let mut seed: u64 = 11;
    let mut sample_secs: f64 = RecordSpec::DEFAULT_SAMPLE_SECS;
    let mut slo_secs: f64 = 10.0;
    let mut out: Option<String> = None;
    let mut ledger_out: Option<String> = None;
    let mut series_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--scenario" => {
                let Some(v) = it.next() else { usage() };
                scenario = v.clone();
            }
            "--policy" => {
                let Some(v) = it.next() else { usage() };
                policy = Some(parse_cli_spec(v, SpecKind::Scheduler).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                }));
            }
            "--batching" => {
                let Some(v) = it.next() else { usage() };
                batching = parse_cli_spec(v, SpecKind::Batcher).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                });
            }
            "--store" => {
                let Some(v) = it.next() else { usage() };
                store = parse_cli_store(v).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                });
            }
            "--seed" => {
                let Some(v) = it.next() else { usage() };
                seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --seed {v:?}");
                    usage();
                });
            }
            "--sample" => {
                let Some(v) = it.next() else { usage() };
                sample_secs = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --sample {v:?}");
                    usage();
                });
            }
            "--slo" => {
                let Some(v) = it.next() else { usage() };
                slo_secs = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --slo {v:?}");
                    usage();
                });
            }
            "--out" => {
                let Some(v) = it.next() else { usage() };
                out = Some(v.clone());
            }
            "--ledger-out" => {
                let Some(v) = it.next() else { usage() };
                ledger_out = Some(v.clone());
            }
            "--series-out" => {
                let Some(v) = it.next() else { usage() };
                series_out = Some(v.clone());
            }
            _ => usage(),
        }
    }
    let policy = policy.unwrap_or_else(|| "lalbo3".parse().expect("builtin spec"));
    let scale = if smoke {
        Scale::smoke()
    } else {
        Scale::paper()
    };
    let sc = find(&scenario).unwrap_or_else(|| {
        eprintln!("unknown scenario {scenario:?}");
        usage();
    });
    // Short smoke horizons would otherwise sample only once at the end.
    if smoke && sample_secs >= RecordSpec::DEFAULT_SAMPLE_SECS {
        sample_secs = 10.0;
    }
    let record = RecordSpec {
        ledger: true,
        perfetto: true,
        sample_secs: Some(sample_secs),
        slo_secs: Some(slo_secs),
    };
    let trace = sc.trace(&scale, seed);
    println!(
        "Timeline — {scenario} / {policy} / batching {} / seed {seed} ({} scale, --record {record})\n",
        batching.key(),
        scale.name
    );

    let run = run_recorded_stored_on_trace(
        &policy,
        &PolicySpec::bare("lru"),
        &batching,
        None,
        &store,
        &record,
        &trace,
    );
    let m = &run.metrics;
    println!(
        "metrics: {} completed, avg {:.3} s, p95 {:.3} s, miss {:.3}, queue avg {:.2}",
        m.completed, m.avg_latency_secs, m.p95_latency_secs, m.miss_ratio, m.avg_queue_depth
    );
    println!("profile: {}\n", run.profile);

    // --- Per-request latency decomposition -----------------------------
    let ledger = run.ledger.expect("ledger recorder attached");
    let seg = ledger.segment_summary();
    println!(
        "lifecycle ledger — {} rows, {} completed, {} SLO misses (slo={slo_secs}s)",
        ledger.rows().len(),
        ledger.completed(),
        ledger.slo_misses()
    );
    println!("  mean segments (s): {seg}");
    // Load-time split by serving tier: where miss uploads were actually
    // fed from. Hits never load, so they carry no tier; under the flat
    // store every load is an origin load by definition.
    {
        let mut tiers: Vec<(String, usize, f64)> = Vec::new();
        for row in ledger.rows().iter().filter(|r| r.completed) {
            let label = match row.tier {
                Some(t) => t.label().into_owned(),
                None => continue,
            };
            match tiers.iter_mut().find(|(l, _, _)| *l == label) {
                Some(e) => {
                    e.1 += 1;
                    e.2 += row.load.as_secs_f64();
                }
                None => tiers.push((label, 1, row.load.as_secs_f64())),
            }
        }
        tiers.sort_by(|a, b| a.0.cmp(&b.0));
        let tier_t = TablePrinter::new(&[12, 10, 12]);
        println!(
            "{}",
            tier_t.header(&["load_tier", "requests", "load_s_sum"])
        );
        for (label, n, secs) in &tiers {
            println!(
                "{}",
                tier_t.row(&[label.clone(), n.to_string(), format!("{secs:.2}")])
            );
        }
    }
    let arm_t = TablePrinter::new(&[12, 10, 8]);
    println!("{}", arm_t.header(&["arm", "requests", "share"]));
    let total = ledger.completed().max(1) as f64;
    for (arm, n) in ledger.arm_counts() {
        println!(
            "{}",
            arm_t.row(&[
                arm.to_string(),
                n.to_string(),
                format!("{:.3}", n as f64 / total),
            ])
        );
    }
    if let Some(path) = &ledger_out {
        write_file(path, &ledger.to_csv(), "lifecycle ledger CSV");
    }
    println!();

    // --- Sampled time series -------------------------------------------
    let series = run.series.expect("sampler recorder attached");
    println!(
        "time series — {} windows at {sample_secs}s cadence",
        series.rows().len()
    );
    let ts_t = TablePrinter::new(&[8, 9, 7, 6, 9, 9, 7, 10]);
    println!(
        "{}",
        ts_t.header(&[
            "t(s)",
            "queue",
            "busy",
            "gpus",
            "arrivals",
            "complete",
            "eff_b",
            "miss_ewma",
        ])
    );
    for row in series.rows() {
        println!(
            "{}",
            ts_t.row(&[
                format!("{:.0}", row.t.as_secs_f64()),
                row.queue_depth.to_string(),
                row.busy.to_string(),
                row.online.to_string(),
                row.arrivals.to_string(),
                row.completions.to_string(),
                format!("{:.2}", row.eff_batch),
                format!("{:.3}", row.miss_ewma),
            ])
        );
    }
    if let Some(path) = &series_out {
        write_file(path, &series.to_csv(), "time-series CSV");
    }
    println!();

    // --- Perfetto trace: always validated; this binary is the CI gate --
    let json = run.perfetto_json.expect("perfetto recorder attached");
    match validate_chrome_trace(&json) {
        Ok(check) => {
            println!(
                "perfetto trace — {} events ({} begin / {} end slices, {} counter samples) \
                 across {} tracks; timestamps monotonic, slices balanced",
                check.events, check.begins, check.ends, check.counters, check.tracks
            );
        }
        Err(e) => {
            eprintln!("perfetto trace INVALID: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = &out {
        write_file(path, &json, "Perfetto trace (open in ui.perfetto.dev)");
    }
}
