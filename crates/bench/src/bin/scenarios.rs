//! The policy × scenario matrix: every scheduler against every workload
//! in the `gfaas-workload` registry.
//!
//! ```text
//! cargo run --release -p gfaas-bench --bin scenarios            # paper scale, 3 seeds
//! cargo run --release -p gfaas-bench --bin scenarios -- --smoke # CI: 1 seed, 1 minute
//! cargo run --release -p gfaas-bench --bin scenarios -- --scale production
//! cargo run --release -p gfaas-bench --bin scenarios -- --seeds 1,2,3
//! ```
//!
//! The `paper` rows at paper scale reproduce `fig4_comparison`'s WS 25
//! numbers exactly (same traces, same seeds, same cluster).

use gfaas_bench::{ScenarioSuite, TablePrinter};
use gfaas_workload::Scale;

fn usage() -> ! {
    eprintln!("usage: scenarios [--smoke] [--scale paper|production] [--seeds a,b,c]");
    std::process::exit(2);
}

fn parse_suite(args: &[String]) -> ScenarioSuite {
    // Collect flags first, then build, so flag order never matters
    // (`--seeds 5 --smoke` and `--smoke --seeds 5` both honour seed 5).
    let mut smoke = false;
    let mut scale: Option<Scale> = None;
    let mut seeds: Option<Vec<u64>> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("paper") => Some(Scale::paper()),
                    Some("production") => Some(Scale::production()),
                    other => {
                        eprintln!("bad --scale {other:?}");
                        usage();
                    }
                }
            }
            "--seeds" => {
                let Some(list) = it.next() else { usage() };
                seeds = Some(
                    list.split(',')
                        .map(|s| {
                            s.trim().parse().unwrap_or_else(|_| {
                                eprintln!("bad seed {s:?}");
                                usage();
                            })
                        })
                        .collect(),
                );
            }
            _ => usage(),
        }
    }
    let mut suite = if smoke {
        ScenarioSuite::smoke()
    } else {
        ScenarioSuite::paper_default()
    };
    if let Some(scale) = scale {
        suite.scale = scale;
    }
    if let Some(seeds) = seeds {
        suite.seeds = seeds;
    }
    suite
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let suite = parse_suite(&args);
    let scale = suite.scale;
    println!(
        "Scenario suite — {} scale ({} req/min x {} min, WS {}), {} seed(s)\n",
        scale.name,
        scale.requests_per_min,
        scale.minutes,
        scale.working_set,
        suite.seeds.len()
    );

    let report = suite.run();

    // Workload shapes first, so the matrix below has context.
    let shape = TablePrinter::new(&[12, 9, 6, 8, 10, 10]);
    println!(
        "{}",
        shape.header(&["scenario", "requests", "fns", "top15", "req/min", "minuteCV"])
    );
    for (name, s) in report.scenario_stats {
        println!(
            "{}",
            shape.row(&[
                name.to_string(),
                s.total.to_string(),
                s.working_set.to_string(),
                format!("{:.3}", s.top15_share),
                format!("{:.0}", s.rate_per_min),
                format!("{:.3}", s.minute_cv),
            ])
        );
    }
    println!();

    let t = TablePrinter::new(&[12, 8, 11, 11, 11, 11, 10, 11, 9]);
    println!(
        "{}",
        t.header(&[
            "scenario",
            "policy",
            "avg_lat(s)",
            "p50(s)",
            "p95(s)",
            "p99(s)",
            "miss",
            "false_miss",
            "sm_util",
        ])
    );
    let mut last = "";
    for cell in report.cells {
        if !last.is_empty() && last != cell.scenario {
            println!();
        }
        last = cell.scenario;
        let m = &cell.metrics;
        println!(
            "{}",
            t.row(&[
                cell.scenario.to_string(),
                cell.policy.name(),
                format!("{:.2}", m.avg_latency_secs),
                format!("{:.2}", m.p50_latency_secs),
                format!("{:.2}", m.p95_latency_secs),
                format!("{:.2}", m.p99_latency_secs),
                format!("{:.3}", m.miss_ratio),
                format!("{:.3}", m.false_miss_ratio),
                format!("{:.3}", m.sm_utilization),
            ])
        );
    }

    if scale == Scale::paper() && suite.seeds == gfaas_bench::REPORT_SEEDS {
        println!("\nNote: the `paper` rows reproduce fig4_comparison's WS 25 numbers exactly.");
    }
}
