//! The policy × scenario matrix: every scheduler against every workload
//! in the `gfaas-workload` registry.
//!
//! ```text
//! cargo run --release -p gfaas-bench --bin scenarios            # paper scale, 3 seeds
//! cargo run --release -p gfaas-bench --bin scenarios -- --smoke # CI: 1 seed, 1 minute
//! cargo run --release -p gfaas-bench --bin scenarios -- --scale production
//! cargo run --release -p gfaas-bench --bin scenarios -- --seeds 1,2,3
//! # one matrix cell in isolation, on a non-default evictor:
//! cargo run --release -p gfaas-bench --bin scenarios -- \
//!     --policy lalbo3:25 --scenario drift --replacement tinylfu
//! # the same matrix on an elastic fleet (queue-pressure autoscaler):
//! cargo run --release -p gfaas-bench --bin scenarios -- \
//!     --autoscale queue:min=4,max=16,up=12,down=2
//! ```
//!
//! `--policy` and `--replacement` take registry specs (`lb`, `lalb`,
//! `lalbo3[:limit]`; `lru`, `fifo`, `random`, `tinylfu[:decay]`);
//! `--policy` and `--scenario` accept comma-separated lists;
//! `--autoscale` takes a `gfaas-core` autoscale spec and adds provisioned
//! GPU-seconds and scale-event columns to the matrix. The `paper` rows at
//! paper scale with default policies reproduce `fig4_comparison`'s WS 25
//! numbers exactly (same traces, same seeds, same cluster).

use gfaas_bench::{
    parse_cli_spec, parse_cli_store, run_recorded_stored_on_trace, ScenarioSuite, SpecKind,
    TablePrinter,
};
use gfaas_core::{AutoscaleSpec, PolicySpec, RecordSpec, StoreSpec};
use gfaas_workload::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: scenarios [--smoke] [--scale paper|production|hyperscale] [--seeds a,b,c]\n\
         \x20                [--policy spec[,spec...]] [--scenario name[,name...]]\n\
         \x20                [--replacement spec]\n\
         \x20                [--batching none|coalesce[:max=M,wait=S]|adaptive[:slo=T,max=M,wait=S]]\n\
         \x20                [--autoscale queue:min=M,max=N,up=U,down=D[,cadence=S]]\n\
         \x20                [--store flat|tiered[:host=B,origin_bw=R,...]]\n\
         \x20                [--azure-data invocations_per_function.csv]\n\
         \x20                [--threads N]\n\
         \x20                [--record ledger|perfetto|sample[=secs]|slo=secs|all]\n\
         \x20                [--trace-out FILE]\n\
         --record re-runs the (single) configured cell with recorders attached\n\
         after the matrix; it needs exactly one scenario, one policy, and one\n\
         seed (and no --azure-data). --trace-out writes the Perfetto JSON."
    );
    std::process::exit(2);
}

/// Everything parsed off the command line: the sweep plus the optional
/// recorded re-run of its single cell.
struct Cli {
    suite: ScenarioSuite,
    record: Option<RecordSpec>,
    trace_out: Option<String>,
}

fn cli_spec(s: &str, kind: SpecKind) -> PolicySpec {
    parse_cli_spec(s, kind).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    })
}

fn parse_suite(args: &[String]) -> Cli {
    // Collect flags first, then build, so flag order never matters
    // (`--seeds 5 --smoke` and `--smoke --seeds 5` both honour seed 5).
    let mut smoke = false;
    let mut scale: Option<Scale> = None;
    let mut seeds: Option<Vec<u64>> = None;
    let mut policies: Option<Vec<PolicySpec>> = None;
    let mut scenarios: Option<Vec<String>> = None;
    let mut replacement: Option<PolicySpec> = None;
    let mut batching: Option<PolicySpec> = None;
    let mut autoscale: Option<AutoscaleSpec> = None;
    let mut store: Option<StoreSpec> = None;
    let mut azure_real: Option<gfaas_trace::AzureFunctionsDataset> = None;
    let mut threads: Option<usize> = None;
    let mut record: Option<RecordSpec> = None;
    let mut trace_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("paper") => Some(Scale::paper()),
                    Some("production") => Some(Scale::production()),
                    Some("hyperscale") => Some(Scale::hyperscale()),
                    other => {
                        eprintln!("bad --scale {other:?}");
                        usage();
                    }
                }
            }
            "--threads" => {
                let Some(n) = it.next() else { usage() };
                threads = Some(n.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                    eprintln!("bad --threads {n:?} (want a positive integer)");
                    usage();
                }));
            }
            "--seeds" => {
                let Some(list) = it.next() else { usage() };
                seeds = Some(
                    list.split(',')
                        .map(|s| {
                            s.trim().parse().unwrap_or_else(|_| {
                                eprintln!("bad seed {s:?}");
                                usage();
                            })
                        })
                        .collect(),
                );
            }
            "--policy" => {
                let Some(list) = it.next() else { usage() };
                policies = Some(
                    list.split(',')
                        .map(|s| cli_spec(s, SpecKind::Scheduler))
                        .collect(),
                );
            }
            "--scenario" => {
                let Some(list) = it.next() else { usage() };
                scenarios = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--replacement" => {
                let Some(spec) = it.next() else { usage() };
                replacement = Some(cli_spec(spec, SpecKind::Evictor));
            }
            "--batching" => {
                let Some(spec) = it.next() else { usage() };
                batching = Some(cli_spec(spec, SpecKind::Batcher));
            }
            "--autoscale" => {
                let Some(spec) = it.next() else { usage() };
                autoscale = Some(spec.parse::<AutoscaleSpec>().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                }));
            }
            "--store" => {
                let Some(spec) = it.next() else { usage() };
                store = Some(parse_cli_store(spec).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                }));
            }
            "--azure-data" => {
                // Registers the `azure_real` replay scenario from a real
                // Azure Functions per-minute CSV.
                let Some(path) = it.next() else { usage() };
                let file = std::fs::File::open(path).unwrap_or_else(|e| {
                    eprintln!("cannot open {path}: {e}");
                    usage();
                });
                let ds =
                    gfaas_trace::AzureFunctionsDataset::read_csv(std::io::BufReader::new(file))
                        .unwrap_or_else(|e| {
                            eprintln!("{e}");
                            usage();
                        });
                azure_real = Some(ds);
            }
            "--record" => {
                let Some(spec) = it.next() else { usage() };
                record = Some(spec.parse::<RecordSpec>().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                }));
            }
            "--trace-out" => {
                let Some(path) = it.next() else { usage() };
                trace_out = Some(path.clone());
            }
            _ => usage(),
        }
    }
    let mut suite = if smoke {
        ScenarioSuite::smoke()
    } else {
        ScenarioSuite::paper_default()
    };
    if let Some(scale) = scale {
        suite.scale = scale;
    }
    if let Some(seeds) = seeds {
        suite.seeds = seeds;
    }
    if let Some(policies) = policies {
        suite.policies = policies;
    }
    if let Some(replacement) = replacement {
        suite.replacement = replacement;
    }
    if let Some(batching) = batching {
        suite.batching = batching;
    }
    suite.autoscale = autoscale;
    if let Some(store) = store {
        suite.store = store;
    }
    suite.azure_real = azure_real;
    if let Some(threads) = threads {
        suite.threads = threads;
    }
    if let Some(names) = scenarios {
        // `azure_real` is a known name exactly when a dataset was
        // supplied; the filter then also applies to it.
        let mut known: Vec<&str> = suite.scenarios.iter().map(|s| s.name).collect();
        if suite.azure_real.is_some() {
            known.push("azure_real");
        }
        for n in &names {
            if !known.contains(&n.as_str()) {
                eprintln!("unknown scenario {n:?} (known: {known:?})");
                usage();
            }
        }
        suite
            .scenarios
            .retain(|s| names.iter().any(|n| n == s.name));
        if !names.iter().any(|n| n == "azure_real") {
            suite.azure_real = None;
        }
    }
    if let Some(record) = &record {
        if record.is_off() {
            eprintln!("--record off records nothing; drop the flag instead");
            usage();
        }
        if suite.scenarios.len() != 1
            || suite.policies.len() != 1
            || suite.seeds.len() != 1
            || suite.azure_real.is_some()
        {
            eprintln!(
                "--record needs exactly one cell: one --scenario, one --policy, one seed \
                 (got {} scenario(s), {} policy(ies), {} seed(s){})",
                suite.scenarios.len(),
                suite.policies.len(),
                suite.seeds.len(),
                if suite.azure_real.is_some() {
                    ", plus --azure-data"
                } else {
                    ""
                }
            );
            usage();
        }
    } else if trace_out.is_some() {
        eprintln!("--trace-out requires --record perfetto (or all)");
        usage();
    }
    Cli {
        suite,
        record,
        trace_out,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_suite(&args);
    let suite = cli.suite;
    let scale = suite.scale;
    println!(
        "Scenario suite — {} scale ({} req/min x {} min, WS {}), {} seed(s)\n",
        scale.name,
        scale.requests_per_min,
        scale.minutes,
        scale.working_set,
        suite.seeds.len()
    );
    if suite.replacement != PolicySpec::bare("lru") {
        println!("Replacement policy: {}\n", suite.replacement);
    }
    let batched = suite.batching != PolicySpec::bare("none");
    if batched {
        println!("Batching: {}\n", suite.batching);
    }
    let autoscaled = suite.autoscale.is_some();
    if let Some(autoscale) = &suite.autoscale {
        println!("Autoscale: {autoscale}\n");
    }
    if !suite.store.is_flat() {
        println!("Store: {}\n", suite.store);
    }

    let report = suite.run();

    // Workload shapes first, so the matrix below has context.
    let shape = TablePrinter::new(&[12, 9, 6, 8, 10, 10]);
    println!(
        "{}",
        shape.header(&["scenario", "requests", "fns", "top15", "req/min", "minuteCV"])
    );
    for (name, s) in report.scenario_stats {
        println!(
            "{}",
            shape.row(&[
                name.to_string(),
                s.total.to_string(),
                s.working_set.to_string(),
                format!("{:.3}", s.top15_share),
                format!("{:.0}", s.rate_per_min),
                format!("{:.3}", s.minute_cv),
            ])
        );
    }
    println!();

    // The batched matrix carries effective-batch columns, the autoscaled
    // one provisioned GPU-seconds and scale events; the default layout is
    // untouched so published rows stay byte-identical.
    let mut widths = vec![12, 8, 11, 11, 11, 11, 10, 11, 9];
    let mut header = vec![
        "scenario",
        "policy",
        "avg_lat(s)",
        "p50(s)",
        "p95(s)",
        "p99(s)",
        "miss",
        "false_miss",
        "sm_util",
    ];
    if batched {
        widths.extend([7, 9]);
        header.extend(["eff_b", "batched"]);
    }
    if autoscaled {
        widths.extend([10, 9]);
        header.extend(["gpu_s", "up/down"]);
    }
    let t = TablePrinter::new(&widths);
    println!("{}", t.header(&header));
    let matrix_metrics = report.cells.first().map(|c| c.metrics.clone());
    let mut last = "";
    for cell in report.cells {
        if !last.is_empty() && last != cell.scenario {
            println!();
        }
        last = cell.scenario;
        let m = &cell.metrics;
        let mut row = vec![
            cell.scenario.to_string(),
            cell.policy_name.clone(),
            format!("{:.2}", m.avg_latency_secs),
            format!("{:.2}", m.p50_latency_secs),
            format!("{:.2}", m.p95_latency_secs),
            format!("{:.2}", m.p99_latency_secs),
            format!("{:.3}", m.miss_ratio),
            format!("{:.3}", m.false_miss_ratio),
            format!("{:.3}", m.sm_utilization),
        ];
        if batched {
            row.push(format!("{:.2}", m.avg_effective_batch));
            row.push(format!("{:.0}", m.batched_requests));
        }
        if autoscaled {
            row.push(format!("{:.0}", m.gpu_seconds_provisioned));
            row.push(format!(
                "{:.1}/{:.1}",
                m.scale_up_events, m.scale_down_events
            ));
        }
        println!("{}", t.row(&row));
    }

    if suite.is_paper_default() {
        println!("\nNote: the `paper` rows reproduce fig4_comparison's WS 25 numbers exactly.");
    }

    // `--record`: re-run the single configured cell with recorders
    // attached. The recorded metrics must match the matrix cell exactly —
    // recording is observability, never perturbation — and the check runs
    // on every invocation.
    if let Some(record) = cli.record {
        let scenario = &suite.scenarios[0];
        let seed = suite.seeds[0];
        let trace = scenario.trace(&suite.scale, seed);
        let run = run_recorded_stored_on_trace(
            &suite.policies[0],
            &suite.replacement,
            &suite.batching,
            suite.autoscale.as_ref(),
            &suite.store,
            &record,
            &trace,
        );
        println!(
            "\nRecorded cell {}/{} seed {} (--record {record}):",
            scenario.name, suite.policies[0], seed
        );
        let recorded_avg =
            gfaas_bench::AveragedMetrics::from_runs(std::slice::from_ref(&run.metrics));
        if let Some(expected) = matrix_metrics {
            assert_eq!(
                recorded_avg, expected,
                "recorded run diverged from the unrecorded matrix cell"
            );
            println!("  metrics: byte-identical to the matrix cell above");
        }
        if let Some(ledger) = &run.ledger {
            println!(
                "  ledger:  {} completed, {} SLO misses; mean segments (s): {}",
                ledger.completed(),
                ledger.slo_misses(),
                ledger.segment_summary()
            );
        }
        if let Some(series) = &run.series {
            println!("  sampler: {} windows", series.rows().len());
        }
        if let Some(json) = &run.perfetto_json {
            println!("  perfetto: {} trace bytes", json.len());
            if let Some(path) = &cli.trace_out {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                }
                println!("  wrote {path} (open in ui.perfetto.dev)");
            }
        } else if cli.trace_out.is_some() {
            eprintln!("--trace-out given but --record did not include perfetto");
            std::process::exit(2);
        }
        println!("  profile: {}", run.profile);
    }
}
