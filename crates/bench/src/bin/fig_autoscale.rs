//! Fixed testbed vs queue-pressure autoscaling — the elasticity study
//! the paper's fixed 12-GPU evaluation never runs.
//!
//! ```text
//! cargo run --release -p gfaas-bench --bin fig_autoscale               # diurnal, paper + production scales
//! cargo run --release -p gfaas-bench --bin fig_autoscale -- --smoke    # CI: smoke scale, 1 seed
//! cargo run --release -p gfaas-bench --bin fig_autoscale -- --autoscale queue:min=4,max=24,up=8,down=1
//! ```
//!
//! For each scale, the `diurnal` scenario (one full sinusoidal day-cycle,
//! ±80% of the mean rate) runs under LALB+O3 on (a) the paper's fixed
//! 12-GPU testbed and (b) the same testbed with the queue-pressure
//! autoscaler. Reported per mode: latency (avg/p95), miss ratio,
//! provisioned GPU-seconds, and scale events — the claim under test being
//! that elastic capacity cuts GPU-seconds at equal-or-better latency.

use gfaas_bench::{run_configured_on_trace, AveragedMetrics, TablePrinter, REPORT_SEEDS};
use gfaas_core::{AutoscaleSpec, Policy, PolicySpec, RunMetrics};
use gfaas_workload::scenario::find;
use gfaas_workload::Scale;

fn usage() -> ! {
    eprintln!("usage: fig_autoscale [--smoke] [--autoscale spec] [--seeds a,b,c]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut autoscale = AutoscaleSpec::default();
    let mut seeds: Vec<u64> = REPORT_SEEDS.to_vec();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--autoscale" => {
                let Some(spec) = it.next() else { usage() };
                autoscale = spec.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                });
            }
            "--seeds" => {
                let Some(list) = it.next() else { usage() };
                seeds = list
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bad seed {s:?}");
                            usage();
                        })
                    })
                    .collect();
            }
            _ => usage(),
        }
    }
    let scales: Vec<Scale> = if smoke {
        seeds.truncate(1);
        vec![Scale::smoke()]
    } else {
        vec![Scale::paper(), Scale::production()]
    };

    let policy: PolicySpec = Policy::lalbo3().into();
    let replacement = PolicySpec::bare("lru");
    let scenario = find("diurnal").expect("diurnal scenario registered");

    println!(
        "Autoscaling study — `diurnal` under LALBO3, {} seed(s)\n\
         Fixed fleet: the paper's 12 GPUs. Elastic: {autoscale}\n",
        seeds.len()
    );

    let t = TablePrinter::new(&[12, 10, 11, 11, 8, 11, 9, 9]);
    println!(
        "{}",
        t.header(&[
            "scale",
            "mode",
            "avg_lat(s)",
            "p95(s)",
            "miss",
            "gpu_s",
            "up/down",
            "saved",
        ])
    );
    for scale in scales {
        let traces: Vec<_> = seeds.iter().map(|&s| scenario.trace(&scale, s)).collect();
        let mode = |auto: Option<&AutoscaleSpec>| -> AveragedMetrics {
            let runs: Vec<RunMetrics> = traces
                .iter()
                .map(|tr| run_configured_on_trace(&policy, &replacement, auto, tr))
                .collect();
            AveragedMetrics::from_runs(&runs)
        };
        let fixed = mode(None);
        let auto = mode(Some(&autoscale));
        let saved = 1.0 - auto.gpu_seconds_provisioned / fixed.gpu_seconds_provisioned.max(1e-9);
        for (name, m, saved) in [
            ("fixed-12", &fixed, None),
            ("autoscale", &auto, Some(saved)),
        ] {
            println!(
                "{}",
                t.row(&[
                    scale.name.to_string(),
                    name.to_string(),
                    format!("{:.2}", m.avg_latency_secs),
                    format!("{:.2}", m.p95_latency_secs),
                    format!("{:.3}", m.miss_ratio),
                    format!("{:.0}", m.gpu_seconds_provisioned),
                    format!("{:.1}/{:.1}", m.scale_up_events, m.scale_down_events),
                    saved.map_or("-".to_string(), |s| format!("{:.0}%", 100.0 * s)),
                ])
            );
        }
        println!();
    }
    println!(
        "`saved` is the relative cut in provisioned GPU-seconds vs the fixed fleet;\n\
         the elasticity claim holds when it is positive at equal-or-better latency."
    );
}
