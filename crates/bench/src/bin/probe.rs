//! Scratch probe: sensitivity of the Fig 4 shapes to trace burstiness.
//! Not part of the documented experiment set; used for calibration.

use gfaas_bench::{paper_policies, WORKING_SETS};
use gfaas_core::{Cluster, ClusterConfig};
use gfaas_models::ModelRegistry;
use gfaas_trace::AzureTraceConfig;

fn main() {
    for headroom in [3072u64, 3584, 4096] {
        println!("=== headroom {headroom} MiB, burstiness 1.0 ===");
        for ws in WORKING_SETS {
            for policy in paper_policies() {
                let mut lat = 0.0;
                let mut miss = 0.0;
                let mut fm = 0.0;
                let mut dup = 0.0;
                let seeds = [11u64, 23, 47];
                for &s in &seeds {
                    let cfg = AzureTraceConfig::paper(ws, s);
                    let mut cc = ClusterConfig::paper_testbed(policy);
                    cc.mem_headroom_mib = headroom;
                    let m = Cluster::new(cc, ModelRegistry::table1()).run(&cfg.generate());
                    lat += m.avg_latency_secs;
                    miss += m.miss_ratio;
                    fm += m.false_miss_ratio;
                    dup += m.avg_duplicates;
                }
                let n = seeds.len() as f64;
                println!(
                    "ws{ws:2} {:8} lat {:8.2}  miss {:.3}  false {:.3}  dup {:.2}",
                    policy.name(),
                    lat / n,
                    miss / n,
                    fm / n,
                    dup / n
                );
            }
        }
    }
}
