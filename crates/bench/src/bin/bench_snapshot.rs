//! Emits the committed perf-trajectory snapshot (`BENCH_pr*.json`).
//!
//! ```text
//! cargo run --release -p gfaas-bench --bin bench_snapshot            # print JSON
//! cargo run --release -p gfaas-bench --bin bench_snapshot -- \
//!     --baseline BENCH_pr6_baseline.json --out BENCH_pr6.json
//! cargo run --release -p gfaas-bench --bin bench_snapshot -- --smoke # CI volumes
//! ```
//!
//! The snapshot measures what `cargo bench --bench event_loop` measures —
//! full `Cluster::run` event-loop throughput on 10^5- and 10^6-request
//! traces (ns/request, peak queue depth) — plus the end-to-end
//! `scenarios --scale production` sweep (wall ms, cells/sec). With
//! `--baseline <file>` a previously captured snapshot is embedded
//! verbatim and end-to-end/event-loop speedups are computed against it,
//! so each PR's committed `BENCH_pr*.json` records both sides of its
//! perf delta. `--smoke` shrinks the volumes for CI smoke runs.

use std::time::Instant;

use gfaas_bench::{run_batched_on_trace, run_stored_on_trace, ScenarioSuite, REPORT_SEEDS};
use gfaas_core::{PolicySpec, StoreSpec};
use gfaas_workload::scenario::find;
use gfaas_workload::Scale;

struct EventLoopPoint {
    label: &'static str,
    requests: u64,
    ns_per_request: f64,
    queue_peak: usize,
    wall_ms: f64,
}

fn measure_event_loop(label: &'static str, scale: &Scale, runs: usize) -> EventLoopPoint {
    let trace = find("paper")
        .expect("paper scenario is registered")
        .trace(scale, 11);
    let policy: PolicySpec = "lalbo3:25".parse().unwrap();
    let lru = PolicySpec::bare("lru");
    let none = PolicySpec::bare("none");
    let mut best_ns = f64::INFINITY;
    let mut queue_peak = 0;
    let mut requests = 0;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let metrics = run_batched_on_trace(&policy, &lru, &none, None, &trace);
        let elapsed = start.elapsed();
        let ns = elapsed.as_nanos() as f64 / trace.len().max(1) as f64;
        best_ns = best_ns.min(ns);
        queue_peak = metrics.queue_peak;
        requests = metrics.completed;
    }
    EventLoopPoint {
        label,
        requests,
        ns_per_request: best_ns,
        queue_peak,
        wall_ms: best_ns * trace.len() as f64 / 1e6,
    }
}

/// The storage-hierarchy datapoint: event-loop throughput with the
/// tiered store active on the same trace the flat points use, so the
/// snapshot records what the tier stack costs per request. The flat
/// points above stay byte-comparable with pre-store snapshots.
fn measure_tiered_event_loop(scale: &Scale, runs: usize) -> f64 {
    let trace = find("paper")
        .expect("paper scenario is registered")
        .trace(scale, 11);
    let policy: PolicySpec = "lalbo3:25".parse().unwrap();
    let lru = PolicySpec::bare("lru");
    let none = PolicySpec::bare("none");
    let tiered: StoreSpec = "tiered".parse().unwrap();
    let mut best_ns = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let _ = run_stored_on_trace(&policy, &lru, &none, None, &tiered, &trace);
        let ns = start.elapsed().as_nanos() as f64 / trace.len().max(1) as f64;
        best_ns = best_ns.min(ns);
    }
    best_ns
}

/// Pulls `"key": <number>` out of a flat JSON snapshot without a parser
/// (the snapshot format is this binary's own output).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let mut from = 0;
    // The baseline's own nested "baseline" block (if any) comes after the
    // top-level keys, so the first occurrence is the one we want.
    while let Some(at) = text[from..].find(&needle) {
        let rest = &text[from + at + needle.len()..];
        let num: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
            .collect();
        if let Ok(v) = num.parse() {
            return Some(v);
        }
        from += at + needle.len();
    }
    None
}

fn indent(text: &str, by: &str) -> String {
    text.trim_end()
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("{by}{l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let mut smoke = false;
    let mut baseline: Option<String> = None;
    let mut out: Option<String> = None;
    let mut threads = 1usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--baseline" => baseline = it.next(),
            "--out" => out = it.next(),
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("bad --threads (want a positive integer)");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!(
                    "unknown arg {other:?}\nusage: bench_snapshot [--smoke] \
                     [--baseline <json>] [--out <json>] [--threads N]"
                );
                std::process::exit(2);
            }
        }
    }

    // Event-loop points: 10^5 and 10^6 requests (10^3 / 10^4 in smoke).
    let (small, large) = if smoke {
        (
            Scale {
                name: "bench-1e3",
                requests_per_min: 1_000,
                minutes: 1,
                working_set: 35,
            },
            Scale {
                name: "bench-1e4",
                requests_per_min: 10_000,
                minutes: 1,
                working_set: 35,
            },
        )
    } else {
        (
            Scale {
                name: "bench-1e5",
                requests_per_min: 25_000,
                minutes: 4,
                working_set: 35,
            },
            Scale {
                name: "bench-1e6",
                requests_per_min: 50_000,
                minutes: 20,
                working_set: 35,
            },
        )
    };
    let small_label = if smoke { "1e3" } else { "1e5" };
    let large_label = if smoke { "1e4" } else { "1e6" };
    let points = [
        measure_event_loop(small_label, &small, 3),
        measure_event_loop(large_label, &large, 1),
    ];
    let tiered_ns = measure_tiered_event_loop(&small, 3);

    // End-to-end sweep: the acceptance metric is `scenarios --scale
    // production` wall clock (the smoke suite in CI).
    let mut suite = if smoke {
        ScenarioSuite::smoke()
    } else {
        ScenarioSuite::new(Scale::production(), REPORT_SEEDS.to_vec())
    };
    suite.threads = threads;
    let start = Instant::now();
    let report = suite.run();
    let suite_wall = start.elapsed();
    let cells = report.cells.len();
    let suite_ms = suite_wall.as_secs_f64() * 1e3;
    let cells_per_sec = cells as f64 / suite_wall.as_secs_f64().max(1e-9);

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": 1,\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str("  \"event_loop\": {\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"requests\": {}, \"ns_per_request\": {:.1}, \
             \"queue_peak\": {}, \"wall_ms\": {:.1} }}{}\n",
            p.label,
            p.requests,
            p.ns_per_request,
            p.queue_peak,
            p.wall_ms,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"store\": {{ \"label\": \"{}\", \"flat_ns_per_request\": {:.1}, \
         \"tiered_ns_per_request\": {:.1}, \"tiered_over_flat\": {:.2} }},\n",
        small_label,
        points[0].ns_per_request,
        tiered_ns,
        tiered_ns / points[0].ns_per_request.max(1e-9)
    ));
    json.push_str(&format!(
        "  \"suite\": {{ \"scale\": \"{}\", \"cells\": {}, \"wall_ms\": {:.1}, \
         \"cells_per_sec\": {:.2} }}",
        suite.scale.name, cells, suite_ms, cells_per_sec
    ));

    if let Some(path) = &baseline {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let base_suite_ms = json_number(&text, "wall_ms");
        let base_large = text
            .find(&format!("\"{large_label}\""))
            .and_then(|at| json_number(&text[at..], "ns_per_request"));
        json.push_str(",\n  \"speedup\": {");
        let mut parts = Vec::new();
        if let Some(b) = base_suite_ms {
            // The baseline's first wall_ms key is its large event-loop
            // point; find the suite block's instead.
            let suite_b = text
                .find("\"suite\"")
                .and_then(|at| json_number(&text[at..], "wall_ms"))
                .unwrap_or(b);
            parts.push(format!(
                " \"scenarios_end_to_end\": {:.2}",
                suite_b / suite_ms.max(1e-9)
            ));
        }
        if let Some(b) = base_large {
            parts.push(format!(
                " \"event_loop_{}\": {:.2}",
                large_label,
                b / points[1].ns_per_request.max(1e-9)
            ));
        }
        json.push_str(&parts.join(","));
        json.push_str(" },\n");
        json.push_str(&format!("  \"baseline\": {}\n", indent(&text, "  ")));
    } else {
        json.push('\n');
    }
    json.push_str("}\n");

    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            println!("wrote {path}");
            print!("{json}");
        }
        None => print!("{json}"),
    }
}
