//! Dynamic request batching vs per-request dispatch — the throughput
//! study the paper's fixed batch-32 evaluation never runs.
//!
//! ```text
//! cargo run --release -p gfaas-bench --bin fig_batching               # burst + flash_crowd, paper + production
//! cargo run --release -p gfaas-bench --bin fig_batching -- --smoke    # CI: smoke scale, 1 seed
//! cargo run --release -p gfaas-bench --bin fig_batching -- --batching coalesce:max=8,wait=0.02
//! ```
//!
//! For each scale and scenario, LALB+O3 runs on identical traces under
//! `none` (the paper's per-request dispatch — byte-identical to every
//! published number), `coalesce` (greedy same-model merging), and
//! `adaptive` (SLO-aware batch sizing). Reported per mode: latency
//! (avg/p95), miss ratio, effective batch, provisioned GPU-seconds, and
//! completed requests per GPU-second — the claim under test being that
//! coalescing lifts throughput per GPU-second without hurting tail
//! latency.

use gfaas_bench::{
    parse_cli_spec, run_batched_on_trace, AveragedMetrics, SpecKind, TablePrinter, REPORT_SEEDS,
};
use gfaas_core::{Policy, PolicySpec, RunMetrics};
use gfaas_workload::scenario::find;
use gfaas_workload::Scale;

/// The scenarios whose queue pressure gives coalescing something to
/// merge: MMPP bursts and the flash-crowd hot spot.
const SCENARIOS: [&str; 2] = ["burst", "flash_crowd"];

fn usage() -> ! {
    eprintln!(
        "usage: fig_batching [--smoke] [--seeds a,b,c] [--batching spec]...\n\
         \x20      batching specs: none | coalesce[:max=M,wait=S] | adaptive[:slo=T,max=M,wait=S]\n\
         \x20      (--batching repeats; the first use replaces the default mode list)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seeds: Vec<u64> = REPORT_SEEDS.to_vec();
    let mut batchings: Vec<PolicySpec> = vec![
        PolicySpec::bare("none"),
        PolicySpec::bare("coalesce"),
        PolicySpec::bare("adaptive"),
    ];
    let mut custom_batchings = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--seeds" => {
                let Some(list) = it.next() else { usage() };
                seeds = list
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bad seed {s:?}");
                            usage();
                        })
                    })
                    .collect();
            }
            "--batching" => {
                let Some(spec) = it.next() else { usage() };
                // The spec grammar uses commas (`max=8,wait=0.05`), so the
                // flag repeats instead of taking a comma-joined list; the
                // first use replaces the builtin mode list.
                if !custom_batchings {
                    custom_batchings = true;
                    batchings.clear();
                }
                batchings.push(parse_cli_spec(spec, SpecKind::Batcher).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                }));
            }
            _ => usage(),
        }
    }
    let scales: Vec<Scale> = if smoke {
        seeds.truncate(1);
        vec![Scale::smoke()]
    } else {
        vec![Scale::paper(), Scale::production()]
    };

    let policy: PolicySpec = Policy::lalbo3().into();
    let replacement = PolicySpec::bare("lru");

    println!(
        "Batching study — {} under LALBO3, {} seed(s)\n\
         Modes: {}\n",
        SCENARIOS.join(" + "),
        seeds.len(),
        batchings
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let t = TablePrinter::new(&[12, 12, 10, 11, 11, 8, 7, 11, 11, 12, 9]);
    println!(
        "{}",
        t.header(&[
            "scale",
            "scenario",
            "batching",
            "avg_lat(s)",
            "p95(s)",
            "miss",
            "eff_b",
            "gpu_s",
            "busy_s",
            "req/busy_s",
            "thr_gain",
        ])
    );
    for scale in &scales {
        for scenario in SCENARIOS {
            let sc = find(scenario).expect("scenario registered");
            let traces: Vec<_> = seeds.iter().map(|&s| sc.trace(scale, s)).collect();
            let mut baseline: Option<AveragedMetrics> = None;
            for batching in &batchings {
                let runs: Vec<RunMetrics> = traces
                    .iter()
                    .map(|tr| run_batched_on_trace(&policy, &replacement, batching, None, tr))
                    .collect();
                let m = AveragedMetrics::from_runs(&runs);
                let gain = baseline.as_ref().map(|b| {
                    100.0
                        * (m.requests_per_busy_gpu_second() / b.requests_per_busy_gpu_second()
                            - 1.0)
                });
                println!(
                    "{}",
                    t.row(&[
                        scale.name.to_string(),
                        scenario.to_string(),
                        batching.key().to_string(),
                        format!("{:.2}", m.avg_latency_secs),
                        format!("{:.2}", m.p95_latency_secs),
                        format!("{:.3}", m.miss_ratio),
                        format!("{:.2}", m.avg_effective_batch),
                        format!("{:.0}", m.gpu_seconds_provisioned),
                        format!("{:.0}", m.gpu_busy_seconds),
                        format!("{:.4}", m.requests_per_busy_gpu_second()),
                        gain.map_or("-".to_string(), |g| format!("{g:+.0}%")),
                    ])
                );
                if baseline.is_none() {
                    baseline = Some(m);
                }
            }
            println!();
        }
    }
    println!(
        "`req/busy_s` is completed requests per GPU-second of *busy* time (uploads +\n\
         inference actually executed) — the hardware cost per request that coalescing\n\
         amortises; `gpu_s` is the provisioned fleet-time (12 x makespan) for context.\n\
         `thr_gain` is the req/busy_s lift over the first mode's baseline. The batching\n\
         claim holds when coalescing lifts throughput without raising p95."
    );
}
