//! Fig 4 (a, b, c): average latency, cache miss ratio, and SM utilisation
//! for LB / LALB / LALB+O3 across working sets {15, 25, 35}.
//!
//! ```text
//! cargo run --release -p gfaas-bench --bin fig4_comparison
//! ```

use gfaas_bench::{
    paper_policies, reduction_pct, run_replicated, AveragedMetrics, TablePrinter, REPORT_SEEDS,
    WORKING_SETS,
};
use gfaas_core::Policy;

fn main() {
    println!("Fig 4 — scheduler comparison on the paper testbed (12x RTX 2080,");
    println!(
        "Azure-like trace, 325 req/min x 6 min, batch 32, {} seeds averaged)\n",
        REPORT_SEEDS.len()
    );

    let t = TablePrinter::new(&[4, 8, 14, 12, 10, 12, 12]);
    println!(
        "{}",
        t.header(&[
            "WS",
            "policy",
            "avg_lat(s)",
            "miss_ratio",
            "sm_util",
            "lat_red(%)",
            "miss_red(%)",
        ])
    );

    for ws in WORKING_SETS {
        let mut baseline: Option<AveragedMetrics> = None;
        for policy in paper_policies() {
            let m = run_replicated(policy, ws, &REPORT_SEEDS);
            let (lat_red, miss_red) = match &baseline {
                Some(b) => (
                    reduction_pct(b.avg_latency_secs, m.avg_latency_secs),
                    reduction_pct(b.miss_ratio, m.miss_ratio),
                ),
                None => (0.0, 0.0),
            };
            println!(
                "{}",
                t.row(&[
                    ws.to_string(),
                    policy.name(),
                    format!("{:.2}", m.avg_latency_secs),
                    format!("{:.3}", m.miss_ratio),
                    format!("{:.3}", m.sm_utilization),
                    format!("{:.1}", lat_red),
                    format!("{:.1}", miss_red),
                ])
            );
            if policy == Policy::lb() {
                baseline = Some(m);
            }
        }
        println!();
    }

    println!("Paper reference points:");
    println!("  LALB  vs LB latency reduction: 97.74% (WS15), 93.33% (WS25), ~79.4% (WS35)");
    println!("  LALB  vs LB miss-ratio reduction: 94.11% (WS15), 65.21% (WS35)");
    println!("  LALBO3 vs LB (WS35): latency -96.93%, miss ratio -81.15%");
    println!("  SM utilisation: consistent across WS; LALBO3 highest; LB lowest");
}
