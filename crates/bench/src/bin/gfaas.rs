//! `gfaas` — command-line front end for the experiment harness.
//!
//! ```text
//! gfaas run [--policy SPEC] [--ws N] [--seed S] [--seeds a,b,c]
//!           [--o3-limit N] [--gpus N] [--headroom MIB] [--burstiness F]
//!           [--replacement SPEC] [--tenants N] [--tenant-cap N]
//!           [--record SPEC] [--trace-out FILE] [--ledger-out FILE]
//!           [--series-out FILE]
//! gfaas profile            # regenerate Table I
//! gfaas trace [--ws N] [--seed S] [--out FILE]   # emit a CSV workload
//! gfaas sweep              # the full Fig 4 grid (policies x working sets)
//! ```
//!
//! Policy SPECs are registry keys with optional arguments: schedulers
//! `lb`, `lalb`, `lalbo3[:limit]`; replacements `lru`, `fifo`, `random`,
//! `tinylfu[:decay]` — anything `gfaas_core::PolicyRegistry::builtin()`
//! knows.
//!
//! `--record` attaches the observability layer (see `gfaas_obs`):
//! `ledger`, `perfetto`, `sample[=secs]`, `slo=secs`, `all`. A recorded
//! run requires exactly one seed; `--trace-out` writes the Perfetto
//! JSON, `--ledger-out` the per-request lifecycle CSV, and
//! `--series-out` the sampled time-series CSV.
//!
//! Checkpoints (see `gfaas_core::snap`): `--checkpoint-at SECS
//! --checkpoint-out FILE` pauses the run at virtual time SECS, writes
//! the versioned-state checkpoint, then resumes to completion (the
//! printed metrics are byte-identical to an unpaused run). A later
//! invocation with identical flags plus `--warm-start FILE` restores
//! the checkpoint and replays only the remainder — same metrics, no
//! re-simulation of the prefix. Both require exactly one seed.

use std::collections::BTreeMap;

use gfaas_bench::{
    paper_policies, parse_cli_spec, parse_cli_store, SpecKind, TablePrinter, WORKING_SETS,
};
use gfaas_core::{Cluster, ClusterConfig, PolicyRegistry, PolicySpec, RunMetrics};
use gfaas_gpu::pcie::PcieModel;
use gfaas_models::profiler::profile_all;
use gfaas_models::ModelRegistry;
use gfaas_trace::AzureTraceConfig;

fn usage() -> ! {
    eprintln!(
        "usage: gfaas <run|profile|trace|sweep> [flags]\n\
         run flags: --policy lb|lalb|lalbo3[:limit]  --ws N  --seed S  --seeds a,b,c\n\
         \x20          --o3-limit N  --gpus N  --headroom MIB  --burstiness F\n\
         \x20          --replacement lru|fifo|random|tinylfu[:decay]\n\
         \x20          --store flat|tiered[:host=B,origin_bw=R,...]\n\
         \x20          --tenants N  --tenant-cap N\n\
         \x20          --record ledger|perfetto|sample[=secs]|slo=secs|all\n\
         \x20          --trace-out FILE  --ledger-out FILE  --series-out FILE\n\
         \x20          --checkpoint-at SECS --checkpoint-out FILE  --warm-start FILE\n\
         trace flags: --ws N  --seed S  --out FILE"
    );
    std::process::exit(2);
}

fn parse_flags(args: &[String]) -> BTreeMap<String, String> {
    let mut flags = BTreeMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("unexpected argument {a:?}");
            usage();
        };
        let Some(value) = it.next() else {
            eprintln!("flag --{key} needs a value");
            usage();
        };
        flags.insert(key.to_string(), value.clone());
    }
    flags
}

fn get<T: std::str::FromStr>(flags: &BTreeMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value for --{key}: {v:?}");
            usage();
        }),
        None => default,
    }
}

fn cli_spec(s: &str, kind: SpecKind) -> PolicySpec {
    parse_cli_spec(s, kind).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    })
}

/// Resolves `--policy` (any registered scheduler spec) with the legacy
/// `--o3-limit N` flag folded in as `lalbo3:N` for the LALB family.
fn policy_of(flags: &BTreeMap<String, String>) -> PolicySpec {
    let mut raw = flags
        .get("policy")
        .map(String::as_str)
        .unwrap_or("lalbo3")
        .to_string();
    if let Some(v) = flags.get("o3-limit") {
        let limit: u32 = v.parse().unwrap_or_else(|_| {
            eprintln!("bad --o3-limit {v:?}");
            usage();
        });
        if raw == "lalb" || raw == "lalbo3" || raw.starts_with("lalbo3:") {
            raw = format!("lalbo3:{limit}");
        }
    }
    cli_spec(&raw, SpecKind::Scheduler)
}

/// Resolves `--replacement` against the registry (default `lru`).
fn replacement_of(flags: &BTreeMap<String, String>) -> PolicySpec {
    cli_spec(
        flags
            .get("replacement")
            .map(String::as_str)
            .unwrap_or("lru"),
        SpecKind::Evictor,
    )
}

/// Resolves `--store` against the registry (default `flat`).
fn store_of(flags: &BTreeMap<String, String>) -> gfaas_core::StoreSpec {
    parse_cli_store(flags.get("store").map(String::as_str).unwrap_or("flat")).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    })
}

fn print_metrics(name: &str, m: &RunMetrics) {
    println!("{name}:");
    println!("  completed         {}", m.completed);
    println!("  avg latency       {:.3} s", m.avg_latency_secs);
    println!(
        "  p50 / p95 / p99 latency {:.3} / {:.3} / {:.3} s",
        m.p50_latency_secs, m.p95_latency_secs, m.p99_latency_secs
    );
    println!("  latency variance  {:.3}", m.latency_variance);
    println!("  max latency       {:.3} s", m.max_latency_secs);
    println!("  miss ratio        {:.4}", m.miss_ratio);
    println!("  false-miss ratio  {:.4}", m.false_miss_ratio);
    println!("  SM utilisation    {:.4}", m.sm_utilization);
    println!("  hot duplicates    {:.3}", m.avg_duplicates);
    println!("  makespan          {:.1} s", m.makespan_secs);
    println!("  queue peak        {}", m.queue_peak);
    println!("  queue avg         {:.3}", m.avg_queue_depth);
}

fn write_file(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {what} to {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {what} to {path}");
}

fn cmd_run(flags: BTreeMap<String, String>) {
    let policy = policy_of(&flags);
    let replacement = replacement_of(&flags);
    let store = store_of(&flags);
    let policy_name = PolicyRegistry::builtin()
        .scheduler_name(&policy)
        .expect("validated above");
    let ws: usize = get(&flags, "ws", 25);
    let seeds: Vec<u64> = match flags.get("seeds") {
        Some(list) => list
            .split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| {
                    eprintln!("bad seed {s:?}");
                    usage();
                })
            })
            .collect(),
        None => vec![get(&flags, "seed", 11u64)],
    };
    let record: gfaas_core::RecordSpec = match flags.get("record") {
        Some(s) => s.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            usage();
        }),
        None => gfaas_core::RecordSpec::default(),
    };
    for (flag, needs) in [
        ("trace-out", "perfetto"),
        ("ledger-out", "ledger"),
        ("series-out", "sample"),
    ] {
        if flags.contains_key(flag) && record.is_off() {
            eprintln!("--{flag} requires --record {needs}");
            usage();
        }
    }
    if !record.is_off() && seeds.len() > 1 {
        eprintln!("--record needs exactly one seed (got {})", seeds.len());
        usage();
    }
    if flags.contains_key("checkpoint-out") && !flags.contains_key("checkpoint-at") {
        eprintln!("--checkpoint-out requires --checkpoint-at SECS");
        usage();
    }
    if flags.contains_key("warm-start") && flags.contains_key("checkpoint-at") {
        eprintln!("--warm-start and --checkpoint-at are mutually exclusive");
        usage();
    }
    if (flags.contains_key("checkpoint-at") || flags.contains_key("warm-start")) && seeds.len() > 1
    {
        eprintln!("checkpointing needs exactly one seed (got {})", seeds.len());
        usage();
    }
    let mut runs = Vec::new();
    for &seed in &seeds {
        let mut tc = AzureTraceConfig::paper(ws, seed);
        tc.burstiness = get(&flags, "burstiness", tc.burstiness);
        let trace = tc.generate();
        let mut cfg = ClusterConfig::paper_testbed(policy.clone());
        cfg.num_gpus = get(&flags, "gpus", cfg.num_gpus);
        if !cfg.num_gpus.is_multiple_of(cfg.gpus_per_node) {
            // Keep the node shape valid when --gpus overrides the testbed;
            // grouping is reporting-only today, but say so out loud.
            cfg.gpus_per_node = cfg.num_gpus.max(1);
            eprintln!(
                "note: --gpus {} does not tile the testbed's 4-GPU nodes; \
                 treating the cluster as one {}-GPU node",
                cfg.num_gpus, cfg.gpus_per_node
            );
        }
        cfg.mem_headroom_mib = get(&flags, "headroom", cfg.mem_headroom_mib);
        cfg.num_tenants = get(&flags, "tenants", cfg.num_tenants);
        if let Some(cap) = flags.get("tenant-cap") {
            cfg.tenant_max_inflight = Some(cap.parse().unwrap_or_else(|_| {
                eprintln!("bad --tenant-cap {cap:?}");
                usage();
            }));
        }
        cfg.replacement = replacement.clone();
        cfg.store = store.clone();
        cfg.record = record;
        let mut cluster = Cluster::new(cfg, ModelRegistry::table1());
        let m = if let Some(path) = flags.get("warm-start") {
            let bytes = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("cannot read checkpoint {path}: {e}");
                std::process::exit(2);
            });
            // The checkpoint header pins config and trace digests, so a
            // warm start under different flags fails here, loudly.
            cluster.restore(&bytes, &trace).unwrap_or_else(|e| {
                eprintln!("cannot warm-start from {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("warm-started from {path} ({} bytes)", bytes.len());
            cluster.resume(&trace)
        } else if let Some(at) = flags.get("checkpoint-at") {
            let secs: f64 = at.parse().unwrap_or_else(|_| {
                eprintln!("bad --checkpoint-at {at:?}");
                usage();
            });
            cluster.run_until(&trace, gfaas_sim::time::SimTime::from_secs_f64(secs));
            let bytes = cluster.checkpoint(&trace);
            if let Some(path) = flags.get("checkpoint-out") {
                if let Err(e) = std::fs::write(path, &bytes) {
                    eprintln!("cannot write checkpoint to {path}: {e}");
                    std::process::exit(2);
                }
                eprintln!(
                    "wrote checkpoint at t={secs}s to {path} ({} bytes)",
                    bytes.len()
                );
            }
            cluster.resume(&trace)
        } else {
            cluster.run(&trace)
        };
        if !store.is_flat() {
            let s = cluster.store_stats();
            println!(
                "store {}: host_hits {} origin {} prefetches {} joins {} demotions {}",
                cluster.store_name(),
                s.host_hits,
                s.origin_loads,
                s.prefetches,
                s.prefetch_joins,
                s.demotions
            );
        }
        if let Some(json) = cluster.perfetto_json() {
            if let Some(path) = flags.get("trace-out") {
                write_file(path, &json, "Perfetto trace");
            } else {
                eprintln!(
                    "note: perfetto trace recorded ({} bytes); pass --trace-out FILE to keep it",
                    json.len()
                );
            }
        }
        if let Some(ledger) = cluster.ledger() {
            if let Some(path) = flags.get("ledger-out") {
                write_file(path, &ledger.to_csv(), "lifecycle ledger");
            }
            let seg = ledger.segment_summary();
            println!(
                "ledger: {} completed, {} SLO misses; mean segments (s): {}",
                ledger.completed(),
                ledger.slo_misses(),
                seg
            );
        }
        if let Some(series) = cluster.time_series() {
            if let Some(path) = flags.get("series-out") {
                write_file(path, &series.to_csv(), "time series");
            }
            println!("sampler: {} windows recorded", series.rows().len());
        }
        runs.push(m);
    }
    if runs.len() == 1 {
        print_metrics(&format!("{policy_name} ws{ws} seed{}", seeds[0]), &runs[0]);
    } else {
        let avg = gfaas_bench::AveragedMetrics::from_runs(&runs);
        println!(
            "{} ws{ws} over {} seeds: lat {:.3} s  miss {:.4}  false {:.4}  util {:.4}  dup {:.3}",
            policy_name,
            runs.len(),
            avg.avg_latency_secs,
            avg.miss_ratio,
            avg.false_miss_ratio,
            avg.sm_utilization,
            avg.avg_duplicates
        );
    }
}

fn cmd_profile() {
    let registry = ModelRegistry::table1();
    let profiles = profile_all(&registry, &PcieModel::table1(), 42);
    let t = TablePrinter::new(&[17, 10, 10, 11]);
    println!(
        "{}",
        t.header(&["model", "size(MB)", "load'(s)", "infer32'(s)"])
    );
    for p in &profiles {
        let spec = registry.spec(p.model);
        println!(
            "{}",
            t.row(&[
                spec.name.to_string(),
                spec.occupancy_mib.to_string(),
                format!("{:.2}", p.load_secs),
                format!("{:.2}", p.infer_secs_b32),
            ])
        );
    }
}

fn cmd_trace(flags: BTreeMap<String, String>) {
    let ws: usize = get(&flags, "ws", 25);
    let seed: u64 = get(&flags, "seed", 11);
    let trace = AzureTraceConfig::paper(ws, seed).generate();
    match flags.get("out") {
        Some(path) => {
            let f = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create {path}: {e}");
                std::process::exit(2);
            });
            trace.write_csv(f).expect("write CSV");
            let s = trace.stats();
            eprintln!(
                "wrote {} requests (ws {}, {:.0} req/min) to {path}",
                s.total, s.working_set, s.rate_per_min
            );
        }
        None => {
            trace
                .write_csv(std::io::stdout().lock())
                .expect("write CSV");
        }
    }
}

fn cmd_sweep() {
    let t = TablePrinter::new(&[4, 8, 12, 12, 10]);
    println!(
        "{}",
        t.header(&["WS", "policy", "avg_lat(s)", "miss_ratio", "sm_util"])
    );
    for ws in WORKING_SETS {
        for policy in paper_policies() {
            let m = gfaas_bench::run_replicated(policy, ws, &gfaas_bench::REPORT_SEEDS);
            println!(
                "{}",
                t.row(&[
                    ws.to_string(),
                    policy.name(),
                    format!("{:.2}", m.avg_latency_secs),
                    format!("{:.3}", m.miss_ratio),
                    format!("{:.3}", m.sm_utilization),
                ])
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(parse_flags(&args[1..])),
        Some("profile") => cmd_profile(),
        Some("trace") => cmd_trace(parse_flags(&args[1..])),
        Some("sweep") => cmd_sweep(),
        _ => usage(),
    }
}
