//! The storage-hierarchy report: host-cache size × origin bandwidth
//! sweep for the tiered model store, against the flat baseline.
//!
//! ```text
//! cargo run --release -p gfaas-bench --bin fig_store            # paper scale, 3 seeds
//! cargo run --release -p gfaas-bench --bin fig_store -- --smoke # CI: smoke scale, 1 seed
//! ```
//!
//! Two workloads are swept, both on the `diurnal` scenario:
//!
//! * **diurnal** — the paper's fixed 12-GPU testbed. Tiering only pays
//!   here through capacity evictions demoting into the host cache, so
//!   the gap vs flat is modest.
//! * **storm** — the same trace on an elastic fleet (queue-pressure
//!   autoscaler). Every diurnal peak provisions cold GPUs and triggers a
//!   cold-start storm of compulsory misses; the tiered store's
//!   demote-on-evict and scale-up hot-set prefetch turn many of those
//!   into host-cache hits instead of origin fetches.
//!
//! Each tiered row reports the store's own counters (host hits, origin
//! loads, prefetches, in-flight joins, demotions) next to the usual
//! latency/miss metrics, so the mechanism behind a latency delta is
//! visible in the same table. The binary exits non-zero if a tiered
//! storm run never touches its host cache — the wiring gate CI runs in
//! smoke mode.

use gfaas_bench::{AveragedMetrics, TablePrinter, REPORT_SEEDS};
use gfaas_core::{
    AutoscaleSpec, Cluster, ClusterConfig, PolicySpec, RunMetrics, StoreSpec, StoreStats,
};
use gfaas_models::ModelRegistry;
use gfaas_trace::Trace;
use gfaas_workload::scenario::find;
use gfaas_workload::Scale;

fn usage() -> ! {
    eprintln!("usage: fig_store [--smoke]");
    std::process::exit(2);
}

fn run_cell(
    policy: &PolicySpec,
    autoscale: Option<&AutoscaleSpec>,
    store: &StoreSpec,
    trace: &Trace,
) -> (RunMetrics, StoreStats) {
    let mut cfg = ClusterConfig::paper_testbed(policy.clone());
    cfg.autoscale = autoscale.cloned();
    cfg.store = store.clone();
    let mut cluster = Cluster::new(cfg, ModelRegistry::table1());
    let metrics = cluster.run(trace);
    let stats = cluster.store_stats();
    (metrics, stats)
}

/// Per-store row of one sweep table: seed-averaged metrics plus the
/// store counters summed across seeds.
struct Row {
    label: String,
    metrics: AveragedMetrics,
    stats: StoreStats,
}

fn sweep(
    policy: &PolicySpec,
    autoscale: Option<&AutoscaleSpec>,
    stores: &[(String, StoreSpec)],
    traces: &[Trace],
) -> Vec<Row> {
    stores
        .iter()
        .map(|(label, store)| {
            let mut runs = Vec::with_capacity(traces.len());
            let mut stats = StoreStats::default();
            for trace in traces {
                let (m, s) = run_cell(policy, autoscale, store, trace);
                runs.push(m);
                stats.host_hits += s.host_hits;
                stats.origin_loads += s.origin_loads;
                stats.prefetches += s.prefetches;
                stats.prefetch_joins += s.prefetch_joins;
                stats.demotions += s.demotions;
                stats.host_evictions += s.host_evictions;
            }
            Row {
                label: label.clone(),
                metrics: AveragedMetrics::from_runs(&runs),
                stats,
            }
        })
        .collect()
}

fn print_table(title: &str, rows: &[Row]) {
    println!("{title}");
    let t = TablePrinter::new(&[26, 11, 9, 9, 7, 9, 9, 6, 6, 6]);
    println!(
        "{}",
        t.header(&[
            "store",
            "avg_lat(s)",
            "p95(s)",
            "p99(s)",
            "miss",
            "host_hit",
            "origin",
            "pref",
            "join",
            "demote",
        ])
    );
    for r in rows {
        let m = &r.metrics;
        println!(
            "{}",
            t.row(&[
                r.label.clone(),
                format!("{:.2}", m.avg_latency_secs),
                format!("{:.2}", m.p95_latency_secs),
                format!("{:.2}", m.p99_latency_secs),
                format!("{:.3}", m.miss_ratio),
                r.stats.host_hits.to_string(),
                r.stats.origin_loads.to_string(),
                r.stats.prefetches.to_string(),
                r.stats.prefetch_joins.to_string(),
                r.stats.demotions.to_string(),
            ])
        );
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    for a in &args {
        match a.as_str() {
            "--smoke" => smoke = true,
            _ => usage(),
        }
    }
    let (scale, seeds, autoscale): (Scale, Vec<u64>, AutoscaleSpec) = if smoke {
        (
            Scale::smoke(),
            vec![REPORT_SEEDS[0]],
            "queue:min=2,max=8,up=6,down=1,cadence=2".parse().unwrap(),
        )
    } else {
        (
            Scale::paper(),
            REPORT_SEEDS.to_vec(),
            "queue:min=4,max=12,up=10,down=2,cadence=5".parse().unwrap(),
        )
    };
    let policy: PolicySpec = "lalbo3".parse().expect("builtin spec");
    let sc = find("diurnal").expect("diurnal scenario registered");
    let traces: Vec<Trace> = seeds.iter().map(|&s| sc.trace(&scale, s)).collect();

    // The sweep grid: the flat baseline, then host-cache size × origin
    // bandwidth. Latencies matter through two knobs: a bigger host cache
    // keeps more demoted/prefetched models a cheap PCIe hop away, and a
    // fatter origin link drains cold fetches (and the prefetches queued
    // behind them) faster.
    let mut stores: Vec<(String, StoreSpec)> = vec![("flat".into(), StoreSpec::default())];
    for host in ["8G", "64G"] {
        for bw in ["1G", "2G"] {
            let spec = format!("tiered:host={host},origin_bw={bw}");
            stores.push((spec.clone(), spec.parse().expect("grid spec parses")));
        }
    }

    println!(
        "Storage hierarchy — diurnal / {policy} ({} scale, {} seed(s))\n",
        scale.name,
        seeds.len()
    );
    let fixed = sweep(&policy, None, &stores, &traces);
    print_table("fixed 12-GPU testbed (evict-demote only):", &fixed);
    let storm = sweep(&policy, Some(&autoscale), &stores, &traces);
    print_table(
        &format!("cold-start storm (autoscale {autoscale}):"),
        &storm,
    );

    // The wiring gate: a tiered storm run that never serves a byte from
    // its host cache means demotion/prefetch never engaged — fail loudly.
    let touched = storm
        .iter()
        .skip(1)
        .any(|r| r.stats.host_hits > 0 || r.stats.prefetches > 0);
    if !touched {
        eprintln!("FAIL: no tiered storm run touched the host tier");
        std::process::exit(1);
    }

    // The headline: the best tiered config vs flat on the storm cell,
    // at equal HBM capacity (same fleet, same traces).
    let flat = &storm[0].metrics;
    let best = storm
        .iter()
        .skip(1)
        .min_by(|a, b| {
            a.metrics
                .p95_latency_secs
                .total_cmp(&b.metrics.p95_latency_secs)
        })
        .expect("grid is non-empty");
    println!(
        "storm cell, best tiered ({}) vs flat: p95 {:.2}s vs {:.2}s, avg {:.2}s vs {:.2}s, miss {:.3} vs {:.3}",
        best.label,
        best.metrics.p95_latency_secs,
        flat.p95_latency_secs,
        best.metrics.avg_latency_secs,
        flat.avg_latency_secs,
        best.metrics.miss_ratio,
        flat.miss_ratio,
    );
    if best.metrics.p95_latency_secs <= flat.p95_latency_secs
        || best.metrics.avg_latency_secs <= flat.avg_latency_secs
        || best.metrics.miss_ratio <= flat.miss_ratio
    {
        println!("host cache wins the cold-start storm at equal HBM capacity.");
    } else {
        println!("note: no tiered config beat flat on this grid.");
    }
}
