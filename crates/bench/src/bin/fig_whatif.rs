//! The what-if scheduling report: speculative lookahead vs greedy LALBO3
//! on the bursty scenarios where a one-shot placement decision pays for
//! its greed.
//!
//! ```text
//! cargo run --release -p gfaas-bench --bin fig_whatif            # paper scale, 3 seeds
//! cargo run --release -p gfaas-bench --bin fig_whatif -- --smoke # CI: smoke scale, 1 seed
//! ```
//!
//! Two scenarios are swept — `burst` (MMPP on/off arrivals) and
//! `flash_crowd` (a sudden hot-model spike) — under greedy LALBO3 and a
//! small `lookahead:k,horizon` grid. The lookahead policy forks the
//! cluster per candidate placement (hit on an idle replica, wait at a
//! busy holder, cold miss here), replays the next `horizon` pending
//! events inside each fork through the `gfaas-snap` journal, scores the
//! outcomes, rolls every fork back byte-identically, and executes the
//! winner. Each row reports the usual latency/throughput metrics plus
//! the journal's own counters (forks = snapshots taken; every fork must
//! be rolled back), so the speculation volume behind a latency delta is
//! visible in the same table.
//!
//! The binary exits non-zero — the CI gate — if (a) any lookahead cell's
//! forks don't all retire, or (b) no lookahead config beats LALBO3 on
//! p95 latency or makespan-throughput on at least one scenario.

use gfaas_bench::{AveragedMetrics, TablePrinter, REPORT_SEEDS};
use gfaas_core::snap::JournalStats;
use gfaas_core::{Cluster, ClusterConfig, PolicySpec, RunMetrics};
use gfaas_models::ModelRegistry;
use gfaas_trace::Trace;
use gfaas_workload::scenario::find;
use gfaas_workload::Scale;

fn usage() -> ! {
    eprintln!("usage: fig_whatif [--smoke]");
    std::process::exit(2);
}

fn run_cell(policy: &PolicySpec, trace: &Trace) -> (RunMetrics, JournalStats) {
    let cfg = ClusterConfig::paper_testbed(policy.clone());
    let mut cluster = Cluster::new(cfg, ModelRegistry::table1());
    let metrics = cluster.run(trace);
    (metrics, cluster.journal_stats())
}

/// One policy row of a scenario table: seed-averaged metrics plus the
/// journal counters summed across seeds.
struct Row {
    label: String,
    metrics: AveragedMetrics,
    journal: JournalStats,
}

fn sweep(policies: &[(String, PolicySpec)], traces: &[Trace]) -> Vec<Row> {
    policies
        .iter()
        .map(|(label, policy)| {
            let mut runs = Vec::with_capacity(traces.len());
            let mut journal = JournalStats::default();
            for trace in traces {
                let (m, j) = run_cell(policy, trace);
                runs.push(m);
                journal.snapshots += j.snapshots;
                journal.rollbacks += j.rollbacks;
                journal.commits += j.commits;
            }
            Row {
                label: label.clone(),
                metrics: AveragedMetrics::from_runs(&runs),
                journal,
            }
        })
        .collect()
}

fn throughput(m: &AveragedMetrics) -> f64 {
    if m.makespan_secs <= 0.0 {
        0.0
    } else {
        m.completed / m.makespan_secs
    }
}

fn print_table(title: &str, rows: &[Row]) {
    println!("{title}");
    let t = TablePrinter::new(&[22, 11, 9, 9, 9, 7, 11, 9, 10]);
    println!(
        "{}",
        t.header(&[
            "policy",
            "avg_lat(s)",
            "p95(s)",
            "p99(s)",
            "mksp(s)",
            "miss",
            "req/s",
            "forks",
            "rollbacks",
        ])
    );
    for r in rows {
        let m = &r.metrics;
        println!(
            "{}",
            t.row(&[
                r.label.clone(),
                format!("{:.2}", m.avg_latency_secs),
                format!("{:.2}", m.p95_latency_secs),
                format!("{:.2}", m.p99_latency_secs),
                format!("{:.1}", m.makespan_secs),
                format!("{:.3}", m.miss_ratio),
                format!("{:.2}", throughput(m)),
                r.journal.snapshots.to_string(),
                r.journal.rollbacks.to_string(),
            ])
        );
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    for a in &args {
        match a.as_str() {
            "--smoke" => smoke = true,
            _ => usage(),
        }
    }
    let (scale, seeds): (Scale, Vec<u64>) = if smoke {
        (Scale::smoke(), vec![REPORT_SEEDS[0]])
    } else {
        (Scale::paper(), REPORT_SEEDS.to_vec())
    };

    // The policy axis: the greedy baseline first, then the lookahead grid
    // (candidate count × replay depth).
    let policies: Vec<(String, PolicySpec)> = ["lalbo3"]
        .into_iter()
        .map(str::to_string)
        .chain(
            [(2usize, 8usize), (4, 8), (4, 16)]
                .into_iter()
                .map(|(k, h)| format!("lookahead:k={k},horizon={h}")),
        )
        .map(|s| (s.clone(), s.parse().expect("builtin spec")))
        .collect();

    println!(
        "What-if scheduling — lookahead vs LALBO3 ({} scale, {} seed(s), seeds {:?})\n",
        scale.name,
        seeds.len(),
        seeds
    );

    let mut lookahead_wins = false;
    let mut forks_leak = false;
    let mut total_forks = 0u64;
    for name in ["burst", "flash_crowd"] {
        let sc = find(name).expect("scenario registered");
        let traces: Vec<Trace> = seeds.iter().map(|&s| sc.trace(&scale, s)).collect();
        let rows = sweep(&policies, &traces);
        print_table(&format!("{name}:"), &rows);

        let base = &rows[0];
        debug_assert_eq!(base.journal.snapshots, 0, "greedy never speculates");
        for r in &rows[1..] {
            total_forks += r.journal.snapshots;
            if r.journal.snapshots != r.journal.rollbacks {
                eprintln!(
                    "FAIL: {name}/{}: {} forks but {} rollbacks — a fork leaked",
                    r.label, r.journal.snapshots, r.journal.rollbacks
                );
                forks_leak = true;
            }
        }
        // The headline: the best lookahead config vs the greedy baseline.
        let best = rows[1..]
            .iter()
            .min_by(|a, b| {
                a.metrics
                    .p95_latency_secs
                    .total_cmp(&b.metrics.p95_latency_secs)
            })
            .expect("grid is non-empty");
        let wins_p95 = best.metrics.p95_latency_secs < base.metrics.p95_latency_secs;
        let wins_tput = throughput(&best.metrics) > throughput(&base.metrics);
        println!(
            "{name}: best lookahead ({}) vs lalbo3: p95 {:.2}s vs {:.2}s, \
             avg {:.2}s vs {:.2}s, {:.2} vs {:.2} req/s{}",
            best.label,
            best.metrics.p95_latency_secs,
            base.metrics.p95_latency_secs,
            best.metrics.avg_latency_secs,
            base.metrics.avg_latency_secs,
            throughput(&best.metrics),
            throughput(&base.metrics),
            if wins_p95 || wins_tput {
                " — lookahead wins"
            } else {
                ""
            }
        );
        println!();
        lookahead_wins |= wins_p95 || wins_tput;
    }

    if forks_leak {
        std::process::exit(1);
    }
    if total_forks == 0 {
        eprintln!("FAIL: no lookahead cell ever speculated — the journal is not being exercised");
        std::process::exit(1);
    }
    if smoke {
        // At smoke scale (60 requests) every cell ties; the smoke gate
        // only proves the wiring — forks happen and all retire. The win
        // criterion is judged at paper scale.
        println!("smoke gate: {total_forks} forks taken, all rolled back.");
        return;
    }
    if !lookahead_wins {
        eprintln!("FAIL: no lookahead config beat LALBO3 on either scenario");
        std::process::exit(1);
    }
    println!("speculative lookahead beats greedy LALBO3 on at least one bursty scenario.");
}
