//! Fig 6: time-averaged number of duplicates of the most popular model.
//!
//! Duplicates of hot models let concurrent requests hit in parallel, but
//! too many pollute the cache. The metric is the time-weighted average
//! number of GPUs simultaneously holding the trace's hottest model
//! (bounded by the GPU count, 12).
//!
//! ```text
//! cargo run --release -p gfaas-bench --bin fig6_duplicates
//! ```

use gfaas_bench::{
    paper_policies, reduction_pct, run_replicated, TablePrinter, REPORT_SEEDS, WORKING_SETS,
};
use gfaas_core::Policy;

fn main() {
    println!(
        "Fig 6 — average duplicates of the top-1 model (12 GPUs, {} seeds averaged)\n",
        REPORT_SEEDS.len()
    );
    let t = TablePrinter::new(&[4, 8, 12, 14]);
    println!(
        "{}",
        t.header(&["WS", "policy", "duplicates", "red_vs_LB(%)"])
    );
    for ws in WORKING_SETS {
        let mut lb = 0.0;
        for policy in paper_policies() {
            let m = run_replicated(policy, ws, &REPORT_SEEDS);
            if policy == Policy::lb() {
                lb = m.avg_duplicates;
            }
            println!(
                "{}",
                t.row(&[
                    ws.to_string(),
                    policy.name(),
                    format!("{:.2}", m.avg_duplicates),
                    format!("{:.1}", reduction_pct(lb, m.avg_duplicates)),
                ])
            );
        }
        println!();
    }
    println!("Paper reference points: LB keeps the most duplicates (locality-blind");
    println!("replication); LALB reduces them by ~49% (WS15) and ~35% (WS35);");
    println!("LALBO3 by ~49% (WS15) and ~33% (WS35).");
}
