//! Fig 7: sensitivity of LALB+O3 to the out-of-order dispatch limit.
//!
//! The paper sweeps the starvation limit from 0 (pure LALB) to 45 on the
//! WS-35 workload and plots average latency (left axis) and cache miss
//! ratio (right axis); it also reports that the larger limit *reduces*
//! latency variance (fewer misses beat less queue-jumping unfairness).
//!
//! ```text
//! cargo run --release -p gfaas-bench --bin fig7_o3_sensitivity
//! ```

use gfaas_bench::{reduction_pct, run_replicated, TablePrinter, REPORT_SEEDS};
use gfaas_core::Policy;

/// The paper's x-axis.
const LIMITS: [u32; 10] = [0, 5, 10, 15, 20, 25, 30, 35, 40, 45];
/// Fig 7 uses the largest working set, where O3 matters most.
const WORKING_SET: usize = 35;

fn main() {
    println!(
        "Fig 7 — O3 limit sweep on WS{WORKING_SET} ({} seeds averaged)\n",
        REPORT_SEEDS.len()
    );
    let t = TablePrinter::new(&[6, 12, 12, 14]);
    println!(
        "{}",
        t.header(&["limit", "avg_lat(s)", "miss_ratio", "lat_variance"])
    );
    let mut base: Option<(f64, f64, f64)> = None;
    let mut last: Option<(f64, f64, f64)> = None;
    for limit in LIMITS {
        let m = run_replicated(Policy::lalb_with_limit(limit), WORKING_SET, &REPORT_SEEDS);
        println!(
            "{}",
            t.row(&[
                limit.to_string(),
                format!("{:.2}", m.avg_latency_secs),
                format!("{:.3}", m.miss_ratio),
                format!("{:.2}", m.latency_variance),
            ])
        );
        let triple = (m.avg_latency_secs, m.miss_ratio, m.latency_variance);
        if base.is_none() {
            base = Some(triple);
        }
        last = Some(triple);
    }
    let (b, l) = (base.unwrap(), last.unwrap());
    println!("\nlimit 45 vs limit 0 (= LALB):");
    println!(
        "  latency reduction:  {:.1}%  (paper: 85.1%)",
        reduction_pct(b.0, l.0)
    );
    println!(
        "  miss-ratio reduction: {:.1}%  (paper: 45.8%)",
        reduction_pct(b.1, l.1)
    );
    println!(
        "  variance reduction: {:.1}%  (paper: 95.9%)",
        reduction_pct(b.2, l.2)
    );
}
