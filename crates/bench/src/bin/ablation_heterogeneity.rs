//! Ablation (§VI "Heterogeneity of GPUs"): mixed GPU types.
//!
//! The paper claims its design inherently supports heterogeneous GPUs by
//! profiling each type separately and feeding the per-type times to the
//! scheduler. This ablation compares three 12-GPU clusters — all-RTX 2080,
//! mixed 2080/2080 Ti, and all-2080 Ti — under LB and LALB+O3.
//!
//! ```text
//! cargo run --release -p gfaas-bench --bin ablation_heterogeneity
//! ```

use gfaas_bench::{paper_trace, TablePrinter, REPORT_SEEDS};
use gfaas_core::{Cluster, ClusterConfig, Policy};
use gfaas_gpu::GpuSpec;
use gfaas_models::ModelRegistry;

fn fleet(name: &str, specs: Vec<GpuSpec>) -> (&str, Vec<GpuSpec>) {
    (name, specs)
}

fn main() {
    println!("Ablation — heterogeneous GPU fleets (WS25)\n");
    let fleets = [
        fleet("12x2080", vec![GpuSpec::rtx2080(); 12]),
        fleet("6+6mix", {
            let mut v = vec![GpuSpec::rtx2080(); 6];
            v.extend(vec![GpuSpec::rtx2080ti(); 6]);
            v
        }),
        fleet("12x2080Ti", vec![GpuSpec::rtx2080ti(); 12]),
    ];

    let t = TablePrinter::new(&[10, 8, 12, 12, 10]);
    println!(
        "{}",
        t.header(&["fleet", "sched", "avg_lat(s)", "miss_ratio", "sm_util"])
    );
    for (name, specs) in &fleets {
        for policy in [Policy::lb(), Policy::lalbo3()] {
            let mut lat = 0.0;
            let mut miss = 0.0;
            let mut util = 0.0;
            for &s in &REPORT_SEEDS {
                let mut cfg = ClusterConfig::paper_testbed(policy);
                cfg.hetero_specs = Some(specs.clone());
                let m = Cluster::new(cfg, ModelRegistry::table1()).run(&paper_trace(25, s));
                lat += m.avg_latency_secs;
                miss += m.miss_ratio;
                util += m.sm_utilization;
            }
            let n = REPORT_SEEDS.len() as f64;
            println!(
                "{}",
                t.row(&[
                    name.to_string(),
                    policy.name(),
                    format!("{:.2}", lat / n),
                    format!("{:.3}", miss / n),
                    format!("{:.3}", util / n),
                ])
            );
        }
        println!();
    }
    println!("Expected shape: faster fleets lower latency under both schedulers;");
    println!("LALBO3 keeps its large margin over LB on every fleet, showing the");
    println!("profiled per-type times compose with locality-aware scheduling.");
}
