//! Fig 5: false-miss ratio per scheduler and working set.
//!
//! A false miss is a scheduling decision that dispatches a request as a
//! cache miss even though its model is resident on another GPU. The
//! default LB scheduler is blind to residency, so nearly every one of its
//! misses is false (the paper reports up to ~96%); the locality-aware
//! schedulers miss mostly on genuinely absent models.
//!
//! ```text
//! cargo run --release -p gfaas-bench --bin fig5_false_miss
//! ```

use gfaas_bench::{
    paper_policies, reduction_pct, run_replicated, TablePrinter, REPORT_SEEDS, WORKING_SETS,
};
use gfaas_core::Policy;

fn main() {
    println!(
        "Fig 5 — false-miss ratio (false misses / misses), {} seeds averaged\n",
        REPORT_SEEDS.len()
    );
    let t = TablePrinter::new(&[4, 8, 12, 14]);
    println!(
        "{}",
        t.header(&["WS", "policy", "false_miss", "red_vs_LB(%)"])
    );
    for ws in WORKING_SETS {
        let mut lb = 0.0;
        for policy in paper_policies() {
            let m = run_replicated(policy, ws, &REPORT_SEEDS);
            if policy == Policy::lb() {
                lb = m.false_miss_ratio;
            }
            println!(
                "{}",
                t.row(&[
                    ws.to_string(),
                    policy.name(),
                    format!("{:.3}", m.false_miss_ratio),
                    format!("{:.1}", reduction_pct(lb, m.false_miss_ratio)),
                ])
            );
        }
        println!();
    }
    println!("Paper reference points: LB worst (up to ~96%); at WS15 LALB/LALBO3");
    println!("reduce the false-miss ratio by 34.4%/35.4%; at WS35 the reductions shrink.");
}
