//! Ablation: Algorithm 2's finish-time estimation.
//!
//! The co-design claim of the paper is that scheduling needs the GPU
//! Managers' estimated finish times: a request whose model sits on a busy
//! GPU should wait there *iff* the wait beats a cold load. This ablation
//! replaces that comparison with the two degenerate rules:
//!
//! * `Never`  — never wait on a busy holder (always replicate): locality
//!   only on idle GPUs, extra misses and duplicates;
//! * `Always` — always wait on the busy holder (locality without load
//!   balance): hot GPUs build convoys while others idle.
//!
//! ```text
//! cargo run --release -p gfaas-bench --bin ablation_estimation
//! ```

use gfaas_bench::{paper_trace, TablePrinter, REPORT_SEEDS, WORKING_SETS};
use gfaas_core::config::BusyWaitPolicy;
use gfaas_core::{Cluster, ClusterConfig, Policy};
use gfaas_models::ModelRegistry;

fn run(busy_wait: BusyWaitPolicy, ws: usize) -> (f64, f64, f64) {
    let mut lat = 0.0;
    let mut miss = 0.0;
    let mut dup = 0.0;
    for &s in &REPORT_SEEDS {
        let mut cfg = ClusterConfig::paper_testbed(Policy::lalbo3());
        cfg.busy_wait = busy_wait;
        let m = Cluster::new(cfg, ModelRegistry::table1()).run(&paper_trace(ws, s));
        lat += m.avg_latency_secs;
        miss += m.miss_ratio;
        dup += m.avg_duplicates;
    }
    let n = REPORT_SEEDS.len() as f64;
    (lat / n, miss / n, dup / n)
}

fn main() {
    println!("Ablation — finish-time estimation in Algorithm 2 (LALBO3)\n");
    let t = TablePrinter::new(&[4, 10, 12, 12, 12]);
    println!(
        "{}",
        t.header(&["WS", "busy_wait", "avg_lat(s)", "miss_ratio", "duplicates"])
    );
    for ws in WORKING_SETS {
        for bw in [
            BusyWaitPolicy::Estimate,
            BusyWaitPolicy::Never,
            BusyWaitPolicy::Always,
        ] {
            let (lat, miss, dup) = run(bw, ws);
            println!(
                "{}",
                t.row(&[
                    ws.to_string(),
                    format!("{bw:?}"),
                    format!("{lat:.2}"),
                    format!("{miss:.3}"),
                    format!("{dup:.2}"),
                ])
            );
        }
        println!();
    }
    println!("Expected shape: Estimate dominates. Never inflates misses/duplicates");
    println!("(replication); Always inflates latency (convoys on hot GPUs).");
}
