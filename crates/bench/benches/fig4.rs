//! Criterion bench for the Fig 4 experiment grid: one full 6-minute,
//! 12-GPU trace run per scheduler. Measures the simulator's wall-clock
//! cost of regenerating a figure cell (the figure's *values* come from the
//! `fig4_comparison` report binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfaas_bench::{paper_trace, run_on_trace};
use gfaas_core::Policy;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for (name, policy) in [
        ("LB", Policy::lb()),
        ("LALB", Policy::lalb()),
        ("LALBO3", Policy::lalbo3()),
    ] {
        for ws in [15usize, 35] {
            let trace = paper_trace(ws, 11);
            group.bench_with_input(BenchmarkId::new(name, ws), &trace, |b, trace| {
                b.iter(|| black_box(run_on_trace(policy, black_box(trace))))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
