//! Criterion bench for the Table I machinery: the profiling procedure and
//! the per-request latency-profile lookups the scheduler makes on its hot
//! path.

use criterion::{criterion_group, criterion_main, Criterion};
use gfaas_gpu::pcie::PcieModel;
use gfaas_gpu::ModelId;
use gfaas_models::profiler::{profile_all, profile_model};
use gfaas_models::ModelRegistry;
use gfaas_sim::rng::DetRng;
use std::hint::black_box;

fn bench_profiler(c: &mut Criterion) {
    let registry = ModelRegistry::table1();
    let pcie = PcieModel::table1();

    c.bench_function("table1/profile_one_model", |b| {
        let mut rng = DetRng::new(1);
        b.iter(|| {
            black_box(profile_model(
                &registry,
                &pcie,
                black_box(ModelId(9)),
                &mut rng,
            ))
        })
    });

    c.bench_function("table1/profile_all_22", |b| {
        b.iter(|| black_box(profile_all(&registry, &pcie, black_box(42))))
    });

    c.bench_function("table1/profile_lookups", |b| {
        // The scheduler queries occupancy + load + inference time per
        // decision; this measures that triple lookup.
        b.iter(|| {
            let mut acc = 0u64;
            for id in registry.ids() {
                acc ^= registry.occupancy_bytes(id);
                acc ^= registry.load_time(id).as_micros();
                acc ^= registry.infer_time(id, 32).as_micros();
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_profiler);
criterion_main!(benches);
