//! Microbenchmarks of the engine's hot components: cache-manager
//! operations, the discrete-event queue, trace generation, the etcd-like
//! datastore, and the tensor kernels (the live-inference path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfaas_core::{CacheManager, ReplacementPolicy};
use gfaas_faas::Datastore;
use gfaas_gpu::{GpuId, ModelId};
use gfaas_sim::event::EventQueue;
use gfaas_sim::rng::DetRng;
use gfaas_sim::time::SimTime;
use gfaas_tensor::ops::{conv2d, matmul, Conv2dParams};
use gfaas_tensor::Tensor;
use gfaas_trace::AzureTraceConfig;
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    c.bench_function("micro/cache_touch_lru", |b| {
        let gpus: Vec<GpuId> = (0..12).map(GpuId).collect();
        let mut mgr = CacheManager::new(gpus.clone(), ReplacementPolicy::Lru, 1);
        for g in &gpus {
            for m in 0..4 {
                mgr.insert(*g, ModelId(g.0 as u32 * 4 + m));
            }
        }
        let mut i = 0u32;
        b.iter(|| {
            let g = GpuId((i % 12) as u16);
            mgr.touch(g, ModelId(g.0 as u32 * 4 + (i % 4)));
            i = i.wrapping_add(1);
            black_box(&mgr);
        })
    });

    c.bench_function("micro/cache_miss_with_eviction", |b| {
        let mut mgr = CacheManager::new([GpuId(0)], ReplacementPolicy::Lru, 1);
        let mut next = 0u32;
        for _ in 0..4 {
            mgr.insert(GpuId(0), ModelId(next));
            next += 1;
        }
        b.iter(|| {
            let victims = mgr
                .select_victims(GpuId(0), 100, 0, |_| 100, &[])
                .expect("evictable");
            black_box(&victims);
            mgr.insert(GpuId(0), ModelId(next));
            next = next.wrapping_add(1);
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("micro/event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::with_capacity(1024);
            for i in 0..1000u32 {
                // Pseudo-random times to exercise heap churn.
                q.schedule(SimTime::from_micros((i as u64 * 7919) % 4096), i);
            }
            let mut acc = 0u32;
            while let Some((_, v)) = q.pop() {
                acc ^= v;
            }
            black_box(acc)
        })
    });
}

fn bench_trace_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/trace_gen");
    for ws in [15usize, 35] {
        group.bench_with_input(BenchmarkId::new("ws", ws), &ws, |b, &ws| {
            b.iter(|| black_box(AzureTraceConfig::paper(ws, 7).generate()))
        });
    }
    group.finish();
}

fn bench_datastore(c: &mut Criterion) {
    c.bench_function("micro/datastore_put_get", |b| {
        let ds = Datastore::new();
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("/gpu/{}/status", i % 12);
            ds.put(&key, if i.is_multiple_of(2) { "busy" } else { "idle" });
            black_box(ds.get(&key));
            i = i.wrapping_add(1);
        })
    });
}

fn bench_tensor(c: &mut Criterion) {
    let mut rng = DetRng::new(5);
    let a = Tensor::from_fn(&[64, 128], |_| rng.range_f64(-1.0, 1.0) as f32);
    let b2 = Tensor::from_fn(&[128, 64], |_| rng.range_f64(-1.0, 1.0) as f32);
    c.bench_function("micro/matmul_64x128x64", |b| {
        b.iter(|| black_box(matmul(black_box(&a), black_box(&b2))))
    });

    let input = Tensor::from_fn(&[1, 3, 32, 32], |_| rng.range_f64(0.0, 1.0) as f32);
    let weight = Tensor::from_fn(&[16, 3, 3, 3], |_| rng.range_f64(-0.2, 0.2) as f32);
    let params = Conv2dParams {
        stride: 1,
        padding: 1,
    };
    c.bench_function("micro/conv2d_3x32x32_to_16", |b| {
        b.iter(|| black_box(conv2d(black_box(&input), black_box(&weight), None, params)))
    });

    let net = gfaas_tensor::nets::mini_resnet(10, 3);
    let batch = gfaas_models::live::synthetic_batch(gfaas_models::live::InputKind::Cifar, 4, 1);
    c.bench_function("micro/mini_resnet_forward_b4", |b| {
        b.iter(|| black_box(net.forward(black_box(&batch))))
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_event_queue,
    bench_trace_gen,
    bench_datastore,
    bench_tensor
);
criterion_main!(benches);
