//! Criterion bench for the Fig 7 sweep cells: LALB+O3 at the extreme
//! limits on the WS-35 workload. The O3 scan is the scheduler's most
//! expensive path (per-request visit accounting across the global queue),
//! so this doubles as a regression guard on scheduling cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfaas_bench::{paper_trace, run_on_trace};
use gfaas_core::Policy;
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let trace = paper_trace(35, 11);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for limit in [0u32, 25, 45] {
        group.bench_with_input(BenchmarkId::new("o3_limit", limit), &limit, |b, &l| {
            b.iter(|| black_box(run_on_trace(Policy::lalb_with_limit(l), black_box(&trace))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
