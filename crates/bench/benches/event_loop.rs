//! Event-loop throughput at trace scales beyond the paper testbed.
//!
//! The report binaries run at most ~4 × 10^4 requests per cell; the
//! ROADMAP's target is 10^5–10^6-request traces. This bench drives the
//! full `Cluster::run` event loop on `paper`-preset traces of exactly
//! 10^5 and 10^6 requests, parameterised over scale × policy × batching,
//! so `cargo bench --bench event_loop` tracks the hot path the
//! indexed-queue refactor optimises. `bench_snapshot` persists the same
//! measurements to `BENCH_*.json` for the committed perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfaas_bench::run_batched_on_trace;
use gfaas_core::PolicySpec;
use gfaas_trace::Trace;
use gfaas_workload::scenario::find;
use gfaas_workload::Scale;

/// The two trace volumes the ROADMAP targets: 10^5 and 10^6 requests.
const SCALES: [(&str, Scale); 2] = [
    (
        "1e5",
        Scale {
            name: "bench-1e5",
            requests_per_min: 25_000,
            minutes: 4,
            working_set: 35,
        },
    ),
    (
        "1e6",
        Scale {
            name: "bench-1e6",
            requests_per_min: 50_000,
            minutes: 20,
            working_set: 35,
        },
    ),
];

fn bench_trace(scale: &Scale) -> Trace {
    find("paper")
        .expect("paper scenario is registered")
        .trace(scale, 11)
}

/// The scales to measure: the ROADMAP pair, or a single 10^3-request
/// trace when `GFAAS_BENCH_SMOKE` is set (the CI mode — it proves the
/// harness runs end to end without paying for a 10^6-request trace).
fn scales() -> Vec<(&'static str, Scale)> {
    if std::env::var_os("GFAAS_BENCH_SMOKE").is_some() {
        return vec![(
            "1e3",
            Scale {
                name: "bench-1e3",
                requests_per_min: 1_000,
                minutes: 1,
                working_set: 35,
            },
        )];
    }
    SCALES.to_vec()
}

fn event_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_loop");
    // One full 10^6-request run per sample is already heavyweight; scale
    // the measurement budget down accordingly.
    group.sample_size(10);
    let lru = PolicySpec::bare("lru");
    for (label, scale) in &scales() {
        let trace = bench_trace(scale);
        for policy in ["lb", "lalbo3:25"] {
            let policy: PolicySpec = policy.parse().expect("valid policy spec");
            for batching in ["none", "coalesce"] {
                let batching: PolicySpec = batching.parse().expect("valid batching spec");
                group.bench_with_input(
                    BenchmarkId::new(format!("{policy}/{batching}"), label),
                    &trace,
                    |b, t| b.iter(|| run_batched_on_trace(&policy, &lru, &batching, None, t)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, event_loop);
criterion_main!(benches);
