//! Property tests over the scenario-generation subsystem.
//!
//! * The calibrated Zipf generator holds the paper's headline statistic —
//!   a 56% top-15 share — for every seed, not just the documented ones.
//! * Every scenario's trace is sorted by arrival time for every seed.
//! * Every scenario's trace survives the CSV write→read cycle with a
//!   byte-identical re-serialisation.

use gfaas_sim::rng::DetRng;
use gfaas_trace::azure::{AZURE_TOTAL_FUNCTIONS, AZURE_ZIPF_ALPHA, PAPER_REQUESTS_PER_MIN};
use gfaas_trace::{AzureTraceConfig, Trace, TraceRequest};
use gfaas_workload::{registry, Arrival, Scale};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary seeds, a trace drawn from the calibrated Zipf law
    /// over the full 46,413-function population keeps the top-15 share
    /// within ±2% of the paper's 56%. Burstiness is disabled so the test
    /// isolates the popularity law itself (the per-minute modulation is
    /// deliberately noisy and is validated via `TraceStats::minute_cv`
    /// instead).
    #[test]
    fn calibrated_zipf_holds_top15_share(seed in any::<u64>()) {
        let mut cfg = AzureTraceConfig::paper(AZURE_TOTAL_FUNCTIONS, seed);
        cfg.burstiness = 0.0;
        let share = cfg.generate().stats().top15_share;
        prop_assert!(
            (share - 0.56).abs() < 0.02,
            "seed {seed}: top-15 share {share:.4}, want 0.56 +/- 0.02"
        );
        prop_assert!((cfg.population_top15_share() - 0.56).abs() < 0.02);
    }

    /// Every registered scenario yields an arrival-sorted, nonempty trace
    /// for arbitrary seeds, with volume near the scale's target. The
    /// tolerance is per-process: replay volumes are exact, Poisson is
    /// tight, and the on-off MMPP — only ~9 dwell cycles fit the 6-minute
    /// horizon, so the random state mix dominates realised volume — gets
    /// a loose band that still catches unit bugs (a per-sec/per-min
    /// confusion would be 60× off).
    #[test]
    fn every_scenario_is_sorted_and_sized(seed in any::<u64>()) {
        let scale = Scale::paper();
        let target = (scale.requests_per_min * scale.minutes) as f64;
        for sc in registry() {
            let t = sc.trace(&scale, seed);
            prop_assert!(t.is_sorted_by_arrival(), "{} seed {seed}", sc.name);
            prop_assert!(!t.is_empty(), "{} seed {seed}", sc.name);
            let vol = t.len() as f64;
            let (lo, hi) = match sc.name {
                "paper" | "flash_crowd" => (target, target), // exact renormalised volume
                "burst" => (0.2 * target, 3.0 * target),
                _ => (0.75 * target, 1.25 * target),
            };
            prop_assert!(
                (lo..=hi).contains(&vol),
                "{} seed {seed}: volume {vol}, want [{lo}, {hi}]", sc.name
            );
        }
    }

    /// The diurnal thinning sampler is faithful to its sinusoid for any
    /// legal amplitude and seed: per-minute counts correlate strongly with
    /// the analytic rate curve, and the peak-half/trough-half volume ratio
    /// matches the closed form (1 + 2a/π)/(1 − 2a/π). An amplitude
    /// mishandled by the thinning acceptance (the pre-validation bug class:
    /// a negative instantaneous rate silently clamped) breaks both.
    #[test]
    fn diurnal_minute_counts_track_the_sinusoid(
        seed in any::<u64>(),
        amplitude_pct in 20u32..=90,
    ) {
        let amplitude = amplitude_pct as f64 / 100.0;
        let minutes = 30usize;
        let horizon = 60.0 * minutes as f64;
        let mean = 600.0; // per minute: enough volume to beat Poisson noise
        let arrival = Arrival::diurnal(mean, amplitude, horizon);
        let trace = Trace::new(
            arrival
                .sample(horizon, &mut DetRng::new(seed))
                .into_iter()
                .map(|at| TraceRequest { at, function: 0, model: 0 })
                .collect(),
        );
        let counts = trace.minute_counts_with_horizon(horizon);
        prop_assert_eq!(counts.len(), minutes);

        // Peak half (sin > 0) vs trough half.
        let first: usize = counts[..minutes / 2].iter().sum();
        let second: usize = counts[minutes / 2..].iter().sum();
        let expected_ratio =
            (1.0 + 2.0 * amplitude / std::f64::consts::PI)
            / (1.0 - 2.0 * amplitude / std::f64::consts::PI);
        let ratio = first as f64 / second.max(1) as f64;
        prop_assert!(
            (ratio / expected_ratio - 1.0).abs() < 0.15,
            "seed {seed} a {amplitude:.2}: half ratio {ratio:.3}, want ≈{expected_ratio:.3}"
        );

        // Minute-resolution shape: Pearson correlation with the analytic
        // per-minute rate must be strong.
        let expected: Vec<f64> = (0..minutes)
            .map(|m| {
                let t = 60.0 * (m as f64 + 0.5);
                mean * (1.0 + amplitude * (std::f64::consts::TAU * t / horizon).sin())
            })
            .collect();
        let n = minutes as f64;
        let mean_c = counts.iter().sum::<usize>() as f64 / n;
        let mean_e = expected.iter().sum::<f64>() / n;
        let (mut cov, mut var_c, mut var_e) = (0.0, 0.0, 0.0);
        for (c, e) in counts.iter().zip(&expected) {
            let dc = *c as f64 - mean_c;
            let de = e - mean_e;
            cov += dc * de;
            var_c += dc * dc;
            var_e += de * de;
        }
        let r = cov / (var_c.sqrt() * var_e.sqrt()).max(1e-12);
        prop_assert!(r > 0.7, "seed {seed} a {amplitude:.2}: correlation {r:.3}");
    }

    /// CSV round trip: writing a scenario's trace, reading it back, and
    /// writing it again yields byte-identical CSV. (The first write
    /// truncates timestamps to the 6-decimal CSV precision, so the bytes —
    /// not the raw micro-tick times — are the round-trip invariant.)
    #[test]
    fn scenario_traces_round_trip_csv(seed in any::<u64>()) {
        let scale = Scale::smoke();
        for sc in registry() {
            let t = sc.trace(&scale, seed);
            let mut first = Vec::new();
            t.write_csv(&mut first).unwrap();
            let parsed = Trace::read_csv(std::io::BufReader::new(&first[..])).unwrap();
            prop_assert_eq!(parsed.len(), t.len(), "{} seed {}", sc.name, seed);
            let mut second = Vec::new();
            parsed.write_csv(&mut second).unwrap();
            prop_assert_eq!(&first, &second, "{} seed {}: CSV not byte-stable", sc.name, seed);
        }
    }
}

/// The paper-scale `paper` scenario reproduces the paper's published
/// shape: exact volume, 6-minute horizon, and ~paper request rate.
#[test]
fn paper_scenario_matches_published_shape() {
    let sc = gfaas_workload::scenario::find("paper").unwrap();
    let t = sc.trace(&Scale::paper(), 11);
    let s = t.stats();
    assert_eq!(s.total, PAPER_REQUESTS_PER_MIN * 6);
    assert_eq!(s.working_set, 25);
    assert!(s.span_secs < 360.0);
    assert!((AZURE_ZIPF_ALPHA - 1.2176).abs() < 1e-12);
}
