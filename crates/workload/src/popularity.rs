//! Popularity models: *which function* each arrival invokes.
//!
//! The paper fixes one static Zipf law (§V-A1); these models generalise
//! it along the axes the real Azure trace actually moves on — rank
//! rotation over time, flash crowds on cold functions, and working-set
//! membership churn — while keeping the instantaneous law Zipf-shaped so
//! results stay comparable to the paper's.

use gfaas_sim::rng::{DetRng, Zipf};
use gfaas_sim::time::SimTime;

/// A (possibly time-varying) distribution over function ids.
#[derive(Debug, Clone, PartialEq)]
pub enum Popularity {
    /// The paper's model: a static Zipf(α) law over a fixed working set;
    /// function id == popularity rank.
    Zipf {
        /// Number of functions.
        working_set: usize,
        /// Zipf exponent.
        alpha: f64,
    },
    /// Zipf whose rank→function assignment rotates by one position every
    /// `period_secs`: the identity of the hottest function keeps moving,
    /// so caches tuned to a frozen head keep going stale while the
    /// aggregate law stays Zipf.
    DriftingZipf {
        /// Number of functions.
        working_set: usize,
        /// Zipf exponent.
        alpha: f64,
        /// Seconds between successive one-position rotations.
        period_secs: f64,
    },
    /// A static Zipf law, except that inside `[start_secs, start_secs +
    /// duration_secs)` a previously unseen cold function captures
    /// `crowd_share` of all traffic — the flash-crowd / viral-event case.
    FlashCrowd {
        /// Number of functions in the base law.
        working_set: usize,
        /// Zipf exponent of the base law.
        alpha: f64,
        /// Id of the crowd function (conventionally `working_set`, i.e.
        /// outside the base set, so it starts fully cold).
        crowd_function: u32,
        /// When the crowd begins, seconds.
        start_secs: f64,
        /// How long it lasts, seconds.
        duration_secs: f64,
        /// Fraction of in-window traffic it captures, in `[0, 1]`.
        crowd_share: f64,
    },
    /// Working-set churn: every `period_secs` the whole id window slides
    /// forward by `shift`, retiring the `shift` hottest functions and
    /// introducing `shift` brand-new cold ones. The instantaneous law is
    /// always Zipf; membership is what changes.
    Churn {
        /// Number of simultaneously active functions.
        working_set: usize,
        /// Zipf exponent.
        alpha: f64,
        /// Seconds between membership shifts.
        period_secs: f64,
        /// How many functions enter/leave per shift (≥ 1).
        shift: usize,
    },
}

impl Popularity {
    /// The number of simultaneously active functions.
    pub fn working_set(&self) -> usize {
        match self {
            Popularity::Zipf { working_set, .. }
            | Popularity::DriftingZipf { working_set, .. }
            | Popularity::FlashCrowd { working_set, .. }
            | Popularity::Churn { working_set, .. } => *working_set,
        }
    }

    /// Precomputes the sampler (Zipf inverse CDF) for this model.
    pub fn sampler(&self) -> PopularitySampler {
        let (ws, alpha) = match self {
            Popularity::Zipf { working_set, alpha }
            | Popularity::DriftingZipf {
                working_set, alpha, ..
            }
            | Popularity::FlashCrowd {
                working_set, alpha, ..
            }
            | Popularity::Churn {
                working_set, alpha, ..
            } => (*working_set, *alpha),
        };
        assert!(ws > 0, "working set must be nonempty");
        match self {
            Popularity::DriftingZipf { period_secs, .. }
            | Popularity::Churn { period_secs, .. } => {
                assert!(*period_secs > 0.0, "period must be positive");
            }
            Popularity::FlashCrowd {
                duration_secs,
                crowd_share,
                ..
            } => {
                assert!(*duration_secs >= 0.0, "duration must be nonnegative");
                assert!(
                    (0.0..=1.0).contains(crowd_share),
                    "crowd share must be in [0, 1]"
                );
            }
            Popularity::Zipf { .. } => {}
        }
        if let Popularity::Churn { shift, .. } = self {
            assert!(*shift > 0, "churn shift must be at least 1");
        }
        PopularitySampler {
            model: self.clone(),
            zipf: Zipf::new(ws, alpha),
        }
    }
}

/// A ready-to-draw popularity model: the [`Popularity`] config plus its
/// precomputed Zipf inverse CDF.
#[derive(Debug, Clone)]
pub struct PopularitySampler {
    model: Popularity,
    zipf: Zipf,
}

impl PopularitySampler {
    /// Draws the function id invoked by an arrival at time `at`.
    pub fn sample(&self, at: SimTime, rng: &mut DetRng) -> u32 {
        let t = at.as_secs_f64();
        match &self.model {
            Popularity::Zipf { .. } => self.zipf.sample(rng) as u32,
            Popularity::DriftingZipf {
                working_set,
                period_secs,
                ..
            } => {
                let rank = self.zipf.sample(rng) as u64;
                let rotation = (t / period_secs) as u64;
                ((rank + rotation) % *working_set as u64) as u32
            }
            Popularity::FlashCrowd {
                crowd_function,
                start_secs,
                duration_secs,
                crowd_share,
                ..
            } => {
                let in_window = t >= *start_secs && t < start_secs + duration_secs;
                if in_window && rng.chance(*crowd_share) {
                    *crowd_function
                } else {
                    self.zipf.sample(rng) as u32
                }
            }
            Popularity::Churn {
                period_secs, shift, ..
            } => {
                let rank = self.zipf.sample(rng) as u64;
                let epoch = (t / period_secs) as u64;
                (rank + epoch * *shift as u64) as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALPHA: f64 = 1.2176;

    fn head_of(counts: &std::collections::BTreeMap<u32, usize>) -> u32 {
        *counts.iter().max_by_key(|(_, &c)| c).unwrap().0
    }

    fn sample_counts(
        s: &PopularitySampler,
        t: f64,
        n: usize,
        seed: u64,
    ) -> std::collections::BTreeMap<u32, usize> {
        let mut rng = DetRng::new(seed);
        let at = SimTime::from_secs_f64(t);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..n {
            *counts.entry(s.sample(at, &mut rng)).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn static_zipf_head_is_rank_zero() {
        let s = Popularity::Zipf {
            working_set: 25,
            alpha: ALPHA,
        }
        .sampler();
        let counts = sample_counts(&s, 0.0, 5000, 1);
        assert_eq!(head_of(&counts), 0);
        assert!(counts.keys().all(|&f| f < 25));
    }

    #[test]
    fn drift_rotates_the_head() {
        let s = Popularity::DriftingZipf {
            working_set: 25,
            alpha: ALPHA,
            period_secs: 60.0,
        }
        .sampler();
        // Epoch 0: head is function 0. Epoch 3 (t = 180 s): head is 3.
        assert_eq!(head_of(&sample_counts(&s, 0.0, 5000, 2)), 0);
        assert_eq!(head_of(&sample_counts(&s, 180.0, 5000, 2)), 3);
        // Ids stay inside the working set.
        assert!(sample_counts(&s, 500.0, 2000, 3).keys().all(|&f| f < 25));
    }

    #[test]
    fn flash_crowd_spikes_only_in_window() {
        let s = Popularity::FlashCrowd {
            working_set: 25,
            alpha: ALPHA,
            crowd_function: 25,
            start_secs: 100.0,
            duration_secs: 50.0,
            crowd_share: 0.5,
        }
        .sampler();
        let before = sample_counts(&s, 50.0, 4000, 4);
        assert!(!before.contains_key(&25), "crowd fired before its window");
        let during = sample_counts(&s, 120.0, 4000, 4);
        let share = during[&25] as f64 / 4000.0;
        assert!((share - 0.5).abs() < 0.05, "share {share}");
        let after = sample_counts(&s, 151.0, 4000, 4);
        assert!(!after.contains_key(&25), "crowd fired after its window");
    }

    #[test]
    fn churn_marches_ids_forward() {
        let s = Popularity::Churn {
            working_set: 25,
            alpha: ALPHA,
            period_secs: 90.0,
            shift: 5,
        }
        .sampler();
        let epoch0 = sample_counts(&s, 0.0, 3000, 5);
        assert!(epoch0.keys().all(|&f| f < 25));
        let epoch2 = sample_counts(&s, 200.0, 3000, 5);
        assert_eq!(head_of(&epoch2), 10, "epoch 2 head shifted by 2·5");
        assert!(epoch2.keys().all(|&f| (10..35).contains(&f)));
    }
}
