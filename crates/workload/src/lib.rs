//! `gfaas-workload` — composable, seed-deterministic scenario generation.
//!
//! The paper evaluates on exactly one workload: a 6-minute Azure-like
//! trace with a frozen Zipf popularity law (`gfaas_trace::azure`). This
//! crate decomposes workload synthesis into three orthogonal parts so new
//! scenarios are a one-liner rather than a fork of the Azure generator:
//!
//! * [`Arrival`] — *when* requests arrive (homogeneous Poisson, on-off
//!   MMPP bursts, diurnal sinusoid, replay of per-minute counts);
//! * [`Popularity`] — *which function* each arrival invokes (static Zipf,
//!   drifting Zipf, flash crowd, working-set churn);
//! * [`ModelMapping`] — *which Table I model* a function id maps to.
//!
//! A [`WorkloadSpec`] combines the three into a `gfaas_trace::Trace`, so
//! `Cluster::run` consumes the result unchanged. [`scenario`] names and
//! documents the preset combinations every report binary sweeps.

#![warn(missing_docs)]

pub mod arrival;
pub mod popularity;
pub mod scenario;

use gfaas_sim::rng::DetRng;
use gfaas_trace::{interleaved_model_of, Trace, TraceRequest};

pub use arrival::Arrival;
pub use popularity::{Popularity, PopularitySampler};
pub use scenario::{registry, Scale, Scenario, ScenarioKind};

/// How function ids map onto the model zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelMapping {
    /// The paper's mapping: interleave the size-ordered model list
    /// (smallest, largest, 2nd smallest, …) so every popularity prefix
    /// spans the full size spectrum ([`gfaas_trace::interleaved_model_of`]).
    InterleavedSizes {
        /// Number of models (22 for Table I).
        num_models: u32,
    },
    /// Plain `function % num_models` — popular functions get the smallest
    /// models (useful as an adversarial contrast to the paper's mapping).
    Modulo {
        /// Number of models.
        num_models: u32,
    },
    /// Every function runs the same model (single-model saturation).
    Fixed {
        /// The model id.
        model: u32,
    },
}

impl ModelMapping {
    /// The model a function id maps to.
    pub fn model_of(&self, function: u32) -> u32 {
        match self {
            ModelMapping::InterleavedSizes { num_models } => {
                interleaved_model_of(function, *num_models)
            }
            ModelMapping::Modulo { num_models } => {
                assert!(*num_models > 0, "need at least one model");
                function % num_models
            }
            ModelMapping::Fixed { model } => *model,
        }
    }
}

/// A complete workload description: arrival process × popularity model ×
/// model mapping over a horizon, pinned to a seed.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// When requests arrive.
    pub arrival: Arrival,
    /// Which function each arrival invokes.
    pub popularity: Popularity,
    /// Which model each function runs.
    pub mapping: ModelMapping,
    /// Trace horizon, seconds.
    pub horizon_secs: f64,
    /// RNG seed; same spec + same seed → byte-identical trace.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Generates the trace. The arrival and popularity draws come from
    /// independent forked RNG streams, so adding a draw to one part never
    /// perturbs the other.
    pub fn generate(&self) -> Trace {
        let mut root = DetRng::new(self.seed);
        let mut arrival_rng = root.fork(0xA441);
        let mut pop_rng = root.fork(0x9019);
        let times = self.arrival.sample(self.horizon_secs, &mut arrival_rng);
        let sampler = self.popularity.sampler();
        let requests: Vec<TraceRequest> = times
            .into_iter()
            .map(|at| {
                let function = sampler.sample(at, &mut pop_rng);
                TraceRequest {
                    at,
                    function,
                    model: self.mapping.model_of(function),
                }
            })
            .collect();
        Trace::new(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfaas_trace::AzureTraceConfig;

    #[test]
    fn interleaved_matches_azure_config() {
        let cfg = AzureTraceConfig::paper(35, 0);
        let m = ModelMapping::InterleavedSizes { num_models: 22 };
        for f in 0..100u32 {
            assert_eq!(m.model_of(f), cfg.model_of(f));
        }
    }

    #[test]
    fn mapping_variants() {
        assert_eq!(ModelMapping::Modulo { num_models: 7 }.model_of(9), 2);
        assert_eq!(ModelMapping::Fixed { model: 4 }.model_of(9), 4);
    }

    #[test]
    fn spec_generates_deterministic_sorted_traces() {
        let spec = WorkloadSpec {
            arrival: Arrival::Poisson {
                rate_per_min: 325.0,
            },
            popularity: Popularity::Zipf {
                working_set: 25,
                alpha: 1.2176,
            },
            mapping: ModelMapping::InterleavedSizes { num_models: 22 },
            horizon_secs: 360.0,
            seed: 11,
        };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.requests(), b.requests());
        assert!(a.is_sorted_by_arrival());
        assert!(!a.is_empty());
        assert!(a.requests().iter().all(|r| r.model < 22));
        let c = WorkloadSpec { seed: 12, ..spec }.generate();
        assert_ne!(a.requests(), c.requests());
    }
}
