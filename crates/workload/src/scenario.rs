//! The scenario registry: named, documented workload presets.
//!
//! Every preset is a [`WorkloadSpec`] template parameterised by a
//! [`Scale`] (paper testbed volume or 10× "production" volume) and a
//! seed. The `paper` scenario is special-cased to delegate to
//! [`AzureTraceConfig`] so its traces — and therefore every number a
//! suite reports for it — are byte-identical to the ones
//! `fig4_comparison` and the rest of the report binaries already print.

use gfaas_trace::azure::AZURE_ZIPF_ALPHA;
use gfaas_trace::{AzureTraceConfig, Trace};

use crate::arrival::Arrival;
use crate::popularity::Popularity;
use crate::{ModelMapping, WorkloadSpec};

/// Number of models in the paper's Table I zoo.
pub const NUM_MODELS: u32 = 22;

/// Workload volume: how hard the scenarios push the paper testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Display name.
    pub name: &'static str,
    /// Mean request volume per minute.
    pub requests_per_min: usize,
    /// Horizon, minutes.
    pub minutes: usize,
    /// Working-set size (simultaneously popular functions).
    pub working_set: usize,
}

impl Scale {
    /// The paper's setup: 325 req/min × 6 min, working set 25 (the middle
    /// of the paper's 15/25/35 sweep).
    pub const fn paper() -> Scale {
        Scale {
            name: "paper",
            requests_per_min: 325,
            minutes: 6,
            working_set: 25,
        }
    }

    /// 10× the paper's volume over a doubled horizon with the widest
    /// working set — the "production" pressure test.
    pub const fn production() -> Scale {
        Scale {
            name: "production",
            requests_per_min: 3250,
            minutes: 12,
            working_set: 35,
        }
    }

    /// 100× the paper's volume on the paper horizon — the tier the
    /// indexed hot path is sized for (~2 × 10^5 requests per trace).
    pub const fn hyperscale() -> Scale {
        Scale {
            name: "hyperscale",
            requests_per_min: 32_500,
            minutes: 6,
            working_set: 45,
        }
    }

    /// The shortest useful configuration: 60 req over one minute, for CI
    /// smoke runs.
    pub const fn smoke() -> Scale {
        Scale {
            name: "smoke",
            requests_per_min: 60,
            minutes: 1,
            working_set: 15,
        }
    }

    /// The horizon in seconds.
    pub fn horizon_secs(&self) -> f64 {
        60.0 * self.minutes as f64
    }
}

/// Which preset a [`Scenario`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// The paper's workload, verbatim ([`AzureTraceConfig`]).
    Paper,
    /// On-off MMPP bursts (3× rate while bursting) over static Zipf.
    Burst,
    /// One full diurnal sinusoid (±80%) over static Zipf.
    Diurnal,
    /// Steady paper-shaped volume, but mid-trace a cold function captures
    /// half of all traffic for a third of the horizon.
    FlashCrowd,
    /// Poisson arrivals with the Zipf head rotating one rank six times
    /// over the horizon.
    Drift,
    /// Poisson arrivals with the working-set membership sliding forward
    /// (hot functions retire, cold ones enter) thrice over the horizon.
    Churn,
}

/// A named, documented workload preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Registry name (stable; used by CLI flags and reports).
    pub name: &'static str,
    /// One-line description for tables and docs.
    pub description: &'static str,
    /// The preset this scenario instantiates.
    pub kind: ScenarioKind,
}

/// All registered scenarios, in presentation order.
pub fn registry() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "paper",
            description: "the paper's Azure-like trace (calibrated Zipf, normalised volume)",
            kind: ScenarioKind::Paper,
        },
        Scenario {
            name: "burst",
            description: "on-off MMPP arrivals: 3x rate bursts ~10 s long between quiet spells",
            kind: ScenarioKind::Burst,
        },
        Scenario {
            name: "diurnal",
            description: "one full sinusoidal day-cycle (+/-80% of mean rate) over the horizon",
            kind: ScenarioKind::Diurnal,
        },
        Scenario {
            name: "flash_crowd",
            description: "a cold function captures 50% of traffic for the middle third",
            kind: ScenarioKind::FlashCrowd,
        },
        Scenario {
            name: "drift",
            description: "Zipf head rotates one rank six times over the horizon",
            kind: ScenarioKind::Drift,
        },
        Scenario {
            name: "churn",
            description: "working set slides forward thrice: hot functions retire, cold enter",
            kind: ScenarioKind::Churn,
        },
    ]
}

/// Looks a scenario up by its registry name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

/// The paper generator at an arbitrary scale (the `paper` preset).
fn azure_config(scale: &Scale, seed: u64) -> AzureTraceConfig {
    let mut cfg = AzureTraceConfig::paper(scale.working_set, seed);
    cfg.requests_per_min = scale.requests_per_min;
    cfg.minutes = scale.minutes;
    cfg
}

impl Scenario {
    /// The composed [`WorkloadSpec`] behind this scenario at the given
    /// scale and seed; `None` for [`ScenarioKind::Paper`], which delegates
    /// to [`AzureTraceConfig`] verbatim (so its numbers stay bit-equal to
    /// the existing report binaries).
    pub fn spec(&self, scale: &Scale, seed: u64) -> Option<WorkloadSpec> {
        let rpm = scale.requests_per_min as f64;
        let ws = scale.working_set;
        let horizon = scale.horizon_secs();
        let mapping = ModelMapping::InterleavedSizes {
            num_models: NUM_MODELS,
        };
        let zipf = Popularity::Zipf {
            working_set: ws,
            alpha: AZURE_ZIPF_ALPHA,
        };
        let spec = |arrival, popularity| {
            Some(WorkloadSpec {
                arrival,
                popularity,
                mapping,
                horizon_secs: horizon,
                seed,
            })
        };
        match self.kind {
            ScenarioKind::Paper => None,
            // Dwell means 30 s quiet / 10 s bursting with a 3x burst rate
            // and a 1/3x quiet rate keep the long-run mean at exactly rpm
            // — (3r·10 + r/3·30) / 40 = r — while fitting ~9 on-off cycles
            // into the paper's 6-minute horizon so realised volume
            // concentrates near the target.
            ScenarioKind::Burst => spec(
                Arrival::OnOff {
                    base_rate_per_min: rpm / 3.0,
                    burst_rate_per_min: 3.0 * rpm,
                    mean_base_secs: 30.0,
                    mean_burst_secs: 10.0,
                },
                zipf,
            ),
            ScenarioKind::Diurnal => spec(Arrival::diurnal(rpm, 0.8, horizon), zipf),
            ScenarioKind::FlashCrowd => spec(
                Arrival::Replay {
                    per_minute: vec![scale.requests_per_min; scale.minutes],
                },
                Popularity::FlashCrowd {
                    working_set: ws,
                    alpha: AZURE_ZIPF_ALPHA,
                    crowd_function: ws as u32,
                    start_secs: horizon / 3.0,
                    duration_secs: horizon / 3.0,
                    crowd_share: 0.5,
                },
            ),
            ScenarioKind::Drift => spec(
                Arrival::Poisson { rate_per_min: rpm },
                Popularity::DriftingZipf {
                    working_set: ws,
                    alpha: AZURE_ZIPF_ALPHA,
                    period_secs: horizon / 6.0,
                },
            ),
            ScenarioKind::Churn => spec(
                Arrival::Poisson { rate_per_min: rpm },
                Popularity::Churn {
                    working_set: ws,
                    alpha: AZURE_ZIPF_ALPHA,
                    period_secs: horizon / 3.0,
                    shift: (ws / 5).max(1),
                },
            ),
        }
    }

    /// Generates this scenario's trace at the given scale and seed.
    pub fn trace(&self, scale: &Scale, seed: u64) -> Trace {
        match self.spec(scale, seed) {
            Some(spec) => spec.generate(),
            None => azure_config(scale, seed).generate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_six_unique_named_scenarios() {
        let reg = registry();
        assert_eq!(reg.len(), 6);
        let mut names: Vec<&str> = reg.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "duplicate scenario names");
        assert!(find("flash_crowd").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn paper_scenario_is_bit_equal_to_azure_generator() {
        let sc = find("paper").unwrap();
        let scale = Scale::paper();
        for seed in [11, 23, 47] {
            let ours = sc.trace(&scale, seed);
            let azure = AzureTraceConfig::paper(25, seed).generate();
            assert_eq!(ours.requests(), azure.requests(), "seed {seed}");
        }
    }

    #[test]
    fn every_scenario_generates_at_every_scale() {
        for scale in [Scale::paper(), Scale::production(), Scale::smoke()] {
            for sc in registry() {
                let t = sc.trace(&scale, 7);
                assert!(!t.is_empty(), "{} at {}", sc.name, scale.name);
                assert!(t.is_sorted_by_arrival(), "{} at {}", sc.name, scale.name);
                assert!(
                    t.requests().iter().all(|r| r.model < NUM_MODELS),
                    "{} at {} maps outside the zoo",
                    sc.name,
                    scale.name
                );
                // Same seed → same trace.
                assert_eq!(t.requests(), sc.trace(&scale, 7).requests());
            }
        }
    }

    #[test]
    fn scenarios_shape_their_workloads() {
        let scale = Scale::paper();
        let cv = |name: &str| find(name).unwrap().trace(&scale, 3).stats().minute_cv;
        assert!(cv("burst") > 2.0 * cv("paper"), "burst must be burstier");
        assert!(cv("diurnal") > 2.0 * cv("paper"), "diurnal must swing");

        // Flash crowd: the crowd function exists and dominates mid-trace.
        let t = find("flash_crowd").unwrap().trace(&scale, 3);
        let crowd = scale.working_set as u32;
        let counts = t.function_counts();
        let share = counts[&crowd] as f64 / t.len() as f64;
        // 50% of the middle third ≈ 1/6 of all traffic.
        assert!((share - 1.0 / 6.0).abs() < 0.05, "crowd share {share}");

        // Churn: more distinct functions touched than the working set.
        let churned = find("churn").unwrap().trace(&scale, 3);
        assert!(churned.stats().working_set > scale.working_set);

        // Drift: rank 0's traffic is spread over rotations, so the single
        // hottest function carries clearly less than under the static law.
        let static_head = *find("paper")
            .unwrap()
            .trace(&scale, 3)
            .function_counts()
            .values()
            .max()
            .unwrap();
        let drift_head = *find("drift")
            .unwrap()
            .trace(&scale, 3)
            .function_counts()
            .values()
            .max()
            .unwrap();
        assert!(
            (drift_head as f64) < 0.8 * static_head as f64,
            "drift head {drift_head} vs static {static_head}"
        );
    }
}
