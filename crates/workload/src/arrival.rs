//! Arrival processes: *when* requests hit the cluster.
//!
//! Each process turns a horizon plus a seeded RNG into a list of arrival
//! instants; it knows nothing about which function arrives (that is the
//! popularity model's job). All processes are seed-deterministic and
//! quote their load as requests **per minute** to match the paper's
//! normalised 325/min.

use gfaas_sim::rng::DetRng;
use gfaas_sim::time::{SimTime, TICKS_PER_SEC};

/// Seconds → [`SimTime`], truncating toward zero. `SimTime::from_secs_f64`
/// rounds to the *nearest* microsecond tick, which would let a draw in
/// `[59.9999995, 60.0)` land on the 60 s tick — outside the half-open
/// window the arrival processes promise (and, for [`Arrival::Replay`],
/// in the wrong minute bucket). Flooring keeps every instant strictly
/// below its exclusive bound, since all bounds here are whole seconds.
fn tick_floor(secs: f64) -> SimTime {
    SimTime::from_micros((secs * TICKS_PER_SEC as f64) as u64)
}

/// A point process over the trace horizon.
#[derive(Debug, Clone, PartialEq)]
pub enum Arrival {
    /// Homogeneous Poisson arrivals: exponential inter-arrival gaps at a
    /// constant rate. The natural "steady but noisy" load; its per-minute
    /// coefficient of variation is ≈ 1/√rate.
    Poisson {
        /// Mean arrival rate, requests per minute.
        rate_per_min: f64,
    },
    /// A two-state Markov-modulated Poisson process (on-off bursts): the
    /// process alternates between a quiet *base* state and a *burst*
    /// state, with exponentially distributed dwell times. Models the
    /// timer- and event-driven burstiness Shahrad et al. report in the
    /// real Azure trace.
    OnOff {
        /// Arrival rate in the quiet state, requests per minute.
        base_rate_per_min: f64,
        /// Arrival rate while bursting, requests per minute.
        burst_rate_per_min: f64,
        /// Mean dwell time in the quiet state, seconds.
        mean_base_secs: f64,
        /// Mean dwell time in the burst state, seconds.
        mean_burst_secs: f64,
    },
    /// A nonhomogeneous Poisson process whose rate follows one sinusoid:
    /// `rate(t) = mean · (1 + amplitude · sin(2πt/period))`. One period
    /// spanning the horizon compresses a day's diurnal swing into the
    /// trace. Sampled by Lewis–Shedler thinning, which is only valid while
    /// the instantaneous rate stays nonnegative — construct via
    /// [`Arrival::diurnal`], which validates `relative_amplitude ∈ [0, 1]`
    /// up front (an amplitude above 1 would drive the rate negative around
    /// the trough and silently skew thinning acceptance).
    Diurnal {
        /// Mean arrival rate, requests per minute.
        mean_rate_per_min: f64,
        /// Relative swing around the mean, in `[0, 1]`.
        relative_amplitude: f64,
        /// Sinusoid period, seconds.
        period_secs: f64,
    },
    /// Replay of per-minute totals: minute *m* receives exactly
    /// `per_minute[m]` requests placed uniformly at random within the
    /// minute — the arrival shape of the paper's normalised trace, usable
    /// with real per-minute counts extracted from the Azure dataset.
    Replay {
        /// Request count for each minute of the horizon.
        per_minute: Vec<usize>,
    },
}

impl Arrival {
    /// A validated [`Arrival::Diurnal`]: one sinusoid of `period_secs`
    /// around `mean_rate_per_min` with relative swing
    /// `relative_amplitude`.
    ///
    /// # Panics
    /// If the mean rate or period is nonpositive, or the amplitude lies
    /// outside `[0, 1]` (the thinning sampler would otherwise clamp a
    /// negative instantaneous rate and mis-shape the trough).
    pub fn diurnal(mean_rate_per_min: f64, relative_amplitude: f64, period_secs: f64) -> Arrival {
        assert!(mean_rate_per_min > 0.0, "mean rate must be positive");
        assert!(
            (0.0..=1.0).contains(&relative_amplitude),
            "relative_amplitude {relative_amplitude} must be in [0, 1]"
        );
        assert!(period_secs > 0.0, "period must be positive");
        Arrival::Diurnal {
            mean_rate_per_min,
            relative_amplitude,
            period_secs,
        }
    }

    /// The process's long-run mean load, requests per minute. For
    /// [`Arrival::Replay`] this is the mean of the given counts.
    pub fn mean_rate_per_min(&self) -> f64 {
        match self {
            Arrival::Poisson { rate_per_min } => *rate_per_min,
            Arrival::OnOff {
                base_rate_per_min,
                burst_rate_per_min,
                mean_base_secs,
                mean_burst_secs,
            } => {
                let total = mean_base_secs + mean_burst_secs;
                (base_rate_per_min * mean_base_secs + burst_rate_per_min * mean_burst_secs) / total
            }
            Arrival::Diurnal {
                mean_rate_per_min, ..
            } => *mean_rate_per_min,
            Arrival::Replay { per_minute } => {
                let n = per_minute.len().max(1) as f64;
                per_minute.iter().sum::<usize>() as f64 / n
            }
        }
    }

    /// Samples the arrival instants over `[0, horizon_secs)`, in
    /// nondecreasing order. Deterministic in `rng`'s seed.
    pub fn sample(&self, horizon_secs: f64, rng: &mut DetRng) -> Vec<SimTime> {
        assert!(horizon_secs > 0.0, "horizon must be positive");
        let mut out = Vec::new();
        match self {
            Arrival::Poisson { rate_per_min } => {
                assert!(*rate_per_min > 0.0, "Poisson rate must be positive");
                let rate = rate_per_min / 60.0;
                let mut t = rng.exponential(rate);
                while t < horizon_secs {
                    out.push(tick_floor(t));
                    t += rng.exponential(rate);
                }
            }
            Arrival::OnOff {
                base_rate_per_min,
                burst_rate_per_min,
                mean_base_secs,
                mean_burst_secs,
            } => {
                assert!(
                    *base_rate_per_min >= 0.0 && *burst_rate_per_min > 0.0,
                    "on-off rates must be nonnegative (burst positive)"
                );
                assert!(
                    *mean_base_secs > 0.0 && *mean_burst_secs > 0.0,
                    "dwell times must be positive"
                );
                let mut t = 0.0;
                let mut bursting = false;
                while t < horizon_secs {
                    let (rate_min, dwell_mean) = if bursting {
                        (*burst_rate_per_min, *mean_burst_secs)
                    } else {
                        (*base_rate_per_min, *mean_base_secs)
                    };
                    let dwell = rng.exponential(1.0 / dwell_mean);
                    let end = (t + dwell).min(horizon_secs);
                    let rate = rate_min / 60.0;
                    if rate > 0.0 {
                        let mut a = t + rng.exponential(rate);
                        while a < end {
                            out.push(tick_floor(a));
                            a += rng.exponential(rate);
                        }
                    }
                    t += dwell;
                    bursting = !bursting;
                }
            }
            Arrival::Diurnal {
                mean_rate_per_min,
                relative_amplitude,
                period_secs,
            } => {
                assert!(*mean_rate_per_min > 0.0, "mean rate must be positive");
                assert!(
                    (0.0..=1.0).contains(relative_amplitude),
                    "amplitude must be in [0, 1]"
                );
                assert!(*period_secs > 0.0, "period must be positive");
                let mean = mean_rate_per_min / 60.0;
                let max_rate = mean * (1.0 + relative_amplitude);
                let mut t = 0.0;
                loop {
                    t += rng.exponential(max_rate);
                    if t >= horizon_secs {
                        break;
                    }
                    let rate = mean
                        * (1.0
                            + relative_amplitude * (std::f64::consts::TAU * t / period_secs).sin());
                    if rng.next_f64() * max_rate < rate {
                        out.push(tick_floor(t));
                    }
                }
            }
            Arrival::Replay { per_minute } => {
                assert!(
                    per_minute.len() as f64 * 60.0 <= horizon_secs + 1e-9,
                    "replay counts exceed the horizon"
                );
                for (minute, &count) in per_minute.iter().enumerate() {
                    let start = 60.0 * minute as f64;
                    for _ in 0..count {
                        out.push(tick_floor(start + rng.range_f64(0.0, 60.0)));
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfaas_trace::{Trace, TraceRequest};

    /// Wraps arrival instants into a single-function trace so
    /// `TraceStats::minute_cv` can score the process's burstiness.
    fn trace_of(arrival: &Arrival, horizon: f64, seed: u64) -> Trace {
        let mut rng = DetRng::new(seed);
        let reqs = arrival
            .sample(horizon, &mut rng)
            .into_iter()
            .map(|at| TraceRequest {
                at,
                function: 0,
                model: 0,
            })
            .collect();
        Trace::new(reqs)
    }

    #[test]
    fn poisson_hits_target_rate() {
        let a = Arrival::Poisson {
            rate_per_min: 300.0,
        };
        let t = trace_of(&a, 600.0, 1);
        let rate = t.len() as f64 / 10.0;
        assert!((rate - 300.0).abs() < 30.0, "rate {rate}");
        assert!(t.is_sorted_by_arrival());
    }

    #[test]
    fn on_off_mean_rate_formula() {
        let a = Arrival::OnOff {
            base_rate_per_min: 100.0,
            burst_rate_per_min: 1000.0,
            mean_base_secs: 60.0,
            mean_burst_secs: 20.0,
        };
        assert!((a.mean_rate_per_min() - 325.0).abs() < 1e-9);
        let t = trace_of(&a, 3600.0, 2);
        let rate = t.len() as f64 / 60.0;
        assert!((rate - 325.0).abs() < 75.0, "rate {rate}");
    }

    #[test]
    fn burstiness_orders_processes_by_minute_cv() {
        // The satellite check: TraceStats::minute_cv must rank the
        // processes steady < Poisson < diurnal/on-off.
        let horizon = 1800.0;
        let steady = trace_of(
            &Arrival::Replay {
                per_minute: vec![325; 30],
            },
            horizon,
            3,
        );
        let poisson = trace_of(
            &Arrival::Poisson {
                rate_per_min: 325.0,
            },
            horizon,
            3,
        );
        let onoff = trace_of(
            &Arrival::OnOff {
                base_rate_per_min: 100.0,
                burst_rate_per_min: 1000.0,
                mean_base_secs: 60.0,
                mean_burst_secs: 20.0,
            },
            horizon,
            3,
        );
        let diurnal = trace_of(
            &Arrival::Diurnal {
                mean_rate_per_min: 325.0,
                relative_amplitude: 0.8,
                period_secs: horizon,
            },
            horizon,
            3,
        );
        let cv = |t: &Trace| t.stats().minute_cv;
        assert_eq!(cv(&steady), 0.0, "exact per-minute replay is steady");
        // Poisson CV ≈ 1/√325 ≈ 0.055.
        assert!(
            cv(&poisson) > 0.01 && cv(&poisson) < 0.15,
            "{}",
            cv(&poisson)
        );
        assert!(cv(&onoff) > 2.0 * cv(&poisson), "on-off {}", cv(&onoff));
        assert!(
            cv(&diurnal) > 2.0 * cv(&poisson),
            "diurnal {}",
            cv(&diurnal)
        );
    }

    #[test]
    fn diurnal_peak_to_trough() {
        // One full period over the horizon: the first half (sin > 0) must
        // carry more load than the second half (sin < 0).
        let a = Arrival::Diurnal {
            mean_rate_per_min: 600.0,
            relative_amplitude: 0.9,
            period_secs: 1200.0,
        };
        let t = trace_of(&a, 1200.0, 5);
        let half = SimTime::from_secs(600);
        let first = t.requests().iter().filter(|r| r.at < half).count();
        let second = t.len() - first;
        assert!(
            first as f64 > 1.5 * second as f64,
            "first {first} second {second}"
        );
    }

    #[test]
    fn replay_counts_are_exact() {
        let a = Arrival::Replay {
            per_minute: vec![5, 0, 12],
        };
        let t = trace_of(&a, 180.0, 7);
        assert_eq!(t.minute_counts(), vec![5, 0, 12]);
        assert!((a.mean_rate_per_min() - 17.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn diurnal_constructor_validates_amplitude_bounds() {
        // The boundary values are legal…
        let _ = Arrival::diurnal(100.0, 0.0, 60.0);
        let _ = Arrival::diurnal(100.0, 1.0, 60.0);
        // …and out-of-range amplitudes fail at construction, not sampling.
        for bad in [-0.1, 1.0001, 2.5, f64::NAN] {
            let r = std::panic::catch_unwind(|| Arrival::diurnal(100.0, bad, 60.0));
            assert!(r.is_err(), "amplitude {bad} must be rejected");
        }
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn diurnal_sampling_rejects_raw_overdriven_amplitude() {
        // The enum's fields are public, so a literal can still carry a bad
        // amplitude; the sampler's assert is the backstop.
        let a = Arrival::Diurnal {
            mean_rate_per_min: 100.0,
            relative_amplitude: 1.5,
            period_secs: 60.0,
        };
        let _ = a.sample(60.0, &mut DetRng::new(1));
    }

    #[test]
    fn replay_accepts_real_azure_dataset_totals() {
        // The ROADMAP's real-trace path: an Azure Functions per-minute
        // CSV parses into totals that drive `Arrival::Replay` directly.
        let csv = "HashOwner,HashApp,HashFunction,Trigger,1,2,3\n\
                   o1,a1,f1,http,5,0,2\n\
                   o2,a2,f2,timer,1,3,0\n";
        let ds =
            gfaas_trace::AzureFunctionsDataset::read_csv(std::io::BufReader::new(csv.as_bytes()))
                .unwrap();
        let a = Arrival::Replay {
            per_minute: ds.per_minute_totals(usize::MAX),
        };
        let t = trace_of(&a, ds.horizon_secs(), 11);
        assert_eq!(t.minute_counts(), vec![6, 3, 2]);
        assert!((a.mean_rate_per_min() - 11.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn same_seed_same_arrivals() {
        for a in [
            Arrival::Poisson { rate_per_min: 50.0 },
            Arrival::Diurnal {
                mean_rate_per_min: 50.0,
                relative_amplitude: 0.5,
                period_secs: 360.0,
            },
        ] {
            let x = a.sample(360.0, &mut DetRng::new(9));
            let y = a.sample(360.0, &mut DetRng::new(9));
            assert_eq!(x, y);
            let z = a.sample(360.0, &mut DetRng::new(10));
            assert_ne!(x, z);
        }
    }
}
