//! Table I of the paper, embedded verbatim.
//!
//! Each entry gives the model's occupancy in GPU memory when serving
//! batch-32 inference (this is what the cache manager charges against the
//! 8 GiB device), the measured model loading time, and the measured
//! batch-32 inference latency on the paper's RTX 2080 testbed.

/// Architecture family; used to pick a runnable miniature network for the
/// live examples and for size-class bucketing in the trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// SqueezeNet v1.0/v1.1.
    SqueezeNet,
    /// ResNet-18/34/50/101/152.
    ResNet,
    /// DenseNet-121/161/169/201.
    DenseNet,
    /// AlexNet.
    AlexNet,
    /// ResNeXt-50/101.
    ResNeXt,
    /// Inception v3.
    Inception,
    /// VGG-11/13/16/19 (+bn).
    Vgg,
    /// Wide ResNet 50-2 / 101-2.
    WideResNet,
}

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSpec {
    /// torchvision model name.
    pub name: &'static str,
    /// Occupancy size in GPU memory (MiB) at batch size 32.
    pub occupancy_mib: u64,
    /// Measured model loading (host→GPU upload) time in seconds.
    pub load_secs: f64,
    /// Measured inference latency in seconds at batch size 32.
    pub infer_secs_b32: f64,
    /// Architecture family.
    pub family: Family,
}

/// The 22 models of Table I, in the paper's (size-ascending) order.
pub const TABLE1: &[ModelSpec] = &[
    ModelSpec {
        name: "squeezenet1.1",
        occupancy_mib: 1269,
        load_secs: 2.41,
        infer_secs_b32: 1.28,
        family: Family::SqueezeNet,
    },
    ModelSpec {
        name: "resnet18",
        occupancy_mib: 1313,
        load_secs: 2.52,
        infer_secs_b32: 1.25,
        family: Family::ResNet,
    },
    ModelSpec {
        name: "resnet34",
        occupancy_mib: 1357,
        load_secs: 2.60,
        infer_secs_b32: 1.25,
        family: Family::ResNet,
    },
    ModelSpec {
        name: "squeezenet1.0",
        occupancy_mib: 1435,
        load_secs: 2.32,
        infer_secs_b32: 1.33,
        family: Family::SqueezeNet,
    },
    ModelSpec {
        name: "alexnet",
        occupancy_mib: 1437,
        load_secs: 2.81,
        infer_secs_b32: 1.25,
        family: Family::AlexNet,
    },
    ModelSpec {
        name: "resnext50.32x4d",
        occupancy_mib: 1555,
        load_secs: 2.64,
        infer_secs_b32: 1.29,
        family: Family::ResNeXt,
    },
    ModelSpec {
        name: "densenet121",
        occupancy_mib: 1601,
        load_secs: 2.49,
        infer_secs_b32: 1.28,
        family: Family::DenseNet,
    },
    ModelSpec {
        name: "densenet169",
        occupancy_mib: 1631,
        load_secs: 2.56,
        infer_secs_b32: 1.30,
        family: Family::DenseNet,
    },
    ModelSpec {
        name: "densenet201",
        occupancy_mib: 1665,
        load_secs: 2.67,
        infer_secs_b32: 1.40,
        family: Family::DenseNet,
    },
    ModelSpec {
        name: "resnet50",
        occupancy_mib: 1701,
        load_secs: 2.67,
        infer_secs_b32: 1.28,
        family: Family::ResNet,
    },
    ModelSpec {
        name: "resnet101",
        occupancy_mib: 1757,
        load_secs: 2.95,
        infer_secs_b32: 1.30,
        family: Family::ResNet,
    },
    ModelSpec {
        name: "resnet152",
        occupancy_mib: 1827,
        load_secs: 3.10,
        infer_secs_b32: 1.31,
        family: Family::ResNet,
    },
    ModelSpec {
        name: "densenet161",
        occupancy_mib: 1919,
        load_secs: 2.75,
        infer_secs_b32: 1.32,
        family: Family::DenseNet,
    },
    ModelSpec {
        name: "inception.v3",
        occupancy_mib: 2157,
        load_secs: 4.42,
        infer_secs_b32: 1.63,
        family: Family::Inception,
    },
    ModelSpec {
        name: "resnext101.32x8d",
        occupancy_mib: 2191,
        load_secs: 3.51,
        infer_secs_b32: 1.33,
        family: Family::ResNeXt,
    },
    ModelSpec {
        name: "vgg11",
        occupancy_mib: 2903,
        load_secs: 3.94,
        infer_secs_b32: 1.29,
        family: Family::Vgg,
    },
    ModelSpec {
        name: "wideresnet502",
        occupancy_mib: 3611,
        load_secs: 3.16,
        infer_secs_b32: 1.31,
        family: Family::WideResNet,
    },
    ModelSpec {
        name: "wideresnet1012",
        occupancy_mib: 3831,
        load_secs: 3.91,
        infer_secs_b32: 1.32,
        family: Family::WideResNet,
    },
    ModelSpec {
        name: "vgg13",
        occupancy_mib: 3887,
        load_secs: 3.98,
        infer_secs_b32: 1.30,
        family: Family::Vgg,
    },
    ModelSpec {
        name: "vgg16",
        occupancy_mib: 3907,
        load_secs: 4.04,
        infer_secs_b32: 1.27,
        family: Family::Vgg,
    },
    ModelSpec {
        name: "vgg16.bn",
        occupancy_mib: 3907,
        load_secs: 4.03,
        infer_secs_b32: 1.26,
        family: Family::Vgg,
    },
    ModelSpec {
        name: "vgg19",
        occupancy_mib: 3947,
        load_secs: 4.07,
        infer_secs_b32: 1.33,
        family: Family::Vgg,
    },
];

/// The batch size Table I was profiled at.
pub const TABLE1_BATCH: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_all_22_models() {
        assert_eq!(TABLE1.len(), 22);
    }

    #[test]
    fn sorted_by_occupancy_as_in_paper() {
        for pair in TABLE1.windows(2) {
            assert!(
                pair[0].occupancy_mib <= pair[1].occupancy_mib,
                "{} out of order",
                pair[1].name
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = TABLE1.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 22);
    }

    #[test]
    fn paper_extremes_present() {
        let smallest = &TABLE1[0];
        assert_eq!(smallest.name, "squeezenet1.1");
        assert_eq!(smallest.occupancy_mib, 1269);
        let largest = TABLE1.last().unwrap();
        assert_eq!(largest.name, "vgg19");
        assert_eq!(largest.occupancy_mib, 3947);
        assert!((largest.load_secs - 4.07).abs() < 1e-9);
    }

    #[test]
    fn latency_ranges_match_paper() {
        for m in TABLE1 {
            assert!((2.3..=4.5).contains(&m.load_secs), "{}", m.name);
            assert!((1.2..=1.7).contains(&m.infer_secs_b32), "{}", m.name);
            // Loading always dominates a single batch-32 inference — this
            // asymmetry is what makes cache locality matter.
            assert!(m.load_secs > m.infer_secs_b32, "{}", m.name);
        }
    }

    #[test]
    fn every_family_represented() {
        use std::collections::HashSet;
        let fams: HashSet<_> = TABLE1.iter().map(|m| m.family).collect();
        assert_eq!(fams.len(), 8);
    }
}
