//! `gfaas-models` — the paper's inference-model workload.
//!
//! Table I of the paper profiles 22 production CNN models: their GPU-memory
//! occupancy when serving batch-32 inference, their load (host→GPU upload)
//! time, and their inference latency. Those three numbers are everything
//! the scheduler and cache manager consume, so this crate embeds the table
//! verbatim ([`zoo`]) and wraps it in:
//!
//! * [`registry::ModelRegistry`] — id/name lookup plus the
//!   [`registry::LatencyProfile`] the cluster driver queries (occupancy
//!   bytes, load time, inference time as a function of batch size);
//! * [`profiler`] — the §IV-A profiling procedure: measure each model's
//!   load time through the PCIe model and fit inference-time-vs-batch-size
//!   with least-squares [`regression`], regenerating Table I;
//! * [`live`] — maps each zoo family to a runnable miniature
//!   `gfaas-tensor` network so the examples execute real forward passes.

#![warn(missing_docs)]

pub mod live;
pub mod profiler;
pub mod registry;
pub mod regression;
pub mod zoo;

pub use registry::{LatencyProfile, ModelRegistry};
pub use zoo::{Family, ModelSpec, TABLE1};
