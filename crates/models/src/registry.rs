//! Model registry: id/name lookup and the latency profile the cluster
//! driver consumes.
//!
//! The paper's scheduler needs, per model: occupancy bytes (cache
//! replacement), load time (miss penalty and the Algorithm 2 comparison),
//! and inference time at the request's batch size (finish-time estimation).
//! [`LatencyProfile`] packages those three quantities; the registry serves
//! one per model.

use gfaas_gpu::{ModelId, MIB};
use gfaas_sim::time::SimDuration;

use crate::zoo::{ModelSpec, TABLE1, TABLE1_BATCH};

/// Per-model latencies and footprint, as the scheduler sees them.
///
/// Inference latency follows the paper's §IV-A regression model: a linear
/// function of batch size, `t(b) = base + per_item · b`, pinned so that
/// `t(32)` equals Table I's measured value. The base term models the
/// batch-independent kernel-launch/framework overhead (~10% of the batch-32
/// latency), the linear term the per-image compute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyProfile {
    /// GPU-memory footprint in bytes while serving inference.
    pub occupancy_bytes: u64,
    /// Host→GPU model upload time.
    pub load_time: SimDuration,
    /// Batch-independent inference overhead in seconds.
    pub infer_base_secs: f64,
    /// Per-image inference cost in seconds.
    pub infer_per_item_secs: f64,
}

/// Fraction of the batch-32 latency attributed to batch-independent
/// overhead when deriving the linear model from Table I's single point.
pub const BASE_FRACTION: f64 = 0.10;

impl LatencyProfile {
    /// Derives a profile from a Table I row.
    pub fn from_spec(spec: &ModelSpec) -> Self {
        let base = spec.infer_secs_b32 * BASE_FRACTION;
        let per_item = spec.infer_secs_b32 * (1.0 - BASE_FRACTION) / TABLE1_BATCH as f64;
        LatencyProfile {
            occupancy_bytes: spec.occupancy_mib * MIB,
            load_time: SimDuration::from_secs_f64(spec.load_secs),
            infer_base_secs: base,
            infer_per_item_secs: per_item,
        }
    }

    /// Inference latency for a batch of `batch` inputs.
    pub fn infer_time(&self, batch: usize) -> SimDuration {
        SimDuration::from_secs_f64(self.infer_base_secs + self.infer_per_item_secs * batch as f64)
    }
}

/// Lookup table from [`ModelId`] to spec and latency profile.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    specs: Vec<ModelSpec>,
    profiles: Vec<LatencyProfile>,
}

impl ModelRegistry {
    /// The full Table I registry. `ModelId(i)` is the i-th row (size order).
    pub fn table1() -> Self {
        ModelRegistry::from_specs(TABLE1.to_vec())
    }

    /// A registry over an arbitrary spec list (tests, ablations).
    pub fn from_specs(specs: Vec<ModelSpec>) -> Self {
        let profiles = specs.iter().map(LatencyProfile::from_spec).collect();
        ModelRegistry { specs, profiles }
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True iff the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All model ids, in registry order.
    pub fn ids(&self) -> impl Iterator<Item = ModelId> + '_ {
        (0..self.specs.len() as u32).map(ModelId)
    }

    /// The spec for a model id. Panics on an unknown id — ids originate
    /// from this registry, so an unknown id is a caller bug.
    pub fn spec(&self, id: ModelId) -> &ModelSpec {
        &self.specs[id.0 as usize]
    }

    /// The latency profile for a model id.
    pub fn profile(&self, id: ModelId) -> &LatencyProfile {
        &self.profiles[id.0 as usize]
    }

    /// Looks up a model by name.
    pub fn by_name(&self, name: &str) -> Option<ModelId> {
        self.specs
            .iter()
            .position(|s| s.name == name)
            .map(|i| ModelId(i as u32))
    }

    /// Occupancy in bytes (cache-charge size) for a model.
    pub fn occupancy_bytes(&self, id: ModelId) -> u64 {
        self.profiles[id.0 as usize].occupancy_bytes
    }

    /// Load (upload) time for a model.
    pub fn load_time(&self, id: ModelId) -> SimDuration {
        self.profiles[id.0 as usize].load_time
    }

    /// Inference time for a model at a batch size.
    pub fn infer_time(&self, id: ModelId, batch: usize) -> SimDuration {
        self.profiles[id.0 as usize].infer_time(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_table1() {
        let r = ModelRegistry::table1();
        assert_eq!(r.len(), 22);
        assert_eq!(r.ids().count(), 22);
    }

    #[test]
    fn batch32_reproduces_table1_latency() {
        let r = ModelRegistry::table1();
        for id in r.ids() {
            let spec = r.spec(id);
            let t = r.infer_time(id, TABLE1_BATCH).as_secs_f64();
            assert!(
                (t - spec.infer_secs_b32).abs() < 1e-6,
                "{}: {t} vs {}",
                spec.name,
                spec.infer_secs_b32
            );
        }
    }

    #[test]
    fn infer_time_is_affine_in_batch() {
        let r = ModelRegistry::table1();
        let id = r.by_name("resnet50").unwrap();
        let t1 = r.infer_time(id, 1).as_secs_f64();
        let t16 = r.infer_time(id, 16).as_secs_f64();
        let t32 = r.infer_time(id, 32).as_secs_f64();
        // Equal spacing in batch → equal spacing in time.
        assert!(((t32 - t16) - (t16 - t1) * (16.0 / 15.0)).abs() < 1e-9);
        assert!(t1 < t16 && t16 < t32);
    }

    #[test]
    fn name_lookup_round_trips() {
        let r = ModelRegistry::table1();
        for id in r.ids() {
            assert_eq!(r.by_name(r.spec(id).name), Some(id));
        }
        assert_eq!(r.by_name("nonexistent"), None);
    }

    #[test]
    fn occupancy_converts_to_bytes() {
        let r = ModelRegistry::table1();
        let id = r.by_name("squeezenet1.1").unwrap();
        assert_eq!(r.occupancy_bytes(id), 1269 * MIB);
    }

    #[test]
    fn load_time_matches_paper() {
        let r = ModelRegistry::table1();
        let id = r.by_name("vgg19").unwrap();
        assert!((r.load_time(id).as_secs_f64() - 4.07).abs() < 1e-9);
    }

    #[test]
    fn at_most_two_big_models_fit_an_rtx2080() {
        // The working-set pressure in the paper comes from the fact that a
        // GPU holds only 2–6 models; verify the arithmetic for the largest.
        let r = ModelRegistry::table1();
        let vgg19 = r.occupancy_bytes(r.by_name("vgg19").unwrap());
        let capacity = 8 * 1024 * MIB;
        assert!(2 * vgg19 < capacity);
        assert!(3 * vgg19 > capacity);
    }
}
