//! Ordinary least-squares regression.
//!
//! §IV-A of the paper: "the inference time depends on the model and the
//! batch size which can be profiled using simple regression methods". This
//! module provides that regression: fit `y = a + b·x` to profiled
//! (batch size, latency) samples and report the goodness of fit.

/// A fitted line `y = intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept (`a`).
    pub intercept: f64,
    /// Slope (`b`).
    pub slope: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y = a + b·x` by least squares. Needs at least two samples with
/// non-constant `x`; returns `None` otherwise.
pub fn fit_line(samples: &[(f64, f64)]) -> Option<LinearFit> {
    if samples.len() < 2 {
        return None;
    }
    let n = samples.len() as f64;
    let mean_x = samples.iter().map(|s| s.0).sum::<f64>() / n;
    let mean_y = samples.iter().map(|s| s.1).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in samples {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0 // perfectly constant y is perfectly explained
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        intercept,
        slope,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let samples: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let fit = fit_line(&samples).unwrap();
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(20.0) - 43.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_fits_well() {
        // Deterministic "noise" from a fixed pattern.
        let samples: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                let noise = ((i * 7919) % 13) as f64 / 13.0 - 0.5;
                (x, 1.0 + 0.5 * x + noise * 0.1)
            })
            .collect();
        let fit = fit_line(&samples).unwrap();
        assert!((fit.slope - 0.5).abs() < 0.01);
        assert!((fit.intercept - 1.0).abs() < 0.2);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(fit_line(&[]).is_none());
        assert!(fit_line(&[(1.0, 2.0)]).is_none());
        assert!(fit_line(&[(3.0, 1.0), (3.0, 2.0)]).is_none());
    }

    #[test]
    fn constant_y_has_zero_slope() {
        let fit = fit_line(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }
}
