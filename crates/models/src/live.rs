//! Live (actually executing) miniature networks per model family.
//!
//! The DES experiments consume only the Table I latency profile; the
//! runnable examples additionally want a real forward pass. This module
//! instantiates a miniature `gfaas-tensor` network whose topology family
//! matches the zoo model's family, plus synthetic input batches shaped like
//! the paper's datasets (MNIST 1×28×28 grayscale, CIFAR-10 3×32×32 RGB).

use gfaas_gpu::ModelId;
use gfaas_sim::rng::DetRng;
use gfaas_tensor::nets;
use gfaas_tensor::{Network, Tensor};

use crate::registry::ModelRegistry;
use crate::zoo::Family;

/// Input shape expected by a live network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// 1×28×28 grayscale (MNIST-shaped).
    Mnist,
    /// 3×32×32 RGB (CIFAR-shaped).
    Cifar,
}

impl InputKind {
    /// The NCHW shape for a batch of `n`.
    pub fn shape(&self, n: usize) -> [usize; 4] {
        match self {
            InputKind::Mnist => [n, 1, 28, 28],
            InputKind::Cifar => [n, 3, 32, 32],
        }
    }
}

/// A runnable stand-in for a zoo model.
#[derive(Debug, Clone)]
pub struct LiveModel {
    /// The zoo model this stands in for.
    pub model: ModelId,
    /// The miniature network.
    pub network: Network,
    /// The input kind the network expects.
    pub input: InputKind,
}

/// Builds the live miniature network for a zoo model. The seed is derived
/// from the model id so each model gets distinct (but reproducible) weights.
pub fn live_model(registry: &ModelRegistry, model: ModelId) -> LiveModel {
    let spec = registry.spec(model);
    let seed = 0x6fa5_0000 + model.0 as u64;
    let (network, input) = match spec.family {
        Family::SqueezeNet => (nets::mini_squeezenet(10, seed), InputKind::Cifar),
        Family::AlexNet | Family::Vgg => (nets::mini_vgg(10, seed), InputKind::Cifar),
        Family::ResNeXt => (nets::mini_resnext(10, seed), InputKind::Cifar),
        Family::ResNet | Family::WideResNet | Family::DenseNet | Family::Inception => {
            (nets::mini_resnet(10, seed), InputKind::Cifar)
        }
    };
    LiveModel {
        model,
        network,
        input,
    }
}

/// Generates a synthetic input batch: smooth pseudo-images with per-sample
/// structure, deterministic in the seed. Stands in for the paper's
/// CIFAR-10 / MNIST / Hymenoptera evaluation images.
pub fn synthetic_batch(kind: InputKind, n: usize, seed: u64) -> Tensor {
    let mut rng = DetRng::new(seed);
    let shape = kind.shape(n);
    let [_, c, h, w] = shape;
    let mut t = Tensor::zeros(&shape);
    for ni in 0..n {
        // Each sample is a mix of two gradients plus noise, giving the
        // classifier something non-degenerate to chew on.
        let fx = rng.range_f64(0.5, 3.0);
        let fy = rng.range_f64(0.5, 3.0);
        let phase = rng.range_f64(0.0, std::f64::consts::TAU);
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let v = ((x as f64 * fx / w as f64 + y as f64 * fy / h as f64)
                        * std::f64::consts::TAU
                        + phase)
                        .sin()
                        * 0.5
                        + 0.5
                        + rng.range_f64(-0.05, 0.05);
                    *t.at4_mut(ni, ci, y, x) = v as f32;
                }
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_zoo_model_gets_a_runnable_network() {
        let reg = ModelRegistry::table1();
        for id in reg.ids() {
            let live = live_model(&reg, id);
            let batch = synthetic_batch(live.input, 2, 1);
            let labels = live.network.classify(&batch);
            assert_eq!(labels.len(), 2, "{}", reg.spec(id).name);
        }
    }

    #[test]
    fn live_models_are_deterministic() {
        let reg = ModelRegistry::table1();
        let id = reg.by_name("resnet50").unwrap();
        let a = live_model(&reg, id);
        let b = live_model(&reg, id);
        let batch = synthetic_batch(a.input, 1, 9);
        assert_eq!(a.network.classify(&batch), b.network.classify(&batch));
    }

    #[test]
    fn distinct_models_have_distinct_weights() {
        let reg = ModelRegistry::table1();
        let r50 = live_model(&reg, reg.by_name("resnet50").unwrap());
        let r101 = live_model(&reg, reg.by_name("resnet101").unwrap());
        let batch = synthetic_batch(InputKind::Cifar, 1, 4);
        let out50 = r50.network.forward(&batch);
        let out101 = r101.network.forward(&batch);
        assert!(out50.max_abs_diff(&out101) > 1e-6);
    }

    #[test]
    fn synthetic_batches_vary_by_seed_and_sample() {
        let a = synthetic_batch(InputKind::Mnist, 2, 1);
        let b = synthetic_batch(InputKind::Mnist, 2, 2);
        assert!(a.max_abs_diff(&b) > 1e-3);
        // Two samples within a batch differ too.
        let half = a.numel() / 2;
        let d0 = &a.data()[..half];
        let d1 = &a.data()[half..];
        assert!(d0.iter().zip(d1).any(|(x, y)| (x - y).abs() > 1e-3));
    }

    #[test]
    fn input_shapes() {
        assert_eq!(InputKind::Mnist.shape(3), [3, 1, 28, 28]);
        assert_eq!(InputKind::Cifar.shape(5), [5, 3, 32, 32]);
    }
}
