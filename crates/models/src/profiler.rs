//! The §IV-A profiling procedure: regenerate Table I.
//!
//! The paper profiles each unique model once per GPU type, measuring (a)
//! the model upload time and (b) inference latency across batch sizes,
//! fitting the latter with regression. [`profile_model`] reproduces that
//! procedure against the simulated device: uploads go through the PCIe
//! model, inference "measurements" are drawn from the model's latency
//! profile with multiplicative measurement noise, and a least-squares fit
//! recovers the linear coefficients the scheduler uses.

use gfaas_gpu::pcie::PcieModel;
use gfaas_gpu::ModelId;
use gfaas_sim::rng::DetRng;

use crate::registry::ModelRegistry;
use crate::regression::{fit_line, LinearFit};

/// The profile measured for one model on one GPU type.
#[derive(Debug, Clone)]
pub struct MeasuredProfile {
    /// The profiled model.
    pub model: ModelId,
    /// Upload time measured through the PCIe model, seconds.
    pub load_secs: f64,
    /// Fitted inference latency: `t(b) = intercept + slope · b`, seconds.
    pub fit: LinearFit,
    /// Predicted latency at batch 32 (Table I's reporting point), seconds.
    pub infer_secs_b32: f64,
}

/// Batch sizes swept during profiling.
pub const PROFILE_BATCHES: &[usize] = &[1, 2, 4, 8, 16, 24, 32];

/// Relative measurement noise applied to each synthetic latency sample.
pub const MEASUREMENT_NOISE: f64 = 0.03;

/// Profiles one model: PCIe upload measurement + batch sweep + regression.
pub fn profile_model(
    registry: &ModelRegistry,
    pcie: &PcieModel,
    model: ModelId,
    rng: &mut DetRng,
) -> MeasuredProfile {
    let occupancy = registry.occupancy_bytes(model);
    let load_secs = pcie.transfer_time(occupancy).as_secs_f64();

    let samples: Vec<(f64, f64)> = PROFILE_BATCHES
        .iter()
        .map(|&b| {
            let truth = registry.infer_time(model, b).as_secs_f64();
            let noise = 1.0 + rng.range_f64(-MEASUREMENT_NOISE, MEASUREMENT_NOISE);
            (b as f64, truth * noise)
        })
        .collect();
    let fit = fit_line(&samples).expect("batch sweep has distinct sizes");
    MeasuredProfile {
        model,
        load_secs,
        infer_secs_b32: fit.predict(32.0),
        fit,
    }
}

/// Profiles every model in the registry (the full Table I regeneration).
pub fn profile_all(registry: &ModelRegistry, pcie: &PcieModel, seed: u64) -> Vec<MeasuredProfile> {
    let mut rng = DetRng::new(seed);
    registry
        .ids()
        .map(|id| profile_model(registry, pcie, id, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_all_22_models() {
        let reg = ModelRegistry::table1();
        let profiles = profile_all(&reg, &PcieModel::table1(), 42);
        assert_eq!(profiles.len(), 22);
    }

    #[test]
    fn measured_load_times_track_table1() {
        let reg = ModelRegistry::table1();
        let profiles = profile_all(&reg, &PcieModel::table1(), 42);
        let mut outliers = 0;
        for p in &profiles {
            let paper = reg.spec(p.model).load_secs;
            let rel = (p.load_secs - paper).abs() / paper;
            if rel >= 0.15 {
                // Table I itself scatters around a linear size trend;
                // inception.v3 (4.42 s for 2157 MB) sits ~30% above it, the
                // paper's measurement including extra framework init for
                // that architecture. Tolerate a couple of such outliers.
                outliers += 1;
                assert!(
                    rel < 0.35,
                    "{}: measured {:.2} vs paper {:.2}",
                    reg.spec(p.model).name,
                    p.load_secs,
                    paper
                );
            }
        }
        assert!(outliers <= 2, "too many load-time outliers: {outliers}");
    }

    #[test]
    fn regression_recovers_batch32_latency() {
        let reg = ModelRegistry::table1();
        let profiles = profile_all(&reg, &PcieModel::table1(), 7);
        for p in &profiles {
            let paper = reg.spec(p.model).infer_secs_b32;
            let rel = (p.infer_secs_b32 - paper).abs() / paper;
            assert!(
                rel < 0.1,
                "{}: fitted {:.3} vs paper {:.3}",
                reg.spec(p.model).name,
                p.infer_secs_b32,
                paper
            );
            assert!(
                p.fit.r_squared > 0.95,
                "poor fit for {}",
                reg.spec(p.model).name
            );
        }
    }

    #[test]
    fn profiling_is_deterministic_per_seed() {
        let reg = ModelRegistry::table1();
        let a = profile_all(&reg, &PcieModel::table1(), 5);
        let b = profile_all(&reg, &PcieModel::table1(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.infer_secs_b32, y.infer_secs_b32);
        }
    }

    #[test]
    fn slope_is_positive_per_image_cost() {
        let reg = ModelRegistry::table1();
        for p in profile_all(&reg, &PcieModel::table1(), 11) {
            assert!(p.fit.slope > 0.0);
            assert!(p.fit.intercept > 0.0);
        }
    }
}
