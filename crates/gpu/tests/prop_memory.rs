//! Property tests for the GPU memory pool and device state machine.

use gfaas_gpu::{GpuDevice, GpuId, GpuSpec, MemoryPool, ModelId, MIB};
use gfaas_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Invariant: used + free == capacity, used never exceeds capacity, and
    /// every successful alloc/free keeps the books balanced under arbitrary
    /// interleavings.
    #[test]
    fn pool_accounting_balances(ops in proptest::collection::vec((0u64..4096, any::<bool>()), 1..200)) {
        let capacity = 64 * 1024;
        let mut pool = MemoryPool::new(capacity);
        let mut live = Vec::new();
        let mut expected_used = 0u64;
        for (size, do_free) in ops {
            if do_free && !live.is_empty() {
                let (id, sz) = live.swap_remove(live.len() / 2);
                prop_assert_eq!(pool.free_alloc(id), Some(sz));
                expected_used -= sz;
            } else {
                match pool.try_alloc(size) {
                    Ok(id) => {
                        live.push((id, size));
                        expected_used += size;
                    }
                    Err(e) => {
                        prop_assert_eq!(e.requested, size);
                        prop_assert!(size > pool.free());
                    }
                }
            }
            prop_assert_eq!(pool.used(), expected_used);
            prop_assert_eq!(pool.used() + pool.free(), capacity);
            prop_assert!(pool.used() <= capacity);
            prop_assert_eq!(pool.alloc_count(), live.len());
        }
    }

    /// Invariant: a device that only receives legal load→infer cycles never
    /// reports memory above capacity and always returns to idle.
    #[test]
    fn device_cycles_return_to_idle(
        sizes in proptest::collection::vec(1u64..2000, 1..30),
    ) {
        let mut d = GpuDevice::new(GpuId(0), GpuSpec::test(8192));
        let mut now = SimTime::ZERO;
        for (i, mib) in sizes.iter().enumerate() {
            let model = ModelId(i as u32);
            let bytes = mib * MIB;
            // Evict LRA (least-recently-added) models until it fits.
            while d.free_bytes() < bytes {
                let victim = d.resident_models().next().unwrap();
                d.evict(victim).unwrap();
            }
            let (_, ready) = d.start_load(now, model, bytes).unwrap();
            d.complete_load(ready, model).unwrap();
            let done = d.start_inference(ready, model, SimDuration::from_millis(100)).unwrap();
            d.complete_inference(done, model).unwrap();
            now = done;
            prop_assert!(d.is_idle());
            prop_assert!(d.used_bytes() <= d.spec().memory_bytes);
        }
        prop_assert_eq!(d.inferences_completed(), sizes.len() as u64);
    }

    /// Invariant: SM utilisation is always within [0, 1] regardless of the
    /// mix of loads and inferences.
    #[test]
    fn sm_utilization_bounded(durs in proptest::collection::vec(1u64..5000, 1..40)) {
        let mut d = GpuDevice::new(GpuId(1), GpuSpec::test(4096));
        let model = ModelId(0);
        let (_, ready) = d.start_load(SimTime::ZERO, model, 10 * MIB).unwrap();
        d.complete_load(ready, model).unwrap();
        let mut now = ready;
        for ms in durs {
            let done = d.start_inference(now, model, SimDuration::from_millis(ms)).unwrap();
            d.complete_inference(done, model).unwrap();
            // idle gap equal to half the inference
            now = done + SimDuration::from_millis(ms / 2);
        }
        let u = d.sm_utilization(SimTime::ZERO, now);
        prop_assert!((0.0..=1.0).contains(&u));
        prop_assert!(u > 0.0);
    }
}
