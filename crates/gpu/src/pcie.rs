//! PCIe transfer-cost model for model uploads.
//!
//! The paper's key overhead is moving model weights from host to device
//! memory over PCIe before a cold inference can start (§II-B). Table I
//! reports the measured load time of each of the 22 models; a linear fit of
//! those numbers (load time vs. occupancy size) gives
//!
//! ```text
//! load_time ≈ 1.62 s  +  size / 1.61 GB/s
//! ```
//!
//! i.e. a fixed process-initialisation overhead plus a ~1.6 GB/s effective
//! host→device link (well below the PCIe 3.0 x16 peak of ~16 GB/s, which
//! matches reality: model loads are framework-bound, not wire-bound).
//! [`PcieModel::table1`] pins exactly those constants so the profiler in
//! `gfaas-models` regenerates Table I's load column to within a few percent.

use gfaas_sim::time::SimDuration;

/// A host↔device transfer model: fixed setup latency plus bytes/bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieModel {
    /// Effective sustained bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Fixed per-transfer overhead (process init, context setup, cudaMalloc).
    pub base_latency: SimDuration,
}

impl PcieModel {
    /// The model calibrated against the paper's Table I load times.
    pub fn table1() -> Self {
        PcieModel {
            bandwidth_bps: 1.61e9,
            base_latency: SimDuration::from_secs_f64(1.62),
        }
    }

    /// An idealised PCIe 3.0 x16 link (≈15.75 GB/s, no setup cost); useful
    /// in tests and ablations to isolate bandwidth effects.
    pub fn pcie3_x16() -> Self {
        PcieModel {
            bandwidth_bps: 15.75e9,
            base_latency: SimDuration::ZERO,
        }
    }

    /// Builds a custom model.
    pub fn new(bandwidth_bps: f64, base_latency: SimDuration) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        PcieModel {
            bandwidth_bps,
            base_latency,
        }
    }

    /// Time to move `bytes` from host to device (or back).
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.base_latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MIB;

    #[test]
    fn zero_bytes_costs_base_latency() {
        let m = PcieModel::table1();
        assert_eq!(m.transfer_time(0), m.base_latency);
    }

    #[test]
    fn transfer_time_is_monotone_in_size() {
        let m = PcieModel::table1();
        let mut last = SimDuration::ZERO;
        for mb in [100u64, 500, 1000, 2000, 4000] {
            let t = m.transfer_time(mb * MIB);
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn table1_calibration_brackets_paper_numbers() {
        let m = PcieModel::table1();
        // squeezenet1.1: 1269 MB → paper 2.41 s
        let t_small = m.transfer_time(1269 * MIB).as_secs_f64();
        assert!((t_small - 2.41).abs() < 0.15, "small model load {t_small}");
        // vgg19: 3947 MB → paper 4.07 s
        let t_large = m.transfer_time(3947 * MIB).as_secs_f64();
        assert!((t_large - 4.07).abs() < 0.25, "large model load {t_large}");
    }

    #[test]
    fn faster_link_loads_faster() {
        let slow = PcieModel::table1();
        let fast = PcieModel::pcie3_x16();
        let bytes = 2000 * MIB;
        assert!(fast.transfer_time(bytes) < slow.transfer_time(bytes));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        PcieModel::new(0.0, SimDuration::ZERO);
    }
}
