//! GPU device-memory accounting.
//!
//! A real GPU gives a process raw allocations and fails with OOM when the
//! device is full; there is no swapping. [`MemoryPool`] reproduces exactly
//! that: explicit allocation/free with a hard capacity, no overcommit.
//! Fragmentation is not modelled — CUDA's virtual addressing makes model
//! weights effectively relocatable at this granularity, and the paper's
//! cache manager reasons purely in terms of total occupancy (Table I's
//! per-model "occupation size").

use std::collections::BTreeMap;

/// Handle to one live allocation in a [`MemoryPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AllocId(pub u64);

/// Returned when an allocation would exceed device capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OomError {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes currently free.
    pub free: u64,
    /// Total device capacity in bytes.
    pub capacity: u64,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of GPU memory: requested {} B, {} B free of {} B",
            self.requested, self.free, self.capacity
        )
    }
}

impl std::error::Error for OomError {}

/// A fixed-capacity device-memory pool with per-allocation bookkeeping.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    capacity: u64,
    used: u64,
    next_id: u64,
    allocs: BTreeMap<AllocId, u64>,
}

impl MemoryPool {
    /// Creates a pool of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryPool {
            capacity,
            used: 0,
            next_id: 0,
            allocs: BTreeMap::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Fraction of capacity in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }

    /// Number of live allocations.
    pub fn alloc_count(&self) -> usize {
        self.allocs.len()
    }

    /// True iff `size` bytes could be allocated right now.
    pub fn can_fit(&self, size: u64) -> bool {
        size <= self.free()
    }

    /// Allocates `size` bytes, or fails with [`OomError`]. Zero-byte
    /// allocations are legal (CUDA permits them) and consume only an id.
    pub fn try_alloc(&mut self, size: u64) -> Result<AllocId, OomError> {
        if !self.can_fit(size) {
            return Err(OomError {
                requested: size,
                free: self.free(),
                capacity: self.capacity,
            });
        }
        let id = AllocId(self.next_id);
        self.next_id += 1;
        self.used += size;
        self.allocs.insert(id, size);
        Ok(id)
    }

    /// Frees a live allocation, returning its size. Double-free returns
    /// `None` and leaves the pool untouched.
    pub fn free_alloc(&mut self, id: AllocId) -> Option<u64> {
        let size = self.allocs.remove(&id)?;
        self.used -= size;
        Some(size)
    }

    /// Size of a live allocation, if it exists.
    pub fn size_of(&self, id: AllocId) -> Option<u64> {
        self.allocs.get(&id).copied()
    }

    /// Serialises the pool's mutable state (capacity is configuration and
    /// is not written — a restore target is built from the same config).
    pub fn save_state(&self, enc: &mut gfaas_snap::Enc) {
        enc.put_u64(self.used);
        enc.put_u64(self.next_id);
        enc.put_usize(self.allocs.len());
        for (id, size) in &self.allocs {
            enc.put_u64(id.0);
            enc.put_u64(*size);
        }
    }

    /// Restores the state written by [`MemoryPool::save_state`].
    pub fn load_state(
        &mut self,
        dec: &mut gfaas_snap::Dec<'_>,
    ) -> Result<(), gfaas_snap::SnapError> {
        self.used = dec.u64()?;
        self.next_id = dec.u64()?;
        let n = dec.usize()?;
        self.allocs.clear();
        for _ in 0..n {
            let id = AllocId(dec.u64()?);
            let size = dec.u64()?;
            self.allocs.insert(id, size);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_balance() {
        let mut p = MemoryPool::new(1000);
        let a = p.try_alloc(400).unwrap();
        let b = p.try_alloc(600).unwrap();
        assert_eq!(p.free(), 0);
        assert_eq!(p.alloc_count(), 2);
        assert_eq!(p.free_alloc(a), Some(400));
        assert_eq!(p.free(), 400);
        assert_eq!(p.free_alloc(b), Some(600));
        assert_eq!(p.used(), 0);
    }

    #[test]
    fn oom_is_explicit_and_harmless() {
        let mut p = MemoryPool::new(100);
        p.try_alloc(80).unwrap();
        let err = p.try_alloc(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.free, 20);
        assert_eq!(err.capacity, 100);
        // Failed alloc must not perturb accounting.
        assert_eq!(p.used(), 80);
        assert_eq!(p.alloc_count(), 1);
    }

    #[test]
    fn double_free_is_none() {
        let mut p = MemoryPool::new(10);
        let a = p.try_alloc(5).unwrap();
        assert!(p.free_alloc(a).is_some());
        assert!(p.free_alloc(a).is_none());
        assert_eq!(p.used(), 0);
    }

    #[test]
    fn zero_byte_alloc_is_legal() {
        let mut p = MemoryPool::new(0);
        let a = p.try_alloc(0).unwrap();
        assert_eq!(p.size_of(a), Some(0));
        assert_eq!(p.utilization(), 0.0);
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut p = MemoryPool::new(100);
        assert!(p.can_fit(100));
        p.try_alloc(100).unwrap();
        assert!(!p.can_fit(1));
        assert_eq!(p.utilization(), 1.0);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut p = MemoryPool::new(100);
        let a = p.try_alloc(10).unwrap();
        p.free_alloc(a);
        let b = p.try_alloc(10).unwrap();
        assert_ne!(a, b);
    }
}
