//! The simulated GPU device: a checked state machine over memory, PCIe, and
//! SM accounting.
//!
//! A device executes **one request at a time** (the paper's GPU Manager rule,
//! §III-C): it is either idle, uploading a model (cache miss path), or
//! running an inference. All transitions take explicit timestamps from the
//! discrete-event driver and are validated, so scheduler bugs surface as
//! [`GpuError`]s instead of silently corrupt metrics.

use gfaas_sim::time::{SimDuration, SimTime};

use crate::memory::{MemoryPool, OomError};
use crate::pcie::PcieModel;
use crate::process::{GpuProcess, ProcId, ProcState};
use crate::sm::SmTracker;
use crate::{GpuId, ModelId, MIB};

/// Static description of one GPU.
///
/// The scale factors support the paper's §VI heterogeneous-GPU extension:
/// the profiling procedure runs once per GPU *type*, and the scheduler uses
/// per-type load/inference times. A type's times are its reference
/// (RTX 2080) times multiplied by these factors.
#[derive(Debug, Clone)]
pub struct GpuSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Number of streaming multiprocessors (informational).
    pub sm_count: u32,
    /// Host→device transfer model.
    pub pcie: PcieModel,
    /// Inference-time multiplier vs the RTX 2080 profile (lower = faster).
    pub compute_scale: f64,
    /// Model-load-time multiplier vs the RTX 2080 profile.
    pub load_scale: f64,
}

impl GpuSpec {
    /// The paper's testbed GPU: GeForce RTX 2080 (8 GiB, 46 SMs) behind the
    /// Table I-calibrated PCIe model.
    pub fn rtx2080() -> Self {
        GpuSpec {
            name: "GeForce RTX 2080".to_string(),
            memory_bytes: 8 * 1024 * MIB,
            sm_count: 46,
            pcie: PcieModel::table1(),
            compute_scale: 1.0,
            load_scale: 1.0,
        }
    }

    /// A hypothetical faster/bigger GPU for the §VI heterogeneity
    /// experiments: 11 GiB, ~35% faster inference, slightly faster loads
    /// (RTX 2080 Ti-class).
    pub fn rtx2080ti() -> Self {
        GpuSpec {
            name: "GeForce RTX 2080 Ti".to_string(),
            memory_bytes: 11 * 1024 * MIB,
            sm_count: 68,
            pcie: PcieModel::table1(),
            compute_scale: 0.74,
            load_scale: 0.9,
        }
    }

    /// A small test GPU with the given capacity in MiB and instant PCIe.
    pub fn test(mem_mib: u64) -> Self {
        GpuSpec {
            name: format!("test-gpu-{mem_mib}MiB"),
            memory_bytes: mem_mib * MIB,
            sm_count: 1,
            pcie: PcieModel::pcie3_x16(),
            compute_scale: 1.0,
            load_scale: 1.0,
        }
    }

    /// Returns a copy with the given scale factors (heterogeneity tests).
    pub fn with_scales(mut self, compute_scale: f64, load_scale: f64) -> Self {
        assert!(
            compute_scale > 0.0 && load_scale > 0.0,
            "scales must be positive"
        );
        self.compute_scale = compute_scale;
        self.load_scale = load_scale;
        self
    }
}

/// What the device is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceState {
    /// No request in flight.
    Idle,
    /// Uploading `model`; finishes at `until`.
    Loading {
        /// Model being uploaded.
        model: ModelId,
        /// Upload completion time.
        until: SimTime,
    },
    /// Running an inference on `model`; finishes at `until`.
    Running {
        /// Model executing.
        model: ModelId,
        /// Inference completion time.
        until: SimTime,
    },
}

/// Errors raised by illegal device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// Operation requires an idle device.
    Busy(DeviceState),
    /// The model has no resident process.
    NotResident(ModelId),
    /// A process for this model already exists.
    AlreadyResident(ModelId),
    /// Device memory exhausted; the caller must evict first.
    Oom(OomError),
    /// The resident process is not in the state the operation needs.
    ProcessBusy(ModelId),
    /// A completion arrived that does not match in-flight work.
    BadCompletion(&'static str),
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::Busy(s) => write!(f, "device busy: {s:?}"),
            GpuError::NotResident(m) => write!(f, "{m} is not resident"),
            GpuError::AlreadyResident(m) => write!(f, "{m} is already resident"),
            GpuError::Oom(e) => write!(f, "{e}"),
            GpuError::ProcessBusy(m) => write!(f, "process for {m} is busy"),
            GpuError::BadCompletion(what) => write!(f, "mismatched completion: {what}"),
        }
    }
}

impl std::error::Error for GpuError {}

impl From<OomError> for GpuError {
    fn from(e: OomError) -> Self {
        GpuError::Oom(e)
    }
}

/// One simulated GPU.
#[derive(Debug, Clone)]
pub struct GpuDevice {
    id: GpuId,
    spec: GpuSpec,
    mem: MemoryPool,
    sm: SmTracker,
    /// Resident processes, sorted by model id. Residency is bounded by
    /// device memory (a handful of models), so a flat sorted array with
    /// binary search beats a tree map on every hot lookup while keeping
    /// the same stable iteration order.
    procs: Vec<(ModelId, GpuProcess)>,
    state: DeviceState,
    next_pid: u64,
    loads_started: u64,
    evictions: u64,
    inferences_completed: u64,
}

impl GpuDevice {
    /// Creates an idle, empty device.
    pub fn new(id: GpuId, spec: GpuSpec) -> Self {
        let mem = MemoryPool::new(spec.memory_bytes);
        GpuDevice {
            id,
            spec,
            mem,
            sm: SmTracker::new(),
            procs: Vec::new(),
            state: DeviceState::Idle,
            next_pid: 0,
            loads_started: 0,
            evictions: 0,
            inferences_completed: 0,
        }
    }

    /// This device's id.
    pub fn id(&self) -> GpuId {
        self.id
    }

    /// The static spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Current state.
    pub fn state(&self) -> DeviceState {
        self.state
    }

    /// True iff no request is in flight.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, DeviceState::Idle)
    }

    /// When in-flight work completes; `None` when idle.
    pub fn busy_until(&self) -> Option<SimTime> {
        match self.state {
            DeviceState::Idle => None,
            DeviceState::Loading { until, .. } | DeviceState::Running { until, .. } => Some(until),
        }
    }

    /// Position of `model` in the sorted process array.
    fn proc_idx(&self, model: ModelId) -> Result<usize, usize> {
        self.procs.binary_search_by_key(&model, |&(m, _)| m)
    }

    /// Models with a resident process, in stable (id) order.
    pub fn resident_models(&self) -> impl Iterator<Item = ModelId> + '_ {
        self.procs.iter().map(|&(m, _)| m)
    }

    /// Number of resident models.
    pub fn resident_count(&self) -> usize {
        self.procs.len()
    }

    /// True iff the model has a resident process (loading counts: the memory
    /// is already claimed and the cache manager treats it as present).
    pub fn has_model(&self, model: ModelId) -> bool {
        self.proc_idx(model).is_ok()
    }

    /// The resident process for a model, if any.
    pub fn process(&self, model: ModelId) -> Option<&GpuProcess> {
        self.proc_idx(model).ok().map(|i| &self.procs[i].1)
    }

    /// Free device memory in bytes.
    pub fn free_bytes(&self) -> u64 {
        self.mem.free()
    }

    /// Used device memory in bytes.
    pub fn used_bytes(&self) -> u64 {
        self.mem.used()
    }

    /// Memory-pool utilisation in `[0, 1]`.
    pub fn memory_utilization(&self) -> f64 {
        self.mem.utilization()
    }

    /// The time the PCIe link needs to upload `bytes` (used when no
    /// profiled load time is available).
    pub fn load_time(&self, bytes: u64) -> SimDuration {
        self.spec.pcie.transfer_time(bytes)
    }

    /// Starts uploading `model` (`bytes` of weights) at time `t`, taking
    /// `load_time` for the transfer. The scheduler passes the *profiled*
    /// per-model load time (paper §IV-A); [`GpuDevice::start_load`] is the
    /// convenience variant that derives it from the PCIe model instead.
    ///
    /// Requires an idle device, a non-resident model, and enough free
    /// memory — the cache manager must have evicted victims already.
    /// Returns the new process id and the upload completion time, which the
    /// caller must deliver back via [`GpuDevice::complete_load`].
    pub fn start_load_timed(
        &mut self,
        t: SimTime,
        model: ModelId,
        bytes: u64,
        load_time: SimDuration,
    ) -> Result<(ProcId, SimTime), GpuError> {
        if !self.is_idle() {
            return Err(GpuError::Busy(self.state));
        }
        if self.has_model(model) {
            return Err(GpuError::AlreadyResident(model));
        }
        let alloc = self.mem.try_alloc(bytes)?;
        let ready_at = t + load_time;
        let pid = ProcId(self.next_pid);
        self.next_pid += 1;
        let pos = self.proc_idx(model).unwrap_err();
        self.procs.insert(
            pos,
            (model, GpuProcess::spawn(pid, model, alloc, t, ready_at)),
        );
        self.state = DeviceState::Loading {
            model,
            until: ready_at,
        };
        self.loads_started += 1;
        Ok((pid, ready_at))
    }

    /// [`GpuDevice::start_load_timed`] with the load time derived from the
    /// device's PCIe transfer model.
    pub fn start_load(
        &mut self,
        t: SimTime,
        model: ModelId,
        bytes: u64,
    ) -> Result<(ProcId, SimTime), GpuError> {
        let load_time = self.load_time(bytes);
        self.start_load_timed(t, model, bytes, load_time)
    }

    /// Completes the in-flight upload at time `t`; the process becomes ready
    /// and the device idle (typically the driver immediately starts the
    /// inference that triggered the load).
    pub fn complete_load(&mut self, t: SimTime, model: ModelId) -> Result<(), GpuError> {
        match self.state {
            DeviceState::Loading { model: m, until } if m == model => {
                if t < until {
                    return Err(GpuError::BadCompletion("load completion arrived early"));
                }
                let i = self.proc_idx(model).expect("loading proc exists");
                self.procs[i].1.state = ProcState::Ready;
                self.state = DeviceState::Idle;
                Ok(())
            }
            _ => Err(GpuError::BadCompletion("no matching load in flight")),
        }
    }

    /// Starts an inference on a resident, ready model at time `t` with the
    /// given duration. Returns the completion time, which the caller must
    /// deliver back via [`GpuDevice::complete_inference`].
    pub fn start_inference(
        &mut self,
        t: SimTime,
        model: ModelId,
        duration: SimDuration,
    ) -> Result<SimTime, GpuError> {
        if !self.is_idle() {
            return Err(GpuError::Busy(self.state));
        }
        let i = self
            .proc_idx(model)
            .map_err(|_| GpuError::NotResident(model))?;
        let proc = &mut self.procs[i].1;
        if !matches!(proc.state, ProcState::Ready) {
            return Err(GpuError::ProcessBusy(model));
        }
        let done_at = t + duration;
        proc.state = ProcState::Running { until: done_at };
        self.state = DeviceState::Running {
            model,
            until: done_at,
        };
        self.sm.begin(t);
        Ok(done_at)
    }

    /// Completes the in-flight inference at time `t`; the device becomes
    /// idle and the SM busy interval closes.
    pub fn complete_inference(&mut self, t: SimTime, model: ModelId) -> Result<(), GpuError> {
        match self.state {
            DeviceState::Running { model: m, until } if m == model => {
                if t < until {
                    return Err(GpuError::BadCompletion(
                        "inference completion arrived early",
                    ));
                }
                self.sm.end(t);
                let i = self.proc_idx(model).expect("running proc exists");
                let proc = &mut self.procs[i].1;
                proc.state = ProcState::Ready;
                proc.inferences += 1;
                self.state = DeviceState::Idle;
                self.inferences_completed += 1;
                Ok(())
            }
            _ => Err(GpuError::BadCompletion("no matching inference in flight")),
        }
    }

    /// Evicts a resident, *ready* model: kills its process and frees its
    /// memory. Returns the freed byte count. Loading or running processes
    /// cannot be evicted through this path — the scheduler only dispatches
    /// misses to idle devices, so legal evictions always target ready procs.
    pub fn evict(&mut self, model: ModelId) -> Result<u64, GpuError> {
        let i = self
            .proc_idx(model)
            .map_err(|_| GpuError::NotResident(model))?;
        if !self.procs[i].1.is_ready() {
            return Err(GpuError::ProcessBusy(model));
        }
        let (_, proc) = self.procs.remove(i);
        let freed = self
            .mem
            .free_alloc(proc.alloc)
            .expect("process allocation is live");
        self.evictions += 1;
        Ok(freed)
    }

    /// Kills a process regardless of state (failure injection / crash
    /// simulation). If the killed process was the in-flight work, the device
    /// drops to idle; an open SM interval is closed at `t`. Returns the
    /// freed bytes.
    pub fn force_kill(&mut self, t: SimTime, model: ModelId) -> Result<u64, GpuError> {
        let i = self
            .proc_idx(model)
            .map_err(|_| GpuError::NotResident(model))?;
        let (_, proc) = self.procs.remove(i);
        match self.state {
            DeviceState::Loading { model: m, .. } if m == model => {
                self.state = DeviceState::Idle;
            }
            DeviceState::Running { model: m, .. } if m == model => {
                self.sm.end(t);
                self.state = DeviceState::Idle;
            }
            _ => {}
        }
        let freed = self
            .mem
            .free_alloc(proc.alloc)
            .expect("process allocation is live");
        self.evictions += 1;
        Ok(freed)
    }

    /// SM utilisation over `[start, end]` (Fig 4c's metric).
    pub fn sm_utilization(&self, start: SimTime, end: SimTime) -> f64 {
        self.sm.utilization(start, end)
    }

    /// Total uploads started (cache misses served by this device).
    pub fn loads_started(&self) -> u64 {
        self.loads_started
    }

    /// Total processes killed (evictions plus force-kills).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total inferences completed.
    pub fn inferences_completed(&self) -> u64 {
        self.inferences_completed
    }

    /// Serialises the device's mutable state for a checkpoint image. The
    /// id and spec are configuration — a restore target is built from the
    /// same cluster config (the checkpoint envelope's config digest
    /// guards this) — so only the dynamic state travels.
    pub fn save_state(&self, enc: &mut gfaas_snap::Enc) {
        self.mem.save_state(enc);
        self.sm.save_state(enc);
        enc.put_usize(self.procs.len());
        for (model, p) in &self.procs {
            enc.put_u32(model.0);
            enc.put_u64(p.pid.0);
            enc.put_u64(p.alloc.0);
            match p.state {
                ProcState::Loading { until } => {
                    enc.put_u8(0);
                    enc.put_time(until);
                }
                ProcState::Ready => enc.put_u8(1),
                ProcState::Running { until } => {
                    enc.put_u8(2);
                    enc.put_time(until);
                }
            }
            enc.put_time(p.spawned_at);
            enc.put_u64(p.inferences);
        }
        match self.state {
            DeviceState::Idle => enc.put_u8(0),
            DeviceState::Loading { model, until } => {
                enc.put_u8(1);
                enc.put_u32(model.0);
                enc.put_time(until);
            }
            DeviceState::Running { model, until } => {
                enc.put_u8(2);
                enc.put_u32(model.0);
                enc.put_time(until);
            }
        }
        enc.put_u64(self.next_pid);
        enc.put_u64(self.loads_started);
        enc.put_u64(self.evictions);
        enc.put_u64(self.inferences_completed);
    }

    /// Restores the state written by [`GpuDevice::save_state`].
    pub fn load_state(
        &mut self,
        dec: &mut gfaas_snap::Dec<'_>,
    ) -> Result<(), gfaas_snap::SnapError> {
        use gfaas_snap::SnapError;
        self.mem.load_state(dec)?;
        self.sm.load_state(dec)?;
        let n = dec.usize()?;
        self.procs.clear();
        for _ in 0..n {
            let model = ModelId(dec.u32()?);
            let pid = ProcId(dec.u64()?);
            let alloc = crate::memory::AllocId(dec.u64()?);
            let state = match dec.u8()? {
                0 => ProcState::Loading { until: dec.time()? },
                1 => ProcState::Ready,
                2 => ProcState::Running { until: dec.time()? },
                _ => return Err(SnapError::Corrupt("process state tag out of range")),
            };
            let spawned_at = dec.time()?;
            let inferences = dec.u64()?;
            self.procs.push((
                model,
                GpuProcess {
                    pid,
                    model,
                    alloc,
                    state,
                    spawned_at,
                    inferences,
                },
            ));
        }
        if !self.procs.is_sorted_by_key(|&(m, _)| m) {
            return Err(SnapError::Corrupt("process table is not sorted"));
        }
        self.state = match dec.u8()? {
            0 => DeviceState::Idle,
            1 => DeviceState::Loading {
                model: ModelId(dec.u32()?),
                until: dec.time()?,
            },
            2 => DeviceState::Running {
                model: ModelId(dec.u32()?),
                until: dec.time()?,
            },
            _ => return Err(SnapError::Corrupt("device state tag out of range")),
        };
        self.next_pid = dec.u64()?;
        self.loads_started = dec.u64()?;
        self.evictions = dec.u64()?;
        self.inferences_completed = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn dev(mem_mib: u64) -> GpuDevice {
        GpuDevice::new(GpuId(0), GpuSpec::test(mem_mib))
    }

    const M1: ModelId = ModelId(1);
    const M2: ModelId = ModelId(2);

    #[test]
    fn full_miss_cycle() {
        let mut d = dev(4096);
        let (_pid, ready_at) = d.start_load(t(0), M1, 1000 * MIB).unwrap();
        assert!(!d.is_idle());
        assert!(d.has_model(M1));
        d.complete_load(ready_at, M1).unwrap();
        assert!(d.is_idle());
        let done = d
            .start_inference(ready_at, M1, SimDuration::from_millis(1300))
            .unwrap();
        d.complete_inference(done, M1).unwrap();
        assert!(d.is_idle());
        assert_eq!(d.inferences_completed(), 1);
        assert_eq!(d.process(M1).unwrap().inferences, 1);
        // SM was busy only during the inference, not the load.
        let util = d.sm_utilization(t(0), done);
        let expect = 1.3 / done.as_secs_f64();
        assert!((util - expect).abs() < 1e-9, "util {util} expect {expect}");
    }

    #[test]
    fn hit_skips_load() {
        let mut d = dev(4096);
        let (_, r) = d.start_load(t(0), M1, 100 * MIB).unwrap();
        d.complete_load(r, M1).unwrap();
        // Second request for M1 is a hit: straight to inference.
        let done = d.start_inference(r, M1, SimDuration::from_secs(1)).unwrap();
        d.complete_inference(done, M1).unwrap();
        assert_eq!(d.loads_started(), 1);
        assert_eq!(d.inferences_completed(), 1);
    }

    #[test]
    fn busy_device_rejects_work() {
        let mut d = dev(4096);
        d.start_load(t(0), M1, 100 * MIB).unwrap();
        assert!(matches!(
            d.start_load(t(0), M2, 100 * MIB),
            Err(GpuError::Busy(_))
        ));
        assert!(matches!(
            d.start_inference(t(0), M1, SimDuration::from_secs(1)),
            Err(GpuError::Busy(_))
        ));
    }

    #[test]
    fn oom_requires_eviction_first() {
        let mut d = dev(1000);
        let (_, r) = d.start_load(t(0), M1, 800 * MIB).unwrap();
        d.complete_load(r, M1).unwrap();
        let err = d.start_load(r, M2, 400 * MIB).unwrap_err();
        assert!(matches!(err, GpuError::Oom(_)));
        // Evict, then the load fits.
        let freed = d.evict(M1).unwrap();
        assert_eq!(freed, 800 * MIB);
        assert!(!d.has_model(M1));
        d.start_load(r, M2, 400 * MIB).unwrap();
    }

    #[test]
    fn cannot_evict_inflight_process() {
        let mut d = dev(4096);
        let (_, r) = d.start_load(t(0), M1, 100 * MIB).unwrap();
        assert!(matches!(d.evict(M1), Err(GpuError::ProcessBusy(_))));
        d.complete_load(r, M1).unwrap();
        d.start_inference(r, M1, SimDuration::from_secs(5)).unwrap();
        assert!(matches!(d.evict(M1), Err(GpuError::ProcessBusy(_))));
    }

    #[test]
    fn force_kill_running_process_frees_device() {
        let mut d = dev(4096);
        let (_, r) = d.start_load(t(0), M1, 100 * MIB).unwrap();
        d.complete_load(r, M1).unwrap();
        d.start_inference(r, M1, SimDuration::from_secs(5)).unwrap();
        let freed = d.force_kill(r + SimDuration::from_secs(1), M1).unwrap();
        assert_eq!(freed, 100 * MIB);
        assert!(d.is_idle());
        assert!(!d.has_model(M1));
        assert_eq!(d.used_bytes(), 0);
        // Device is reusable afterwards.
        d.start_load(r + SimDuration::from_secs(1), M2, 50 * MIB)
            .unwrap();
    }

    #[test]
    fn early_completion_rejected() {
        let mut d = dev(4096);
        let (_, ready_at) = d.start_load(t(0), M1, 1000 * MIB).unwrap();
        let early = SimTime::from_micros(ready_at.as_micros() - 1);
        assert!(matches!(
            d.complete_load(early, M1),
            Err(GpuError::BadCompletion(_))
        ));
        d.complete_load(ready_at, M1).unwrap();
    }

    #[test]
    fn mismatched_completion_rejected() {
        let mut d = dev(4096);
        let (_, r) = d.start_load(t(0), M1, 100 * MIB).unwrap();
        assert!(matches!(
            d.complete_load(r, M2),
            Err(GpuError::BadCompletion(_))
        ));
        d.complete_load(r, M1).unwrap();
        assert!(matches!(
            d.complete_inference(r, M1),
            Err(GpuError::BadCompletion(_))
        ));
    }

    #[test]
    fn duplicate_load_rejected() {
        let mut d = dev(4096);
        let (_, r) = d.start_load(t(0), M1, 100 * MIB).unwrap();
        d.complete_load(r, M1).unwrap();
        assert!(matches!(
            d.start_load(r, M1, 100 * MIB),
            Err(GpuError::AlreadyResident(M1))
        ));
    }

    #[test]
    fn inference_on_missing_model_rejected() {
        let mut d = dev(4096);
        assert!(matches!(
            d.start_inference(t(0), M1, SimDuration::from_secs(1)),
            Err(GpuError::NotResident(M1))
        ));
    }

    #[test]
    fn resident_models_iterate_in_stable_order() {
        let mut d = dev(8192);
        for (i, m) in [ModelId(5), ModelId(1), ModelId(3)].into_iter().enumerate() {
            let (_, r) = d.start_load(t(i as u64 * 10), m, 10 * MIB).unwrap();
            d.complete_load(r, m).unwrap();
        }
        let order: Vec<ModelId> = d.resident_models().collect();
        assert_eq!(order, vec![ModelId(1), ModelId(3), ModelId(5)]);
        assert_eq!(d.resident_count(), 3);
    }

    #[test]
    fn memory_accounting_through_evictions() {
        let mut d = dev(1000);
        let (_, r1) = d.start_load(t(0), M1, 300 * MIB).unwrap();
        d.complete_load(r1, M1).unwrap();
        let (_, r2) = d.start_load(r1, M2, 400 * MIB).unwrap();
        d.complete_load(r2, M2).unwrap();
        assert_eq!(d.used_bytes(), 700 * MIB);
        assert_eq!(d.free_bytes(), 300 * MIB);
        d.evict(M1).unwrap();
        assert_eq!(d.used_bytes(), 400 * MIB);
        assert_eq!(d.evictions(), 1);
    }

    #[test]
    fn save_load_round_trips_mid_flight_state() {
        let mut d = dev(4096);
        let (_, r1) = d.start_load(t(0), M1, 300 * MIB).unwrap();
        d.complete_load(r1, M1).unwrap();
        let done = d
            .start_inference(r1, M1, SimDuration::from_secs(2))
            .unwrap();
        d.complete_inference(done, M1).unwrap();
        // Leave a load in flight so the non-idle path is exercised.
        d.start_load(done, M2, 200 * MIB).unwrap();

        let mut enc = gfaas_snap::Enc::new();
        d.save_state(&mut enc);
        let bytes = enc.into_bytes();

        let mut fresh = dev(4096);
        let mut dec = gfaas_snap::Dec::new(&bytes);
        fresh.load_state(&mut dec).unwrap();
        dec.finish().unwrap();

        assert_eq!(format!("{fresh:?}"), format!("{d:?}"));
        // The restored device keeps operating identically.
        let until = match fresh.state() {
            DeviceState::Loading { until, .. } => until,
            s => panic!("expected loading, got {s:?}"),
        };
        fresh.complete_load(until, M2).unwrap();
        d.complete_load(until, M2).unwrap();
        assert_eq!(format!("{fresh:?}"), format!("{d:?}"));
    }

    #[test]
    fn load_state_rejects_corrupt_tags() {
        let mut d = dev(64);
        let mut enc = gfaas_snap::Enc::new();
        d.save_state(&mut enc);
        let mut bytes = enc.into_bytes();
        *bytes.last_mut().unwrap() = 0xff; // trample the trailing counter
        bytes.pop(); // ...and truncate it
        let mut dec = gfaas_snap::Dec::new(&bytes);
        assert!(d.load_state(&mut dec).is_err());
    }

    #[test]
    fn rtx2080_spec_matches_testbed() {
        let s = GpuSpec::rtx2080();
        assert_eq!(s.memory_bytes, 8 * 1024 * MIB);
        assert_eq!(s.sm_count, 46);
    }
}
