//! GPU processes: one resident process per cached model.
//!
//! In the paper's design (§III-C) the GPU Manager starts one GPU process per
//! model; the process uploads the model at spawn and then serves inference
//! requests forwarded to it. Evicting the model kills the process. The
//! process is therefore also the cache item: "model resident" and "process
//! alive" are the same fact.

use crate::memory::AllocId;
use crate::ModelId;
use gfaas_sim::time::SimTime;

/// Identifies one GPU process (unique per device for its lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u64);

/// Lifecycle of a GPU process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Uploading its model over PCIe; finishes at the embedded time.
    Loading {
        /// When the upload completes.
        until: SimTime,
    },
    /// Model resident, no request in flight.
    Ready,
    /// Serving an inference; finishes at the embedded time.
    Running {
        /// When the inference completes.
        until: SimTime,
    },
}

/// A resident GPU process serving one model.
#[derive(Debug, Clone)]
pub struct GpuProcess {
    /// Process id, unique within its device.
    pub pid: ProcId,
    /// The model this process serves (the cache item).
    pub model: ModelId,
    /// Device-memory allocation backing the model weights.
    pub alloc: AllocId,
    /// Current lifecycle state.
    pub state: ProcState,
    /// When the process was spawned.
    pub spawned_at: SimTime,
    /// Completed inferences served by this process.
    pub inferences: u64,
}

impl GpuProcess {
    /// Creates a process that starts uploading immediately.
    pub fn spawn(
        pid: ProcId,
        model: ModelId,
        alloc: AllocId,
        at: SimTime,
        ready_at: SimTime,
    ) -> Self {
        GpuProcess {
            pid,
            model,
            alloc,
            state: ProcState::Loading { until: ready_at },
            spawned_at: at,
            inferences: 0,
        }
    }

    /// True iff the model is resident and no request is in flight.
    pub fn is_ready(&self) -> bool {
        matches!(self.state, ProcState::Ready)
    }

    /// True iff the process is still uploading its model.
    pub fn is_loading(&self) -> bool {
        matches!(self.state, ProcState::Loading { .. })
    }

    /// True iff the process is serving an inference.
    pub fn is_running(&self) -> bool {
        matches!(self.state, ProcState::Running { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_starts_loading() {
        let p = GpuProcess::spawn(
            ProcId(1),
            ModelId(7),
            AllocId(0),
            SimTime::from_secs(1),
            SimTime::from_secs(4),
        );
        assert!(p.is_loading());
        assert!(!p.is_ready());
        assert!(!p.is_running());
        assert_eq!(p.inferences, 0);
        assert_eq!(
            p.state,
            ProcState::Loading {
                until: SimTime::from_secs(4)
            }
        );
    }
}
