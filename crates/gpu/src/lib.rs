//! `gfaas-gpu` — a deterministic simulated GPU device.
//!
//! The paper evaluates on three nodes with four GeForce RTX 2080 GPUs each.
//! We have no silicon, so this crate substitutes a device *model* that
//! reproduces exactly the properties the paper's scheduler and cache manager
//! depend on (see DESIGN.md §2):
//!
//! 1. **Bounded device memory with OOM semantics** — [`memory::MemoryPool`]
//!    tracks per-process allocations against the 8 GiB capacity; exceeding it
//!    is an explicit error, mirroring CUDA's `cudaErrorMemoryAllocation`.
//! 2. **PCIe model-upload cost** — [`pcie::PcieModel`] converts a model's
//!    byte size into a transfer latency. Calibrated against Table I of the
//!    paper: an effective ~1.6 GB/s link plus a fixed process-init overhead
//!    reproduces the paper's measured 2.3–4.4 s load times.
//! 3. **Exclusive execution** — [`device::GpuDevice`] is a state machine
//!    (idle → loading → running → idle) enforcing the paper's
//!    one-request-at-a-time rule.
//! 4. **SM utilisation accounting** — [`sm::SmTracker`] integrates the time
//!    the streaming multiprocessors spend in inference compute (upload time
//!    counts as zero SM), which is what Fig 4c plots.
//!
//! The device is *passive*: all timestamps are supplied by the discrete-event
//! driver in `gfaas-core`, so the same device code runs under virtual time in
//! experiments and under wall-clock time in the live examples.

#![warn(missing_docs)]

pub mod device;
pub mod memory;
pub mod pcie;
pub mod process;
pub mod sm;

pub use device::{DeviceState, GpuDevice, GpuError, GpuSpec};
pub use memory::{AllocId, MemoryPool, OomError};
pub use pcie::PcieModel;
pub use process::{GpuProcess, ProcId, ProcState};
pub use sm::SmTracker;

/// Identifies one physical GPU in the cluster (unique across nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpuId(pub u16);

impl std::fmt::Display for GpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Identifies one inference model (the unit of caching in GPU memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelId(pub u32);

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model{}", self.0)
    }
}

/// Bytes in one mebibyte; Table I sizes are given in MB (interpreted MiB).
pub const MIB: u64 = 1024 * 1024;

/// One level of the model-storage hierarchy a load is served from.
///
/// Tier 0 is device HBM (residency — a cache hit, no load at all); higher
/// numbers are further from the silicon and slower to serve. The default
/// stack used by `gfaas-store` is HBM ↔ host RAM ↔ origin (SSD/remote),
/// but the newtype supports arbitrarily deep stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tier(pub u8);

impl Tier {
    /// Device HBM — the serving tier of a resident (cache-hit) model.
    pub const HBM: Tier = Tier(0);
    /// Host RAM — a demoted or prefetched model, one PCIe hop away.
    pub const HOST: Tier = Tier(1);
    /// The origin store (SSD/remote) — a fully cold model.
    pub const ORIGIN: Tier = Tier(2);

    /// Short human-readable label ("hbm" / "host" / "origin" / "tierN").
    pub fn label(&self) -> std::borrow::Cow<'static, str> {
        match self.0 {
            0 => "hbm".into(),
            1 => "host".into(),
            2 => "origin".into(),
            n => format!("tier{n}").into(),
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}
