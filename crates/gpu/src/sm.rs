//! Streaming-multiprocessor (SM) busy-time accounting.
//!
//! Fig 4c of the paper plots average SM utilisation per scheduler. The
//! defining property (§V-C) is that *the SMs are idle while a model is being
//! uploaded*: a cache miss stalls compute until the PCIe transfer finishes.
//! [`SmTracker`] therefore integrates only inference-compute intervals;
//! upload intervals contribute nothing. Utilisation over a horizon is then
//! `busy_time / horizon`.

use gfaas_sim::time::{SimDuration, SimTime};

/// Accumulates SM-busy intervals and reports utilisation over a horizon.
#[derive(Debug, Clone, Default)]
pub struct SmTracker {
    busy: SimDuration,
    intervals: u64,
    open_since: Option<SimTime>,
}

impl SmTracker {
    /// A tracker with no recorded compute.
    pub fn new() -> Self {
        SmTracker::default()
    }

    /// Marks the SMs busy from `t` (a kernel started). Panics if already
    /// open — the device runs one request at a time.
    pub fn begin(&mut self, t: SimTime) {
        assert!(
            self.open_since.is_none(),
            "SM interval already open; GPU executes one request at a time"
        );
        self.open_since = Some(t);
    }

    /// Marks the SMs idle at `t` (the kernel finished), accumulating the
    /// closed interval. Panics if no interval is open or time runs backwards.
    pub fn end(&mut self, t: SimTime) {
        let start = self.open_since.take().expect("no SM interval open");
        assert!(t >= start, "SM interval ends before it starts");
        self.busy += t.duration_since(start);
        self.intervals += 1;
    }

    /// Records a closed `[from, to]` busy interval directly.
    pub fn record(&mut self, from: SimTime, to: SimTime) {
        assert!(to >= from, "negative SM interval");
        self.busy += to.duration_since(from);
        self.intervals += 1;
    }

    /// Total accumulated busy time, including an open interval up to `now`.
    pub fn busy_until(&self, now: SimTime) -> SimDuration {
        match self.open_since {
            Some(start) if now > start => self.busy + now.duration_since(start),
            _ => self.busy,
        }
    }

    /// Total accumulated busy time of *closed* intervals.
    pub fn busy(&self) -> SimDuration {
        self.busy
    }

    /// Number of closed intervals (completed kernels).
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Utilisation in `[0, 1]` over `[start, end]`, counting any open
    /// interval up to `end`.
    pub fn utilization(&self, start: SimTime, end: SimTime) -> f64 {
        let span = end.duration_since(start).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        (self.busy_until(end).as_secs_f64() / span).clamp(0.0, 1.0)
    }

    /// True iff an interval is currently open.
    pub fn is_busy(&self) -> bool {
        self.open_since.is_some()
    }

    /// Serialises the tracker.
    pub fn save_state(&self, enc: &mut gfaas_snap::Enc) {
        enc.put_dur(self.busy);
        enc.put_u64(self.intervals);
        enc.put_bool(self.open_since.is_some());
        if let Some(t) = self.open_since {
            enc.put_time(t);
        }
    }

    /// Restores the state written by [`SmTracker::save_state`].
    pub fn load_state(
        &mut self,
        dec: &mut gfaas_snap::Dec<'_>,
    ) -> Result<(), gfaas_snap::SnapError> {
        self.busy = dec.dur()?;
        self.intervals = dec.u64()?;
        self.open_since = if dec.bool()? { Some(dec.time()?) } else { None };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn accumulates_closed_intervals() {
        let mut sm = SmTracker::new();
        sm.begin(t(0));
        sm.end(t(2));
        sm.begin(t(5));
        sm.end(t(6));
        assert_eq!(sm.busy(), SimDuration::from_secs(3));
        assert_eq!(sm.intervals(), 2);
        assert!((sm.utilization(t(0), t(10)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn open_interval_counts_toward_now() {
        let mut sm = SmTracker::new();
        sm.begin(t(4));
        assert_eq!(sm.busy_until(t(9)), SimDuration::from_secs(5));
        assert!(sm.is_busy());
        assert!((sm.utilization(t(0), t(8)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn record_shortcut_matches_begin_end() {
        let mut a = SmTracker::new();
        a.begin(t(1));
        a.end(t(3));
        let mut b = SmTracker::new();
        b.record(t(1), t(3));
        assert_eq!(a.busy(), b.busy());
    }

    #[test]
    #[should_panic(expected = "one request at a time")]
    fn double_begin_panics() {
        let mut sm = SmTracker::new();
        sm.begin(t(0));
        sm.begin(t(1));
    }

    #[test]
    #[should_panic(expected = "no SM interval open")]
    fn end_without_begin_panics() {
        let mut sm = SmTracker::new();
        sm.end(t(1));
    }

    #[test]
    fn utilization_clamps_and_handles_empty_span() {
        let sm = SmTracker::new();
        assert_eq!(sm.utilization(t(5), t(5)), 0.0);
        assert_eq!(sm.utilization(t(9), t(3)), 0.0);
    }
}
