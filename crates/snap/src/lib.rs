//! Versioned simulation state: the undo-log journal behind snapshot,
//! rollback, speculative what-if scheduling, and trace checkpoints.
//!
//! The cluster driver owns a large bundle of mutable state — per-GPU
//! queues, residency lists, in-flight slots, the event heap, RNG streams,
//! metric accumulators. Re-running a trace to answer "what if the
//! scheduler had placed this request elsewhere?" costs a full replay;
//! this crate makes the alternative cheap:
//!
//! * [`Journal`] — an undo log of immutable state *images*. A
//!   [`Journal::snapshot`] pushes a frame and returns a [`SnapId`];
//!   [`Journal::rollback`] discards every younger frame and hands back a
//!   clone of the pinned image (the frame survives, so one snapshot
//!   supports any number of candidate rollbacks); [`Journal::commit`]
//!   retires frames once a decision is final. The shape follows the
//!   versioned-map transactions of software transactional memory: writers
//!   mutate freely between snapshot and commit, and abort is a pointer
//!   swap back to the pinned version.
//! * [`Enc`] / [`Dec`] — the length-checked little-endian codec every
//!   component uses to serialise its slice of the cluster image, both for
//!   in-memory policy blobs and for on-disk checkpoints.
//! * [`write_header`] / [`read_header`] — the `GFSNAP01` checkpoint
//!   envelope: magic, format version, and FNV-1a digests of the cluster
//!   config and the trace, so a warm start refuses to resume against a
//!   world it was not captured in.
//!
//! What counts as "the image" is the cluster's business — this crate is
//! deliberately ignorant of GPUs and schedulers. It only promises that
//! whatever was captured comes back bit-for-bit.

use std::fmt;

use gfaas_sim::time::{SimDuration, SimTime};

/// Checkpoint file magic: `GFSNAP` plus a two-digit envelope generation.
pub const MAGIC: [u8; 8] = *b"GFSNAP01";

/// Checkpoint image format version. Bump on any layout change; restore
/// rejects mismatches rather than misinterpreting bytes.
pub const VERSION: u32 = 1;

/// Why a checkpoint or blob failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before the value did.
    Truncated,
    /// The file does not start with [`MAGIC`] — not a checkpoint.
    BadMagic,
    /// The image was written by a different format version.
    Version {
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        expect: u32,
    },
    /// The checkpoint was captured under a different cluster config.
    ConfigMismatch,
    /// The checkpoint was captured against a different trace.
    TraceMismatch,
    /// Decoding finished with unread bytes left over.
    TrailingBytes(usize),
    /// A decoded value is structurally impossible (bad enum tag, bad
    /// UTF-8, count overflow, …).
    Corrupt(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "checkpoint truncated"),
            SnapError::BadMagic => write!(f, "not a gfaas checkpoint (bad magic)"),
            SnapError::Version { found, expect } => {
                write!(f, "checkpoint format v{found}, this build reads v{expect}")
            }
            SnapError::ConfigMismatch => {
                write!(
                    f,
                    "checkpoint was captured under a different cluster config"
                )
            }
            SnapError::TraceMismatch => {
                write!(f, "checkpoint was captured against a different trace")
            }
            SnapError::TrailingBytes(n) => {
                write!(f, "checkpoint has {n} trailing bytes after the image")
            }
            SnapError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// The little-endian encoder. Infallible: encoding only appends to an
/// owned buffer. Every multi-byte integer is little-endian; floats travel
/// as their IEEE-754 bit patterns so restore is bit-exact; lengths are
/// `u64` so images are portable across pointer widths.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// An encoder with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Enc {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes with no length prefix (magic, digests).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (images are pointer-width portable).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact restore).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (`0`/`1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends a [`SimTime`] as its microsecond tick count.
    pub fn put_time(&mut self, t: SimTime) {
        self.put_u64(t.as_micros());
    }

    /// Appends a [`SimDuration`] as its microsecond tick count.
    pub fn put_dur(&mut self, d: SimDuration) {
        self.put_u64(d.as_micros());
    }
}

/// The checked decoder over an encoded image. Every getter returns
/// [`SnapError::Truncated`] rather than reading past the end.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, SnapError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::Corrupt("usize overflow"))
    }

    /// Reads an `f64` from its stored bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool; any byte other than `0`/`1` is corruption.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool tag out of range")),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.usize()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        String::from_utf8(self.bytes()?).map_err(|_| SnapError::Corrupt("string is not UTF-8"))
    }

    /// Reads a [`SimTime`] from its microsecond tick count.
    pub fn time(&mut self) -> Result<SimTime, SnapError> {
        Ok(SimTime::from_micros(self.u64()?))
    }

    /// Reads a [`SimDuration`] from its microsecond tick count.
    pub fn dur(&mut self) -> Result<SimDuration, SnapError> {
        Ok(SimDuration::from_micros(self.u64()?))
    }

    /// Asserts the image was consumed exactly; leftovers mean the writer
    /// and reader disagree about the layout.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Content digests
// ---------------------------------------------------------------------------

/// Incremental FNV-1a (64-bit) — the checkpoint envelope's content
/// digest. Not cryptographic; it only needs to make "wrong config" and
/// "wrong trace" overwhelmingly unlikely to collide by accident.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// The empty digest.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Folds raw bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a little-endian `u64` into the digest.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// One-shot FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Writes the checkpoint envelope: magic, format version, config digest,
/// trace digest, trace length. The body of the image follows.
pub fn write_header(enc: &mut Enc, config_hash: u64, trace_hash: u64, trace_len: usize) {
    enc.put_raw(&MAGIC);
    enc.put_u32(VERSION);
    enc.put_u64(config_hash);
    enc.put_u64(trace_hash);
    enc.put_usize(trace_len);
}

/// Validates the checkpoint envelope against the world the caller is
/// restoring into. On success the decoder is positioned at the image
/// body.
pub fn read_header(
    dec: &mut Dec<'_>,
    config_hash: u64,
    trace_hash: u64,
    trace_len: usize,
) -> Result<(), SnapError> {
    if dec.take(8)? != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let found = dec.u32()?;
    if found != VERSION {
        return Err(SnapError::Version {
            found,
            expect: VERSION,
        });
    }
    if dec.u64()? != config_hash {
        return Err(SnapError::ConfigMismatch);
    }
    if dec.u64()? != trace_hash || dec.usize()? != trace_len {
        return Err(SnapError::TraceMismatch);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

/// Handle to a pinned state image in a [`Journal`]. Ids are issued in
/// strictly increasing order within one journal and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapId(u64);

impl SnapId {
    /// The raw id, for logs and telemetry.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SnapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snap#{}", self.0)
    }
}

/// Cumulative journal activity, for telemetry and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Snapshots taken over the journal's lifetime.
    pub snapshots: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Commits performed.
    pub commits: u64,
}

/// An undo log of state images.
///
/// The owner captures its full mutable state as an image `I`, pins it
/// with [`Journal::snapshot`], then mutates freely. [`Journal::rollback`]
/// discards every frame younger than the pinned one and returns a *clone*
/// of its image — the frame itself survives, so speculative search can
/// roll back to the same snapshot once per candidate. When the owner has
/// chosen a branch, [`Journal::commit`] retires the frame (and everything
/// older), releasing the memory.
///
/// Frames nest like a stack: rolling back to an older frame implicitly
/// discards every younger one, exactly as nested transactions abort.
#[derive(Debug, Default)]
pub struct Journal<I: Clone> {
    frames: Vec<(SnapId, I)>,
    next: u64,
    stats: JournalStats,
}

impl<I: Clone> Journal<I> {
    /// An empty journal.
    pub fn new() -> Self {
        Journal {
            frames: Vec::new(),
            next: 0,
            stats: JournalStats::default(),
        }
    }

    /// Pins `image` as a new frame and returns its handle.
    pub fn snapshot(&mut self, image: I) -> SnapId {
        let id = SnapId(self.next);
        self.next += 1;
        self.stats.snapshots += 1;
        self.frames.push((id, image));
        id
    }

    /// Rolls back to `id`: discards every younger frame and returns a
    /// clone of the pinned image. The frame survives for further
    /// rollbacks. Returns `None` when `id` is not live (never issued,
    /// already committed, or discarded by an older rollback).
    pub fn rollback(&mut self, id: SnapId) -> Option<I> {
        let at = self.frames.iter().position(|(fid, _)| *fid == id)?;
        self.frames.truncate(at + 1);
        self.stats.rollbacks += 1;
        Some(self.frames[at].1.clone())
    }

    /// Commits `id`: drops its frame and every older one. The state the
    /// owner currently holds *is* the committed state; the journal merely
    /// releases the undo images. Returns false when `id` is not live.
    pub fn commit(&mut self, id: SnapId) -> bool {
        let Some(at) = self.frames.iter().position(|(fid, _)| *fid == id) else {
            return false;
        };
        self.frames.drain(..=at);
        self.stats.commits += 1;
        true
    }

    /// Restores *and retires* `id` in one step: discards every younger
    /// frame, pops the frame itself, and returns its image by move — no
    /// clone, and older frames are untouched (unlike [`Journal::commit`],
    /// which releases them). This is the speculation primitive: a what-if
    /// fork pins one frame, replays, and then `take`s it to both restore
    /// the pre-fork state and drop the frame, leaving any longer-lived
    /// snapshots beneath it intact. Counts as a rollback in the stats.
    /// Returns `None` when `id` is not live.
    pub fn take(&mut self, id: SnapId) -> Option<I> {
        let at = self.frames.iter().position(|(fid, _)| *fid == id)?;
        self.frames.truncate(at + 1);
        self.stats.rollbacks += 1;
        Some(
            self.frames
                .pop()
                .expect("frame at `at` survives truncate")
                .1,
        )
    }

    /// Live (uncommitted) frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// True when no frame is pinned.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Lifetime activity counters.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips_every_primitive() {
        let mut e = Enc::new();
        e.put_u8(0xab);
        e.put_u16(0xbeef);
        e.put_u32(0xdead_beef);
        e.put_u64(u64::MAX - 7);
        e.put_u128(u128::MAX / 3);
        e.put_usize(123_456);
        e.put_f64(-0.1);
        e.put_bool(true);
        e.put_bool(false);
        e.put_bytes(b"blob");
        e.put_str("héllo");
        e.put_time(SimTime::from_micros(42));
        e.put_dur(SimDuration::from_micros(7));
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 0xab);
        assert_eq!(d.u16().unwrap(), 0xbeef);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 7);
        assert_eq!(d.u128().unwrap(), u128::MAX / 3);
        assert_eq!(d.usize().unwrap(), 123_456);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.bytes().unwrap(), b"blob");
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.time().unwrap(), SimTime::from_micros(42));
        assert_eq!(d.dur().unwrap(), SimDuration::from_micros(7));
        d.finish().unwrap();
    }

    #[test]
    fn nan_bits_survive_the_float_round_trip() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut e = Enc::new();
        e.put_f64(weird);
        let bytes = e.into_bytes();
        let got = Dec::new(&bytes).f64().unwrap();
        assert_eq!(got.to_bits(), weird.to_bits());
    }

    #[test]
    fn decoder_reports_truncation_not_panic() {
        let mut e = Enc::new();
        e.put_u32(7);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u64(), Err(SnapError::Truncated));
        // A bad length prefix on a byte string is also just truncation.
        let mut e = Enc::new();
        e.put_usize(1_000_000);
        let bytes = e.into_bytes();
        assert_eq!(Dec::new(&bytes).bytes(), Err(SnapError::Truncated));
    }

    #[test]
    fn decoder_flags_corrupt_tags_and_leftovers() {
        let mut d = Dec::new(&[3]);
        assert_eq!(d.bool(), Err(SnapError::Corrupt("bool tag out of range")));
        let mut e = Enc::new();
        e.put_u8(1);
        e.put_u8(2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        d.u8().unwrap();
        assert_eq!(d.finish(), Err(SnapError::TrailingBytes(1)));
    }

    #[test]
    fn header_round_trips_and_rejects_mismatches() {
        let mut e = Enc::new();
        write_header(&mut e, 0x1111, 0x2222, 640);
        e.put_u8(0xfe); // image body
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        read_header(&mut d, 0x1111, 0x2222, 640).unwrap();
        assert_eq!(d.u8().unwrap(), 0xfe);
        d.finish().unwrap();

        let mut d = Dec::new(&bytes);
        assert_eq!(
            read_header(&mut d, 0x9999, 0x2222, 640),
            Err(SnapError::ConfigMismatch)
        );
        let mut d = Dec::new(&bytes);
        assert_eq!(
            read_header(&mut d, 0x1111, 0x9999, 640),
            Err(SnapError::TraceMismatch)
        );
        let mut d = Dec::new(&bytes);
        assert_eq!(
            read_header(&mut d, 0x1111, 0x2222, 641),
            Err(SnapError::TraceMismatch)
        );
        assert_eq!(
            read_header(&mut Dec::new(b"NOTSNAP0rest"), 0, 0, 0),
            Err(SnapError::BadMagic)
        );

        let mut e = Enc::new();
        e.put_raw(&MAGIC);
        e.put_u32(VERSION + 1);
        e.put_u64(0);
        e.put_u64(0);
        e.put_usize(0);
        let bytes = e.into_bytes();
        assert_eq!(
            read_header(&mut Dec::new(&bytes), 0, 0, 0),
            Err(SnapError::Version {
                found: VERSION + 1,
                expect: VERSION
            })
        );
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
        let mut inc = Fnv1a::new();
        inc.write(b"foo");
        inc.write(b"bar");
        assert_eq!(inc.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn journal_snapshot_rollback_commit_semantics() {
        let mut j: Journal<Vec<u32>> = Journal::new();
        assert!(j.is_empty());
        let a = j.snapshot(vec![1]);
        let b = j.snapshot(vec![1, 2]);
        assert_eq!(j.depth(), 2);

        // Rollback clones the pinned image; the frame survives, so the
        // same snapshot serves several candidate explorations.
        assert_eq!(j.rollback(b), Some(vec![1, 2]));
        assert_eq!(j.rollback(b), Some(vec![1, 2]));
        assert_eq!(j.depth(), 2);

        // Rolling back to an older frame discards the younger one.
        assert_eq!(j.rollback(a), Some(vec![1]));
        assert_eq!(j.depth(), 1);
        assert_eq!(j.rollback(b), None, "b was discarded by the rollback to a");

        // Commit retires the frame; the id is dead afterwards.
        assert!(j.commit(a));
        assert!(j.is_empty());
        assert!(!j.commit(a));
        assert_eq!(j.rollback(a), None);

        let s = j.stats();
        assert_eq!((s.snapshots, s.rollbacks, s.commits), (2, 3, 1));
    }

    #[test]
    fn journal_commit_retires_older_frames_too() {
        let mut j: Journal<u8> = Journal::new();
        let a = j.snapshot(1);
        let b = j.snapshot(2);
        let c = j.snapshot(3);
        assert!(j.commit(b));
        assert_eq!(j.depth(), 1, "a and b retired, c still pinned");
        assert_eq!(j.rollback(a), None);
        assert_eq!(j.rollback(c), Some(3));
    }

    #[test]
    fn journal_take_restores_and_retires_without_touching_older_frames() {
        let mut j: Journal<u8> = Journal::new();
        let user = j.snapshot(10);
        let fork = j.snapshot(20);
        // `take` moves the image out and drops the frame — the older
        // (user-held) snapshot must survive, unlike a commit.
        assert_eq!(j.take(fork), Some(20));
        assert_eq!(j.depth(), 1);
        assert_eq!(j.take(fork), None, "taken frames are dead");
        assert_eq!(j.rollback(user), Some(10), "older frame untouched");
        // A take also discards younger frames, like a rollback.
        let a = j.snapshot(30);
        let b = j.snapshot(40);
        assert_eq!(j.take(a), Some(30));
        assert_eq!(j.rollback(b), None, "b was discarded by taking a");
        let s = j.stats();
        // Failed restores (dead ids) are not counted.
        assert_eq!((s.snapshots, s.rollbacks), (4, 3));
    }

    #[test]
    fn journal_ids_are_never_reused() {
        let mut j: Journal<u8> = Journal::new();
        let a = j.snapshot(1);
        assert!(j.commit(a));
        let b = j.snapshot(2);
        assert_ne!(a, b);
        assert!(a < b, "ids are strictly increasing");
        assert_eq!(format!("{b}"), "snap#1");
    }
}
