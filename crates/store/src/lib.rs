//! `gfaas-store` — the multi-tier model storage hierarchy.
//!
//! The paper models every cache miss as one flat PCIe upload from an
//! infinite store. Real inference fleets stage weights across tiers with
//! order-of-magnitude bandwidth gaps — GPU HBM ↔ host RAM ↔ an origin
//! store (SSD or remote object storage). A host-resident model costs one
//! PCIe copy out of pinned RAM; a cold one first crosses the much slower
//! origin link. This crate opens that dimension behind the cluster's
//! existing load path:
//!
//! * [`ModelStore`] — the open backend trait. The cluster driver asks it
//!   for the load cost of a model *given where its bytes currently live*
//!   ([`ModelStore::load_cost`] for estimates,
//!   [`ModelStore::begin_load`] when a miss actually dispatches), tells
//!   it when eviction **demotes** an HBM resident into the host tier
//!   ([`ModelStore::demote`]), and feeds it the demand signal
//!   ([`ModelStore::note_arrival`], [`ModelStore::note_scale_up`]) that
//!   drives async **prefetch** into the host tier.
//! * [`FlatStore`] — the paper's model: one flat cost from an infinite
//!   origin. Byte-identical to the pre-store simulator by construction
//!   (it returns the caller's flat cost verbatim), and additionally
//!   gated out of the cluster hot path entirely.
//! * [`TieredStore`] — the default three-tier stack. A bounded host
//!   cache with LRU replacement sits between HBM and the origin;
//!   demotions and demand fetches populate it; an arrival-rate EWMA and
//!   a scale-up hook stage hot models into it over a modelled background
//!   channel that **contends with demand loads** for the origin link.
//! * [`StoreSpec`] — the string-facing configuration, parsed like a
//!   policy spec: `flat` | `tiered:host=64G,origin_bw=2G,prefetch=3`.
//!
//! Tier identity ([`Tier`]) lives in `gfaas-gpu` so the observability
//! layer can tag load events without depending on this crate.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

use gfaas_gpu::{ModelId, PcieModel, Tier};
use gfaas_sim::time::{SimDuration, SimTime};

/// Default host-tier capacity: 64 GiB of pinned staging RAM.
pub const DEFAULT_HOST_BYTES: u64 = 64 * 1024 * 1024 * 1024;
/// Default origin-link bandwidth (NVMe-class remote store), bytes/sec.
pub const DEFAULT_ORIGIN_BW_BPS: f64 = 2.0e9;
/// Default origin fixed latency: the paper's framework overhead (process
/// init, deserialisation) belongs to the cold path, so a cold tiered load
/// pays roughly what a flat load does plus the origin transfer.
pub const DEFAULT_ORIGIN_LAT_SECS: f64 = 1.62;
/// Default host→HBM bandwidth: wire-speed PCIe 3.0 x16. Host-resident
/// weights are already deserialised into pinned RAM, so the copy runs at
/// link speed instead of the framework-bound ~1.6 GB/s of a flat load.
pub const DEFAULT_PCIE_BW_BPS: f64 = 15.75e9;
/// Default host→HBM fixed latency (context setup + `cudaMalloc`).
pub const DEFAULT_PCIE_LAT_SECS: f64 = 0.2;
/// Default prefetch trigger: EWMA arrival score above which a
/// non-host-resident model is staged. `0` disables prefetch.
pub const DEFAULT_PREFETCH_SCORE: f64 = 3.0;
/// Default scale-up staging set: how many of the hottest models are
/// pushed toward the host tier when new capacity comes online.
pub const DEFAULT_HOT_SET: usize = 4;
/// Arrival-EWMA decay time constant, seconds of virtual time.
pub const EWMA_TAU_SECS: f64 = 60.0;
/// Score floor below which scale-up staging ignores a model (avoids
/// filling the origin link with models that stopped arriving long ago).
const HOT_SCORE_FLOOR: f64 = 0.5;

// ---------------------------------------------------------------------
// Spec
// ---------------------------------------------------------------------

/// A malformed or out-of-range store spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The spec string was syntactically malformed.
    BadSpec(String),
    /// No store backend is registered under this key.
    UnknownKey(String),
    /// A `field=value` pair failed to parse.
    BadField {
        /// The offending field name.
        field: String,
        /// The value that was supplied.
        value: String,
    },
    /// The parsed fields are structurally inconsistent.
    BadBounds(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadSpec(s) => write!(f, "malformed store spec {s:?}"),
            StoreError::UnknownKey(k) => {
                write!(f, "unknown store {k:?} (known: [\"flat\", \"tiered\"])")
            }
            StoreError::BadField { field, value } => {
                write!(f, "bad store field {field}={value:?}")
            }
            StoreError::BadBounds(why) => write!(f, "inconsistent store spec: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A parsed store spec: `key[:field=value,…]` — the CLI- and
/// config-facing description of a storage hierarchy, in the same grammar
/// as `AutoscaleSpec` and the policy specs.
///
/// Grammar: `flat` (no fields; the paper's single-cost model) or
/// `tiered[:host=B,origin_bw=R,origin_lat=S,pcie_bw=R,pcie_lat=S,prefetch=X,hot=K]`,
/// fields in any order, all optional (see the `DEFAULT_*` constants).
/// Capacities take binary suffixes (`64G` = 64 GiB); bandwidths take
/// decimal suffixes (`2G` = 2 × 10⁹ B/s); bare digits are raw bytes
/// (resp. bytes/sec). `prefetch` is the arrival-EWMA score that triggers
/// staging (`0` disables); `hot` is the scale-up staging set size.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSpec {
    key: String,
    /// Host-tier capacity in bytes.
    pub host_bytes: u64,
    /// Origin-link bandwidth, bytes per second.
    pub origin_bw_bps: f64,
    /// Origin fixed per-fetch latency, seconds.
    pub origin_lat_secs: f64,
    /// Host→HBM bandwidth, bytes per second.
    pub pcie_bw_bps: f64,
    /// Host→HBM fixed per-copy latency, seconds.
    pub pcie_lat_secs: f64,
    /// Arrival-EWMA score triggering a prefetch; `0` disables.
    pub prefetch: f64,
    /// Scale-up staging set size; `0` disables scale-up staging.
    pub hot: usize,
}

impl Default for StoreSpec {
    /// The default store is `flat` — the paper's model, and the
    /// byte-identity baseline every other subsystem is validated against.
    fn default() -> Self {
        StoreSpec {
            key: "flat".to_string(),
            host_bytes: DEFAULT_HOST_BYTES,
            origin_bw_bps: DEFAULT_ORIGIN_BW_BPS,
            origin_lat_secs: DEFAULT_ORIGIN_LAT_SECS,
            pcie_bw_bps: DEFAULT_PCIE_BW_BPS,
            pcie_lat_secs: DEFAULT_PCIE_LAT_SECS,
            prefetch: DEFAULT_PREFETCH_SCORE,
            hot: DEFAULT_HOT_SET,
        }
    }
}

/// Parses a byte capacity: bare digits are bytes; `K`/`M`/`G`/`T`
/// suffixes are binary (powers of 1024), matching how model sizes are
/// quoted (`64G` = 64 GiB).
fn parse_capacity(s: &str) -> Option<u64> {
    let (num, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1u64 << 10),
        b'M' | b'm' => (&s[..s.len() - 1], 1u64 << 20),
        b'G' | b'g' => (&s[..s.len() - 1], 1u64 << 30),
        b'T' | b't' => (&s[..s.len() - 1], 1u64 << 40),
        _ => (s, 1),
    };
    let v: f64 = num
        .parse()
        .ok()
        .filter(|v: &f64| v.is_finite() && *v >= 0.0)?;
    Some((v * mult as f64) as u64)
}

/// Parses a bandwidth: bare digits are bytes/sec; `K`/`M`/`G`/`T`
/// suffixes are decimal (powers of 1000), matching how link rates are
/// quoted (`2G` = 2 × 10⁹ B/s).
fn parse_bandwidth(s: &str) -> Option<f64> {
    let (num, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1e3),
        b'M' | b'm' => (&s[..s.len() - 1], 1e6),
        b'G' | b'g' => (&s[..s.len() - 1], 1e9),
        b'T' | b't' => (&s[..s.len() - 1], 1e12),
        _ => (s, 1.0),
    };
    let v: f64 = num.parse().ok().filter(|v: &f64| v.is_finite())?;
    Some(v * mult)
}

impl StoreSpec {
    /// Parses `key[:field=value,…]`. See the type docs for the grammar.
    pub fn parse(s: &str) -> Result<StoreSpec, StoreError> {
        let s = s.trim();
        let (key, args) = match s.split_once(':') {
            Some((k, a)) => (k, Some(a)),
            None => (s, None),
        };
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
        {
            return Err(StoreError::BadSpec(s.to_string()));
        }
        if key == "flat" && args.is_some() {
            // The flat store has no knobs; trailing fields are a typo.
            return Err(StoreError::BadSpec(s.to_string()));
        }
        let mut spec = StoreSpec {
            key: key.to_string(),
            ..StoreSpec::default()
        };
        if let Some(args) = args {
            if args.is_empty() {
                return Err(StoreError::BadSpec(s.to_string()));
            }
            for pair in args.split(',') {
                let Some((field, value)) = pair.split_once('=') else {
                    return Err(StoreError::BadSpec(s.to_string()));
                };
                let bad = || StoreError::BadField {
                    field: field.to_string(),
                    value: value.to_string(),
                };
                match field {
                    "host" => spec.host_bytes = parse_capacity(value).ok_or_else(bad)?,
                    "origin_bw" => spec.origin_bw_bps = parse_bandwidth(value).ok_or_else(bad)?,
                    "origin_lat" => {
                        spec.origin_lat_secs = value
                            .parse()
                            .ok()
                            .filter(|v: &f64| v.is_finite())
                            .ok_or_else(bad)?
                    }
                    "pcie_bw" => spec.pcie_bw_bps = parse_bandwidth(value).ok_or_else(bad)?,
                    "pcie_lat" => {
                        spec.pcie_lat_secs = value
                            .parse()
                            .ok()
                            .filter(|v: &f64| v.is_finite())
                            .ok_or_else(bad)?
                    }
                    "prefetch" => {
                        spec.prefetch = value
                            .parse()
                            .ok()
                            .filter(|v: &f64| v.is_finite())
                            .ok_or_else(bad)?
                    }
                    "hot" => spec.hot = value.parse().map_err(|_| bad())?,
                    _ => return Err(bad()),
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// The registry key (`"flat"` or `"tiered"` for the builtins).
    pub fn key(&self) -> &str {
        &self.key
    }

    /// True iff this spec names the flat (paper-identical) store.
    pub fn is_flat(&self) -> bool {
        self.key == "flat"
    }

    /// Checks structural consistency: a known key, positive finite link
    /// rates, nonnegative latencies and prefetch threshold. `flat` takes
    /// no fields (the parser enforces this; a hand-built flat spec with
    /// altered fields validates but the fields are simply unused).
    pub fn validate(&self) -> Result<(), StoreError> {
        if self.key != "flat" && self.key != "tiered" {
            return Err(StoreError::UnknownKey(self.key.clone()));
        }
        // NaN must fail too, hence the negated comparison shapes.
        // gfaas-lint: allow(float-ord, NaN-rejecting validation - partial_cmp returning None deliberately fails the check)
        if self.origin_bw_bps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(StoreError::BadBounds("origin_bw must be positive".into()));
        }
        // gfaas-lint: allow(float-ord, NaN-rejecting validation - partial_cmp returning None deliberately fails the check)
        if self.pcie_bw_bps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(StoreError::BadBounds("pcie_bw must be positive".into()));
        }
        if self.origin_lat_secs < 0.0 {
            return Err(StoreError::BadBounds(
                "origin_lat must be nonnegative".into(),
            ));
        }
        if self.pcie_lat_secs < 0.0 {
            return Err(StoreError::BadBounds("pcie_lat must be nonnegative".into()));
        }
        if self.prefetch < 0.0 {
            return Err(StoreError::BadBounds("prefetch must be nonnegative".into()));
        }
        Ok(())
    }

    /// Instantiates the store backend this spec names.
    pub fn build(&self) -> Result<Box<dyn ModelStore>, StoreError> {
        self.validate()?;
        match self.key.as_str() {
            "flat" => Ok(Box::new(FlatStore::new())),
            "tiered" => Ok(Box::new(TieredStore::from_spec(self))),
            _ => Err(StoreError::UnknownKey(self.key.clone())),
        }
    }
}

impl fmt::Display for StoreSpec {
    /// The canonical form: `flat` stays bare (its fields are unused);
    /// `tiered` prints every field and re-parses to an equal spec.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.key == "flat" {
            return write!(f, "flat");
        }
        write!(
            f,
            "{}:host={},origin_bw={},origin_lat={},pcie_bw={},pcie_lat={},prefetch={},hot={}",
            self.key,
            self.host_bytes,
            self.origin_bw_bps,
            self.origin_lat_secs,
            self.pcie_bw_bps,
            self.pcie_lat_secs,
            self.prefetch,
            self.hot
        )
    }
}

impl std::str::FromStr for StoreSpec {
    type Err = StoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        StoreSpec::parse(s)
    }
}

// ---------------------------------------------------------------------
// Trait
// ---------------------------------------------------------------------

/// Counters and gauges a store exposes for reports and invariant tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Demand loads served from the host tier (one PCIe hop).
    pub host_hits: u64,
    /// Demand loads that crossed the origin link.
    pub origin_loads: u64,
    /// Demand loads that joined an in-flight prefetch mid-transfer.
    pub prefetch_joins: u64,
    /// Background fetches started (arrival-triggered + scale-up staging).
    pub prefetches: u64,
    /// HBM evictions demoted into the host tier.
    pub demotions: u64,
    /// Host-tier entries displaced to make room.
    pub host_evictions: u64,
    /// Stage attempts rejected because the model exceeds the host tier.
    pub host_rejects: u64,
    /// Bytes currently resident in the host tier.
    pub host_bytes_used: u64,
    /// Host-tier capacity in bytes.
    pub host_capacity: u64,
    /// Models currently resident in the host tier.
    pub host_models: usize,
}

/// A model-storage backend behind the cluster's load path.
///
/// The driver holds exactly one store for the whole cluster (the host
/// tier and origin link are node/fleet-shared resources, like the
/// datastore). All methods take the current virtual time; implementations
/// must be deterministic — any randomness must come from owned, seeded
/// state.
///
/// The contract between [`ModelStore::load_cost`] (the estimator view)
/// and [`ModelStore::begin_load`] (the authoritative dispatch) is that
/// both price the same placement at the same instant identically, except
/// that `begin_load` first settles any background transfers that have
/// completed by `now` — settlement can displace host entries, so an
/// estimate taken in the same event can, rarely, be one displacement
/// stale. Estimates are advisory; `begin_load` is what the device pays.
pub trait ModelStore: fmt::Debug + Send {
    /// Display name for reports.
    fn name(&self) -> String;

    /// True for the flat (paper-identical) store. The cluster gates the
    /// store out of its hot paths entirely when this holds, preserving
    /// byte-identity with the pre-store simulator.
    fn is_flat(&self) -> bool {
        false
    }

    /// The tier a demand load for `model` would be served from right
    /// now (HBM residency is the cluster's knowledge, so this is never
    /// [`Tier::HBM`]).
    fn serving_tier(&self, model: ModelId) -> Tier;

    /// Estimated cost of uploading `model` (`bytes` large) to a device
    /// now, given where its bytes live. `flat_cost` is the legacy flat
    /// charge (registry load time × the device's PCIe scale); the flat
    /// store returns it verbatim, tiered stores ignore it and price the
    /// actual hop chain (tiered loads are staged through shared host
    /// RAM, so per-device PCIe scaling does not apply).
    fn load_cost(
        &self,
        now: SimTime,
        model: ModelId,
        bytes: u64,
        flat_cost: SimDuration,
    ) -> SimDuration;

    /// Commits a demand load: charges the origin link if the bytes are
    /// cold, stages them into the host tier, and returns the serving
    /// tier plus the load duration the device should model.
    fn begin_load(
        &mut self,
        now: SimTime,
        model: ModelId,
        bytes: u64,
        flat_cost: SimDuration,
    ) -> (Tier, SimDuration);

    /// An HBM eviction demoted `model` into the host tier. The writeback
    /// is modelled as free (device→host DMA overlaps compute and is an
    /// order of magnitude faster than the origin link).
    fn demote(&mut self, now: SimTime, model: ModelId, bytes: u64);

    /// One request for `model` arrived — the demand signal feeding the
    /// prefetch predictor.
    fn note_arrival(&mut self, now: SimTime, model: ModelId, bytes: u64);

    /// New GPU capacity just came online cold; the store may stage the
    /// current hot set toward the host tier ahead of the miss storm.
    fn note_scale_up(&mut self, now: SimTime);

    /// Current counters and gauges.
    fn stats(&self) -> StoreStats;

    /// Serialises the store's mutable state into a snapshot blob.
    /// Configuration (capacities, link models, thresholds) is rebuilt
    /// from the spec on restore and must not be written. Stateless
    /// backends keep the default no-op.
    fn save_state(&self, enc: &mut gfaas_snap::Enc) {
        let _ = enc;
    }

    /// Restores the state written by [`ModelStore::save_state`] onto a
    /// freshly built backend of the same spec.
    fn load_state(&mut self, dec: &mut gfaas_snap::Dec<'_>) -> Result<(), gfaas_snap::SnapError> {
        let _ = dec;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Flat store
// ---------------------------------------------------------------------

/// The paper's storage model: an infinite origin, one flat upload cost.
///
/// [`FlatStore::load_cost`] returns the caller's `flat_cost` verbatim,
/// so simulation output is byte-identical to the pre-store simulator
/// even without the cluster's hot-path gate.
#[derive(Debug, Default)]
pub struct FlatStore {
    loads: u64,
}

impl FlatStore {
    /// Builds the flat store.
    pub fn new() -> Self {
        FlatStore::default()
    }
}

impl ModelStore for FlatStore {
    fn name(&self) -> String {
        "flat".to_string()
    }

    fn is_flat(&self) -> bool {
        true
    }

    fn serving_tier(&self, _model: ModelId) -> Tier {
        Tier::ORIGIN
    }

    fn load_cost(
        &self,
        _now: SimTime,
        _model: ModelId,
        _bytes: u64,
        flat_cost: SimDuration,
    ) -> SimDuration {
        flat_cost
    }

    fn begin_load(
        &mut self,
        _now: SimTime,
        _model: ModelId,
        _bytes: u64,
        flat_cost: SimDuration,
    ) -> (Tier, SimDuration) {
        self.loads += 1;
        (Tier::ORIGIN, flat_cost)
    }

    fn demote(&mut self, _now: SimTime, _model: ModelId, _bytes: u64) {}

    fn note_arrival(&mut self, _now: SimTime, _model: ModelId, _bytes: u64) {}

    fn note_scale_up(&mut self, _now: SimTime) {}

    fn stats(&self) -> StoreStats {
        StoreStats {
            origin_loads: self.loads,
            ..StoreStats::default()
        }
    }

    fn save_state(&self, enc: &mut gfaas_snap::Enc) {
        enc.put_u64(self.loads);
    }

    fn load_state(&mut self, dec: &mut gfaas_snap::Dec<'_>) -> Result<(), gfaas_snap::SnapError> {
        self.loads = dec.u64()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Tiered store
// ---------------------------------------------------------------------

/// One model resident in the host tier.
#[derive(Debug, Clone, Copy)]
struct HostEntry {
    model: ModelId,
    bytes: u64,
}

/// A background origin→host transfer in flight.
#[derive(Debug, Clone, Copy)]
struct InFlightFetch {
    model: ModelId,
    bytes: u64,
    ready: SimTime,
}

/// Per-model arrival predictor state.
#[derive(Debug, Clone, Copy)]
struct ArrivalScore {
    value: f64,
    last: SimTime,
    bytes: u64,
}

/// The default three-tier stack: HBM ↔ bounded host cache ↔ origin.
///
/// * **Host tier** — an LRU byte-budgeted cache of model weights in
///   pinned RAM. Populated by demotions (HBM evictions), demand fetches
///   (cold loads stage through it), and prefetches. A host hit costs one
///   PCIe hop — cheaper than a flat load, because the bytes are already
///   deserialised.
/// * **Origin link** — a FIFO channel of `origin_bw` bytes/sec shared by
///   demand fetches and prefetches: a fetch issued while the link is busy
///   queues behind it, so speculative staging genuinely contends with
///   (and can delay) demand misses.
/// * **Prefetch** — a per-model exponentially-decayed arrival score
///   (time constant [`EWMA_TAU_SECS`]); crossing `prefetch` stages the
///   model into the host tier in the background, and a demand miss that
///   lands mid-transfer joins the in-flight fetch instead of restarting
///   it. On scale-up the `hot` highest-scoring absent models are staged
///   ahead of the cold-start storm.
#[derive(Debug)]
pub struct TieredStore {
    pcie: PcieModel,
    origin: PcieModel,
    host_capacity: u64,
    host_used: u64,
    /// LRU order: least recently used at the front.
    host: Vec<HostEntry>,
    /// FIFO origin link: in flight fetches, ready times nondecreasing.
    in_flight: Vec<InFlightFetch>,
    link_free_at: SimTime,
    prefetch_threshold: f64,
    hot_set: usize,
    scores: BTreeMap<ModelId, ArrivalScore>,
    host_hits: u64,
    origin_loads: u64,
    prefetch_joins: u64,
    prefetches: u64,
    demotions: u64,
    host_evictions: u64,
    host_rejects: u64,
}

impl TieredStore {
    /// Builds the store from a validated spec.
    pub fn from_spec(spec: &StoreSpec) -> Self {
        TieredStore {
            pcie: PcieModel::new(
                spec.pcie_bw_bps,
                SimDuration::from_secs_f64(spec.pcie_lat_secs),
            ),
            origin: PcieModel::new(
                spec.origin_bw_bps,
                SimDuration::from_secs_f64(spec.origin_lat_secs),
            ),
            host_capacity: spec.host_bytes,
            host_used: 0,
            host: Vec::new(),
            in_flight: Vec::new(),
            link_free_at: SimTime::ZERO,
            prefetch_threshold: spec.prefetch,
            hot_set: spec.hot,
            scores: BTreeMap::new(),
            host_hits: 0,
            origin_loads: 0,
            prefetch_joins: 0,
            prefetches: 0,
            demotions: 0,
            host_evictions: 0,
            host_rejects: 0,
        }
    }

    fn host_resident(&self, model: ModelId) -> bool {
        self.host.iter().any(|e| e.model == model)
    }

    fn in_flight_ready(&self, model: ModelId) -> Option<SimTime> {
        self.in_flight
            .iter()
            .find(|f| f.model == model)
            .map(|f| f.ready)
    }

    /// Lands background fetches that have completed by `now` in the
    /// host tier.
    fn settle(&mut self, now: SimTime) {
        while let Some(f) = self.in_flight.first() {
            if f.ready > now {
                break; // FIFO link: ready times are nondecreasing
            }
            let f = self.in_flight.remove(0);
            self.stage(f.model, f.bytes);
        }
    }

    /// Makes `model` host-resident, displacing LRU entries as needed.
    fn stage(&mut self, model: ModelId, bytes: u64) {
        if let Some(i) = self.host.iter().position(|e| e.model == model) {
            let e = self.host.remove(i);
            self.host.push(e); // refresh recency
            return;
        }
        if bytes > self.host_capacity {
            self.host_rejects += 1;
            return;
        }
        while self.host_used + bytes > self.host_capacity {
            let victim = self.host.remove(0);
            self.host_used -= victim.bytes;
            self.host_evictions += 1;
        }
        self.host.push(HostEntry { model, bytes });
        self.host_used += bytes;
        debug_assert!(self.host_used <= self.host_capacity);
        debug_assert_eq!(
            self.host_used,
            self.host.iter().map(|e| e.bytes).sum::<u64>()
        );
    }

    /// Occupies the FIFO origin link for one fetch; returns its ready
    /// time.
    fn start_fetch(&mut self, now: SimTime, model: ModelId, bytes: u64) -> SimTime {
        let start = self.link_free_at.max(now);
        let ready = start + self.origin.transfer_time(bytes);
        self.link_free_at = ready;
        self.in_flight.push(InFlightFetch {
            model,
            bytes,
            ready,
        });
        ready
    }

    /// Decays and bumps `model`'s arrival score; returns the new value.
    fn bump_score(&mut self, now: SimTime, model: ModelId, bytes: u64) -> f64 {
        let e = self.scores.entry(model).or_insert(ArrivalScore {
            value: 0.0,
            last: now,
            bytes,
        });
        let dt = now.duration_since(e.last).as_secs_f64();
        e.value = e.value * (-dt / EWMA_TAU_SECS).exp() + 1.0;
        e.last = now;
        e.bytes = bytes;
        e.value
    }
}

impl ModelStore for TieredStore {
    fn name(&self) -> String {
        format!(
            "tiered(host={}M,origin_bw={:.2}G)",
            self.host_capacity / (1 << 20),
            self.origin.bandwidth_bps / 1e9
        )
    }

    fn serving_tier(&self, model: ModelId) -> Tier {
        if self.host_resident(model) {
            Tier::HOST
        } else {
            Tier::ORIGIN
        }
    }

    fn load_cost(
        &self,
        now: SimTime,
        model: ModelId,
        bytes: u64,
        _flat_cost: SimDuration,
    ) -> SimDuration {
        let hop = self.pcie.transfer_time(bytes);
        if self.host_resident(model) {
            return hop;
        }
        if let Some(ready) = self.in_flight_ready(model) {
            // Join the in-flight fetch: wait out its remainder, then hop.
            return ready.duration_since(now) + hop;
        }
        // Cold: queue behind the origin link, fetch, then hop.
        self.link_free_at.duration_since(now) + self.origin.transfer_time(bytes) + hop
    }

    fn begin_load(
        &mut self,
        now: SimTime,
        model: ModelId,
        bytes: u64,
        _flat_cost: SimDuration,
    ) -> (Tier, SimDuration) {
        self.settle(now);
        let hop = self.pcie.transfer_time(bytes);
        if self.host_resident(model) {
            self.stage(model, bytes); // refresh recency
            self.host_hits += 1;
            return (Tier::HOST, hop);
        }
        if let Some(ready) = self.in_flight_ready(model) {
            // ready > now after settle: join the prefetch mid-transfer.
            self.prefetch_joins += 1;
            return (Tier::ORIGIN, ready.duration_since(now) + hop);
        }
        let queue = self.link_free_at.duration_since(now);
        let xfer = self.origin.transfer_time(bytes);
        self.link_free_at = self.link_free_at.max(now) + xfer;
        // The demand fetch lands in the host cache on its way to HBM.
        self.stage(model, bytes);
        self.origin_loads += 1;
        (Tier::ORIGIN, queue + xfer + hop)
    }

    fn demote(&mut self, now: SimTime, model: ModelId, bytes: u64) {
        self.settle(now);
        self.demotions += 1;
        self.stage(model, bytes);
    }

    fn note_arrival(&mut self, now: SimTime, model: ModelId, bytes: u64) {
        self.settle(now);
        let score = self.bump_score(now, model, bytes);
        if self.prefetch_threshold > 0.0
            && score >= self.prefetch_threshold
            && bytes <= self.host_capacity
            && !self.host_resident(model)
            && self.in_flight_ready(model).is_none()
        {
            self.start_fetch(now, model, bytes);
            self.prefetches += 1;
        }
    }

    fn note_scale_up(&mut self, now: SimTime) {
        self.settle(now);
        if self.hot_set == 0 {
            return;
        }
        let mut hot: Vec<(f64, ModelId, u64)> = self
            .scores
            .iter()
            .map(|(&m, s)| {
                let dt = now.duration_since(s.last).as_secs_f64();
                (s.value * (-dt / EWMA_TAU_SECS).exp(), m, s.bytes)
            })
            .filter(|&(score, m, bytes)| {
                score >= HOT_SCORE_FLOOR
                    && bytes <= self.host_capacity
                    && !self.host_resident(m)
                    && self.in_flight_ready(m).is_none()
            })
            .collect();
        hot.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        hot.truncate(self.hot_set);
        for (_, m, bytes) in hot {
            self.start_fetch(now, m, bytes);
            self.prefetches += 1;
        }
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            host_hits: self.host_hits,
            origin_loads: self.origin_loads,
            prefetch_joins: self.prefetch_joins,
            prefetches: self.prefetches,
            demotions: self.demotions,
            host_evictions: self.host_evictions,
            host_rejects: self.host_rejects,
            host_bytes_used: self.host_used,
            host_capacity: self.host_capacity,
            host_models: self.host.len(),
        }
    }

    fn save_state(&self, enc: &mut gfaas_snap::Enc) {
        enc.put_u64(self.host_used);
        enc.put_usize(self.host.len());
        for e in &self.host {
            enc.put_u32(e.model.0);
            enc.put_u64(e.bytes);
        }
        enc.put_usize(self.in_flight.len());
        for f in &self.in_flight {
            enc.put_u32(f.model.0);
            enc.put_u64(f.bytes);
            enc.put_time(f.ready);
        }
        enc.put_time(self.link_free_at);
        enc.put_usize(self.scores.len());
        for (m, s) in &self.scores {
            enc.put_u32(m.0);
            enc.put_f64(s.value);
            enc.put_time(s.last);
            enc.put_u64(s.bytes);
        }
        enc.put_u64(self.host_hits);
        enc.put_u64(self.origin_loads);
        enc.put_u64(self.prefetch_joins);
        enc.put_u64(self.prefetches);
        enc.put_u64(self.demotions);
        enc.put_u64(self.host_evictions);
        enc.put_u64(self.host_rejects);
    }

    fn load_state(&mut self, dec: &mut gfaas_snap::Dec<'_>) -> Result<(), gfaas_snap::SnapError> {
        self.host_used = dec.u64()?;
        let n = dec.usize()?;
        self.host.clear();
        for _ in 0..n {
            self.host.push(HostEntry {
                model: ModelId(dec.u32()?),
                bytes: dec.u64()?,
            });
        }
        let n = dec.usize()?;
        self.in_flight.clear();
        for _ in 0..n {
            self.in_flight.push(InFlightFetch {
                model: ModelId(dec.u32()?),
                bytes: dec.u64()?,
                ready: dec.time()?,
            });
        }
        self.link_free_at = dec.time()?;
        let n = dec.usize()?;
        self.scores.clear();
        for _ in 0..n {
            let m = ModelId(dec.u32()?);
            let s = ArrivalScore {
                value: dec.f64()?,
                last: dec.time()?,
                bytes: dec.u64()?,
            };
            self.scores.insert(m, s);
        }
        self.host_hits = dec.u64()?;
        self.origin_loads = dec.u64()?;
        self.prefetch_joins = dec.u64()?;
        self.prefetches = dec.u64()?;
        self.demotions = dec.u64()?;
        self.host_evictions = dec.u64()?;
        self.host_rejects = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1024 * 1024;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn tiered(spec: &str) -> TieredStore {
        TieredStore::from_spec(&StoreSpec::parse(spec).unwrap())
    }

    // --- spec grammar -------------------------------------------------

    #[test]
    fn parses_bare_keys_with_defaults() {
        let s = StoreSpec::parse("flat").unwrap();
        assert!(s.is_flat());
        let s = StoreSpec::parse("tiered").unwrap();
        assert!(!s.is_flat());
        assert_eq!(s.host_bytes, DEFAULT_HOST_BYTES);
        assert_eq!(s.origin_bw_bps, DEFAULT_ORIGIN_BW_BPS);
        assert_eq!(s.pcie_bw_bps, DEFAULT_PCIE_BW_BPS);
        assert_eq!(s.prefetch, DEFAULT_PREFETCH_SCORE);
        assert_eq!(s.hot, DEFAULT_HOT_SET);
        assert_eq!(StoreSpec::default(), StoreSpec::parse("flat").unwrap());
    }

    #[test]
    fn parses_fields_in_any_order_and_round_trips() {
        let s = StoreSpec::parse("tiered:origin_bw=2G,host=8G,prefetch=0,hot=2").unwrap();
        assert_eq!(s.host_bytes, 8 * (1 << 30));
        assert_eq!(s.origin_bw_bps, 2e9);
        assert_eq!(s.prefetch, 0.0);
        assert_eq!(s.hot, 2);
        // Display is the canonical full form and re-parses to the same spec.
        let printed = s.to_string();
        assert_eq!(printed.parse::<StoreSpec>().unwrap(), s);
        assert_eq!(StoreSpec::parse("flat").unwrap().to_string(), "flat");
    }

    #[test]
    fn capacity_suffixes_are_binary_and_bandwidth_decimal() {
        let s = StoreSpec::parse("tiered:host=512M,origin_bw=500M").unwrap();
        assert_eq!(s.host_bytes, 512 * (1 << 20));
        assert_eq!(s.origin_bw_bps, 500e6);
        // Bare digits: raw bytes resp. bytes/sec; fractional capacities OK.
        let s = StoreSpec::parse("tiered:host=1048576,origin_bw=1.5G").unwrap();
        assert_eq!(s.host_bytes, MIB);
        assert_eq!(s.origin_bw_bps, 1.5e9);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            ":",
            "FLAT",
            "tiered:",
            "tiered:host",
            "tiered:host=",
            "tiered:host=x",
            "tiered:wat=1",
            "tiered:origin_bw=inf",
            "flat:host=1G", // flat takes no fields
        ] {
            assert!(StoreSpec::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_inconsistent_bounds() {
        for bad in [
            "tiered:origin_bw=0",
            "tiered:pcie_bw=-1",
            "tiered:origin_lat=-0.5",
            "tiered:pcie_lat=-1",
            "tiered:prefetch=-2",
            "hierarchical", // unknown key
        ] {
            assert!(StoreSpec::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn build_names_the_backend() {
        let s = StoreSpec::parse("flat").unwrap().build().unwrap();
        assert!(s.is_flat());
        assert_eq!(s.name(), "flat");
        let s = StoreSpec::parse("tiered:host=1G").unwrap().build().unwrap();
        assert!(!s.is_flat());
        assert!(s.name().starts_with("tiered("));
    }

    #[test]
    fn errors_display_helpfully() {
        let e = StoreSpec::parse("belady").unwrap_err();
        assert!(e.to_string().contains("unknown store"));
        let e = StoreSpec::parse("tiered:host=x").unwrap_err();
        assert!(e.to_string().contains("host"));
        let e = StoreSpec::parse("tiered:origin_bw=0").unwrap_err();
        assert!(e.to_string().contains("origin_bw"));
    }

    // --- flat ---------------------------------------------------------

    #[test]
    fn flat_returns_the_flat_cost_verbatim() {
        let mut s = FlatStore::new();
        let flat = SimDuration::from_secs_f64(2.95);
        let m = ModelId(7);
        assert_eq!(s.load_cost(t(0.0), m, 2000 * MIB, flat), flat);
        assert_eq!(
            s.begin_load(t(5.0), m, 2000 * MIB, flat),
            (Tier::ORIGIN, flat)
        );
        s.demote(t(6.0), m, 2000 * MIB);
        s.note_arrival(t(7.0), m, 2000 * MIB);
        s.note_scale_up(t(8.0));
        assert_eq!(s.load_cost(t(9.0), m, 2000 * MIB, flat), flat);
        assert_eq!(s.stats().origin_loads, 1);
    }

    // --- tiered cost model --------------------------------------------

    #[test]
    fn host_hit_is_cheaper_than_cold_and_than_flat() {
        let mut s = tiered("tiered:host=8G,prefetch=0");
        let m = ModelId(1);
        let bytes = 2000 * MIB;
        let flat = SimDuration::from_secs_f64(1.62 + bytes as f64 / 1.61e9);
        let (tier, cold) = s.begin_load(t(0.0), m, bytes, flat);
        assert_eq!(tier, Tier::ORIGIN);
        // Cold crosses the origin link: at least as slow as a flat load.
        assert!(cold >= flat, "cold {cold} vs flat {flat}");
        // The demand fetch staged the bytes: a re-load is now a host hit.
        let (tier, warm) = s.begin_load(t(100.0), m, bytes, flat);
        assert_eq!(tier, Tier::HOST);
        assert!(warm < flat, "host hit {warm} vs flat {flat}");
        assert_eq!(s.stats().host_hits, 1);
        assert_eq!(s.stats().origin_loads, 1);
    }

    #[test]
    fn demote_then_rehit_charges_the_host_hop_not_origin() {
        let mut s = tiered("tiered:host=8G,prefetch=0");
        let m = ModelId(3);
        let bytes = 1500 * MIB;
        s.demote(t(10.0), m, bytes);
        assert_eq!(s.serving_tier(m), Tier::HOST);
        let (tier, cost) = s.begin_load(t(11.0), m, bytes, SimDuration::from_secs(4));
        assert_eq!(tier, Tier::HOST);
        // Exactly the host→HBM hop — no origin component.
        assert_eq!(
            cost,
            SimDuration::from_secs_f64(DEFAULT_PCIE_LAT_SECS + bytes as f64 / DEFAULT_PCIE_BW_BPS)
        );
        assert_eq!(s.stats().demotions, 1);
        assert_eq!(s.stats().origin_loads, 0);
    }

    #[test]
    fn origin_link_is_fifo_and_serializes_fetches() {
        let mut s = tiered("tiered:host=64G,origin_lat=0,prefetch=0");
        let bytes = 1000 * MIB;
        let xfer = SimDuration::from_secs_f64(bytes as f64 / DEFAULT_ORIGIN_BW_BPS);
        let flat = SimDuration::ZERO;
        let (_, c1) = s.begin_load(t(0.0), ModelId(1), bytes, flat);
        let (_, c2) = s.begin_load(t(0.0), ModelId(2), bytes, flat);
        // The second fetch queues behind the first on the shared link.
        assert_eq!(c2, c1 + xfer);
    }

    #[test]
    fn host_capacity_is_conserved_under_lru_displacement() {
        let mut s = tiered("tiered:host=3G,prefetch=0");
        let gib = 1u64 << 30;
        for i in 0..5 {
            s.demote(t(i as f64), ModelId(i), gib);
            let st = s.stats();
            assert!(st.host_bytes_used <= st.host_capacity);
        }
        let st = s.stats();
        // 3 GiB holds exactly the 3 most recent 1 GiB demotions.
        assert_eq!(st.host_models, 3);
        assert_eq!(st.host_bytes_used, 3 * gib);
        assert_eq!(st.host_evictions, 2);
        assert_eq!(s.serving_tier(ModelId(4)), Tier::HOST);
        assert_eq!(s.serving_tier(ModelId(0)), Tier::ORIGIN);
        // A model larger than the whole tier is rejected, not staged.
        s.demote(t(9.0), ModelId(9), 4 * gib);
        assert_eq!(s.stats().host_rejects, 1);
        assert_eq!(s.serving_tier(ModelId(9)), Tier::ORIGIN);
    }

    #[test]
    fn rehit_refreshes_lru_recency() {
        let mut s = tiered("tiered:host=2G,prefetch=0");
        let gib = 1u64 << 30;
        s.demote(t(0.0), ModelId(1), gib);
        s.demote(t(1.0), ModelId(2), gib);
        // Re-hitting model 1 makes model 2 the LRU victim.
        s.begin_load(t(2.0), ModelId(1), gib, SimDuration::ZERO);
        s.demote(t(3.0), ModelId(3), gib);
        assert_eq!(s.serving_tier(ModelId(1)), Tier::HOST);
        assert_eq!(s.serving_tier(ModelId(2)), Tier::ORIGIN);
    }

    // --- prefetch -----------------------------------------------------

    #[test]
    fn arrivals_crossing_the_threshold_trigger_one_prefetch() {
        let mut s = tiered("tiered:host=8G,prefetch=3,origin_lat=0");
        let m = ModelId(5);
        let bytes = 1000 * MIB;
        // Four quick arrivals push the EWMA over the threshold.
        s.note_arrival(t(0.0), m, bytes);
        s.note_arrival(t(0.05), m, bytes);
        s.note_arrival(t(0.1), m, bytes);
        assert_eq!(s.stats().prefetches, 0);
        s.note_arrival(t(0.15), m, bytes);
        assert_eq!(s.stats().prefetches, 1);
        // Mid-transfer, a demand load joins the fetch (cheaper than cold).
        let cold = s.load_cost(t(0.2), ModelId(6), bytes, SimDuration::ZERO);
        let join = s.load_cost(t(0.2), m, bytes, SimDuration::ZERO);
        assert!(join < cold, "join {join} vs cold {cold}");
        let (tier, _) = s.begin_load(t(0.25), m, bytes, SimDuration::ZERO);
        assert_eq!(tier, Tier::ORIGIN);
        assert_eq!(s.stats().prefetch_joins, 1);
        // After the transfer lands, it's a plain host hit.
        let (tier, _) = s.begin_load(t(10.0), m, bytes, SimDuration::ZERO);
        assert_eq!(tier, Tier::HOST);
        // No duplicate prefetch while resident.
        s.note_arrival(t(10.1), m, bytes);
        assert_eq!(s.stats().prefetches, 1);
    }

    #[test]
    fn scale_up_stages_the_hot_set_in_score_order() {
        let mut s = tiered("tiered:host=64G,prefetch=0,hot=2,origin_lat=0");
        let bytes = 1000 * MIB;
        // prefetch=0 disables arrival-triggered staging but note_arrival
        // still feeds the predictor for scale-up staging.
        for _ in 0..5 {
            s.note_arrival(t(1.0), ModelId(1), bytes);
        }
        for _ in 0..3 {
            s.note_arrival(t(1.0), ModelId(2), bytes);
        }
        s.note_arrival(t(1.0), ModelId(3), bytes);
        s.note_scale_up(t(2.0));
        assert_eq!(s.stats().prefetches, 2);
        // The two hottest models are in flight; the cool one is not.
        assert!(s.in_flight_ready(ModelId(1)).is_some());
        assert!(s.in_flight_ready(ModelId(2)).is_some());
        assert!(s.in_flight_ready(ModelId(3)).is_none());
        // Once landed they serve from host.
        s.note_arrival(t(100.0), ModelId(3), bytes);
        assert_eq!(s.serving_tier(ModelId(1)), Tier::HOST);
        assert_eq!(s.serving_tier(ModelId(2)), Tier::HOST);
    }

    #[test]
    fn tiered_save_load_round_trips_mid_flight_state() {
        let mut s = tiered("tiered:host=8G,prefetch=3,origin_lat=0,hot=2");
        let bytes = 1000 * MIB;
        for i in 0..4 {
            s.note_arrival(t(i as f64 * 0.05), ModelId(5), bytes);
        }
        s.demote(t(0.3), ModelId(1), bytes);
        s.begin_load(t(0.4), ModelId(2), bytes, SimDuration::ZERO);

        let mut enc = gfaas_snap::Enc::new();
        s.save_state(&mut enc);
        let blob = enc.into_bytes();
        let mut fresh = tiered("tiered:host=8G,prefetch=3,origin_lat=0,hot=2");
        let mut dec = gfaas_snap::Dec::new(&blob);
        fresh.load_state(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(format!("{fresh:?}"), format!("{s:?}"));

        // Both copies keep evolving identically (the in-flight prefetch
        // settles, scores decay, the link serialises new fetches).
        for store in [&mut s, &mut fresh] {
            store.note_arrival(t(5.0), ModelId(5), bytes);
            store.begin_load(t(5.1), ModelId(9), bytes, SimDuration::ZERO);
        }
        assert_eq!(format!("{fresh:?}"), format!("{s:?}"));
    }

    #[test]
    fn flat_save_load_round_trips_the_counter() {
        let mut s = FlatStore::new();
        s.begin_load(t(0.0), ModelId(1), MIB, SimDuration::ZERO);
        s.begin_load(t(1.0), ModelId(2), MIB, SimDuration::ZERO);
        let mut enc = gfaas_snap::Enc::new();
        s.save_state(&mut enc);
        let blob = enc.into_bytes();
        let mut fresh = FlatStore::new();
        fresh.load_state(&mut gfaas_snap::Dec::new(&blob)).unwrap();
        assert_eq!(fresh.stats(), s.stats());
    }

    #[test]
    fn ewma_scores_decay_over_time() {
        let mut s = tiered("tiered:prefetch=3");
        let m = ModelId(8);
        let bytes = 100 * MIB;
        s.note_arrival(t(0.0), m, bytes);
        s.note_arrival(t(1.0), m, bytes);
        // A long gap decays the score back below the trigger, so two more
        // arrivals spaced out never prefetch.
        s.note_arrival(t(1000.0), m, bytes);
        s.note_arrival(t(2000.0), m, bytes);
        assert_eq!(s.stats().prefetches, 0);
    }
}
