//! `gfaas-tensor` — a small CPU tensor library and CNN inference engine.
//!
//! The paper runs real PyTorch CNN inference on GPUs. This crate is the
//! substitution's compute half: genuine (CPU) forward-pass inference for the
//! live examples and the batch-size profiler in `gfaas-models`. It is not a
//! PyTorch replacement — it implements exactly the operator set the paper's
//! 22 torchvision CNNs are built from:
//!
//! * [`ops::conv`] — 2-D convolution (direct and im2col+GEMM paths),
//! * [`ops::pool`] — max/average/global-average pooling,
//! * [`ops::linear`](ops::linear()) — fully connected layers over a blocked,
//!   thread-parallel GEMM ([`ops::matmul`](ops::matmul())),
//! * [`ops::activation`] — ReLU / sigmoid / softmax,
//! * [`ops::norm`] — inference-mode batch normalisation,
//!
//! glued together by [`graph::Network`], a sequential layer graph with
//! deterministic weight initialisation.
//!
//! Parallelism follows the workspace's HPC guides: data-parallel loops over
//! disjoint output chunks via `crossbeam::scope` ([`parallel`]), no locks on
//! the hot path, and a serial fast path when the work is too small to
//! amortise thread spawn.

#![warn(missing_docs)]

pub mod graph;
pub mod nets;
pub mod ops;
pub mod parallel;
pub mod tensor;

pub use graph::{Layer, Network};
pub use tensor::Tensor;
