//! Data-parallel helpers built on `crossbeam::scope`.
//!
//! The kernels in [`crate::ops`] all reduce to "fill N disjoint output
//! chunks". [`par_chunks_mut`] splits those chunks across worker threads;
//! each worker writes only its own chunk, so the parallelism is data-race
//! free by construction (disjoint `&mut` slices from `chunks_mut`).
//!
//! Two pragmatics from the HPC guides:
//! * a **serial fast path** when total work is below a threshold — thread
//!   spawn costs more than a small convolution;
//! * worker count capped by `available_parallelism` and overridable via
//!   [`set_threads`] so benchmarks can pin thread counts.

use std::sync::atomic::{AtomicUsize, Ordering};

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Work threshold (in f32 elements written) below which kernels run serially.
pub const SERIAL_THRESHOLD: usize = 16 * 1024;

/// Overrides the worker-thread count (0 restores the default of
/// `available_parallelism`). Intended for benchmarks and tests.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker-thread count currently in effect.
pub fn threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `out` into `chunk_len`-sized pieces and calls
/// `f(chunk_index, chunk)` for each, in parallel when the total size
/// justifies it. The final chunk may be shorter if `out.len()` is not a
/// multiple of `chunk_len`.
pub fn par_chunks_mut<F>(out: &mut [f32], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let nthreads = threads();
    if out.len() <= SERIAL_THRESHOLD || nthreads <= 1 {
        for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let nchunks = out.len().div_ceil(chunk_len);
    let per_worker = nchunks.div_ceil(nthreads);
    crossbeam::scope(|s| {
        for (w, worker_slab) in out.chunks_mut(per_worker * chunk_len).enumerate() {
            let f = &f;
            s.spawn(move |_| {
                let base = w * per_worker;
                for (i, chunk) in worker_slab.chunks_mut(chunk_len).enumerate() {
                    f(base + i, chunk);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel iteration over an index range with a per-index closure that
/// produces no output slice (used for reductions into pre-split buffers).
pub fn par_for_each_index<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let nthreads = threads();
    if n < 2 || nthreads <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let per_worker = n.div_ceil(nthreads);
    crossbeam::scope(|s| {
        for w in 0..nthreads {
            let f = &f;
            let start = w * per_worker;
            let end = ((w + 1) * per_worker).min(n);
            if start >= end {
                break;
            }
            s.spawn(move |_| {
                for i in start..end {
                    f(i);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_once() {
        let mut out = vec![0.0f32; 100_000];
        par_chunks_mut(&mut out, 13, |i, chunk| {
            for v in chunk.iter_mut() {
                *v += 1.0 + i as f32 * 0.0; // touch each element exactly once
            }
        });
        assert!(out.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn chunk_indices_are_global() {
        let mut out = vec![0.0f32; 64 * 1024];
        par_chunks_mut(&mut out, 1024, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as f32;
            }
        });
        for (i, block) in out.chunks(1024).enumerate() {
            assert!(block.iter().all(|&v| v == i as f32), "chunk {i}");
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let fill = |i: usize, chunk: &mut [f32]| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 31 + j) as f32;
            }
        };
        let mut small = vec![0.0f32; 100]; // below threshold → serial
        par_chunks_mut(&mut small, 7, fill);
        let mut big = vec![0.0f32; 100];
        set_threads(4);
        // Force the parallel path by shrinking the threshold via a big buffer:
        let mut parallel = vec![0.0f32; SERIAL_THRESHOLD + 700];
        par_chunks_mut(&mut parallel, 7, fill);
        set_threads(0);
        // Compare overlapping prefix pattern.
        par_chunks_mut(&mut big, 7, fill);
        assert_eq!(small, big);
        for (i, chunk) in parallel.chunks(7).take(14).enumerate() {
            for (j, &v) in chunk.iter().enumerate() {
                assert_eq!(v, (i * 31 + j) as f32);
            }
        }
    }

    #[test]
    fn ragged_tail_chunk_handled() {
        let mut out = vec![0.0f32; 10];
        par_chunks_mut(&mut out, 4, |i, chunk| {
            assert!(chunk.len() == 4 || (i == 2 && chunk.len() == 2));
            chunk.fill(1.0);
        });
        assert!(out.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn for_each_index_covers_range() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        par_for_each_index(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn thread_override_round_trips() {
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }
}
