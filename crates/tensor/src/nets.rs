//! Reference architectures.
//!
//! Scaled-down builders for the CNN families in the paper's Table I
//! workload. The live examples run these on CPU, so they are *miniature*
//! versions — same topology family (conv/pool stacks, VGG-style blocks,
//! global-average-pool classifiers), far fewer channels. The DES experiments
//! never execute these; they consume the Table I latency profile directly.

use gfaas_sim::rng::DetRng;

use crate::graph::{Layer, Network};
use crate::ops::norm::BatchNormParams;

/// LeNet-5-style digit classifier for 1×28×28 inputs (MNIST-shaped).
pub fn lenet5(num_classes: usize, seed: u64) -> Network {
    let mut rng = DetRng::new(seed);
    Network::new("lenet5")
        .conv(&mut rng, 1, 6, 5, 1, 2) // 6×28×28
        .push(Layer::Relu)
        .push(Layer::MaxPool { k: 2, stride: 2 }) // 6×14×14
        .conv(&mut rng, 6, 16, 5, 1, 0) // 16×10×10
        .push(Layer::Relu)
        .push(Layer::MaxPool { k: 2, stride: 2 }) // 16×5×5
        .push(Layer::Flatten)
        .dense(&mut rng, 16 * 5 * 5, 120)
        .push(Layer::Relu)
        .dense(&mut rng, 120, 84)
        .push(Layer::Relu)
        .dense(&mut rng, 84, num_classes)
        .push(Layer::Softmax)
}

/// A miniature VGG-style block stack for 3×32×32 inputs (CIFAR-shaped).
pub fn mini_vgg(num_classes: usize, seed: u64) -> Network {
    let mut rng = DetRng::new(seed);
    Network::new("mini_vgg")
        .conv(&mut rng, 3, 16, 3, 1, 1)
        .push(Layer::Relu)
        .conv(&mut rng, 16, 16, 3, 1, 1)
        .push(Layer::Relu)
        .push(Layer::MaxPool { k: 2, stride: 2 }) // 16×16×16
        .conv(&mut rng, 16, 32, 3, 1, 1)
        .push(Layer::Relu)
        .conv(&mut rng, 32, 32, 3, 1, 1)
        .push(Layer::Relu)
        .push(Layer::MaxPool { k: 2, stride: 2 }) // 32×8×8
        .push(Layer::Flatten)
        .dense(&mut rng, 32 * 8 * 8, 128)
        .push(Layer::Relu)
        .dense(&mut rng, 128, num_classes)
        .push(Layer::Softmax)
}

/// A miniature ResNet-style network (conv + batch-norm stacks with a
/// global-average-pool head) for 3×32×32 inputs. Residual additions are
/// omitted — the graph is sequential — but the normalisation-heavy layer
/// mix matches the family's compute profile.
pub fn mini_resnet(num_classes: usize, seed: u64) -> Network {
    let mut rng = DetRng::new(seed);
    Network::new("mini_resnet")
        .conv(&mut rng, 3, 16, 3, 1, 1)
        .push(Layer::BatchNorm(BatchNormParams::identity(16)))
        .push(Layer::Relu)
        .conv(&mut rng, 16, 32, 3, 2, 1) // 32×16×16
        .push(Layer::BatchNorm(BatchNormParams::identity(32)))
        .push(Layer::Relu)
        .conv(&mut rng, 32, 64, 3, 2, 1) // 64×8×8
        .push(Layer::BatchNorm(BatchNormParams::identity(64)))
        .push(Layer::Relu)
        .push(Layer::GlobalAvgPool) // [n, 64]
        .dense(&mut rng, 64, num_classes)
        .push(Layer::Softmax)
}

/// A miniature ResNeXt-style network: grouped 3×3 convolutions between
/// 1×1 projections (the "cardinality" design of `resnext50.32x4d`),
/// global-average-pool classifier. For 3×32×32 inputs.
pub fn mini_resnext(num_classes: usize, seed: u64) -> Network {
    let mut rng = DetRng::new(seed);
    Network::new("mini_resnext")
        .conv(&mut rng, 3, 16, 3, 1, 1) // stem
        .push(Layer::Relu)
        .conv(&mut rng, 16, 32, 1, 1, 0) // project up
        .push(Layer::Relu)
        .conv_grouped(&mut rng, 32, 32, 3, 2, 1, 4) // 4-group 3×3, 16×16
        .push(Layer::Relu)
        .conv(&mut rng, 32, 64, 1, 1, 0) // project up
        .push(Layer::Relu)
        .conv_grouped(&mut rng, 64, 64, 3, 2, 1, 8) // 8-group 3×3, 8×8
        .push(Layer::Relu)
        .push(Layer::GlobalAvgPool)
        .dense(&mut rng, 64, num_classes)
        .push(Layer::Softmax)
}

/// A miniature SqueezeNet-style network: 1×1 squeeze convolutions between
/// 3×3 expands, global-average-pool classifier, very few parameters.
pub fn mini_squeezenet(num_classes: usize, seed: u64) -> Network {
    let mut rng = DetRng::new(seed);
    Network::new("mini_squeezenet")
        .conv(&mut rng, 3, 16, 3, 2, 1) // 16×16×16
        .push(Layer::Relu)
        .conv(&mut rng, 16, 8, 1, 1, 0) // squeeze
        .push(Layer::Relu)
        .conv(&mut rng, 8, 32, 3, 1, 1) // expand
        .push(Layer::Relu)
        .push(Layer::MaxPool { k: 2, stride: 2 }) // 32×8×8
        .conv(&mut rng, 32, num_classes, 1, 1, 0) // class planes
        .push(Layer::GlobalAvgPool)
        .push(Layer::Softmax)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn lenet_shapes_work_end_to_end() {
        let net = lenet5(10, 1);
        let x = Tensor::from_fn(&[2, 1, 28, 28], |i| (i % 255) as f32 / 255.0);
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn mini_vgg_shapes_work() {
        let net = mini_vgg(10, 2);
        let x = Tensor::from_fn(&[1, 3, 32, 32], |i| (i % 100) as f32 / 100.0);
        assert_eq!(net.forward(&x).shape(), &[1, 10]);
    }

    #[test]
    fn mini_resnet_shapes_work() {
        let net = mini_resnet(10, 3);
        let x = Tensor::from_fn(&[1, 3, 32, 32], |i| (i % 100) as f32 / 100.0);
        assert_eq!(net.forward(&x).shape(), &[1, 10]);
    }

    #[test]
    fn mini_resnext_shapes_work() {
        let net = mini_resnext(10, 5);
        let x = Tensor::from_fn(&[2, 3, 32, 32], |i| (i % 100) as f32 / 100.0);
        assert_eq!(net.forward(&x).shape(), &[2, 10]);
    }

    #[test]
    fn mini_resnext_has_fewer_params_than_ungrouped_equivalent() {
        // Grouping divides each grouped layer's weights by the group count.
        let grouped = mini_resnext(10, 1).param_count();
        // Same topology with groups=1 has strictly more parameters.
        let mut rng = DetRng::new(1);
        let ungrouped = Network::new("dense_equiv")
            .conv(&mut rng, 3, 16, 3, 1, 1)
            .conv(&mut rng, 16, 32, 1, 1, 0)
            .conv(&mut rng, 32, 32, 3, 2, 1)
            .conv(&mut rng, 32, 64, 1, 1, 0)
            .conv(&mut rng, 64, 64, 3, 2, 1)
            .dense(&mut rng, 64, 10)
            .param_count();
        assert!(grouped < ungrouped, "{grouped} vs {ungrouped}");
    }

    #[test]
    fn mini_squeezenet_shapes_work() {
        let net = mini_squeezenet(10, 4);
        let x = Tensor::from_fn(&[1, 3, 32, 32], |i| (i % 100) as f32 / 100.0);
        assert_eq!(net.forward(&x).shape(), &[1, 10]);
    }

    #[test]
    fn squeezenet_is_smallest_vgg_is_largest() {
        // Mirrors the real families' size ordering (Table I).
        let s = mini_squeezenet(10, 1).param_count();
        let r = mini_resnet(10, 1).param_count();
        let v = mini_vgg(10, 1).param_count();
        assert!(s < r, "squeezenet {s} should be smaller than resnet {r}");
        assert!(r < v, "resnet {r} should be smaller than vgg {v}");
    }
}
