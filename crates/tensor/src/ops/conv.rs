//! 2-D convolution over NCHW tensors.
//!
//! Two paths:
//! * [`conv2d`] — im2col + GEMM, the standard high-throughput CPU/GPU
//!   lowering (it is exactly how cuDNN's implicit-GEMM algorithms and the
//!   paper's PyTorch stack execute convolutions).
//! * [`conv2d_naive`] — direct 7-deep loop nest kept as the oracle for
//!   correctness tests.

use crate::ops::matmul::matmul;
use crate::parallel::par_chunks_mut;
use crate::tensor::Tensor;

/// Convolution hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero-padding in both spatial dimensions.
    pub padding: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams {
            stride: 1,
            padding: 0,
        }
    }
}

impl Conv2dParams {
    /// Output spatial size for an input of `(h, w)` under a `(kh, kw)` kernel.
    pub fn output_hw(&self, h: usize, w: usize, kh: usize, kw: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - kh) / self.stride + 1;
        let ow = (w + 2 * self.padding - kw) / self.stride + 1;
        (oh, ow)
    }
}

fn check_shapes(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>) {
    assert_eq!(input.ndim(), 4, "conv2d input must be NCHW");
    assert_eq!(weight.ndim(), 4, "conv2d weight must be [out, in, kh, kw]");
    assert_eq!(
        input.shape()[1],
        weight.shape()[1],
        "channel mismatch: input {} vs weight {}",
        input.shape()[1],
        weight.shape()[1]
    );
    if let Some(b) = bias {
        assert_eq!(
            b.numel(),
            weight.shape()[0],
            "bias length must equal output channels"
        );
    }
}

/// im2col: unfolds input patches into a `[cin*kh*kw, oh*ow]` matrix for one
/// batch element, so the convolution becomes one GEMM.
fn im2col(
    input: &Tensor,
    n: usize,
    kh: usize,
    kw: usize,
    p: Conv2dParams,
    oh: usize,
    ow: usize,
) -> Tensor {
    let (cin, h, w) = (input.shape()[1], input.shape()[2], input.shape()[3]);
    let rows = cin * kh * kw;
    let cols = oh * ow;
    let mut out = Tensor::zeros(&[rows, cols]);
    let data = out.data_mut();
    for c in 0..cin {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (c * kh + ky) * kw + kx;
                let dst = &mut data[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue; // stays zero (padding)
                    }
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[oy * ow + ox] = input.at4(n, c, iy as usize, ix as usize);
                    }
                }
            }
        }
    }
    out
}

/// Convolves `input` `[n, cin, h, w]` with `weight` `[cout, cin, kh, kw]`
/// (+ optional `bias` `[cout]`), producing `[n, cout, oh, ow]`.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Tensor {
    check_shapes(input, weight, bias);
    let (batch, _cin, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (cout, cin, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let (oh, ow) = params.output_hw(h, w, kh, kw);
    let w_mat = Tensor::from_vec(&[cout, cin * kh * kw], weight.data().to_vec());

    let mut out = Tensor::zeros(&[batch, cout, oh, ow]);
    let plane = cout * oh * ow;
    // One batch element per chunk: im2col + GEMM, fully independent.
    par_chunks_mut(out.data_mut(), plane, |n, out_chunk| {
        let cols = im2col(input, n, kh, kw, params, oh, ow);
        let prod = matmul(&w_mat, &cols); // [cout, oh*ow]
        out_chunk.copy_from_slice(prod.data());
        if let Some(b) = bias {
            let hw = oh * ow;
            for (co, bias_v) in b.data().iter().enumerate() {
                for v in &mut out_chunk[co * hw..(co + 1) * hw] {
                    *v += bias_v;
                }
            }
        }
    });
    out
}

/// Reference convolution: direct loop nest, no lowering. Slow; tests only.
pub fn conv2d_naive(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Tensor {
    check_shapes(input, weight, bias);
    let (batch, cin, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (cout, _, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let (oh, ow) = params.output_hw(h, w, kh, kw);
    let mut out = Tensor::zeros(&[batch, cout, oh, ow]);
    for n in 0..batch {
        for co in 0..cout {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias.map_or(0.0, |b| b.data()[co]);
                    for ci in 0..cin {
                        for ky in 0..kh {
                            let iy = (oy * params.stride + ky) as isize - params.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix =
                                    (ox * params.stride + kx) as isize - params.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += input.at4(n, ci, iy as usize, ix as usize)
                                    * weight.at4(co, ci, ky, kx);
                            }
                        }
                    }
                    *out.at4_mut(n, co, oy, ox) = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfaas_sim::rng::DetRng;

    #[test]
    fn known_3x3_edge_detector() {
        // 1-channel 4x4 input, single 3x3 kernel, no padding → 2x2 output.
        let input = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32);
        let weight = Tensor::from_vec(
            &[1, 1, 3, 3],
            vec![0., 0., 0., 0., 1., 0., 0., 0., 0.], // identity kernel
        );
        let out = conv2d(&input, &weight, None, Conv2dParams::default());
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        // Identity kernel picks the centre of each 3x3 window.
        assert_eq!(out.data(), &[5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn bias_adds_per_channel() {
        let input = Tensor::full(&[1, 1, 3, 3], 0.0);
        let weight = Tensor::zeros(&[2, 1, 3, 3]);
        let bias = Tensor::from_vec(&[2], vec![1.5, -2.5]);
        let out = conv2d(&input, &weight, Some(&bias), Conv2dParams::default());
        assert_eq!(out.shape(), &[1, 2, 1, 1]);
        assert_eq!(out.data(), &[1.5, -2.5]);
    }

    #[test]
    fn gemm_path_matches_naive_across_configs() {
        let mut rng = DetRng::new(99);
        let configs = [
            (1, 1, 5, 5, 1, 3, 1, 0),
            (2, 3, 8, 8, 4, 3, 1, 1),
            (1, 2, 7, 9, 3, 5, 2, 2),
            (3, 4, 6, 6, 2, 1, 1, 0),
            (1, 3, 11, 11, 2, 3, 2, 1),
        ];
        for &(n, cin, h, w, cout, k, stride, padding) in &configs {
            let input = Tensor::from_fn(&[n, cin, h, w], |_| rng.range_f64(-1.0, 1.0) as f32);
            let weight = Tensor::from_fn(&[cout, cin, k, k], |_| rng.range_f64(-1.0, 1.0) as f32);
            let bias = Tensor::from_fn(&[cout], |_| rng.range_f64(-0.5, 0.5) as f32);
            let p = Conv2dParams { stride, padding };
            let fast = conv2d(&input, &weight, Some(&bias), p);
            let slow = conv2d_naive(&input, &weight, Some(&bias), p);
            assert_eq!(fast.shape(), slow.shape());
            assert!(
                fast.max_abs_diff(&slow) < 1e-4,
                "diverged on config {:?}",
                (n, cin, h, w, cout, k, stride, padding)
            );
        }
    }

    #[test]
    fn padding_grows_output() {
        let input = Tensor::zeros(&[1, 1, 4, 4]);
        let weight = Tensor::zeros(&[1, 1, 3, 3]);
        let same = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                stride: 1,
                padding: 1,
            },
        );
        assert_eq!(same.shape(), &[1, 1, 4, 4]);
    }

    #[test]
    fn stride_shrinks_output() {
        let input = Tensor::zeros(&[1, 1, 8, 8]);
        let weight = Tensor::zeros(&[1, 1, 2, 2]);
        let out = conv2d(
            &input,
            &weight,
            None,
            Conv2dParams {
                stride: 2,
                padding: 0,
            },
        );
        assert_eq!(out.shape(), &[1, 1, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        conv2d(
            &Tensor::zeros(&[1, 3, 4, 4]),
            &Tensor::zeros(&[1, 2, 3, 3]),
            None,
            Conv2dParams::default(),
        );
    }

    #[test]
    fn batch_elements_are_independent() {
        let mut rng = DetRng::new(4);
        let one = Tensor::from_fn(&[1, 2, 6, 6], |_| rng.range_f64(-1.0, 1.0) as f32);
        let weight = Tensor::from_fn(&[3, 2, 3, 3], |_| rng.range_f64(-1.0, 1.0) as f32);
        // Duplicate the single element into a batch of 2.
        let mut both_data = one.data().to_vec();
        both_data.extend_from_slice(one.data());
        let both = Tensor::from_vec(&[2, 2, 6, 6], both_data);
        let p = Conv2dParams::default();
        let out1 = conv2d(&one, &weight, None, p);
        let out2 = conv2d(&both, &weight, None, p);
        let half = out2.numel() / 2;
        assert_eq!(&out2.data()[..half], out1.data());
        assert_eq!(&out2.data()[half..], out1.data());
    }
}
