//! Fully connected (dense) layers.

use crate::ops::matmul::matmul;
use crate::tensor::Tensor;

/// Applies `y = x · Wᵀ + b` where `x` is `[batch, in]`, `weight` is
/// `[out, in]` (PyTorch's `nn.Linear` layout) and `bias` is `[out]`.
pub fn linear(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>) -> Tensor {
    assert_eq!(input.ndim(), 2, "linear input must be [batch, in]");
    assert_eq!(weight.ndim(), 2, "linear weight must be [out, in]");
    let (out_f, in_f) = (weight.shape()[0], weight.shape()[1]);
    assert_eq!(
        input.shape()[1],
        in_f,
        "feature mismatch: input {} vs weight {}",
        input.shape()[1],
        in_f
    );
    // Transpose the weight once; GEMM then streams rows of both operands.
    let mut wt = Tensor::zeros(&[in_f, out_f]);
    for o in 0..out_f {
        for i in 0..in_f {
            wt.data_mut()[i * out_f + o] = weight.at2(o, i);
        }
    }
    let mut y = matmul(input, &wt);
    if let Some(b) = bias {
        assert_eq!(b.numel(), out_f, "bias length must equal out features");
        for row in y.data_mut().chunks_exact_mut(out_f) {
            for (v, bv) in row.iter_mut().zip(b.data()) {
                *v += bv;
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_affine_map() {
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 2.0]);
        let w = Tensor::from_vec(&[3, 2], vec![1., 0., 0., 1., 1., 1.]);
        let b = Tensor::from_vec(&[3], vec![10., 20., 30.]);
        let y = linear(&x, &w, Some(&b));
        assert_eq!(y.shape(), &[1, 3]);
        assert_eq!(y.data(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn batch_rows_independent() {
        let x = Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]);
        let w = Tensor::from_vec(&[2, 2], vec![3., 4., 5., 6.]);
        let y = linear(&x, &w, None);
        assert_eq!(y.data(), &[3., 5., 4., 6.]);
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn feature_mismatch_panics() {
        linear(&Tensor::zeros(&[1, 3]), &Tensor::zeros(&[2, 4]), None);
    }

    #[test]
    fn no_bias_is_pure_matmul() {
        let x = Tensor::from_vec(&[1, 2], vec![2.0, 3.0]);
        let w = Tensor::from_vec(&[1, 2], vec![4.0, 5.0]);
        let y = linear(&x, &w, None);
        assert_eq!(y.data(), &[23.0]);
    }
}
