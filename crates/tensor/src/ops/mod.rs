//! Neural-network operator kernels.
//!
//! Every kernel is a pure function `(&Tensor, params) -> Tensor` over
//! row-major NCHW buffers. Heavy kernels (convolution, GEMM) parallelise
//! over disjoint output chunks via [`crate::parallel`]; cheap elementwise
//! kernels stay serial.

pub mod activation;
pub mod conv;
pub mod grouped;
pub mod linear;
pub mod matmul;
pub mod norm;
pub mod pool;

pub use activation::{relu, sigmoid, softmax};
pub use conv::{conv2d, conv2d_naive, Conv2dParams};
pub use grouped::{concat_channels, conv2d_grouped, slice_channels};
pub use linear::linear;
pub use matmul::matmul;
pub use norm::batch_norm2d;
pub use pool::{avg_pool2d, global_avg_pool2d, max_pool2d};
