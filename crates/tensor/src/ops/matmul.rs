//! Blocked, thread-parallel GEMM: `C = A × B`.
//!
//! The i-k-j loop order streams both `B` and `C` rows sequentially, which is
//! the cache-friendly layout for row-major data and lets LLVM vectorise the
//! inner accumulation. Parallelism is over rows of `C` — each worker owns a
//! disjoint block of output rows, so no synchronisation is needed.

use crate::parallel::par_chunks_mut;
use crate::tensor::Tensor;

/// Multiplies `a` (`[m, k]`) by `b` (`[k, n]`), yielding `[m, n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimensions differ: {k} vs {k2}");

    let mut out = Tensor::zeros(&[m, n]);
    let a_data = a.data();
    let b_data = b.data();
    par_chunks_mut(out.data_mut(), n, |row, c_row| {
        let a_row = &a_data[row * k..(row + 1) * k];
        for (kk, &a_val) in a_row.iter().enumerate() {
            if a_val == 0.0 {
                continue;
            }
            let b_row = &b_data[kk * n..(kk + 1) * n];
            for (c, &b_val) in c_row.iter_mut().zip(b_row) {
                *c += a_val * b_val;
            }
        }
    });
    out
}

/// Reference implementation: naive triple loop. Used by tests to validate
/// the blocked kernel.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a.at2(i, kk) * b.at2(kk, j);
            }
            out.data_mut()[i * n + j] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfaas_sim::rng::DetRng;

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matches_naive_on_random_shapes() {
        let mut rng = DetRng::new(77);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 9, 23), (64, 32, 48)] {
            let a = Tensor::from_fn(&[m, k], |_| rng.range_f64(-1.0, 1.0) as f32);
            let b = Tensor::from_fn(&[k, n], |_| rng.range_f64(-1.0, 1.0) as f32);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            assert!(fast.max_abs_diff(&slow) < 1e-4, "diverged at ({m},{k},{n})");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = DetRng::new(5);
        let a = Tensor::from_fn(&[6, 6], |_| rng.range_f64(-2.0, 2.0) as f32);
        let eye = Tensor::from_fn(&[6, 6], |i| if i / 6 == i % 6 { 1.0 } else { 0.0 });
        let c = matmul(&a, &eye);
        assert!(c.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn mismatched_inner_dims_panic() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn large_parallel_path_correct() {
        // Big enough to cross SERIAL_THRESHOLD and exercise worker threads.
        let mut rng = DetRng::new(13);
        let a = Tensor::from_fn(&[200, 64], |_| rng.range_f64(-1.0, 1.0) as f32);
        let b = Tensor::from_fn(&[64, 150], |_| rng.range_f64(-1.0, 1.0) as f32);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-3);
    }
}
