//! Inference-mode batch normalisation.
//!
//! At inference time batch norm is a per-channel affine transform using the
//! running statistics captured during training:
//! `y = γ · (x − μ) / sqrt(σ² + ε) + β`.

use crate::tensor::Tensor;

/// Per-channel batch-norm parameters (inference mode).
#[derive(Debug, Clone)]
pub struct BatchNormParams {
    /// Scale (γ), one per channel.
    pub gamma: Vec<f32>,
    /// Shift (β), one per channel.
    pub beta: Vec<f32>,
    /// Running mean (μ), one per channel.
    pub mean: Vec<f32>,
    /// Running variance (σ²), one per channel.
    pub var: Vec<f32>,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl BatchNormParams {
    /// Identity normalisation for `c` channels (γ=1, β=0, μ=0, σ²=1).
    pub fn identity(c: usize) -> Self {
        BatchNormParams {
            gamma: vec![1.0; c],
            beta: vec![0.0; c],
            mean: vec![0.0; c],
            var: vec![1.0; c],
            eps: 1e-5,
        }
    }
}

/// Applies inference-mode batch norm over an NCHW tensor.
pub fn batch_norm2d(mut input: Tensor, p: &BatchNormParams) -> Tensor {
    assert_eq!(input.ndim(), 4, "batch_norm2d input must be NCHW");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    assert_eq!(p.gamma.len(), c, "gamma length must equal channels");
    assert!(
        p.beta.len() == c && p.mean.len() == c && p.var.len() == c,
        "batch-norm parameter lengths must equal channels"
    );
    let plane = h * w;
    // Precompute per-channel scale/shift: y = a·x + b.
    let coeffs: Vec<(f32, f32)> = (0..c)
        .map(|ci| {
            let a = p.gamma[ci] / (p.var[ci] + p.eps).sqrt();
            let b = p.beta[ci] - a * p.mean[ci];
            (a, b)
        })
        .collect();
    let data = input.data_mut();
    for ni in 0..n {
        for (ci, &(a, b)) in coeffs.iter().enumerate() {
            let base = (ni * c + ci) * plane;
            for v in &mut data[base..base + plane] {
                *v = a * *v + b;
            }
        }
    }
    input
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_params_are_noop_modulo_eps() {
        let input = Tensor::from_fn(&[1, 2, 2, 2], |i| i as f32);
        let out = batch_norm2d(input.clone(), &BatchNormParams::identity(2));
        assert!(out.max_abs_diff(&input) < 1e-4);
    }

    #[test]
    fn normalises_known_channel_stats() {
        let input = Tensor::from_vec(&[1, 1, 1, 4], vec![2.0, 4.0, 6.0, 8.0]);
        let p = BatchNormParams {
            gamma: vec![1.0],
            beta: vec![0.0],
            mean: vec![5.0],
            var: vec![5.0],
            eps: 0.0,
        };
        let out = batch_norm2d(input, &p);
        let s = 5.0f32.sqrt();
        let expect = [-3.0 / s, -1.0 / s, 1.0 / s, 3.0 / s];
        for (a, e) in out.data().iter().zip(expect) {
            assert!((a - e).abs() < 1e-6);
        }
    }

    #[test]
    fn gamma_beta_affine() {
        let input = Tensor::from_vec(&[1, 1, 1, 2], vec![0.0, 1.0]);
        let p = BatchNormParams {
            gamma: vec![2.0],
            beta: vec![10.0],
            mean: vec![0.0],
            var: vec![1.0],
            eps: 0.0,
        };
        let out = batch_norm2d(input, &p);
        assert_eq!(out.data(), &[10.0, 12.0]);
    }

    #[test]
    fn channels_normalised_independently() {
        let input = Tensor::from_vec(&[1, 2, 1, 1], vec![1.0, 1.0]);
        let p = BatchNormParams {
            gamma: vec![1.0, 3.0],
            beta: vec![0.0, 0.0],
            mean: vec![0.0, 0.0],
            var: vec![1.0, 1.0],
            eps: 0.0,
        };
        let out = batch_norm2d(input, &p);
        assert_eq!(out.data(), &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "gamma length")]
    fn wrong_channel_count_panics() {
        batch_norm2d(Tensor::zeros(&[1, 3, 2, 2]), &BatchNormParams::identity(2));
    }
}
