//! Grouped convolution and channel concatenation.
//!
//! Grouped convolution is the defining operator of the ResNeXt family in
//! the paper's workload (`resnext50.32x4d`, `resnext101.32x8d` — 32
//! groups): input and output channels are split into `groups` independent
//! convolutions. Channel concatenation is the DenseNet family's feature
//! reuse primitive.

use crate::ops::conv::{conv2d, Conv2dParams};
use crate::tensor::Tensor;

/// Extracts the channel range `[from, to)` of an NCHW tensor.
pub fn slice_channels(input: &Tensor, from: usize, to: usize) -> Tensor {
    assert_eq!(input.ndim(), 4, "slice_channels input must be NCHW");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    assert!(
        from < to && to <= c,
        "bad channel range {from}..{to} of {c}"
    );
    let plane = h * w;
    let out_c = to - from;
    let mut out = Tensor::zeros(&[n, out_c, h, w]);
    for ni in 0..n {
        let src = (ni * c + from) * plane;
        let dst = ni * out_c * plane;
        out.data_mut()[dst..dst + out_c * plane]
            .copy_from_slice(&input.data()[src..src + out_c * plane]);
    }
    out
}

/// Concatenates NCHW tensors along the channel axis. All inputs must share
/// batch and spatial dimensions.
pub fn concat_channels(parts: &[Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat of nothing");
    let (n, h, w) = (
        parts[0].shape()[0],
        parts[0].shape()[2],
        parts[0].shape()[3],
    );
    let total_c: usize = parts
        .iter()
        .map(|p| {
            assert_eq!(p.ndim(), 4, "concat input must be NCHW");
            assert_eq!(
                (p.shape()[0], p.shape()[2], p.shape()[3]),
                (n, h, w),
                "concat inputs must share batch and spatial dims"
            );
            p.shape()[1]
        })
        .sum();
    let plane = h * w;
    let mut out = Tensor::zeros(&[n, total_c, h, w]);
    for ni in 0..n {
        let mut c_off = 0;
        for p in parts {
            let pc = p.shape()[1];
            let src = ni * pc * plane;
            let dst = (ni * total_c + c_off) * plane;
            out.data_mut()[dst..dst + pc * plane].copy_from_slice(&p.data()[src..src + pc * plane]);
            c_off += pc;
        }
    }
    out
}

/// Grouped 2-D convolution: `weight` is `[cout, cin/groups, k, k]`; group
/// `g` convolves input channels `[g·cin/G, (g+1)·cin/G)` into output
/// channels `[g·cout/G, (g+1)·cout/G)`.
pub fn conv2d_grouped(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    groups: usize,
) -> Tensor {
    assert!(groups > 0, "groups must be positive");
    if groups == 1 {
        return conv2d(input, weight, bias, params);
    }
    let cin = input.shape()[1];
    let cout = weight.shape()[0];
    assert_eq!(
        cin % groups,
        0,
        "cin {cin} not divisible by {groups} groups"
    );
    assert_eq!(
        cout % groups,
        0,
        "cout {cout} not divisible by {groups} groups"
    );
    assert_eq!(
        weight.shape()[1],
        cin / groups,
        "grouped weight must have cin/groups input channels"
    );
    let cin_g = cin / groups;
    let cout_g = cout / groups;
    let (kh, kw) = (weight.shape()[2], weight.shape()[3]);

    let parts: Vec<Tensor> = (0..groups)
        .map(|g| {
            let in_slice = slice_channels(input, g * cin_g, (g + 1) * cin_g);
            let w_slice = Tensor::from_vec(
                &[cout_g, cin_g, kh, kw],
                weight.data()[g * cout_g * cin_g * kh * kw..(g + 1) * cout_g * cin_g * kh * kw]
                    .to_vec(),
            );
            let b_slice = bias.map(|b| {
                Tensor::from_vec(&[cout_g], b.data()[g * cout_g..(g + 1) * cout_g].to_vec())
            });
            conv2d(&in_slice, &w_slice, b_slice.as_ref(), params)
        })
        .collect();
    concat_channels(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfaas_sim::rng::DetRng;

    fn rand(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = DetRng::new(seed);
        Tensor::from_fn(shape, |_| rng.range_f64(-1.0, 1.0) as f32)
    }

    #[test]
    fn slice_then_concat_round_trips() {
        let t = rand(&[2, 6, 4, 4], 1);
        let a = slice_channels(&t, 0, 2);
        let b = slice_channels(&t, 2, 5);
        let c = slice_channels(&t, 5, 6);
        let back = concat_channels(&[a, b, c]);
        assert_eq!(back, t);
    }

    #[test]
    fn one_group_equals_plain_conv() {
        let input = rand(&[1, 4, 6, 6], 2);
        let weight = rand(&[8, 4, 3, 3], 3);
        let bias = rand(&[8], 4);
        let p = Conv2dParams {
            stride: 1,
            padding: 1,
        };
        let grouped = conv2d_grouped(&input, &weight, Some(&bias), p, 1);
        let plain = conv2d(&input, &weight, Some(&bias), p);
        assert_eq!(grouped, plain);
    }

    #[test]
    fn groups_partition_channels_independently() {
        // With 2 groups, zeroing input channels of group 1 must not affect
        // group 0's output channels, and must zero group 1's (bias-free).
        let p = Conv2dParams {
            stride: 1,
            padding: 0,
        };
        let weight = rand(&[4, 2, 3, 3], 5); // cout 4, cin/groups 2
        let full = rand(&[1, 4, 5, 5], 6);
        let mut half = full.clone();
        // Zero channels 2..4 (group 1's input).
        let plane = 5 * 5;
        for c in 2..4 {
            for v in &mut half.data_mut()[c * plane..(c + 1) * plane] {
                *v = 0.0;
            }
        }
        let out_full = conv2d_grouped(&full, &weight, None, p, 2);
        let out_half = conv2d_grouped(&half, &weight, None, p, 2);
        let out_plane = 3 * 3;
        // Group 0's outputs (channels 0..2) identical.
        assert_eq!(
            &out_full.data()[..2 * out_plane],
            &out_half.data()[..2 * out_plane]
        );
        // Group 1's outputs are zero when its inputs are zero.
        assert!(out_half.data()[2 * out_plane..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn grouped_matches_block_diagonal_plain_conv() {
        // A grouped conv equals a plain conv whose weight is block-diagonal
        // across groups.
        let p = Conv2dParams {
            stride: 1,
            padding: 1,
        };
        let input = rand(&[2, 4, 5, 5], 7);
        let gw = rand(&[6, 2, 3, 3], 8); // 2 groups: cout 6, cin/groups 2
        let grouped = conv2d_grouped(&input, &gw, None, p, 2);
        // Expand to a full [6, 4, 3, 3] weight with zeros off the blocks.
        let mut full = Tensor::zeros(&[6, 4, 3, 3]);
        for co in 0..6 {
            let g = co / 3;
            for ci in 0..2 {
                for ky in 0..3 {
                    for kx in 0..3 {
                        *full.at4_mut(co, g * 2 + ci, ky, kx) = gw.at4(co, ci, ky, kx);
                    }
                }
            }
        }
        let plain = conv2d(&input, &full, None, p);
        assert!(grouped.max_abs_diff(&plain) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_groups_panic() {
        conv2d_grouped(
            &Tensor::zeros(&[1, 3, 4, 4]),
            &Tensor::zeros(&[4, 1, 3, 3]),
            None,
            Conv2dParams::default(),
            2,
        );
    }

    #[test]
    #[should_panic(expected = "share batch and spatial")]
    fn concat_shape_mismatch_panics() {
        concat_channels(&[Tensor::zeros(&[1, 2, 4, 4]), Tensor::zeros(&[1, 2, 3, 3])]);
    }
}
