//! Elementwise activations and softmax.

use crate::tensor::Tensor;

/// Rectified linear unit, elementwise: `max(x, 0)`.
pub fn relu(mut t: Tensor) -> Tensor {
    t.map_inplace(|v| v.max(0.0));
    t
}

/// Logistic sigmoid, elementwise.
pub fn sigmoid(mut t: Tensor) -> Tensor {
    t.map_inplace(|v| 1.0 / (1.0 + (-v).exp()));
    t
}

/// Row-wise softmax over a 2-D `[batch, classes]` tensor, with the usual
/// max-subtraction for numerical stability.
pub fn softmax(mut t: Tensor) -> Tensor {
    assert_eq!(t.ndim(), 2, "softmax expects [batch, classes]");
    let cols = t.shape()[1];
    for row in t.data_mut().chunks_exact_mut(cols) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let t = relu(Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.5, -0.1]));
        assert_eq!(t.data(), &[0.0, 0.0, 2.5, 0.0]);
    }

    #[test]
    fn sigmoid_midpoint_and_limits() {
        let t = sigmoid(Tensor::from_vec(&[3], vec![0.0, 100.0, -100.0]));
        assert!((t.data()[0] - 0.5).abs() < 1e-6);
        assert!((t.data()[1] - 1.0).abs() < 1e-6);
        assert!(t.data()[2] < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = softmax(Tensor::from_vec(&[2, 3], vec![1., 2., 3., -1., 0., 1.]));
        for row in t.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]));
        let b = softmax(Tensor::from_vec(&[1, 3], vec![1001.0, 1002.0, 1003.0]));
        assert!(a.max_abs_diff(&b) < 1e-6);
        assert!(a.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_preserves_argmax() {
        let logits = Tensor::from_vec(&[1, 4], vec![0.1, 3.0, -2.0, 1.0]);
        let probs = softmax(logits.clone());
        assert_eq!(probs.argmax_rows(), logits.argmax_rows());
    }
}
