//! Spatial pooling over NCHW tensors.

use crate::tensor::Tensor;

fn pooled_hw(h: usize, w: usize, k: usize, stride: usize) -> (usize, usize) {
    assert!(k > 0 && stride > 0, "kernel and stride must be positive");
    assert!(
        h >= k && w >= k,
        "pool kernel {k} larger than input {h}x{w}"
    );
    ((h - k) / stride + 1, (w - k) / stride + 1)
}

/// Max pooling with a `k`×`k` window and the given stride.
pub fn max_pool2d(input: &Tensor, k: usize, stride: usize) -> Tensor {
    assert_eq!(input.ndim(), 4, "pooling input must be NCHW");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (oh, ow) = pooled_hw(h, w, k, stride);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for ky in 0..k {
                        for kx in 0..k {
                            best = best.max(input.at4(ni, ci, oy * stride + ky, ox * stride + kx));
                        }
                    }
                    *out.at4_mut(ni, ci, oy, ox) = best;
                }
            }
        }
    }
    out
}

/// Average pooling with a `k`×`k` window and the given stride.
pub fn avg_pool2d(input: &Tensor, k: usize, stride: usize) -> Tensor {
    assert_eq!(input.ndim(), 4, "pooling input must be NCHW");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (oh, ow) = pooled_hw(h, w, k, stride);
    let inv = 1.0 / (k * k) as f32;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..k {
                        for kx in 0..k {
                            acc += input.at4(ni, ci, oy * stride + ky, ox * stride + kx);
                        }
                    }
                    *out.at4_mut(ni, ci, oy, ox) = acc * inv;
                }
            }
        }
    }
    out
}

/// Global average pooling: collapses each channel plane to one value,
/// producing `[n, c]` (the standard pre-classifier reduction in ResNets).
pub fn global_avg_pool2d(input: &Tensor) -> Tensor {
    assert_eq!(input.ndim(), 4, "pooling input must be NCHW");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let inv = 1.0 / (h * w) as f32;
    let mut out = Tensor::zeros(&[n, c]);
    let plane = h * w;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * plane;
            let sum: f32 = input.data()[base..base + plane].iter().sum();
            out.data_mut()[ni * c + ci] = sum * inv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_window_max() {
        let input = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1., 2., 3., 4., //
                5., 6., 7., 8., //
                9., 10., 11., 12., //
                13., 14., 15., 16.,
            ],
        );
        let out = max_pool2d(&input, 2, 2);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[6., 8., 14., 16.]);
    }

    #[test]
    fn avg_pool_averages_window() {
        let input = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 3., 5., 7.]);
        let out = avg_pool2d(&input, 2, 2);
        assert_eq!(out.data(), &[4.0]);
    }

    #[test]
    fn overlapping_stride_one() {
        let input = Tensor::from_vec(&[1, 1, 3, 3], vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let out = max_pool2d(&input, 2, 1);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[5., 6., 8., 9.]);
    }

    #[test]
    fn global_avg_pool_flattens_planes() {
        let input = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let out = global_avg_pool2d(&input);
        assert_eq!(out.shape(), &[2, 3]);
        // First plane is [0,1,2,3] → mean 1.5.
        assert_eq!(out.at2(0, 0), 1.5);
        // Planes are contiguous blocks of 4.
        assert_eq!(out.at2(0, 1), 5.5);
        assert_eq!(out.at2(1, 2), 21.5);
    }

    #[test]
    fn channels_pool_independently() {
        let mut input = Tensor::zeros(&[1, 2, 2, 2]);
        *input.at4_mut(0, 0, 0, 0) = 10.0;
        *input.at4_mut(0, 1, 1, 1) = 20.0;
        let out = max_pool2d(&input, 2, 2);
        assert_eq!(out.data(), &[10.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn oversized_kernel_panics() {
        max_pool2d(&Tensor::zeros(&[1, 1, 2, 2]), 3, 1);
    }

    #[test]
    fn negative_values_survive_max_pool() {
        let input = Tensor::from_vec(&[1, 1, 2, 2], vec![-5., -3., -9., -7.]);
        let out = max_pool2d(&input, 2, 2);
        assert_eq!(out.data(), &[-3.0]);
    }
}
