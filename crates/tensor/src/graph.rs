//! A sequential layer graph for CNN inference.
//!
//! [`Network`] is a flat list of [`Layer`]s evaluated in order — enough to
//! express the feed-forward CNN families the paper's workload uses
//! (AlexNet/VGG/SqueezeNet-style stacks plus pooled classifiers). Weights
//! are owned by the layers and initialised deterministically from a seed so
//! inference results are reproducible across runs.

use gfaas_sim::rng::DetRng;

use crate::ops::conv::{conv2d, Conv2dParams};
use crate::ops::grouped::conv2d_grouped;
use crate::ops::norm::{batch_norm2d, BatchNormParams};
use crate::ops::{avg_pool2d, global_avg_pool2d, linear, max_pool2d, relu, sigmoid, softmax};
use crate::tensor::Tensor;

/// One network layer.
#[derive(Debug, Clone)]
pub enum Layer {
    /// 2-D convolution with owned weights `[out, in, k, k]` and bias.
    Conv2d {
        /// Filter bank.
        weight: Tensor,
        /// Per-output-channel bias.
        bias: Tensor,
        /// Stride/padding.
        params: Conv2dParams,
    },
    /// Grouped 2-D convolution (ResNeXt-style): weight
    /// `[out, in/groups, k, k]`.
    GroupedConv2d {
        /// Filter bank, `in/groups` input channels per filter.
        weight: Tensor,
        /// Per-output-channel bias.
        bias: Tensor,
        /// Stride/padding.
        params: Conv2dParams,
        /// Number of channel groups.
        groups: usize,
    },
    /// Inference-mode batch normalisation.
    BatchNorm(BatchNormParams),
    /// ReLU activation.
    Relu,
    /// Sigmoid activation.
    Sigmoid,
    /// Max pooling (`k`, `stride`).
    MaxPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling (`k`, `stride`).
    AvgPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling: NCHW → `[n, c]`.
    GlobalAvgPool,
    /// Flattens NCHW to `[n, c*h*w]`.
    Flatten,
    /// Fully connected layer with owned `[out, in]` weights and bias.
    Linear {
        /// Weight matrix.
        weight: Tensor,
        /// Bias vector.
        bias: Tensor,
    },
    /// Row-wise softmax (classifier head).
    Softmax,
}

impl Layer {
    /// Number of learnable parameters in this layer.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Conv2d { weight, bias, .. }
            | Layer::GroupedConv2d { weight, bias, .. }
            | Layer::Linear { weight, bias } => weight.numel() + bias.numel(),
            Layer::BatchNorm(p) => p.gamma.len() * 4,
            _ => 0,
        }
    }
}

/// A sequential feed-forward network.
#[derive(Debug, Clone)]
pub struct Network {
    /// Human-readable architecture name.
    pub name: String,
    layers: Vec<Layer>,
}

impl Network {
    /// An empty network with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: Layer) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends a randomly initialised convolution.
    pub fn conv(
        self,
        rng: &mut DetRng,
        cin: usize,
        cout: usize,
        k: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        let fan_in = cin * k * k;
        let weight = Tensor::rand_kaiming(&[cout, cin, k, k], fan_in, rng);
        let bias = Tensor::zeros(&[cout]);
        self.push(Layer::Conv2d {
            weight,
            bias,
            params: Conv2dParams { stride, padding },
        })
    }

    /// Appends a randomly initialised grouped convolution.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_grouped(
        self,
        rng: &mut DetRng,
        cin: usize,
        cout: usize,
        k: usize,
        stride: usize,
        padding: usize,
        groups: usize,
    ) -> Self {
        assert!(
            cin.is_multiple_of(groups) && cout.is_multiple_of(groups),
            "channels must divide groups"
        );
        let fan_in = (cin / groups) * k * k;
        let weight = Tensor::rand_kaiming(&[cout, cin / groups, k, k], fan_in, rng);
        let bias = Tensor::zeros(&[cout]);
        self.push(Layer::GroupedConv2d {
            weight,
            bias,
            params: Conv2dParams { stride, padding },
            groups,
        })
    }

    /// Appends a randomly initialised fully connected layer.
    pub fn dense(self, rng: &mut DetRng, fin: usize, fout: usize) -> Self {
        let weight = Tensor::rand_kaiming(&[fout, fin], fin, rng);
        let bias = Tensor::zeros(&[fout]);
        self.push(Layer::Linear { weight, bias })
    }

    /// The layer list.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total learnable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Approximate in-memory weight size in bytes (f32 parameters).
    pub fn weight_bytes(&self) -> u64 {
        (self.param_count() * std::mem::size_of::<f32>()) as u64
    }

    /// Runs a forward pass. Input is NCHW for convolutional stacks or
    /// `[batch, features]` once flattened.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &self.layers {
            x = match layer {
                Layer::Conv2d {
                    weight,
                    bias,
                    params,
                } => conv2d(&x, weight, Some(bias), *params),
                Layer::GroupedConv2d {
                    weight,
                    bias,
                    params,
                    groups,
                } => conv2d_grouped(&x, weight, Some(bias), *params, *groups),
                Layer::BatchNorm(p) => batch_norm2d(x, p),
                Layer::Relu => relu(x),
                Layer::Sigmoid => sigmoid(x),
                Layer::MaxPool { k, stride } => max_pool2d(&x, *k, *stride),
                Layer::AvgPool { k, stride } => avg_pool2d(&x, *k, *stride),
                Layer::GlobalAvgPool => global_avg_pool2d(&x),
                Layer::Flatten => {
                    let n = x.shape()[0];
                    let rest: usize = x.shape()[1..].iter().product();
                    x.reshape(&[n, rest])
                }
                Layer::Linear { weight, bias } => linear(&x, weight, Some(bias)),
                Layer::Softmax => softmax(x),
            };
        }
        x
    }

    /// Classifies a batch, returning the argmax class per row. The network
    /// must end in a 2-D `[batch, classes]` output.
    pub fn classify(&self, input: &Tensor) -> Vec<usize> {
        self.forward(input).argmax_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net(seed: u64) -> Network {
        let mut rng = DetRng::new(seed);
        Network::new("tiny")
            .conv(&mut rng, 1, 4, 3, 1, 1)
            .push(Layer::Relu)
            .push(Layer::MaxPool { k: 2, stride: 2 })
            .push(Layer::Flatten)
            .dense(&mut rng, 4 * 4 * 4, 10)
            .push(Layer::Softmax)
    }

    #[test]
    fn forward_produces_distribution() {
        let net = tiny_net(1);
        let input = Tensor::from_fn(&[2, 1, 8, 8], |i| (i % 7) as f32 / 7.0);
        let out = net.forward(&input);
        assert_eq!(out.shape(), &[2, 10]);
        for row in out.data().chunks(10) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn same_seed_same_output() {
        let a = tiny_net(9);
        let b = tiny_net(9);
        let input = Tensor::from_fn(&[1, 1, 8, 8], |i| i as f32 / 64.0);
        assert!(a.forward(&input).max_abs_diff(&b.forward(&input)) == 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny_net(1);
        let b = tiny_net(2);
        let input = Tensor::from_fn(&[1, 1, 8, 8], |i| i as f32 / 64.0);
        assert!(a.forward(&input).max_abs_diff(&b.forward(&input)) > 1e-6);
    }

    #[test]
    fn param_count_adds_up() {
        let net = tiny_net(1);
        // conv: 4*1*3*3 + 4 = 40; dense: 10*64 + 10 = 650.
        assert_eq!(net.param_count(), 40 + 650);
        assert_eq!(net.weight_bytes(), (690 * 4) as u64);
    }

    #[test]
    fn classify_returns_one_label_per_row() {
        let net = tiny_net(3);
        let input = Tensor::from_fn(&[5, 1, 8, 8], |i| ((i * 13) % 11) as f32 / 11.0);
        let labels = net.classify(&input);
        assert_eq!(labels.len(), 5);
        assert!(labels.iter().all(|&l| l < 10));
    }

    #[test]
    fn batch_size_invariance() {
        // Running rows individually must equal running them as one batch.
        let net = tiny_net(4);
        let a = Tensor::from_fn(&[1, 1, 8, 8], |i| (i as f32).sin());
        let b = Tensor::from_fn(&[1, 1, 8, 8], |i| (i as f32).cos());
        let mut joint_data = a.data().to_vec();
        joint_data.extend_from_slice(b.data());
        let joint = Tensor::from_vec(&[2, 1, 8, 8], joint_data);
        let out_a = net.forward(&a);
        let out_b = net.forward(&b);
        let out_joint = net.forward(&joint);
        for c in 0..10 {
            assert!((out_joint.at2(0, c) - out_a.at2(0, c)).abs() < 1e-5);
            assert!((out_joint.at2(1, c) - out_b.at2(0, c)).abs() < 1e-5);
        }
    }
}
