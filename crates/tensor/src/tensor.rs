//! A dense, row-major, `f32` n-dimensional tensor.
//!
//! Deliberately minimal: owned storage, eager ops, no autograd, no views —
//! inference only needs forward passes over contiguous buffers, and
//! contiguous `Vec<f32>` keeps every kernel a straight loop the compiler can
//! vectorise.

use gfaas_sim::rng::DetRng;

/// A dense row-major tensor of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; numel],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; numel],
        }
    }

    /// Builds a tensor from existing data; `data.len()` must equal the
    /// product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} does not match {} elements",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Builds a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let numel: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: (0..numel).map(&mut f).collect(),
        }
    }

    /// Kaiming-uniform style random init in `[-bound, bound]` where
    /// `bound = sqrt(6 / fan_in)`; deterministic given the RNG.
    pub fn rand_kaiming(shape: &[usize], fan_in: usize, rng: &mut DetRng) -> Self {
        let bound = (6.0 / fan_in.max(1) as f64).sqrt();
        Tensor::from_fn(shape, |_| rng.range_f64(-bound, bound) as f32)
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable flat view of the data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view of the data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, yielding its flat data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "reshape to {shape:?} changes element count"
        );
        self.shape = shape.to_vec();
        self
    }

    /// Element at 4-D index `[n, c, h, w]` (tensor must be 4-D).
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 4);
        let (cs, hs, ws) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cs + c) * hs + h) * ws + w]
    }

    /// Mutable element at 4-D index `[n, c, h, w]`.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.ndim(), 4);
        let (cs, hs, ws) = (self.shape[1], self.shape[2], self.shape[3]);
        &mut self.data[((n * cs + c) * hs + h) * ws + w]
    }

    /// Element at 2-D index `[r, c]` (tensor must be 2-D).
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Elementwise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise addition of a same-shape tensor.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Index of the maximum element in each row of a 2-D tensor
    /// (argmax over the class axis — the classification output).
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.ndim(), 2, "argmax_rows needs a 2-D tensor");
        let cols = self.shape[1];
        self.data
            .chunks_exact(cols)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Maximum absolute difference to another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let f = Tensor::full(&[4], 2.5);
        assert!(f.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn from_fn_indexing() {
        let t = Tensor::from_fn(&[2, 2], |i| i as f32);
        assert_eq!(t.at2(0, 0), 0.0);
        assert_eq!(t.at2(0, 1), 1.0);
        assert_eq!(t.at2(1, 0), 2.0);
        assert_eq!(t.at2(1, 1), 3.0);
    }

    #[test]
    fn at4_row_major_layout() {
        let t = Tensor::from_fn(&[2, 3, 4, 5], |i| i as f32);
        assert_eq!(t.at4(0, 0, 0, 0), 0.0);
        assert_eq!(t.at4(0, 0, 0, 4), 4.0);
        assert_eq!(t.at4(0, 0, 1, 0), 5.0);
        assert_eq!(t.at4(0, 1, 0, 0), 20.0);
        assert_eq!(t.at4(1, 0, 0, 0), 60.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.clone().reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_wrong_count_panics() {
        Tensor::zeros(&[2, 2]).reshape(&[5]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_shape_mismatch_panics() {
        Tensor::from_vec(&[3], vec![1.0, 2.0]);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let t = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.0, 5.0, -1.0, 2.0]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn kaiming_is_deterministic_and_bounded() {
        let mut r1 = DetRng::new(3);
        let mut r2 = DetRng::new(3);
        let a = Tensor::rand_kaiming(&[8, 8], 64, &mut r1);
        let b = Tensor::rand_kaiming(&[8, 8], 64, &mut r2);
        assert_eq!(a, b);
        let bound = (6.0f64 / 64.0).sqrt() as f32;
        assert!(a.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn map_and_add() {
        let mut t = Tensor::from_vec(&[3], vec![1.0, -2.0, 3.0]);
        t.map_inplace(|v| v * 2.0);
        assert_eq!(t.data(), &[2.0, -4.0, 6.0]);
        let o = Tensor::from_vec(&[3], vec![1.0, 1.0, 1.0]);
        t.add_assign(&o);
        assert_eq!(t.data(), &[3.0, -3.0, 7.0]);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(&[2], vec![1.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
