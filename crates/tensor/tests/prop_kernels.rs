//! Property tests for the tensor kernels: the fast paths must agree with
//! the naive reference implementations on arbitrary shapes and data.

use gfaas_sim::rng::DetRng;
use gfaas_tensor::ops::matmul::{matmul, matmul_naive};
use gfaas_tensor::ops::{conv2d, conv2d_naive, relu, softmax, Conv2dParams};
use gfaas_tensor::Tensor;
use proptest::prelude::*;

fn tensor_for(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = DetRng::new(seed);
    Tensor::from_fn(shape, |_| rng.range_f64(-2.0, 2.0) as f32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GEMM path == naive triple loop for arbitrary shapes.
    #[test]
    fn matmul_matches_reference(
        m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000
    ) {
        let a = tensor_for(&[m, k], seed);
        let b = tensor_for(&[k, n], seed ^ 0xdead);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-3);
    }

    /// im2col+GEMM convolution == direct loop nest, including stride and
    /// padding combinations.
    #[test]
    fn conv2d_matches_reference(
        n in 1usize..3,
        cin in 1usize..4,
        cout in 1usize..4,
        hw in 4usize..10,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(hw + 2 * padding >= k);
        let input = tensor_for(&[n, cin, hw, hw], seed);
        let weight = tensor_for(&[cout, cin, k, k], seed ^ 0xbeef);
        let bias = tensor_for(&[cout], seed ^ 0xcafe);
        let p = Conv2dParams { stride, padding };
        let fast = conv2d(&input, &weight, Some(&bias), p);
        let slow = conv2d_naive(&input, &weight, Some(&bias), p);
        prop_assert_eq!(fast.shape(), slow.shape());
        prop_assert!(fast.max_abs_diff(&slow) < 1e-3);
    }

    /// Softmax rows always form a probability distribution and preserve
    /// the argmax of the logits.
    #[test]
    fn softmax_is_a_distribution(rows in 1usize..6, cols in 1usize..12, seed in 0u64..1000) {
        let logits = tensor_for(&[rows, cols], seed);
        let probs = softmax(logits.clone());
        for row in probs.data().chunks(cols) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5, "row sums to {sum}");
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        prop_assert_eq!(probs.argmax_rows(), logits.argmax_rows());
    }

    /// ReLU is idempotent and nonnegative.
    #[test]
    fn relu_idempotent(len in 1usize..256, seed in 0u64..1000) {
        let t = tensor_for(&[len], seed);
        let once = relu(t);
        prop_assert!(once.data().iter().all(|&v| v >= 0.0));
        let twice = relu(once.clone());
        prop_assert_eq!(once, twice);
    }

    /// Reshape round-trips preserve data exactly.
    #[test]
    fn reshape_round_trip(r in 1usize..12, c in 1usize..12, seed in 0u64..1000) {
        let t = tensor_for(&[r, c], seed);
        let back = t.clone().reshape(&[c, r]).reshape(&[r, c]);
        prop_assert_eq!(t, back);
    }
}
