//! Property tests for the etcd-like datastore: revision monotonicity,
//! range consistency, and watch completeness under arbitrary op streams.

use bytes::Bytes;
use gfaas_faas::datastore::WatchEventKind;
use gfaas_faas::Datastore;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum DsOp {
    Put(u8, u8),
    Delete(u8),
    Get(u8),
}

fn arb_op() -> impl Strategy<Value = DsOp> {
    prop_oneof![
        (0u8..20, any::<u8>()).prop_map(|(k, v)| DsOp::Put(k, v)),
        (0u8..20).prop_map(DsOp::Delete),
        (0u8..20).prop_map(DsOp::Get),
    ]
}

fn key(k: u8) -> String {
    format!("/k/{k:02}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store always agrees with a shadow BTreeMap, and the revision
    /// strictly increases across effective mutations.
    #[test]
    fn store_matches_shadow_model(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let ds = Datastore::new();
        let mut shadow: BTreeMap<String, u8> = BTreeMap::new();
        let mut last_rev = ds.revision();
        for op in ops {
            match op {
                DsOp::Put(k, v) => {
                    let rev = ds.put(key(k), vec![v]);
                    prop_assert!(rev > last_rev);
                    last_rev = rev;
                    shadow.insert(key(k), v);
                }
                DsOp::Delete(k) => {
                    let existed = shadow.remove(&key(k)).is_some();
                    let rev = ds.delete(key(k));
                    prop_assert_eq!(rev.is_some(), existed);
                    if let Some(r) = rev {
                        prop_assert!(r > last_rev);
                        last_rev = r;
                    }
                }
                DsOp::Get(k) => {
                    let got = ds.get(key(k)).map(|kv| kv.value[0]);
                    prop_assert_eq!(got, shadow.get(&key(k)).copied());
                }
            }
            prop_assert_eq!(ds.len(), shadow.len());
        }
        // Range over the whole prefix equals the shadow, in order.
        let range: Vec<(String, u8)> = ds
            .range("/k/")
            .into_iter()
            .map(|kv| (kv.key.clone(), kv.value[0]))
            .collect();
        let expect: Vec<(String, u8)> = shadow.into_iter().collect();
        prop_assert_eq!(range, expect);
    }

    /// A watcher sees exactly the mutations under its prefix, in revision
    /// order, with the right kinds.
    #[test]
    fn watcher_sees_every_matching_mutation(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let ds = Datastore::new();
        let watcher = ds.watch("/k/0"); // keys 00..09
        let mut expected = Vec::new();
        for op in ops {
            match op {
                DsOp::Put(k, v) => {
                    ds.put(key(k), vec![v]);
                    if key(k).starts_with("/k/0") {
                        expected.push((WatchEventKind::Put, key(k), Some(v)));
                    }
                }
                DsOp::Delete(k) => {
                    if ds.delete(key(k)).is_some() && key(k).starts_with("/k/0") {
                        expected.push((WatchEventKind::Delete, key(k), None));
                    }
                }
                DsOp::Get(_) => {}
            }
        }
        let events = watcher.drain();
        prop_assert_eq!(events.len(), expected.len());
        let mut last_rev = None;
        for (ev, (kind, k, v)) in events.iter().zip(&expected) {
            prop_assert_eq!(ev.kind, *kind);
            prop_assert_eq!(&ev.key, k);
            if let Some(v) = v {
                prop_assert_eq!(&ev.value, &Bytes::from(vec![*v]));
            }
            if let Some(lr) = last_rev {
                prop_assert!(ev.revision > lr);
            }
            last_rev = Some(ev.revision);
        }
    }
}
