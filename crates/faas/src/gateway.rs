//! The Gateway: function CRUD and invocation routing.
//!
//! The Gateway is the platform's public route (Fig 1). Registration stores
//! the spec in the Datastore under `/functions/<name>`; at that moment the
//! Gateway inspects the Dockerfile's GPU flag and — for GPU functions —
//! replaces the ML framework's load/predict interface so invocations are
//! redirected to the GPU scheduler instead of executing in the container
//! (the paper's transparent rewrite, §III-A). CPU functions run through the
//! local [`crate::watchdog::Watchdog`].

use bytes::Bytes;
use gfaas_sim::time::SimTime;
use parking_lot::Mutex;
use std::sync::Arc;

use crate::datastore::Datastore;
use crate::function::{FunctionSpec, Invocation, InvocationResult, Runtime};

/// Routes GPU invocations to the GPU scheduler. `gfaas-core` implements
/// this for the live cluster; tests use stubs.
pub trait Dispatcher: Send {
    /// Accepts one invocation for asynchronous GPU execution; the result is
    /// delivered through the dispatcher's own completion path.
    fn dispatch(&mut self, invocation: Invocation);
}

/// Runs CPU function bodies (the Watchdog's execution hook).
pub trait CpuRunner: Send {
    /// Executes the function synchronously, returning its output payload.
    fn run(&mut self, invocation: &Invocation) -> Bytes;
}

/// Errors surfaced to the end user by the Gateway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// Registration with a name that is already taken.
    AlreadyRegistered(String),
    /// Invocation/update/delete of an unknown function.
    NotFound(String),
    /// A GPU function was invoked but no dispatcher is attached.
    NoDispatcher,
    /// Registration data failed validation.
    Invalid(&'static str),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::AlreadyRegistered(n) => write!(f, "function {n} already registered"),
            GatewayError::NotFound(n) => write!(f, "function {n} not found"),
            GatewayError::NoDispatcher => write!(f, "no GPU dispatcher attached"),
            GatewayError::Invalid(why) => write!(f, "invalid function spec: {why}"),
        }
    }
}

impl std::error::Error for GatewayError {}

/// Key prefix for registered functions in the Datastore.
pub const FUNCTIONS_PREFIX: &str = "/functions/";

/// The platform gateway.
pub struct Gateway {
    datastore: Arc<Datastore>,
    dispatcher: Option<Box<dyn Dispatcher>>,
    registry: Mutex<Vec<FunctionSpec>>,
    next_invocation: Mutex<u64>,
}

impl Gateway {
    /// A gateway backed by the given datastore, with no GPU dispatcher yet.
    pub fn new(datastore: Arc<Datastore>) -> Self {
        Gateway {
            datastore,
            dispatcher: None,
            registry: Mutex::new(Vec::new()),
            next_invocation: Mutex::new(0),
        }
    }

    /// Attaches the GPU dispatcher (the scheduler frontend).
    pub fn set_dispatcher(&mut self, d: Box<dyn Dispatcher>) {
        self.dispatcher = Some(d);
    }

    /// Registers a function (the `create` of CRUD). Stores the spec and —
    /// for GPU functions — marks the interface replacement by recording the
    /// assigned runtime next to the spec.
    pub fn register(&self, spec: FunctionSpec) -> Result<Runtime, GatewayError> {
        if spec.name.is_empty() {
            return Err(GatewayError::Invalid("empty name"));
        }
        if spec.gpu_enabled && spec.model_name.is_none() {
            return Err(GatewayError::Invalid("GPU function without a model"));
        }
        if spec.batch_size == 0 {
            return Err(GatewayError::Invalid("zero batch size"));
        }
        let mut reg = self.registry.lock();
        if reg.iter().any(|f| f.name == spec.name) {
            return Err(GatewayError::AlreadyRegistered(spec.name));
        }
        let runtime = spec.runtime();
        let key = format!("{FUNCTIONS_PREFIX}{}", spec.name);
        let record = format!(
            "image={};gpu={};model={};batch={};runtime={:?}",
            spec.image,
            spec.gpu_enabled,
            spec.model_name.as_deref().unwrap_or("-"),
            spec.batch_size,
            runtime
        );
        self.datastore.put(key, record);
        reg.push(spec);
        Ok(runtime)
    }

    /// Reads a registered spec (the `read` of CRUD).
    pub fn get(&self, name: &str) -> Option<FunctionSpec> {
        self.registry
            .lock()
            .iter()
            .find(|f| f.name == name)
            .cloned()
    }

    /// Replaces a registered spec (the `update` of CRUD).
    pub fn update(&self, spec: FunctionSpec) -> Result<Runtime, GatewayError> {
        let mut reg = self.registry.lock();
        let slot = reg
            .iter_mut()
            .find(|f| f.name == spec.name)
            .ok_or_else(|| GatewayError::NotFound(spec.name.clone()))?;
        let runtime = spec.runtime();
        *slot = spec;
        Ok(runtime)
    }

    /// Removes a function (the `delete` of CRUD).
    pub fn deregister(&self, name: &str) -> Result<(), GatewayError> {
        let mut reg = self.registry.lock();
        let before = reg.len();
        reg.retain(|f| f.name != name);
        if reg.len() == before {
            return Err(GatewayError::NotFound(name.to_string()));
        }
        self.datastore.delete(format!("{FUNCTIONS_PREFIX}{name}"));
        Ok(())
    }

    /// All registered functions.
    pub fn list(&self) -> Vec<FunctionSpec> {
        self.registry.lock().clone()
    }

    /// Builds an invocation record for a function call arriving at `now`.
    pub fn make_invocation(
        &self,
        name: &str,
        payload: Bytes,
        now: SimTime,
    ) -> Result<Invocation, GatewayError> {
        let spec = self
            .get(name)
            .ok_or_else(|| GatewayError::NotFound(name.to_string()))?;
        let mut next = self.next_invocation.lock();
        let id = *next;
        *next += 1;
        Ok(Invocation {
            id,
            function: spec.name,
            payload,
            arrived_at: now,
            batch_size: spec.batch_size,
        })
    }

    /// Invokes a function. GPU functions are forwarded to the dispatcher
    /// (asynchronous completion); CPU functions run synchronously through
    /// `cpu_runner` and return a result immediately.
    pub fn invoke(
        &mut self,
        name: &str,
        payload: Bytes,
        now: SimTime,
        cpu_runner: &mut dyn CpuRunner,
    ) -> Result<Option<InvocationResult>, GatewayError> {
        let spec = self
            .get(name)
            .ok_or_else(|| GatewayError::NotFound(name.to_string()))?;
        let invocation = self.make_invocation(name, payload, now)?;
        match spec.runtime() {
            Runtime::GpuRedirect => {
                let d = self.dispatcher.as_mut().ok_or(GatewayError::NoDispatcher)?;
                d.dispatch(invocation);
                Ok(None)
            }
            Runtime::Cpu => {
                let output = cpu_runner.run(&invocation);
                Ok(Some(InvocationResult {
                    id: invocation.id,
                    output,
                    latency: gfaas_sim::time::SimDuration::ZERO,
                    cache_hit: None,
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl CpuRunner for Echo {
        fn run(&mut self, inv: &Invocation) -> Bytes {
            inv.payload.clone()
        }
    }

    struct Collect(Arc<Mutex<Vec<Invocation>>>);
    impl Dispatcher for Collect {
        fn dispatch(&mut self, invocation: Invocation) {
            self.0.lock().push(invocation);
        }
    }

    fn gw() -> Gateway {
        Gateway::new(Arc::new(Datastore::new()))
    }

    #[test]
    fn register_records_spec_and_runtime() {
        let g = gw();
        let rt = g
            .register(FunctionSpec::gpu_inference("cls", "resnet50", 32))
            .unwrap();
        assert_eq!(rt, Runtime::GpuRedirect);
        let kv = g.datastore.get("/functions/cls").unwrap();
        let s = String::from_utf8(kv.value.to_vec()).unwrap();
        assert!(s.contains("gpu=true"));
        assert!(s.contains("model=resnet50"));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let g = gw();
        g.register(FunctionSpec::cpu("f", "img")).unwrap();
        assert_eq!(
            g.register(FunctionSpec::cpu("f", "img2")),
            Err(GatewayError::AlreadyRegistered("f".into()))
        );
    }

    #[test]
    fn validation_rules() {
        let g = gw();
        assert!(matches!(
            g.register(FunctionSpec::cpu("", "img")),
            Err(GatewayError::Invalid(_))
        ));
        let mut bad = FunctionSpec::cpu("x", "img");
        bad.gpu_enabled = true; // GPU but no model
        assert!(matches!(g.register(bad), Err(GatewayError::Invalid(_))));
        let mut zero = FunctionSpec::gpu_inference("y", "m", 1);
        zero.batch_size = 0;
        assert!(matches!(g.register(zero), Err(GatewayError::Invalid(_))));
    }

    #[test]
    fn crud_round_trip() {
        let g = gw();
        g.register(FunctionSpec::cpu("f", "v1")).unwrap();
        assert_eq!(g.get("f").unwrap().image, "v1");
        let mut updated = FunctionSpec::cpu("f", "v2");
        updated.batch_size = 4;
        g.update(updated).unwrap();
        assert_eq!(g.get("f").unwrap().image, "v2");
        assert_eq!(g.list().len(), 1);
        g.deregister("f").unwrap();
        assert!(g.get("f").is_none());
        assert_eq!(g.deregister("f"), Err(GatewayError::NotFound("f".into())));
        assert!(g.datastore.get("/functions/f").is_none());
    }

    #[test]
    fn cpu_invocation_runs_synchronously() {
        let mut g = gw();
        g.register(FunctionSpec::cpu("echo", "img")).unwrap();
        let out = g
            .invoke("echo", Bytes::from_static(b"hi"), SimTime::ZERO, &mut Echo)
            .unwrap()
            .unwrap();
        assert_eq!(out.output, Bytes::from_static(b"hi"));
    }

    #[test]
    fn gpu_invocation_routes_to_dispatcher() {
        let mut g = gw();
        g.register(FunctionSpec::gpu_inference("cls", "vgg16", 32))
            .unwrap();
        let seen = Arc::new(Mutex::new(Vec::new()));
        g.set_dispatcher(Box::new(Collect(Arc::clone(&seen))));
        let res = g
            .invoke(
                "cls",
                Bytes::from_static(b"img"),
                SimTime::from_secs(3),
                &mut Echo,
            )
            .unwrap();
        assert!(res.is_none(), "GPU path completes asynchronously");
        let got = seen.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].function, "cls");
        assert_eq!(got[0].batch_size, 32);
        assert_eq!(got[0].arrived_at, SimTime::from_secs(3));
    }

    #[test]
    fn gpu_invocation_without_dispatcher_errors() {
        let mut g = gw();
        g.register(FunctionSpec::gpu_inference("cls", "vgg16", 32))
            .unwrap();
        assert_eq!(
            g.invoke("cls", Bytes::new(), SimTime::ZERO, &mut Echo)
                .unwrap_err(),
            GatewayError::NoDispatcher
        );
    }

    #[test]
    fn invocation_ids_are_monotone() {
        let g = gw();
        g.register(FunctionSpec::cpu("f", "img")).unwrap();
        let a = g.make_invocation("f", Bytes::new(), SimTime::ZERO).unwrap();
        let b = g.make_invocation("f", Bytes::new(), SimTime::ZERO).unwrap();
        assert!(b.id > a.id);
    }

    #[test]
    fn unknown_function_not_found() {
        let mut g = gw();
        assert_eq!(
            g.invoke("ghost", Bytes::new(), SimTime::ZERO, &mut Echo)
                .unwrap_err(),
            GatewayError::NotFound("ghost".into())
        );
    }
}
