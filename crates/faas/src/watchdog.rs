//! The Watchdog: per-container function execution and metrics reporting.
//!
//! In OpenFaaS the watchdog is the process inside each function container
//! that receives invocations from the Gateway, runs the function code, and
//! writes status/latency metrics back to the platform (Fig 1). Here it
//! wraps a [`crate::gateway::CpuRunner`] and records one metrics key per
//! completed invocation plus rolling per-function aggregates.

use std::sync::Arc;

use bytes::Bytes;
use gfaas_sim::time::{SimDuration, SimTime};
use parking_lot::Mutex;
use std::collections::HashMap;

use crate::datastore::Datastore;
use crate::function::{Invocation, InvocationResult};
use crate::gateway::CpuRunner;

/// Key prefix for per-invocation metrics.
pub const METRICS_PREFIX: &str = "/metrics/invocations/";
/// Key prefix for per-function aggregate metrics.
pub const AGG_PREFIX: &str = "/metrics/functions/";

/// Rolling per-function statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FunctionStats {
    /// Completed invocations.
    pub count: u64,
    /// Sum of latencies in seconds (for means).
    pub total_latency_secs: f64,
    /// Worst observed latency in seconds.
    pub max_latency_secs: f64,
}

impl FunctionStats {
    /// Mean latency in seconds; 0 when no invocations completed.
    pub fn mean_latency_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_latency_secs / self.count as f64
        }
    }
}

/// The watchdog process.
pub struct Watchdog {
    datastore: Arc<Datastore>,
    stats: Mutex<HashMap<String, FunctionStats>>,
}

impl Watchdog {
    /// A watchdog reporting into the given datastore.
    pub fn new(datastore: Arc<Datastore>) -> Self {
        Watchdog {
            datastore,
            stats: Mutex::new(HashMap::new()),
        }
    }

    /// Runs a CPU function body and records its metrics. `started_at` and
    /// `finished_at` come from the caller's clock (virtual or wall).
    pub fn execute(
        &self,
        invocation: &Invocation,
        runner: &mut dyn CpuRunner,
        started_at: SimTime,
        finished_at: SimTime,
    ) -> InvocationResult {
        let output = runner.run(invocation);
        let latency = finished_at.duration_since(started_at);
        self.record(&invocation.function, invocation.id, latency, true);
        InvocationResult {
            id: invocation.id,
            output,
            latency,
            cache_hit: None,
        }
    }

    /// Records a completed invocation's latency and status (also used by
    /// the GPU path, where execution happened on a device).
    pub fn record(&self, function: &str, invocation_id: u64, latency: SimDuration, ok: bool) {
        let secs = latency.as_secs_f64();
        self.datastore.put(
            format!("{METRICS_PREFIX}{function}/{invocation_id}"),
            format!("latency={secs:.6};ok={ok}"),
        );
        let mut stats = self.stats.lock();
        let entry = stats.entry(function.to_string()).or_default();
        entry.count += 1;
        entry.total_latency_secs += secs;
        entry.max_latency_secs = entry.max_latency_secs.max(secs);
        self.datastore.put(
            format!("{AGG_PREFIX}{function}"),
            format!(
                "count={};mean={:.6};max={:.6}",
                entry.count,
                entry.mean_latency_secs(),
                entry.max_latency_secs
            ),
        );
    }

    /// Current aggregates for one function.
    pub fn stats(&self, function: &str) -> FunctionStats {
        self.stats.lock().get(function).copied().unwrap_or_default()
    }
}

/// A trivial runner that returns a fixed payload; handy in tests/examples.
pub struct ConstRunner(pub Bytes);

impl CpuRunner for ConstRunner {
    fn run(&mut self, _invocation: &Invocation) -> Bytes {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(id: u64, f: &str) -> Invocation {
        Invocation {
            id,
            function: f.to_string(),
            payload: Bytes::new(),
            arrived_at: SimTime::ZERO,
            batch_size: 1,
        }
    }

    #[test]
    fn execute_reports_latency_and_output() {
        let ds = Arc::new(Datastore::new());
        let wd = Watchdog::new(Arc::clone(&ds));
        let mut runner = ConstRunner(Bytes::from_static(b"out"));
        let r = wd.execute(
            &inv(1, "f"),
            &mut runner,
            SimTime::from_secs(10),
            SimTime::from_secs(12),
        );
        assert_eq!(r.output, Bytes::from_static(b"out"));
        assert_eq!(r.latency, SimDuration::from_secs(2));
        let kv = ds.get("/metrics/invocations/f/1").unwrap();
        assert!(String::from_utf8(kv.value.to_vec())
            .unwrap()
            .contains("latency=2.000000"));
    }

    #[test]
    fn aggregates_accumulate() {
        let ds = Arc::new(Datastore::new());
        let wd = Watchdog::new(ds);
        wd.record("f", 1, SimDuration::from_secs(1), true);
        wd.record("f", 2, SimDuration::from_secs(3), true);
        wd.record("g", 3, SimDuration::from_secs(9), true);
        let f = wd.stats("f");
        assert_eq!(f.count, 2);
        assert!((f.mean_latency_secs() - 2.0).abs() < 1e-12);
        assert_eq!(f.max_latency_secs, 3.0);
        assert_eq!(wd.stats("g").count, 1);
        assert_eq!(wd.stats("unknown"), FunctionStats::default());
    }

    #[test]
    fn aggregate_key_written_to_datastore() {
        let ds = Arc::new(Datastore::new());
        let wd = Watchdog::new(Arc::clone(&ds));
        wd.record("f", 1, SimDuration::from_millis(500), true);
        let kv = ds.get("/metrics/functions/f").unwrap();
        let s = String::from_utf8(kv.value.to_vec()).unwrap();
        assert!(s.contains("count=1"));
        assert!(s.contains("mean=0.500000"));
    }
}
