//! Container lifecycle and per-function scaling.
//!
//! The orchestration layer beneath the FaaS framework (Kubernetes/Swarm in
//! the paper) manages one container pool per function and scales it with
//! demand. The simulation needs only the lifecycle facts: containers take
//! time to cold-start, replicas are bounded, and the Datastore's metrics
//! can drive scale decisions.

use std::collections::HashMap;

use gfaas_sim::time::{SimDuration, SimTime};

/// Identifies one container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContainerId(pub u64);

/// Container lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// Created, still cold-starting; ready at the embedded time.
    Starting {
        /// When the cold start completes.
        ready_at: SimTime,
    },
    /// Accepting invocations.
    Running,
    /// Stopped (scaled down or failed).
    Terminated,
}

/// One function container.
#[derive(Debug, Clone)]
pub struct Container {
    /// Container id.
    pub id: ContainerId,
    /// The function it serves.
    pub function: String,
    /// Lifecycle state.
    pub state: ContainerState,
    /// Creation time.
    pub created_at: SimTime,
}

/// Scaling bounds for one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalingPolicy {
    /// Minimum replicas kept warm.
    pub min_replicas: usize,
    /// Maximum replicas.
    pub max_replicas: usize,
    /// Invocations-per-minute per replica before scaling out.
    pub target_per_replica: u64,
}

impl Default for ScalingPolicy {
    fn default() -> Self {
        ScalingPolicy {
            min_replicas: 1,
            max_replicas: 20,
            target_per_replica: 60,
        }
    }
}

impl ScalingPolicy {
    /// Desired replica count for an observed invocation rate (per minute).
    pub fn desired_replicas(&self, rate_per_min: u64) -> usize {
        let need = rate_per_min.div_ceil(self.target_per_replica.max(1)) as usize;
        need.clamp(self.min_replicas, self.max_replicas)
    }
}

/// The per-function container pool.
#[derive(Debug, Default)]
pub struct ContainerPool {
    containers: HashMap<ContainerId, Container>,
    next_id: u64,
    cold_start: SimDuration,
}

impl ContainerPool {
    /// A pool whose containers cold-start in `cold_start`.
    pub fn new(cold_start: SimDuration) -> Self {
        ContainerPool {
            containers: HashMap::new(),
            next_id: 0,
            cold_start,
        }
    }

    /// Launches a container for `function` at `now`; it becomes ready after
    /// the pool's cold-start delay.
    pub fn launch(&mut self, function: &str, now: SimTime) -> ContainerId {
        let id = ContainerId(self.next_id);
        self.next_id += 1;
        self.containers.insert(
            id,
            Container {
                id,
                function: function.to_string(),
                state: ContainerState::Starting {
                    ready_at: now + self.cold_start,
                },
                created_at: now,
            },
        );
        id
    }

    /// Promotes due `Starting` containers to `Running` at `now`. Returns
    /// how many became ready.
    pub fn tick(&mut self, now: SimTime) -> usize {
        let mut promoted = 0;
        for c in self.containers.values_mut() {
            if let ContainerState::Starting { ready_at } = c.state {
                if now >= ready_at {
                    c.state = ContainerState::Running;
                    promoted += 1;
                }
            }
        }
        promoted
    }

    /// Terminates one running container of `function`; returns whether one
    /// was found.
    pub fn terminate_one(&mut self, function: &str) -> bool {
        if let Some(c) = self
            .containers
            .values_mut()
            .find(|c| c.function == function && matches!(c.state, ContainerState::Running))
        {
            c.state = ContainerState::Terminated;
            true
        } else {
            false
        }
    }

    /// Live (starting or running) replicas of `function`.
    pub fn replicas(&self, function: &str) -> usize {
        self.containers
            .values()
            .filter(|c| c.function == function && !matches!(c.state, ContainerState::Terminated))
            .count()
    }

    /// Running replicas of `function`.
    pub fn running(&self, function: &str) -> usize {
        self.containers
            .values()
            .filter(|c| c.function == function && matches!(c.state, ContainerState::Running))
            .count()
    }

    /// Applies a scaling decision: launches or terminates replicas until
    /// the live count matches `policy.desired_replicas(rate)`. Returns the
    /// signed replica delta.
    pub fn reconcile(
        &mut self,
        function: &str,
        rate_per_min: u64,
        policy: ScalingPolicy,
        now: SimTime,
    ) -> i64 {
        let desired = policy.desired_replicas(rate_per_min);
        let mut delta = 0i64;
        while self.replicas(function) < desired {
            self.launch(function, now);
            delta += 1;
        }
        while self.replicas(function) > desired {
            if !self.terminate_one(function) {
                break; // only starting containers left; let them come up
            }
            delta -= 1;
        }
        delta
    }

    /// A container by id.
    pub fn get(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn launch_cold_start_then_running() {
        let mut pool = ContainerPool::new(SimDuration::from_secs(2));
        let id = pool.launch("f", t(0));
        assert!(matches!(
            pool.get(id).unwrap().state,
            ContainerState::Starting { .. }
        ));
        assert_eq!(pool.tick(t(1)), 0);
        assert_eq!(pool.tick(t(2)), 1);
        assert!(matches!(
            pool.get(id).unwrap().state,
            ContainerState::Running
        ));
        assert_eq!(pool.running("f"), 1);
    }

    #[test]
    fn desired_replicas_respects_bounds() {
        let p = ScalingPolicy {
            min_replicas: 2,
            max_replicas: 5,
            target_per_replica: 100,
        };
        assert_eq!(p.desired_replicas(0), 2);
        assert_eq!(p.desired_replicas(250), 3);
        assert_eq!(p.desired_replicas(10_000), 5);
    }

    #[test]
    fn reconcile_scales_out_and_in() {
        let mut pool = ContainerPool::new(SimDuration::ZERO);
        let policy = ScalingPolicy {
            min_replicas: 1,
            max_replicas: 10,
            target_per_replica: 60,
        };
        let up = pool.reconcile("f", 325, policy, t(0));
        assert_eq!(up, 6); // ceil(325/60)
        pool.tick(t(0));
        let down = pool.reconcile("f", 30, policy, t(60));
        assert_eq!(down, -5);
        assert_eq!(pool.replicas("f"), 1);
    }

    #[test]
    fn functions_scale_independently() {
        let mut pool = ContainerPool::new(SimDuration::ZERO);
        pool.launch("a", t(0));
        pool.launch("b", t(0));
        pool.launch("b", t(0));
        assert_eq!(pool.replicas("a"), 1);
        assert_eq!(pool.replicas("b"), 2);
        pool.tick(t(0));
        assert!(pool.terminate_one("b"));
        assert_eq!(pool.replicas("b"), 1);
        assert_eq!(pool.replicas("a"), 1);
    }

    #[test]
    fn terminate_without_running_replicas_is_false() {
        let mut pool = ContainerPool::new(SimDuration::from_secs(100));
        pool.launch("f", t(0)); // still starting
        assert!(!pool.terminate_one("f"));
    }
}
