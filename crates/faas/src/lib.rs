//! `gfaas-faas` — the FaaS framework substrate.
//!
//! The paper builds its three GPU components on top of an existing FaaS
//! platform (OpenFaaS on Kubernetes, with etcd as the metadata store —
//! Figs 1 and 2). This crate provides that platform surface:
//!
//! * [`datastore`] — an etcd-like versioned key-value store: monotone
//!   revisions, prefix ranges, compare-and-swap transactions, watches, and
//!   TTL leases. Single-process and mutex-serialised; consensus is
//!   orthogonal to everything the paper measures (DESIGN.md §2).
//! * [`function`] — function specs (the "Dockerfile" with the GPU-enable
//!   flag), invocations, and results.
//! * [`gateway`] — function CRUD and invocation routing. For GPU-enabled
//!   functions it performs the paper's interface replacement: the
//!   function's model-load/predict calls are redirected to a
//!   [`gateway::Dispatcher`] (the GPU scheduler) instead of executing in
//!   the container.
//! * [`watchdog`] — runs the function body in its container and records
//!   execution metrics to the datastore.
//! * [`container`] — container lifecycle and per-function scaling.

#![warn(missing_docs)]

pub mod container;
pub mod datastore;
pub mod function;
pub mod gateway;
pub mod watchdog;

pub use datastore::{Datastore, Revision, WatchEvent};
pub use function::{FunctionSpec, Invocation, InvocationResult, Runtime};
pub use gateway::{Dispatcher, Gateway, GatewayError};
