//! Compare-and-swap transactions (etcd's `Txn`).

use bytes::Bytes;

use super::kv::Revision;

/// A guard evaluated against the current store state.
#[derive(Debug, Clone, PartialEq)]
pub enum Compare {
    /// True iff the key exists.
    Exists(String),
    /// True iff the key is absent.
    NotExists(String),
    /// True iff the key exists with exactly this value.
    ValueEquals(String, Bytes),
    /// True iff the key's last-modification revision equals this.
    ModRevisionEquals(String, Revision),
}

/// A mutation applied when the guards pass (or the `else` branch).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Write a key.
    Put(String, Bytes),
    /// Remove a key.
    Delete(String),
}

/// Outcome of a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnResult {
    /// Whether all compares held (the `then` branch ran).
    pub succeeded: bool,
    /// The revision after the transaction (unchanged if no ops ran).
    pub revision: Revision,
}
