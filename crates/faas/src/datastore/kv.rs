//! The store itself: revisions, ranges, transactions, watches, leases.

use std::collections::BTreeMap;

use bytes::Bytes;
use crossbeam::channel::unbounded;
use gfaas_sim::time::{SimDuration, SimTime};
use parking_lot::Mutex;

use super::lease::{Lease, LeaseId};
use super::txn::{Compare, Op, TxnResult};
use super::watch::{WatchEvent, WatchEventKind, WatchSink, Watcher};

/// A monotone store revision; every mutation bumps it by one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Revision(pub u64);

/// A stored key with its metadata (etcd's `KeyValue`).
#[derive(Debug, Clone, PartialEq)]
pub struct KeyValue {
    /// The key.
    pub key: String,
    /// The value.
    pub value: Bytes,
    /// Revision at which the key was created.
    pub create_revision: Revision,
    /// Revision of the last modification.
    pub mod_revision: Revision,
    /// Number of modifications since creation (1 = freshly created).
    pub version: u64,
    /// Attached lease, if any.
    pub lease: Option<LeaseId>,
}

#[derive(Debug, Default)]
struct Inner {
    revision: u64,
    map: BTreeMap<String, KeyValue>,
    watchers: Vec<WatchSink>,
    // Keyed by a `BTreeMap` so `expire_leases` visits due leases in id
    // order: the expiry-delete sequence (and hence revision numbers and
    // watch-event order) must not depend on hash iteration order.
    leases: BTreeMap<LeaseId, Lease>,
    next_lease: u64,
}

impl Inner {
    fn bump(&mut self) -> Revision {
        self.revision += 1;
        Revision(self.revision)
    }

    fn notify(&mut self, event: WatchEvent) {
        self.watchers.retain(|w| w.offer(&event));
    }

    fn put(&mut self, key: &str, value: Bytes, lease: Option<LeaseId>) -> Revision {
        let rev = self.bump();
        let kv = match self.map.get_mut(key) {
            Some(existing) => {
                existing.value = value.clone();
                existing.mod_revision = rev;
                existing.version += 1;
                existing.lease = lease.or(existing.lease);
                existing.clone()
            }
            None => {
                let kv = KeyValue {
                    key: key.to_string(),
                    value: value.clone(),
                    create_revision: rev,
                    mod_revision: rev,
                    version: 1,
                    lease,
                };
                self.map.insert(key.to_string(), kv.clone());
                kv
            }
        };
        self.notify(WatchEvent {
            kind: WatchEventKind::Put,
            key: kv.key,
            value,
            revision: rev,
        });
        rev
    }

    fn delete(&mut self, key: &str) -> Option<Revision> {
        self.map.remove(key)?;
        let rev = self.bump();
        self.notify(WatchEvent {
            kind: WatchEventKind::Delete,
            key: key.to_string(),
            value: Bytes::new(),
            revision: rev,
        });
        Some(rev)
    }

    fn check(&self, cmp: &Compare) -> bool {
        match cmp {
            Compare::Exists(k) => self.map.contains_key(k),
            Compare::NotExists(k) => !self.map.contains_key(k),
            Compare::ValueEquals(k, v) => self.map.get(k).is_some_and(|kv| kv.value == *v),
            Compare::ModRevisionEquals(k, r) => {
                self.map.get(k).is_some_and(|kv| kv.mod_revision == *r)
            }
        }
    }
}

/// The etcd-like store. Cheap to share: clone an `&Datastore` into each
/// component; all methods take `&self`.
#[derive(Debug, Default)]
pub struct Datastore {
    inner: Mutex<Inner>,
}

impl Datastore {
    /// An empty store at revision 0.
    pub fn new() -> Self {
        Datastore::default()
    }

    /// The current revision.
    pub fn revision(&self) -> Revision {
        Revision(self.inner.lock().revision)
    }

    /// Writes a key, returning the new revision.
    pub fn put(&self, key: impl AsRef<str>, value: impl Into<Bytes>) -> Revision {
        self.inner.lock().put(key.as_ref(), value.into(), None)
    }

    /// Writes a key attached to a lease.
    pub fn put_with_lease(
        &self,
        key: impl AsRef<str>,
        value: impl Into<Bytes>,
        lease: LeaseId,
    ) -> Revision {
        self.inner
            .lock()
            .put(key.as_ref(), value.into(), Some(lease))
    }

    /// Reads a key.
    pub fn get(&self, key: impl AsRef<str>) -> Option<KeyValue> {
        self.inner.lock().map.get(key.as_ref()).cloned()
    }

    /// Reads all keys with the given prefix, in key order.
    pub fn range(&self, prefix: impl AsRef<str>) -> Vec<KeyValue> {
        let prefix = prefix.as_ref();
        let inner = self.inner.lock();
        inner
            .map
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v.clone())
            .collect()
    }

    /// Deletes a key; returns the revision if it existed.
    pub fn delete(&self, key: impl AsRef<str>) -> Option<Revision> {
        self.inner.lock().delete(key.as_ref())
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True iff the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Atomically: if all `compares` hold, apply `then_ops`, else
    /// `else_ops` (etcd's transaction).
    pub fn txn(&self, compares: &[Compare], then_ops: &[Op], else_ops: &[Op]) -> TxnResult {
        let mut inner = self.inner.lock();
        let succeeded = compares.iter().all(|c| inner.check(c));
        let ops = if succeeded { then_ops } else { else_ops };
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    inner.put(k, v.clone(), None);
                }
                Op::Delete(k) => {
                    inner.delete(k);
                }
            }
        }
        TxnResult {
            succeeded,
            revision: Revision(inner.revision),
        }
    }

    /// Subscribes to changes under a prefix. Events from mutations after
    /// this call are delivered in revision order.
    pub fn watch(&self, prefix: impl Into<String>) -> Watcher {
        let prefix = prefix.into();
        let (tx, rx) = unbounded();
        self.inner.lock().watchers.push(WatchSink {
            prefix: prefix.clone(),
            tx,
        });
        Watcher { prefix, rx }
    }

    /// Grants a lease with the given TTL starting at `now`.
    pub fn lease_grant(&self, now: SimTime, ttl: SimDuration) -> LeaseId {
        let mut inner = self.inner.lock();
        let id = LeaseId(inner.next_lease);
        inner.next_lease += 1;
        inner.leases.insert(id, Lease::new(now, ttl));
        id
    }

    /// Refreshes a lease; returns false if it no longer exists.
    pub fn lease_keepalive(&self, id: LeaseId, now: SimTime) -> bool {
        let mut inner = self.inner.lock();
        match inner.leases.get_mut(&id) {
            Some(l) => {
                l.keepalive(now);
                true
            }
            None => false,
        }
    }

    /// Expires due leases at `now`, deleting their keys (with delete events).
    /// Returns the deleted keys.
    pub fn expire_leases(&self, now: SimTime) -> Vec<String> {
        let mut inner = self.inner.lock();
        let dead: Vec<LeaseId> = inner
            .leases
            .iter()
            .filter(|(_, l)| l.expired(now))
            .map(|(&id, _)| id)
            .collect();
        let mut deleted = Vec::new();
        for id in dead {
            inner.leases.remove(&id);
            let keys: Vec<String> = inner
                .map
                .iter()
                .filter(|(_, kv)| kv.lease == Some(id))
                .map(|(k, _)| k.clone())
                .collect();
            for k in keys {
                inner.delete(&k);
                deleted.push(k);
            }
        }
        deleted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn revisions_strictly_increase() {
        let ds = Datastore::new();
        let r1 = ds.put("a", b("1"));
        let r2 = ds.put("b", b("2"));
        let r3 = ds.put("a", b("3"));
        let r4 = ds.delete("b").unwrap();
        assert!(r1 < r2 && r2 < r3 && r3 < r4);
        assert_eq!(ds.revision(), r4);
    }

    #[test]
    fn key_metadata_tracks_versions() {
        let ds = Datastore::new();
        let r1 = ds.put("k", b("v1"));
        let kv = ds.get("k").unwrap();
        assert_eq!(kv.create_revision, r1);
        assert_eq!(kv.mod_revision, r1);
        assert_eq!(kv.version, 1);
        let r2 = ds.put("k", b("v2"));
        let kv = ds.get("k").unwrap();
        assert_eq!(kv.create_revision, r1);
        assert_eq!(kv.mod_revision, r2);
        assert_eq!(kv.version, 2);
        assert_eq!(kv.value, b("v2"));
    }

    #[test]
    fn delete_then_recreate_resets_metadata() {
        let ds = Datastore::new();
        ds.put("k", b("v1"));
        ds.delete("k");
        assert!(ds.get("k").is_none());
        let r = ds.put("k", b("v2"));
        let kv = ds.get("k").unwrap();
        assert_eq!(kv.create_revision, r);
        assert_eq!(kv.version, 1);
    }

    #[test]
    fn range_respects_prefix_and_order() {
        let ds = Datastore::new();
        ds.put("gpu/2/status", b("idle"));
        ds.put("gpu/1/status", b("busy"));
        ds.put("fn/alpha", b("x"));
        ds.put("gpu/10/status", b("idle"));
        let got: Vec<String> = ds.range("gpu/").into_iter().map(|kv| kv.key).collect();
        assert_eq!(got, vec!["gpu/1/status", "gpu/10/status", "gpu/2/status"]);
        assert!(ds.range("nope/").is_empty());
    }

    #[test]
    fn txn_cas_succeeds_and_fails_atomically() {
        let ds = Datastore::new();
        ds.put("lock", b("free"));
        let r = ds.txn(
            &[Compare::ValueEquals("lock".into(), b("free"))],
            &[
                Op::Put("lock".into(), b("held")),
                Op::Put("owner".into(), b("me")),
            ],
            &[],
        );
        assert!(r.succeeded);
        assert_eq!(ds.get("lock").unwrap().value, b("held"));
        assert_eq!(ds.get("owner").unwrap().value, b("me"));
        // Second CAS on the stale expectation takes the else branch.
        let r2 = ds.txn(
            &[Compare::ValueEquals("lock".into(), b("free"))],
            &[Op::Put("owner".into(), b("thief"))],
            &[Op::Put("contention".into(), b("1"))],
        );
        assert!(!r2.succeeded);
        assert_eq!(ds.get("owner").unwrap().value, b("me"));
        assert!(ds.get("contention").is_some());
    }

    #[test]
    fn txn_mod_revision_guard() {
        let ds = Datastore::new();
        let r1 = ds.put("k", b("a"));
        ds.put("k", b("b"));
        let r = ds.txn(
            &[Compare::ModRevisionEquals("k".into(), r1)],
            &[Op::Put("k".into(), b("stale-write"))],
            &[],
        );
        assert!(!r.succeeded);
        assert_eq!(ds.get("k").unwrap().value, b("b"));
    }

    #[test]
    fn txn_exists_guards() {
        let ds = Datastore::new();
        let r = ds.txn(
            &[Compare::NotExists("new".into())],
            &[Op::Put("new".into(), b("1"))],
            &[],
        );
        assert!(r.succeeded);
        let r2 = ds.txn(
            &[
                Compare::Exists("new".into()),
                Compare::NotExists("new".into()),
            ],
            &[Op::Delete("new".into())],
            &[],
        );
        assert!(!r2.succeeded, "contradictory compares cannot all hold");
        assert!(ds.get("new").is_some());
    }

    #[test]
    fn watch_delivers_matching_events_in_order() {
        let ds = Datastore::new();
        let w = ds.watch("gpu/");
        ds.put("gpu/0", b("idle"));
        ds.put("fn/x", b("ignored"));
        ds.put("gpu/0", b("busy"));
        ds.delete("gpu/0");
        let events = w.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, WatchEventKind::Put);
        assert_eq!(events[0].value, b("idle"));
        assert_eq!(events[1].value, b("busy"));
        assert_eq!(events[2].kind, WatchEventKind::Delete);
        assert!(events[0].revision < events[1].revision);
        assert!(events[1].revision < events[2].revision);
    }

    #[test]
    fn watch_does_not_see_prior_state() {
        let ds = Datastore::new();
        ds.put("gpu/0", b("pre-existing"));
        let w = ds.watch("gpu/");
        assert!(w.try_next().is_none());
    }

    #[test]
    fn dropped_watcher_is_pruned() {
        let ds = Datastore::new();
        let w = ds.watch("a/");
        drop(w);
        ds.put("a/k", b("v")); // must not panic or leak
        ds.put("a/k", b("v2"));
        assert_eq!(ds.get("a/k").unwrap().value, b("v2"));
    }

    #[test]
    fn lease_expiry_deletes_keys_with_events() {
        let ds = Datastore::new();
        let w = ds.watch("status/");
        let t0 = SimTime::ZERO;
        let lease = ds.lease_grant(t0, SimDuration::from_secs(10));
        ds.put_with_lease("status/gpu0", b("idle"), lease);
        ds.put("status/gpu1", b("idle")); // no lease
        assert!(ds.expire_leases(SimTime::from_secs(5)).is_empty());
        let deleted = ds.expire_leases(SimTime::from_secs(10));
        assert_eq!(deleted, vec!["status/gpu0".to_string()]);
        assert!(ds.get("status/gpu0").is_none());
        assert!(ds.get("status/gpu1").is_some());
        let events = w.drain();
        assert_eq!(events.last().unwrap().kind, WatchEventKind::Delete);
    }

    #[test]
    fn keepalive_extends_lease() {
        let ds = Datastore::new();
        let lease = ds.lease_grant(SimTime::ZERO, SimDuration::from_secs(10));
        ds.put_with_lease("k", b("v"), lease);
        assert!(ds.lease_keepalive(lease, SimTime::from_secs(8)));
        assert!(ds.expire_leases(SimTime::from_secs(12)).is_empty());
        let dead = ds.expire_leases(SimTime::from_secs(18));
        assert_eq!(dead.len(), 1);
        assert!(!ds.lease_keepalive(lease, SimTime::from_secs(19)));
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let ds = Arc::new(Datastore::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let ds = Arc::clone(&ds);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    ds.put(format!("t{t}/k{i}"), Bytes::from(vec![t as u8]));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ds.len(), 800);
        assert_eq!(ds.revision(), Revision(800));
    }
}
