//! TTL leases on the virtual clock.
//!
//! A lease grants a time-to-live; keys attached to it vanish when the lease
//! expires (unless kept alive). The GPU Managers use leases for their
//! status keys so a crashed manager's stale "idle" claim disappears instead
//! of attracting dispatches forever.

use gfaas_sim::time::{SimDuration, SimTime};

/// Identifies one lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LeaseId(pub u64);

/// A granted lease.
#[derive(Debug, Clone)]
pub(super) struct Lease {
    pub(super) ttl: SimDuration,
    pub(super) expires_at: SimTime,
}

impl Lease {
    pub(super) fn new(now: SimTime, ttl: SimDuration) -> Self {
        Lease {
            ttl,
            expires_at: now + ttl,
        }
    }

    /// Pushes the expiry out by one TTL from `now`.
    pub(super) fn keepalive(&mut self, now: SimTime) {
        self.expires_at = now + self.ttl;
    }

    pub(super) fn expired(&self, now: SimTime) -> bool {
        now >= self.expires_at
    }
}
