//! An etcd-like versioned key-value store.
//!
//! The paper stores GPU status, per-GPU LRU lists, and request latencies in
//! etcd (§III-E). This module reproduces the etcd semantics those uses rely
//! on, in-process:
//!
//! * a **monotone revision counter** bumped by every mutation, with per-key
//!   create/mod revisions and versions (`kv`);
//! * **prefix ranges** over a sorted keyspace;
//! * **compare-and-swap transactions** (`txn`);
//! * **watches** delivering put/delete events over channels (`watch`);
//! * **TTL leases** that expire keys on the virtual clock (`lease`).
//!
//! The store is mutex-serialised, which trivially provides the
//! linearizability etcd's raft provides; distributed replication is not
//! modelled (DESIGN.md §2 records the substitution).

mod kv;
mod lease;
mod txn;
mod watch;

pub use kv::{Datastore, KeyValue, Revision};
pub use lease::LeaseId;
pub use txn::{Compare, Op, TxnResult};
pub use watch::{WatchEvent, WatchEventKind, Watcher};
