//! Watch channels: prefix-scoped change feeds.

use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender, TryRecvError};

use super::kv::Revision;

/// What happened to a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchEventKind {
    /// The key was created or its value replaced.
    Put,
    /// The key was removed (explicitly or by lease expiry).
    Delete,
}

/// One change notification.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchEvent {
    /// Put or delete.
    pub kind: WatchEventKind,
    /// The affected key.
    pub key: String,
    /// The value after a put; empty for deletes.
    pub value: Bytes,
    /// The store revision at which the change happened.
    pub revision: Revision,
}

/// Receiving half of a watch; events arrive in revision order.
#[derive(Debug)]
pub struct Watcher {
    pub(super) prefix: String,
    pub(super) rx: Receiver<WatchEvent>,
}

impl Watcher {
    /// The prefix this watcher subscribed to.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Pops the next pending event without blocking.
    pub fn try_next(&self) -> Option<WatchEvent> {
        match self.rx.try_recv() {
            Ok(e) => Some(e),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Drains all pending events.
    pub fn drain(&self) -> Vec<WatchEvent> {
        std::iter::from_fn(|| self.try_next()).collect()
    }
}

/// Sending half, held by the store.
#[derive(Debug)]
pub(super) struct WatchSink {
    pub(super) prefix: String,
    pub(super) tx: Sender<WatchEvent>,
}

impl WatchSink {
    /// Delivers the event if the key matches; reports whether the receiver
    /// is still alive so dead watchers can be pruned.
    pub(super) fn offer(&self, event: &WatchEvent) -> bool {
        if !event.key.starts_with(&self.prefix) {
            return true;
        }
        self.tx.send(event.clone()).is_ok()
    }
}
