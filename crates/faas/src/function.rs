//! Function specs, invocations, and results.

use bytes::Bytes;
use gfaas_sim::time::{SimDuration, SimTime};

/// How a function's body executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Runtime {
    /// Plain CPU function: the Watchdog runs it inside its container.
    Cpu,
    /// GPU-enabled inference function: the Gateway has replaced the
    /// framework's `load`/`predict` interface with redirection to the GPU
    /// Manager (the paper's transparent Dockerfile rewrite, §III-A).
    GpuRedirect,
}

/// A registered function (what the user deploys through the Gateway).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSpec {
    /// Unique function name (the REST route).
    pub name: String,
    /// Container image reference (informational in the simulation).
    pub image: String,
    /// The user's Dockerfile GPU-enable flag.
    pub gpu_enabled: bool,
    /// For inference functions: the model this function serves.
    pub model_name: Option<String>,
    /// Default inference batch size.
    pub batch_size: usize,
}

impl FunctionSpec {
    /// A CPU function.
    pub fn cpu(name: impl Into<String>, image: impl Into<String>) -> Self {
        FunctionSpec {
            name: name.into(),
            image: image.into(),
            gpu_enabled: false,
            model_name: None,
            batch_size: 1,
        }
    }

    /// A GPU inference function serving `model_name`.
    pub fn gpu_inference(
        name: impl Into<String>,
        model_name: impl Into<String>,
        batch_size: usize,
    ) -> Self {
        FunctionSpec {
            name: name.into(),
            image: "gfaas/inference:latest".to_string(),
            gpu_enabled: true,
            model_name: Some(model_name.into()),
            batch_size,
        }
    }

    /// The runtime the Gateway assigns at registration.
    pub fn runtime(&self) -> Runtime {
        if self.gpu_enabled {
            Runtime::GpuRedirect
        } else {
            Runtime::Cpu
        }
    }
}

/// One function invocation as it flows Gateway → Scheduler/Watchdog.
#[derive(Debug, Clone)]
pub struct Invocation {
    /// Monotone invocation id assigned by the Gateway.
    pub id: u64,
    /// The invoked function's name.
    pub function: String,
    /// Request payload (input images, serialized).
    pub payload: Bytes,
    /// Arrival time at the Gateway.
    pub arrived_at: SimTime,
    /// Batch size for inference functions.
    pub batch_size: usize,
}

/// The outcome returned to the end user.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationResult {
    /// The invocation this answers.
    pub id: u64,
    /// Response payload (e.g. predicted labels, serialized).
    pub output: Bytes,
    /// End-to-end latency (queueing + load-if-miss + inference).
    pub latency: SimDuration,
    /// Whether the model was already cached on the serving GPU.
    pub cache_hit: Option<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_flag_selects_runtime() {
        let f = FunctionSpec::gpu_inference("classify", "resnet50", 32);
        assert_eq!(f.runtime(), Runtime::GpuRedirect);
        assert_eq!(f.model_name.as_deref(), Some("resnet50"));
        assert_eq!(f.batch_size, 32);
        let g = FunctionSpec::cpu("hello", "alpine");
        assert_eq!(g.runtime(), Runtime::Cpu);
        assert!(g.model_name.is_none());
    }
}
