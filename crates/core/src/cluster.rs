//! The cluster driver: Scheduler + Cache Manager + GPU Managers wired to
//! the discrete-event engine.
//!
//! This is the executable form of the paper's Fig 2/Fig 3 architecture.
//! The driver owns the global queue, the per-GPU units (local queue +
//! device), and the cache manager, and advances everything on virtual
//! time. Two kinds of occurrence drive it:
//!
//! * an *arrival* — a trace request enters the global queue; the scheduler
//!   runs if any GPU is idle. Arrivals stream straight from the
//!   time-sorted trace through a cursor, so the event heap only ever
//!   holds runtime events and stays fleet-sized even on million-request
//!   traces.
//! * `GpuDone` — a GPU finished its in-flight phase. A completed *load*
//!   rolls straight into the inference that triggered it; a completed
//!   *inference* records metrics, frees the GPU, and re-runs the scheduler.
//!
//! Scheduling passes implement §IV faithfully:
//!
//! * a pass runs "when at least one request is waiting in the global queue
//!   and at least one GPU is idle" — and additionally whenever an idle
//!   GPU has local-queue work, which Algorithm 1 always serves first;
//! * the active [`SchedulerPolicy`] orders the idle GPUs (frequency order
//!   for the locality-aware policies, longest-idle for LB) and answers
//!   one [`Dispatch`] per idle GPU through a borrowed [`SchedCtx`] view
//!   of the queue/residency/finish-time state;
//! * Algorithm 1's visit counters and Algorithm 2's hit-elsewhere /
//!   wait-on-busy arms live in the policy impls
//!   (see [`crate::scheduler`]).

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::Arc;

use gfaas_faas::Datastore;
use gfaas_gpu::{GpuDevice, GpuId, ModelId, Tier};
use gfaas_models::ModelRegistry;
use gfaas_obs::ledger::{Ledger, LedgerHandle, LedgerRecorder};
use gfaas_obs::perfetto::{PerfettoHandle, PerfettoRecorder};
use gfaas_obs::sampler::{SamplerRecorder, SeriesHandle, TimeSeries};
use gfaas_obs::{Arm, GpuSample, MultiRecorder, ObsEvent, Recorder, SampleView, SelfProfile};
use gfaas_sim::event::EventQueue;
use gfaas_sim::rng::DetRng;
use gfaas_sim::time::{SimDuration, SimTime};
use gfaas_snap::{
    fnv1a, read_header, write_header, Dec, Enc, Fnv1a, Journal, JournalStats, SnapError, SnapId,
};
use gfaas_store::{ModelStore, StoreStats};
use gfaas_trace::Trace;

use crate::autoscale::{Autoscaler, ScaleDecision};
use crate::batching::{BatchPolicy, BatchView};
use crate::cache::{CacheManager, Evictor};
use crate::config::{BusyWaitPolicy, ClusterConfig, ConfigError};
use crate::gpu_manager::{lru_key, status_key, GpuUnit, HoldSlot, InFlight, Phase, UnitState};
use crate::metrics::{MetricsCollector, MetricsImage, RunMetrics};
use crate::policy::{PolicyRegistry, PolicySpec};
use crate::request::Request;
use crate::scheduler::{Dispatch, LalbScheduler, SchedulerPolicy, DEFAULT_O3_LIMIT};
#[cfg(feature = "simcheck")]
use crate::simcheck::SimChecker;

/// Discrete events driving the cluster.
///
/// GPU events carry the dispatch sequence token of the work they belong
/// to; a crash invalidates the token so the stale completion event is
/// ignored when it fires. `Clone` because the snapshot journal pins the
/// pending event queue alongside the rest of the mutable state.
#[derive(Debug, Clone)]
pub(crate) enum Event {
    /// The GPU finished its current phase (load or inference).
    GpuDone(GpuId, u64),
    /// The GPU process serving the in-flight request crashed (failure
    /// injection, `ClusterConfig::crash_rate`).
    GpuCrash(GpuId, u64),
    /// The autoscaler's cadence fired: observe the cluster, apply one
    /// scale decision, and re-arm (while requests remain).
    ScaleTick,
    /// A held batch's timer expired (see [`crate::batching`]); the GPU
    /// launches whatever the hold gathered. Carries the hold's sequence
    /// token so a stale timer (the batch filled and launched early) is
    /// ignored.
    BatchHold(GpuId, u64),
    /// The telemetry sampler's cadence fired: snapshot the cluster for
    /// the attached [`Recorder`] and re-arm (while requests remain).
    /// Only ever scheduled when a recorder with a cadence is attached,
    /// so unrecorded runs see an unchanged event stream.
    ObsTick,
}

/// The GPU-enabled FaaS cluster.
pub struct Cluster {
    config: ClusterConfig,
    registry: ModelRegistry,
    units: Vec<GpuUnit>,
    cache: CacheManager,
    /// The active scheduling policy. Taken out during a pass so the
    /// policy can borrow the cluster through [`SchedCtx`].
    sched: Option<Box<dyn SchedulerPolicy>>,
    /// The active request-batching policy ([`crate::batching`]); the
    /// builtin `none` keeps the paper's per-request dispatch.
    batcher: Box<dyn BatchPolicy>,
    /// The model-store backend behind every cache-miss load
    /// ([`gfaas_store`]); the builtin `flat` keeps the paper's uniform
    /// load times.
    store: Box<dyn ModelStore>,
    /// Cached `store.is_flat()` so the hot load path (estimators run per
    /// scheduling decision) gates on one predictable branch and the flat
    /// default stays byte-identical to a build without the store hooks.
    store_flat: bool,
    global_queue: VecDeque<Request>,
    metrics: MetricsCollector,
    now: SimTime,
    last_completion: SimTime,
    hot_model: Option<ModelId>,
    local_moves: u64,
    crashes: u64,
    dispatch_seq: u64,
    rng: gfaas_sim::rng::DetRng,
    datastore: Option<Arc<Datastore>>,
    /// Elastic capacity policy; `None` is the paper's fixed testbed.
    autoscaler: Option<Box<dyn Autoscaler>>,
    /// GPUs brought online / drained offline over the run.
    scale_ups: u64,
    scale_downs: u64,
    /// Low/high watermarks of the online (dispatchable) fleet size.
    online_low: usize,
    online_high: usize,
    /// Requests in the running trace; ticks stop once all have completed.
    pending_total: u64,
    /// Recycled invocation vectors: every dispatch carries its requests in
    /// a `Vec` (through [`InFlight`]/[`HoldSlot`]), and completed
    /// invocations return theirs here instead of freeing, so the steady
    /// state allocates nothing per dispatch. Bounded by the fleet size.
    batch_pool: Vec<Vec<Request>>,
    /// Online units that are idle right now, maintained at every
    /// dispatch, completion, and scale transition. Together with the two
    /// counters below it lets a scheduling pass on a saturated cluster
    /// prove itself a no-op in O(1) instead of scanning the fleet — and
    /// every arrival triggers a pass.
    idle_online: usize,
    /// Units with a forming batch parked in their hold slot.
    holding_units: usize,
    /// Units in the [`UnitState::Draining`] state.
    draining_units: usize,
    /// Integrated GPU busy time (uploads + inference, including crashed
    /// work) — `RunMetrics::gpu_busy_seconds`.
    busy_secs: f64,
    /// Per-unit incremental summary of the local queue (parallel to
    /// `units`), maintained at every push/pop/remove so finish-time
    /// estimates need not walk the queue. See [`LocalAgg`].
    local_aggs: Vec<LocalAgg>,
    /// Recycled buffer for the per-pass idle-GPU candidate list.
    idle_scratch: Vec<GpuId>,
    /// Attached event recorder (see [`gfaas_obs`]). `None` — the default —
    /// is verifiably zero-cost: hot paths gate on `is_some()` before even
    /// constructing an [`ObsEvent`], and no [`Event::ObsTick`] is ever
    /// scheduled, so the event stream and metrics are byte-identical to a
    /// build without the hooks.
    recorder: Option<Box<dyn Recorder>>,
    /// Runtime invariant sanitizer (see [`crate::simcheck`]): observes
    /// arrivals, popped events, and queue-depth updates, asserting
    /// conservation invariants as the run progresses. Absent — not just
    /// inert — without the `simcheck` feature, and it never mutates sim
    /// state, so metrics are byte-identical either way (CI diffs the two
    /// builds on a smoke run).
    #[cfg(feature = "simcheck")]
    simcheck: SimChecker,
    /// Handle to the lifecycle ledger, when `config.record.ledger` is set.
    obs_ledger: Option<LedgerHandle>,
    /// Handle to the Perfetto trace builder, when `config.record.perfetto`
    /// is set.
    obs_perfetto: Option<PerfettoHandle>,
    /// Handle to the time-series sampler, when `config.record.sample_secs`
    /// is set.
    obs_series: Option<SeriesHandle>,
    /// Sampling cadence requested by the recorder (min over children).
    obs_cadence: Option<SimDuration>,
    /// SLO threshold for `ObsEvent::SloMiss` emission.
    obs_slo: Option<SimDuration>,
    /// Self-profiler counters for the event loop (always-on: plain
    /// integer bumps, no allocation). See [`SelfProfile`].
    profile: SelfProfile,
    /// Estimator-call count lives in a `Cell` because
    /// [`Cluster::estimated_wait_fast`] is called through `&self`.
    estimator_calls: Cell<u64>,
    /// Recycled per-GPU sample buffer for [`ObsEvent::Sample`].
    obs_scratch: Vec<GpuSample>,
    /// The pending runtime-event heap. Owned by the cluster (not the
    /// run loop) so a run can pause at a virtual-time bound
    /// ([`Cluster::run_until`]), be checkpointed, and resume; the drive
    /// loop `mem::take`s it while running.
    events: EventQueue<Event>,
    /// Cursor into the trace: the next arrival to admit. Part of the
    /// journaled/checkpointed state — rolling back re-delivers arrivals.
    next_arrival: usize,
    /// Whether [`Cluster::begin_run`] already performed its one-time
    /// setup (tick scheduling, RunStart emission, counters).
    run_started: bool,
    /// Undo-log of pinned state images (see [`gfaas_snap`]). Empty —
    /// and therefore zero-cost — unless [`Cluster::snapshot`] or the
    /// lookahead scheduler's what-if forks are in use.
    journal: Journal<ClusterImage>,
}

/// Incremental summary of one GPU's local queue, kept in lockstep with
/// the queue by [`Cluster::agg_push`] / [`Cluster::agg_remove`] /
/// [`Cluster::agg_rebuild`].
///
/// [`GpuUnit::estimated_wait`] charges queued work as order-independent
/// sums over integer-tick durations — a per-request inference sum, or
/// per-model coalesced group sums, plus one upload per distinct
/// non-resident model — so the whole estimate folds into this constant
/// -size state and stays *byte-identical* to the naive O(queue) walk
/// (addition of ticks is commutative and associative; residency is still
/// read at query time). [`Cluster::estimated_wait_fast`] consumes it and
/// carries a debug-build assertion against the naive recompute.
#[derive(Debug, Default, Clone)]
struct LocalAgg {
    /// Σ per-request inference time (on this unit's compute profile)
    /// over the local queue — the per-request-dispatch charge.
    infer_sum: SimDuration,
    /// Distinct queued models: `(model, Σ batch items, request count)`,
    /// in first-push order. Entries leave when their count hits zero.
    groups: Vec<(ModelId, usize, usize)>,
}

impl Cluster {
    /// Builds a cluster from a config and a model registry, resolving the
    /// config's policy specs through the builtin [`PolicyRegistry`].
    ///
    /// # Panics
    /// On an invalid config (see [`ClusterConfig::validate`]) or an
    /// unresolvable policy spec; use [`Cluster::try_new`] for a `Result`.
    pub fn new(config: ClusterConfig, registry: ModelRegistry) -> Self {
        Cluster::try_new(config, registry).unwrap_or_else(|e| panic!("invalid cluster config: {e}"))
    }

    /// Builds a cluster from a config and a model registry, resolving the
    /// config's policy specs through the builtin [`PolicyRegistry`].
    pub fn try_new(config: ClusterConfig, registry: ModelRegistry) -> Result<Self, ConfigError> {
        let policies = PolicyRegistry::builtin();
        let sched = policies.scheduler(&config.policy)?;
        let evictor = policies.evictor(&config.replacement, config.seed)?;
        Cluster::with_policies(config, registry, sched, evictor)
    }

    /// Replaces the batching policy with a custom [`BatchPolicy`] impl —
    /// the open path mirroring [`Cluster::with_policies`] for policies
    /// living outside the builtin registry. The config's `batching` spec
    /// is ignored in favour of the given object.
    pub fn set_batcher(&mut self, batcher: Box<dyn BatchPolicy>) {
        self.batcher = batcher;
    }

    /// The active batching policy's display name.
    pub fn batcher_name(&self) -> String {
        self.batcher.name()
    }

    /// The active model-store backend's display name.
    pub fn store_name(&self) -> String {
        self.store.name()
    }

    /// The store backend's counters (host hits, origin loads, prefetches,
    /// demotions, …). All-zero under the flat default.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Builds a cluster around explicitly constructed policy objects —
    /// the open path for policies living outside the builtin registry.
    /// The config's `policy`/`replacement` specs are ignored in favour of
    /// the given objects.
    pub fn with_policies(
        config: ClusterConfig,
        registry: ModelRegistry,
        sched: Box<dyn SchedulerPolicy>,
        evictor: Box<dyn Evictor>,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        // Batching always resolves through the builtin registry (use
        // `set_batcher` for custom policies). The store spec resolves the
        // same way — through its canonical display form, so a registry
        // shadowing `tiered` would be honoured.
        let batcher = PolicyRegistry::builtin().batcher(&config.batching)?;
        let store_spec = PolicySpec::parse(&config.store.to_string())?;
        let store = PolicyRegistry::builtin().store(&store_spec)?;
        let store_flat = store.is_flat();
        // An elastic cluster allocates every device it may ever bring
        // online; `num_gpus` (clamped into the autoscale band) of them
        // start online, the rest wait offline for a scale-up.
        let total_units = config
            .autoscale
            .as_ref()
            .map_or(config.num_gpus, |a| a.max_gpus);
        let initial_online = config.autoscale.as_ref().map_or(config.num_gpus, |a| {
            config.num_gpus.clamp(a.min_gpus, a.max_gpus)
        });
        let autoscaler = match &config.autoscale {
            Some(spec) => Some(spec.build()?),
            None => None,
        };
        let units: Vec<GpuUnit> = (0..total_units)
            .map(|i| {
                let spec = config
                    .hetero_specs
                    .as_ref()
                    .map(|s| s[i].clone())
                    .unwrap_or_else(|| config.gpu_spec.clone());
                let mut unit = GpuUnit::new(GpuDevice::new(GpuId(i as u16), spec));
                if i >= initial_online {
                    unit.state = UnitState::Offline;
                }
                unit
            })
            .collect();
        let cache = CacheManager::with_evictor(units.iter().map(|u| u.id()), evictor);
        let rng = gfaas_sim::rng::DetRng::new(config.seed ^ 0xc4a5);
        // Build the recorder stack from the config's record spec. Off by
        // default: `recorder` stays `None` and every hook is a dead branch.
        let obs_slo = config.record.slo_secs.map(SimDuration::from_secs_f64);
        let mut multi = MultiRecorder::default();
        let mut obs_ledger = None;
        let mut obs_perfetto = None;
        let mut obs_series = None;
        if config.record.ledger {
            let (rec, handle) = LedgerRecorder::new(obs_slo);
            multi.push(Box::new(rec));
            obs_ledger = Some(handle);
        }
        if config.record.perfetto {
            let (rec, handle) = PerfettoRecorder::new();
            multi.push(Box::new(rec));
            obs_perfetto = Some(handle);
        }
        if let Some(secs) = config.record.sample_secs {
            let (rec, handle) = SamplerRecorder::new(SimDuration::from_secs_f64(secs));
            multi.push(Box::new(rec));
            obs_series = Some(handle);
        }
        let recorder = multi.into_recorder();
        let obs_cadence = recorder.as_ref().and_then(|r| r.sample_cadence());
        Ok(Cluster {
            config,
            registry,
            units,
            cache,
            sched: Some(sched),
            batcher,
            store,
            store_flat,
            global_queue: VecDeque::new(),
            metrics: MetricsCollector::new(),
            now: SimTime::ZERO,
            last_completion: SimTime::ZERO,
            hot_model: None,
            local_moves: 0,
            crashes: 0,
            dispatch_seq: 0,
            rng,
            datastore: None,
            autoscaler,
            scale_ups: 0,
            scale_downs: 0,
            online_low: initial_online,
            online_high: initial_online,
            pending_total: 0,
            batch_pool: Vec::new(),
            idle_online: initial_online,
            holding_units: 0,
            draining_units: 0,
            busy_secs: 0.0,
            local_aggs: vec![LocalAgg::default(); total_units],
            idle_scratch: Vec::new(),
            recorder,
            #[cfg(feature = "simcheck")]
            simcheck: SimChecker::new(),
            obs_ledger,
            obs_perfetto,
            obs_series,
            obs_cadence,
            obs_slo,
            profile: SelfProfile::default(),
            estimator_calls: Cell::new(0),
            obs_scratch: Vec::new(),
            events: EventQueue::new(),
            next_arrival: 0,
            run_started: false,
            journal: Journal::new(),
        })
    }

    /// Attaches an externally constructed [`Recorder`], replacing any
    /// recorder built from `config.record`. The open path for custom
    /// sinks; the built-in handle accessors ([`Cluster::ledger`] etc.)
    /// return `None` afterwards.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.obs_cadence = recorder.sample_cadence();
        self.recorder = Some(recorder);
        self.obs_ledger = None;
        self.obs_perfetto = None;
        self.obs_series = None;
    }

    /// Snapshot of the lifecycle ledger, if `config.record.ledger` was
    /// set. Meaningful after [`Cluster::run`] returns.
    pub fn ledger(&self) -> Option<Ledger> {
        self.obs_ledger.as_ref().map(|h| h.snapshot())
    }

    /// The recorded Perfetto/Chrome trace-event JSON, if
    /// `config.record.perfetto` was set. Meaningful after
    /// [`Cluster::run`] returns; loads in `ui.perfetto.dev`.
    pub fn perfetto_json(&self) -> Option<String> {
        self.obs_perfetto.as_ref().map(|h| h.to_json())
    }

    /// Snapshot of the sampled time series, if `config.record.sample_secs`
    /// was set. Meaningful after [`Cluster::run`] returns.
    pub fn time_series(&self) -> Option<TimeSeries> {
        self.obs_series.as_ref().map(|h| h.snapshot())
    }

    /// The event-loop self-profile gathered over [`Cluster::run`] —
    /// schedule passes, estimator calls, heap peak, and friends. Always
    /// collected (plain counter bumps); independent of `config.record`.
    pub fn self_profile(&self) -> SelfProfile {
        let mut p = self.profile.clone();
        p.estimator_calls = self.estimator_calls.get();
        p
    }

    /// Forwards `ev` to the attached recorder, if any. Hot paths
    /// additionally gate on `self.recorder.is_some()` before constructing
    /// the event so the disabled path costs one predictable branch.
    #[inline]
    fn emit(&mut self, ev: ObsEvent<'_>) {
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record(self.now, &ev);
        }
    }

    /// Attaches a datastore; the cluster then mirrors GPU status, LRU
    /// lists, and completion latencies into it like the paper's components
    /// do through etcd. Requires `config.report_to_datastore`.
    pub fn with_datastore(mut self, ds: Arc<Datastore>) -> Self {
        self.datastore = Some(ds);
        self
    }

    /// Overrides which model Fig 6's duplicates metric tracks (defaults to
    /// the trace's most-invoked model).
    pub fn set_hot_model(&mut self, model: ModelId) {
        self.hot_model = Some(model);
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The model registry in use.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The active scheduler's display name.
    pub fn scheduler_name(&self) -> String {
        self.sched.as_ref().expect("scheduler in place").name()
    }

    /// The active evictor's registry key.
    pub fn evictor_name(&self) -> &'static str {
        self.cache.evictor_name()
    }

    /// Requests moved to busy GPUs' local queues over the run.
    pub fn local_moves(&self) -> u64 {
        self.local_moves
    }

    /// Total evictions performed.
    pub fn evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Injected GPU-process crashes observed during the run.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Replaces the autoscaler with a custom [`Autoscaler`] impl — the
    /// open path mirroring [`Cluster::with_policies`]. The config's
    /// `autoscale` spec must be set: it still sizes the device pool
    /// (`max_gpus`) and the initial online fleet.
    ///
    /// # Panics
    /// If the config has no `autoscale` spec (there would be no offline
    /// devices to scale into).
    pub fn set_autoscaler(&mut self, autoscaler: Box<dyn Autoscaler>) {
        assert!(
            self.config.autoscale.is_some(),
            "set_autoscaler requires config.autoscale (it sizes the device pool)"
        );
        self.autoscaler = Some(autoscaler);
    }

    /// GPUs currently online (dispatchable); draining and offline GPUs
    /// are not counted.
    pub fn online_gpus(&self) -> usize {
        self.units
            .iter()
            .filter(|u| u.state == UnitState::Online)
            .count()
    }

    /// Low/high watermarks of the online fleet size over the run — the
    /// observable the min/max autoscale bounds are asserted against.
    pub fn online_bounds(&self) -> (usize, usize) {
        (self.online_low, self.online_high)
    }

    /// GPUs brought online by the autoscaler over the run.
    pub fn scale_ups(&self) -> u64 {
        self.scale_ups
    }

    /// GPUs drained offline by the autoscaler over the run.
    pub fn scale_downs(&self) -> u64 {
        self.scale_downs
    }

    /// Per-GPU inference time: the registry profile scaled by this GPU
    /// type's compute factor (§VI heterogeneity).
    fn infer_time_on(&self, gi: usize, model: ModelId, batch: usize) -> SimDuration {
        self.registry
            .infer_time(model, batch)
            .mul_f64(self.units[gi].device.spec().compute_scale)
    }

    /// Per-GPU model load time, scaled likewise — the estimator view of
    /// the load cost, priced through the store backend. Under the flat
    /// default this is exactly the registry profile × the device's PCIe
    /// scale; a tiered store reprices it by where the bytes live now
    /// (host cache, an in-flight fetch, or origin).
    fn load_time_on(&self, gi: usize, model: ModelId) -> SimDuration {
        self.load_cost_scaled(model, self.units[gi].device.spec().load_scale)
    }

    /// The store-priced load cost for `model` given a device's PCIe
    /// scale. Factored out of [`Cluster::load_time_on`] so estimator
    /// closures can price loads without borrowing the whole unit.
    fn load_cost_scaled(&self, model: ModelId, load_scale: f64) -> SimDuration {
        let flat = self.registry.load_time(model).mul_f64(load_scale);
        if self.store_flat {
            flat
        } else {
            self.store
                .load_cost(self.now, model, self.registry.occupancy_bytes(model), flat)
        }
    }

    // ------------------------------------------------------------------
    // Local-queue aggregates (incremental finish-time estimators)
    // ------------------------------------------------------------------

    /// Accounts `r` joining `gi`'s local queue. Call alongside every
    /// `local_queue` push.
    fn agg_push(&mut self, gi: usize, r: &Request) {
        let dur = self.infer_time_on(gi, r.model, r.batch);
        let agg = &mut self.local_aggs[gi];
        agg.infer_sum += dur;
        match agg.groups.iter_mut().find(|g| g.0 == r.model) {
            Some(g) => {
                g.1 += r.batch;
                g.2 += 1;
            }
            None => agg.groups.push((r.model, r.batch, 1)),
        }
    }

    /// Accounts `r` leaving `gi`'s local queue (dispatch, coalescing
    /// collection). The inference charge is recomputed from the same
    /// immutable profile it was added from, so the subtraction is exact.
    fn agg_remove(&mut self, gi: usize, r: &Request) {
        let dur = self.infer_time_on(gi, r.model, r.batch);
        let agg = &mut self.local_aggs[gi];
        agg.infer_sum -= dur;
        let pos = agg
            .groups
            .iter()
            .position(|g| g.0 == r.model)
            .expect("removed request was accounted");
        let g = &mut agg.groups[pos];
        g.1 -= r.batch;
        g.2 -= 1;
        if g.2 == 0 {
            agg.groups.remove(pos);
        }
    }

    /// Recomputes `gi`'s aggregate from its queue — the rare-path reset
    /// after a crash rebuilds the local queue wholesale.
    fn agg_rebuild(&mut self, gi: usize) {
        self.local_aggs[gi] = LocalAgg::default();
        let n = self.units[gi].local_queue.len();
        for i in 0..n {
            let r = self.units[gi].local_queue[i];
            self.agg_push(gi, &r);
        }
    }

    /// [`GpuUnit::estimated_wait`] evaluated from the incremental
    /// aggregate in O(distinct queued models) instead of O(queue).
    /// Byte-identical by construction (see [`LocalAgg`]); debug builds
    /// assert equality against the naive walk on every call, which is
    /// also the oracle the property tests lean on.
    fn estimated_wait_fast(&self, gi: usize) -> SimDuration {
        self.estimator_calls.set(self.estimator_calls.get() + 1);
        let coalesced = !self.batcher.is_passthrough();
        let unit = &self.units[gi];
        let mut wait = unit
            .device
            .busy_until()
            .map(|t| t.duration_since(self.now))
            .unwrap_or(SimDuration::ZERO);
        if let Some(f) = &unit.in_flight {
            if f.phase == Phase::Loading {
                wait += self.infer_time_on(gi, f.model(), f.items());
            }
        }
        if let Some(h) = &unit.holding {
            wait += h.release_at.duration_since(self.now.min(h.release_at));
            if !unit.device.has_model(h.model()) {
                wait += self.load_time_on(gi, h.model());
            }
            wait += self.infer_time_on(gi, h.model(), h.items());
        }
        let agg = &self.local_aggs[gi];
        if coalesced {
            for &(m, items, _) in &agg.groups {
                if !unit.device.has_model(m) {
                    wait += self.load_time_on(gi, m);
                }
                wait += self.infer_time_on(gi, m, items);
            }
        } else {
            for &(m, _, _) in &agg.groups {
                if !unit.device.has_model(m) {
                    wait += self.load_time_on(gi, m);
                }
            }
            wait += agg.infer_sum;
        }
        #[cfg(debug_assertions)]
        {
            let spec = unit.device.spec();
            let (compute_scale, load_scale) = (spec.compute_scale, spec.load_scale);
            let registry = &self.registry;
            let naive = unit.estimated_wait(
                self.now,
                coalesced,
                |m, b| registry.infer_time(m, b).mul_f64(compute_scale),
                |m| self.load_cost_scaled(m, load_scale),
            );
            debug_assert_eq!(wait, naive, "local-queue aggregate out of sync on GPU {gi}");
        }
        wait
    }

    /// Requests a tenant currently occupies (in flight, held for a batch,
    /// or in local queues).
    fn tenant_load(&self, tenant: u16) -> usize {
        let of = |rs: &[Request]| rs.iter().filter(|r| r.tenant == tenant).count();
        self.units
            .iter()
            .map(|u| {
                let inflight = u.in_flight.as_ref().map_or(0, |f| of(&f.requests));
                let held = u.holding.as_ref().map_or(0, |h| of(&h.requests));
                inflight + held + u.local_queue.iter().filter(|r| r.tenant == tenant).count()
            })
            .sum()
    }

    /// True iff §VI isolation forbids dispatching more work for `tenant`.
    fn tenant_blocked(&self, tenant: u16) -> bool {
        match self.config.tenant_max_inflight {
            Some(cap) => self.tenant_load(tenant) >= cap,
            None => false,
        }
    }

    /// Feeds one queue-depth observation to the metrics integral and,
    /// under `simcheck`, to the sanitizer's independent mirror of it
    /// (the two must reproduce `avg_queue_depth` bit-for-bit).
    fn note_queue_depth(&mut self, t: SimTime, len: usize) {
        self.metrics.observe_queue_depth(t, len);
        #[cfg(feature = "simcheck")]
        self.simcheck.observe_queue_depth(t, len);
    }

    /// Fleet audit under `simcheck`: request conservation plus
    /// residency/host-tier capacity conservation, at the current instant.
    #[cfg(feature = "simcheck")]
    fn audit_invariants(&mut self) {
        let completed = self.metrics.completed();
        self.simcheck.audit(
            completed,
            self.global_queue.len(),
            &self.units,
            &self.registry,
            self.store.as_ref(),
        );
    }

    /// Runs a trace to completion (all requests served) and returns the
    /// run metrics.
    pub fn run(&mut self, trace: &Trace) -> RunMetrics {
        self.begin_run(trace);
        self.drive(trace, None);
        self.finish_run()
    }

    /// Runs the trace until virtual time passes `until`, then pauses:
    /// every arrival and runtime event at or before `until` is processed,
    /// the first occurrence after it is left pending. The paused cluster
    /// can be [`Cluster::snapshot`]ted, [`Cluster::checkpoint`]ed, driven
    /// further with another `run_until`, or run to completion with
    /// [`Cluster::resume`] — the occurrence stream is identical to an
    /// unpaused [`Cluster::run`], so the final metrics are byte-identical.
    pub fn run_until(&mut self, trace: &Trace, until: SimTime) {
        self.begin_run(trace);
        self.drive(trace, Some(until));
    }

    /// Drives a paused run (after [`Cluster::run_until`] or
    /// [`Cluster::restore`]) to completion and returns the run metrics.
    /// On a cluster that never started, this is exactly [`Cluster::run`].
    pub fn resume(&mut self, trace: &Trace) -> RunMetrics {
        self.run(trace)
    }

    /// One-time run setup: counters, tick scheduling, RunStart telemetry.
    /// Guarded by `run_started` so `run`/`run_until`/`resume` compose and
    /// a restored checkpoint does not redo it.
    fn begin_run(&mut self, trace: &Trace) {
        if self.run_started {
            return;
        }
        self.run_started = true;
        if self.hot_model.is_none() {
            self.hot_model = trace.hottest_model().map(ModelId);
        }
        self.metrics.record_hot_replicas(SimTime::ZERO, 0);
        self.note_queue_depth(SimTime::ZERO, 0);
        self.pending_total = trace.len() as u64;
        // Arrivals stream from the trace cursor instead of being
        // pre-scheduled, so the heap holds only runtime events (a handful
        // per GPU) rather than the whole trace.
        self.events = EventQueue::with_capacity(self.units.len() * 2 + 8);
        self.next_arrival = 0;
        if let Some(autoscaler) = &self.autoscaler {
            self.events
                .schedule(SimTime::ZERO + autoscaler.cadence(), Event::ScaleTick);
        }
        if self.recorder.is_some() {
            let online = self.online_gpus();
            let total = self.units.len();
            self.emit(ObsEvent::RunStart {
                online_gpus: online,
                total_gpus: total,
            });
            for gi in 0..self.units.len() {
                if matches!(self.units[gi].state, UnitState::Online) {
                    let g = self.units[gi].id();
                    self.emit(ObsEvent::UnitIdle { gpu: g });
                }
            }
            if let Some(cadence) = self.obs_cadence {
                self.events
                    .schedule(SimTime::ZERO + cadence, Event::ObsTick);
            }
        }
    }

    /// The event loop: interleaves trace arrivals with runtime events in
    /// virtual-time order until both streams are exhausted — or, with a
    /// bound, until the next occurrence would land after `until`. At
    /// equal timestamps the arrival wins the tie-break — exactly the
    /// order pre-scheduled arrivals popped in, since their sequence
    /// numbers (0..N-1, assigned before any runtime event) sorted below
    /// everything else.
    fn drive(&mut self, trace: &Trace, until: Option<SimTime>) {
        let mut events = std::mem::take(&mut self.events);
        let arrivals = trace.requests();
        let num_tenants = self.config.num_tenants.max(1) as u32;
        loop {
            let arrival_at = arrivals.get(self.next_arrival).map(|r| r.at);
            let take_arrival = match (arrival_at, events.peek_time()) {
                (Some(a), Some(h)) => a <= h,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if let Some(bound) = until {
                let next_at = if take_arrival {
                    arrival_at.expect("arrival branch has an arrival")
                } else {
                    events.peek_time().expect("event branch has an event")
                };
                if next_at > bound {
                    break;
                }
            }
            if take_arrival {
                let r = &arrivals[self.next_arrival];
                debug_assert!(r.at >= self.now, "trace not sorted by arrival");
                self.now = r.at;
                let request = Request::new(
                    self.next_arrival as u64,
                    r.function,
                    ModelId(r.model),
                    self.config.batch_size,
                    r.at,
                )
                .with_tenant((r.function % num_tenants) as u16);
                self.next_arrival += 1;
                self.profile.arrivals += 1;
                #[cfg(feature = "simcheck")]
                self.simcheck.on_arrival(self.now);
                let req_id = request.id;
                let req_model = request.model;
                self.global_queue.push_back(request);
                let qlen = self.global_queue.len();
                self.note_queue_depth(self.now, qlen);
                if self.recorder.is_some() {
                    self.emit(ObsEvent::Arrival {
                        req: req_id,
                        model: req_model,
                        queue_len: qlen,
                    });
                }
                // Feed the store's arrival-rate tracker; a tiered backend
                // may start an async prefetch on its origin link here.
                if !self.store_flat {
                    let bytes = self.registry.occupancy_bytes(req_model);
                    self.store.note_arrival(self.now, req_model, bytes);
                }
                self.schedule_pass(&mut events);
            } else {
                let (t, ev) = events.pop().expect("peeked event exists");
                debug_assert!(t >= self.now, "event delivered out of order");
                self.profile.events_popped += 1;
                self.profile.heap_peak = self.profile.heap_peak.max(events.len() + 1);
                self.now = t;
                #[cfg(feature = "simcheck")]
                if self.simcheck.on_event(t) {
                    self.audit_invariants();
                }
                self.handle_event(ev, &mut events);
            }
        }
        self.events = events;
    }

    /// Dispatches one popped runtime event to its handler. Shared by the
    /// main [`Cluster::drive`] loop and the lookahead policy's
    /// speculative replay, so a what-if fork advances the world through
    /// exactly the code the real timeline uses.
    fn handle_event(&mut self, ev: Event, events: &mut EventQueue<Event>) {
        match ev {
            Event::GpuDone(g, seq) => self.on_gpu_done(g, seq, events),
            Event::GpuCrash(g, seq) => self.on_gpu_crash(g, seq, events),
            Event::ScaleTick => self.on_scale_tick(events),
            Event::BatchHold(g, seq) => self.on_batch_hold(g, seq, events),
            Event::ObsTick => self.on_obs_tick(events),
        }
    }

    /// End-of-run accounting: finalises the metrics, closes recorder
    /// sinks, and (under `simcheck`) runs the drained-state audits and
    /// the ledger cross-check. Only meaningful once both occurrence
    /// streams are exhausted.
    fn finish_run(&mut self) -> RunMetrics {
        debug_assert!(self.events.is_empty(), "runtime events left pending");
        debug_assert!(self.global_queue.is_empty(), "requests left undispatched");
        debug_assert!(
            self.units
                .iter()
                .all(|u| u.is_idle() && u.local_queue.is_empty()),
            "GPUs left busy after the event queue drained"
        );

        if self.recorder.is_some() {
            // Flush the final partial sampling window, then let sinks
            // close any open trace slices at the loop's last timestamp
            // (`self.now`, which is >= every emitted event's time).
            self.emit_sample();
            let now = self.now;
            if let Some(r) = self.recorder.as_deref_mut() {
                r.finish(now);
            }
        }

        let end = self.last_completion;
        let gpu_seconds: f64 = self
            .units
            .iter()
            .map(|u| u.provisioned_until(end).as_secs_f64())
            .sum();
        // Fixed clusters keep the paper's per-device mean (byte-identical
        // to the published pipeline); elastic clusters weight by
        // provisioned time, since averaging an offline device's zero over
        // the whole makespan would understate real utilisation.
        let sm: f64 = if self.autoscaler.is_some() {
            if gpu_seconds > 0.0 {
                self.units
                    .iter()
                    .map(|u| u.device.sm_utilization(SimTime::ZERO, end) * end.as_secs_f64())
                    .sum::<f64>()
                    / gpu_seconds
            } else {
                0.0
            }
        } else {
            self.units
                .iter()
                .map(|u| u.device.sm_utilization(SimTime::ZERO, end))
                .sum::<f64>()
                / self.units.len().max(1) as f64
        };
        // The histogram's tick sum must be read before `finish` consumes
        // the collector; the ledger cross-check compares against it.
        #[cfg(feature = "simcheck")]
        let latency_ticks = self.metrics.latency_tick_sum();
        let mut metrics = std::mem::take(&mut self.metrics).finish(end, sm);
        metrics.gpu_seconds_provisioned = gpu_seconds;
        metrics.scale_up_events = self.scale_ups;
        metrics.scale_down_events = self.scale_downs;
        metrics.gpu_busy_seconds = self.busy_secs;
        #[cfg(feature = "simcheck")]
        {
            self.simcheck.finish(
                end,
                &metrics,
                &self.units,
                &self.registry,
                self.store.as_ref(),
            );
            // Two independent accountings of every completed request —
            // the observability ledger and the metrics pipeline — must
            // agree to the tick.
            if let Some(ledger) = self.ledger() {
                self.simcheck
                    .check_ledger(&ledger, metrics.completed, latency_ticks);
            }
        }
        metrics
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    /// The telemetry cadence fired: snapshot the fleet for the recorder
    /// and re-arm while the run is still in progress.
    fn on_obs_tick(&mut self, events: &mut EventQueue<Event>) {
        self.emit_sample();
        if let Some(cadence) = self.obs_cadence {
            if self.metrics.completed() < self.pending_total {
                events.schedule(self.now + cadence, Event::ObsTick);
            }
        }
    }

    /// Emits one [`ObsEvent::Sample`] snapshot of the whole fleet to the
    /// recorder. Only called while recording.
    fn emit_sample(&mut self) {
        let mut gpus = std::mem::take(&mut self.obs_scratch);
        gpus.clear();
        let mut busy = 0usize;
        let mut online = 0usize;
        for u in &self.units {
            let is_online = matches!(u.state, UnitState::Online);
            let is_draining = matches!(u.state, UnitState::Draining);
            if matches!(u.state, UnitState::Offline) {
                continue;
            }
            let is_busy = u.in_flight.is_some();
            if is_online {
                online += 1;
            }
            if is_busy {
                busy += 1;
            }
            gpus.push(GpuSample {
                gpu: u.id(),
                online: is_online,
                draining: is_draining,
                busy: is_busy,
                resident: u.device.resident_models().count(),
                local_depth: u.local_queue.len(),
            });
        }
        let view = SampleView {
            queue_len: self.global_queue.len(),
            online,
            busy,
            draining: self.draining_units,
            holding: self.holding_units,
            gpus: &gpus,
        };
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record(self.now, &ObsEvent::Sample { view });
        }
        gpus.clear();
        self.obs_scratch = gpus;
    }

    fn on_gpu_done(&mut self, g: GpuId, seq: u64, events: &mut EventQueue<Event>) {
        let gi = g.0 as usize;
        let phase = match &self.units[gi].in_flight {
            // A missing or mismatched token means the work crashed in the
            // meantime: the completion is stale and ignored.
            Some(f) if f.seq == seq => f.phase,
            _ => return,
        };
        match phase {
            Phase::Loading => {
                let (model, tier) = {
                    let f = self.units[gi].in_flight.as_ref().expect("work in flight");
                    (f.model(), f.tier)
                };
                self.units[gi]
                    .device
                    .complete_load(self.now, model)
                    .expect("load completion mismatch");
                // The upload was a natural batch-forming window: requests
                // for this model that queued up during the load join the
                // invocation now, before the inference kernel launches.
                if !self.batcher.is_passthrough() {
                    self.topup_loaded_batch(gi);
                }
                if self.recorder.is_some() {
                    self.emit(ObsEvent::LoadComplete {
                        gpu: g,
                        model,
                        tier,
                    });
                }
                // A coalesced invocation runs the whole batch's inputs in
                // one pass of the affine latency model.
                let items = self.units[gi]
                    .in_flight
                    .as_ref()
                    .expect("work in flight")
                    .items();
                let dur = self.infer_time_on(gi, model, items);
                let done = self.units[gi]
                    .device
                    .start_inference(self.now, model, dur)
                    .expect("post-load inference start");
                if let Some(f) = self.units[gi].in_flight.as_mut() {
                    // The upload interval just closed; `started` now marks
                    // the inference interval for busy-time accounting.
                    self.busy_secs += self.now.duration_since(f.started).as_secs_f64();
                    f.started = self.now;
                    f.phase = Phase::Running;
                }
                if self.recorder.is_some() {
                    let f = self.units[gi].in_flight.as_ref().expect("work in flight");
                    let (batch, requests, items) = (f.seq, f.requests.len(), f.items());
                    self.emit(ObsEvent::InferStart {
                        gpu: g,
                        model,
                        batch,
                        requests,
                        items,
                    });
                }
                self.schedule_inference_outcome(gi, done, dur, events);
            }
            Phase::Running => {
                let inflight = self.units[gi].in_flight.take().expect("work in flight");
                self.units[gi]
                    .device
                    .complete_inference(self.now, inflight.model())
                    .expect("inference completion mismatch");
                self.busy_secs += self.now.duration_since(inflight.started).as_secs_f64();
                // Per-request completion accounting: every coalesced
                // request ends now, each against its own arrival.
                let (b_model, b_seq) = (inflight.model(), inflight.seq);
                for r in &inflight.requests {
                    let latency = self.now.duration_since(r.arrival);
                    self.metrics.record_completion(latency);
                    self.report_latency(r, latency);
                    if self.recorder.is_some() {
                        self.emit(ObsEvent::Completion {
                            req: r.id,
                            gpu: g,
                            batch: b_seq,
                            model: b_model,
                            latency,
                        });
                        if let Some(slo) = self.obs_slo {
                            if latency > slo {
                                self.emit(ObsEvent::SloMiss {
                                    req: r.id,
                                    latency,
                                    slo,
                                });
                            }
                        }
                    }
                }
                self.metrics.record_invocation(inflight.requests.len());
                if self.recorder.is_some() {
                    let requests = inflight.requests.len();
                    self.emit(ObsEvent::InvocationDone {
                        gpu: g,
                        batch: b_seq,
                        requests,
                    });
                }
                self.last_completion = self.last_completion.max(self.now);
                // Riding requests always served via residency (the lead's
                // load or cache hit), so they count toward Algorithm 1's
                // hit frequency; a lead miss does not.
                let hit_served = inflight.requests.len() - usize::from(!inflight.was_hit);
                self.units[gi].hits += hit_served as u64;
                let mut recycled = inflight.requests;
                recycled.clear();
                self.batch_pool.push(recycled);
                self.units[gi].idle_since = self.now;
                if self.units[gi].state == UnitState::Online {
                    self.idle_online += 1;
                    if self.recorder.is_some() {
                        self.emit(ObsEvent::UnitIdle { gpu: g });
                    }
                }
                self.report_status(g, "idle");
                self.maybe_finish_drain(gi);
                self.schedule_pass(events);
            }
        }
    }

    /// Schedules the end of an inference that starts now and completes at
    /// `done`; with failure injection enabled it may instead crash partway
    /// through.
    fn schedule_inference_outcome(
        &mut self,
        gi: usize,
        done: SimTime,
        dur: SimDuration,
        events: &mut EventQueue<Event>,
    ) {
        let g = self.units[gi].id();
        let seq = self.units[gi]
            .in_flight
            .as_ref()
            .expect("work in flight")
            .seq;
        if self.config.crash_rate > 0.0 && self.rng.chance(self.config.crash_rate) {
            let frac = self.rng.range_f64(0.05, 0.95);
            let crash_at = done - dur.mul_f64(1.0 - frac);
            events.schedule(crash_at, Event::GpuCrash(g, seq));
        }
        events.schedule(done, Event::GpuDone(g, seq));
    }

    /// Failure injection: the GPU process serving the in-flight request
    /// died. The model's memory is reclaimed, the cache entry dropped, and
    /// the request is retried from the head of the global queue (its
    /// original arrival time is preserved, so the retry's latency reflects
    /// the crash).
    fn on_gpu_crash(&mut self, g: GpuId, seq: u64, events: &mut EventQueue<Event>) {
        let gi = g.0 as usize;
        match &self.units[gi].in_flight {
            Some(f) if f.seq == seq && matches!(f.phase, Phase::Running) => {}
            _ => return, // already completed or crashed
        }
        let inflight = self.units[gi].in_flight.take().expect("work in flight");
        let model = inflight.model();
        self.units[gi]
            .device
            .force_kill(self.now, model)
            .expect("crashing process exists");
        // The partial inference consumed real GPU time before dying (the
        // completed upload was already accounted at the phase switch).
        self.busy_secs += self.now.duration_since(inflight.started).as_secs_f64();
        self.cache.remove(g, model);
        self.on_residency_change(model);
        if self.recorder.is_some() {
            let requeued = inflight.requests.len();
            self.emit(ObsEvent::Crash {
                gpu: g,
                model,
                requeued,
            });
        }
        self.units[gi].idle_since = self.now;
        if self.units[gi].state == UnitState::Online {
            self.idle_online += 1;
            if self.recorder.is_some() {
                self.emit(ObsEvent::UnitIdle { gpu: g });
            }
        }
        self.crashes += 1;
        self.report_status(g, "idle");
        // Retry: the crashed invocation's requests (the whole coalesced
        // batch) rejoin the global queue at the front in order, followed
        // by any of this GPU's local-queue requests that were waiting on
        // the now-dead process (their residency expectation is void).
        let mut requeue = inflight.requests;
        let mut keep = VecDeque::new();
        while let Some(r) = self.units[gi].local_queue.pop_front() {
            if r.model == model {
                requeue.push(r);
            } else {
                keep.push_back(r);
            }
        }
        self.units[gi].local_queue = keep;
        self.agg_rebuild(gi);
        for r in requeue.into_iter().rev() {
            let id = r.id;
            self.global_queue.push_front(r);
            if self.recorder.is_some() {
                self.emit(ObsEvent::Requeued { req: id });
            }
        }
        let qlen = self.global_queue.len();
        self.note_queue_depth(self.now, qlen);
        if self.recorder.is_some() {
            self.emit(ObsEvent::QueueDepth { len: qlen });
        }
        self.maybe_finish_drain(gi);
        self.schedule_pass(events);
    }

    // ------------------------------------------------------------------
    // Autoscaling (elastic capacity; the policy lives in `autoscale`)
    // ------------------------------------------------------------------

    /// One autoscaler cadence: observe, decide, apply, re-arm. Ticks stop
    /// re-arming once every trace request has completed, so the event
    /// queue drains and the run ends.
    fn on_scale_tick(&mut self, events: &mut EventQueue<Event>) {
        #[cfg(feature = "simcheck")]
        self.audit_invariants();
        if self.metrics.completed() >= self.pending_total {
            return;
        }
        let mut autoscaler = self.autoscaler.take().expect("tick without autoscaler");
        let decision = autoscaler.step(&ScaleView { cluster: self });
        let cadence = autoscaler.cadence();
        self.autoscaler = Some(autoscaler);
        match decision {
            ScaleDecision::Hold => {}
            ScaleDecision::Up(n) => self.scale_up(n, events),
            ScaleDecision::Down(n) => self.scale_down(n),
        }
        events.schedule(self.now + cadence, Event::ScaleTick);
    }

    /// Brings up to `want` offline devices online, cold (empty caches,
    /// reset frequency counters), then runs a scheduling pass so queued
    /// work can flow onto them immediately.
    fn scale_up(&mut self, want: usize, events: &mut EventQueue<Event>) {
        let mut provisioned: Vec<GpuId> = Vec::new();
        for unit in &mut self.units {
            if provisioned.len() == want {
                break;
            }
            if unit.state == UnitState::Offline {
                unit.state = UnitState::Online;
                unit.online_since = self.now;
                unit.idle_since = self.now;
                // A cold device has no cache; its old hit frequency (from
                // a previous online interval) would skew Algorithm 1's
                // idle ordering.
                unit.hits = 0;
                debug_assert!(unit.is_idle(), "offline units carry no work");
                self.idle_online += 1;
                provisioned.push(unit.id());
            }
        }
        if provisioned.is_empty() {
            return;
        }
        self.scale_ups += provisioned.len() as u64;
        self.online_high = self.online_high.max(self.online_gpus());
        // Cold devices mean a burst of compulsory misses is coming: let a
        // tiered store stage its hottest absent models toward the host
        // cache before the cold-start storm hits the origin link.
        if !self.store_flat {
            self.store.note_scale_up(self.now);
        }
        for g in provisioned {
            self.report_status(g, "idle");
            if self.recorder.is_some() {
                self.emit(ObsEvent::ScaleUp { gpu: g });
                self.emit(ObsEvent::UnitIdle { gpu: g });
            }
        }
        self.schedule_pass(events);
    }

    /// Marks up to `want` online GPUs as drain victims, never dropping
    /// the online fleet below the autoscale minimum. Victims are chosen
    /// in evictor-style idle order — idle GPUs first, longest-idle first
    /// (the LRU of GPUs) — then busy ones by the same stale last-idle
    /// instant (id breaks ties); an already-idle victim drains (evicts
    /// its residents and goes offline) immediately, a busy one finishes
    /// its in-flight request and local queue first.
    fn scale_down(&mut self, want: usize) {
        let min_gpus = self
            .config
            .autoscale
            .as_ref()
            .map_or(1, |a| a.min_gpus)
            .max(1);
        let online = self.online_gpus();
        let allowed = online.saturating_sub(min_gpus).min(want);
        if allowed == 0 {
            return;
        }
        let mut victims: Vec<usize> = (0..self.units.len())
            .filter(|&gi| self.units[gi].state == UnitState::Online)
            .collect();
        victims.sort_by_key(|&gi| {
            let u = &self.units[gi];
            (!u.is_idle(), u.idle_since, gi)
        });
        for &gi in victims.iter().take(allowed) {
            if self.units[gi].is_idle() {
                self.idle_online -= 1;
            }
            self.units[gi].state = UnitState::Draining;
            self.draining_units += 1;
            self.scale_downs += 1;
            if self.recorder.is_some() {
                let g = self.units[gi].id();
                self.emit(ObsEvent::DrainStart { gpu: g });
            }
            self.maybe_finish_drain(gi);
        }
        self.online_low = self.online_low.min(self.online_gpus());
    }

    /// Completes a drain if the unit has nothing left to run: evicts its
    /// resident models (no request is lost — residency only speeds up
    /// future dispatches), closes its provisioned interval, and takes it
    /// offline.
    fn maybe_finish_drain(&mut self, gi: usize) {
        let unit = &self.units[gi];
        if unit.state != UnitState::Draining
            || unit.in_flight.is_some()
            || unit.holding.is_some()
            || !unit.local_queue.is_empty()
        {
            return;
        }
        let g = unit.id();
        let residents: Vec<ModelId> = unit.device.resident_models().collect();
        for model in residents {
            self.units[gi]
                .device
                .evict(model)
                .expect("drained GPU's residents are ready processes");
            self.cache.remove(g, model);
            self.on_residency_change(model);
            // Drain evictions demote like capacity evictions do — the
            // device is going away cleanly, so its weights are written
            // back to the host cache. (Crashes do not demote: the
            // process died with its memory.)
            if !self.store_flat {
                let bytes = self.registry.occupancy_bytes(model);
                self.store.demote(self.now, model, bytes);
            }
            if self.recorder.is_some() {
                self.emit(ObsEvent::Eviction { gpu: g, model });
            }
        }
        let unit = &mut self.units[gi];
        unit.provisioned += self.now.duration_since(unit.online_since);
        unit.state = UnitState::Offline;
        self.draining_units -= 1;
        if self.recorder.is_some() {
            self.emit(ObsEvent::Offline { gpu: g });
        }
        self.report_status(g, "offline");
        self.report_lru(g);
    }

    // ------------------------------------------------------------------
    // Request batching (coalescing; the policies live in `batching`)
    // ------------------------------------------------------------------

    /// Same-model requests immediately coalescable with a dispatch on
    /// `gi`: matching entries in its local queue, plus — for online GPUs
    /// — matching, tenant-unblocked entries in the global queue.
    fn coalescable(&self, gi: usize, model: ModelId) -> usize {
        // The aggregate's request count is exactly the filter count the
        // naive scan produced.
        let local = self.local_aggs[gi]
            .groups
            .iter()
            .find(|g| g.0 == model)
            .map_or(0, |g| g.2);
        debug_assert_eq!(
            local,
            self.units[gi]
                .local_queue
                .iter()
                .filter(|r| r.model == model)
                .count()
        );
        let global = if self.units[gi].state == UnitState::Online {
            self.global_queue
                .iter()
                .filter(|r| r.model == model && !self.tenant_blocked(r.tenant))
                .count()
        } else {
            0
        };
        local + global
    }

    /// Moves same-model requests into `out` until it holds `cap`
    /// requests: local-queue entries first (they were placed here and
    /// would run next anyway), then global-queue entries in arrival
    /// order. Draining GPUs take no global work — a scale-down victim
    /// only winds down what it already owns. The §VI tenant cap counts
    /// the forming batch itself (its requests live only in `out` during
    /// collection, invisible to [`Cluster::tenant_load`]), so one
    /// coalesced invocation cannot smuggle a capped tenant past its
    /// in-flight limit.
    fn collect_same_model(
        &mut self,
        gi: usize,
        model: ModelId,
        cap: usize,
        out: &mut Vec<Request>,
    ) {
        let g = self.units[gi].id();
        let mut i = 0;
        while out.len() < cap && i < self.units[gi].local_queue.len() {
            if self.units[gi].local_queue[i].model == model {
                let r = self.units[gi]
                    .local_queue
                    .remove(i)
                    .expect("index in bounds");
                self.agg_remove(gi, &r);
                if self.recorder.is_some() {
                    let id = r.id;
                    self.emit(ObsEvent::Join { req: id, gpu: g });
                }
                out.push(r);
            } else {
                i += 1;
            }
        }
        if self.units[gi].state != UnitState::Online {
            return;
        }
        let global_before = self.global_queue.len();
        let mut i = 0;
        while out.len() < cap && i < self.global_queue.len() {
            let (matches, tenant) = {
                let r = &self.global_queue[i];
                (r.model == model, r.tenant)
            };
            let blocked = matches
                && self.config.tenant_max_inflight.is_some_and(|tenant_cap| {
                    let forming = out.iter().filter(|r| r.tenant == tenant).count();
                    self.tenant_load(tenant) + forming >= tenant_cap
                });
            if matches && !blocked {
                let r = self.global_queue.remove(i).expect("index in bounds");
                if self.recorder.is_some() {
                    let id = r.id;
                    self.emit(ObsEvent::Join { req: id, gpu: g });
                }
                out.push(r);
            } else {
                i += 1;
            }
        }
        let qlen = self.global_queue.len();
        if qlen != global_before {
            self.note_queue_depth(self.now, qlen);
            if self.recorder.is_some() {
                self.emit(ObsEvent::QueueDepth { len: qlen });
            }
        }
    }

    /// The affine-latency view a [`BatchPolicy`] plans against, scaled to
    /// GPU `gi`'s own compute and PCIe profiles.
    fn batch_view(
        &self,
        gi: usize,
        model: ModelId,
        hit: bool,
        lead_arrival: SimTime,
        available: usize,
    ) -> BatchView {
        let spec = self.units[gi].device.spec();
        let profile = self.registry.profile(model);
        BatchView {
            model,
            hit,
            now: self.now,
            lead_arrival,
            available,
            items_per_request: self.config.batch_size,
            infer_base_secs: profile.infer_base_secs * spec.compute_scale,
            infer_item_secs: profile.infer_per_item_secs * spec.compute_scale,
            load_secs: profile.load_time.mul_f64(spec.load_scale).as_secs_f64(),
        }
    }

    /// Executes a scheduler dispatch through the batching layer: plans a
    /// batch for the lead request, coalesces available same-model
    /// requests, and either launches now or parks the batch in a hold
    /// slot awaiting its `BatchHold` timer. The `none` policy
    /// short-circuits to the paper's per-request launch.
    fn dispatch_batched(
        &mut self,
        gi: usize,
        lead: Request,
        hit: bool,
        events: &mut EventQueue<Event>,
    ) {
        // Every dispatch path funnels through here on an idle unit, and
        // every branch below leaves it busy (in flight or holding).
        debug_assert!(self.units[gi].is_idle(), "dispatch on a busy GPU");
        if self.units[gi].state == UnitState::Online {
            self.idle_online -= 1;
        }
        if self.recorder.is_some() {
            let (id, g) = (lead.id, self.units[gi].id());
            self.emit(ObsEvent::Join { req: id, gpu: g });
        }
        let mut requests = self.batch_pool.pop().unwrap_or_default();
        requests.push(lead);
        if self.batcher.is_passthrough() {
            self.launch_batch(gi, requests, hit, events);
            return;
        }
        let model = lead.model;
        let available = self.coalescable(gi, model);
        let view = self.batch_view(gi, model, hit, lead.arrival, available);
        let plan = self.batcher.plan(&view);
        let cap = plan.max_requests.max(1);
        self.collect_same_model(gi, model, cap, &mut requests);
        // The driver's backstop on [`BatchPlan::hold`]'s contract: a solo
        // batch launches immediately no matter what the policy answered —
        // holding a lone request would trade its latency for nothing.
        if requests.len() >= 2 && requests.len() < cap {
            if let Some(hold) = plan.hold {
                let g = self.units[gi].id();
                let seq = self.dispatch_seq;
                self.dispatch_seq += 1;
                let release_at = self.now + hold;
                self.profile.holds_parked += 1;
                if self.recorder.is_some() {
                    let gathered = requests.len();
                    self.emit(ObsEvent::HoldStart {
                        gpu: g,
                        model,
                        gathered,
                        release_at,
                    });
                }
                self.units[gi].holding = Some(HoldSlot {
                    requests,
                    max_requests: cap,
                    hit,
                    release_at,
                    seq,
                });
                self.holding_units += 1;
                self.report_status(g, "busy");
                events.schedule(release_at, Event::BatchHold(g, seq));
                return;
            }
        }
        self.launch_batch(gi, requests, hit, events);
    }

    /// Tops a held batch up with same-model requests that arrived since
    /// the hold began, launching early when it fills. Returns true iff
    /// the batch launched.
    fn fill_hold(&mut self, gi: usize, events: &mut EventQueue<Event>) -> bool {
        let Some(slot) = &self.units[gi].holding else {
            return false;
        };
        let (model, cap) = (slot.model(), slot.max_requests);
        let mut slot = self.units[gi].holding.take().expect("slot checked above");
        self.collect_same_model(gi, model, cap, &mut slot.requests);
        if slot.requests.len() >= cap {
            // Full: launch now; the pending BatchHold timer goes stale
            // (its token no longer matches a held slot).
            self.holding_units -= 1;
            self.launch_batch(gi, slot.requests, slot.hit, events);
            true
        } else {
            self.units[gi].holding = Some(slot);
            false
        }
    }

    /// A held batch's timer fired: launch whatever it gathered (after a
    /// final same-model top-up). A stale token means the batch already
    /// launched early.
    fn on_batch_hold(&mut self, g: GpuId, seq: u64, events: &mut EventQueue<Event>) {
        let gi = g.0 as usize;
        match &self.units[gi].holding {
            Some(h) if h.seq == seq => {}
            _ => return,
        }
        let mut slot = self.units[gi].holding.take().expect("slot checked above");
        self.holding_units -= 1;
        self.collect_same_model(gi, slot.model(), slot.max_requests, &mut slot.requests);
        self.launch_batch(gi, slot.requests, slot.hit, events);
    }

    /// Grows a just-loaded invocation's batch with same-model requests
    /// that queued up during the upload, re-consulting the batch policy
    /// (as a hit view: the model is resident now). The upload itself was
    /// the gathering window, so any `hold` in the new plan is ignored —
    /// the inference launches immediately.
    fn topup_loaded_batch(&mut self, gi: usize) {
        let (model, lead_arrival, len) = {
            let f = self.units[gi].in_flight.as_ref().expect("work in flight");
            (f.model(), f.lead().arrival, f.requests.len())
        };
        let available = self.coalescable(gi, model);
        if available == 0 {
            return;
        }
        let view = self.batch_view(gi, model, true, lead_arrival, available);
        let cap = self.batcher.plan(&view).max_requests.max(1);
        if cap <= len {
            return;
        }
        let mut requests = {
            let f = self.units[gi].in_flight.as_mut().expect("work in flight");
            std::mem::take(&mut f.requests)
        };
        self.collect_same_model(gi, model, cap, &mut requests);
        let g = self.units[gi].id();
        for _ in len..requests.len() {
            // Joiners ride the completed upload: hit decisions and cache
            // accesses like any coalesced request.
            self.metrics.record_dispatch(true, false);
            self.cache.touch(g, model);
        }
        if self.recorder.is_some() {
            let joined = requests.len() - len;
            if joined > 0 {
                self.emit(ObsEvent::LoadRiders { gpu: g, joined });
            }
        }
        self.units[gi]
            .in_flight
            .as_mut()
            .expect("work in flight")
            .requests = requests;
    }

    /// Launches a coalesced invocation on `gi` (both the hit and miss
    /// paths; a single-request batch is exactly the paper's per-request
    /// dispatch).
    fn launch_batch(
        &mut self,
        gi: usize,
        requests: Vec<Request>,
        hit: bool,
        events: &mut EventQueue<Event>,
    ) {
        self.profile.dispatches += 1;
        if hit {
            self.execute_hit(gi, requests, events);
        } else {
            self.execute_miss(gi, requests, events);
        }
    }

    // ------------------------------------------------------------------
    // Scheduling (paper §IV; the algorithms live in the policy impls)
    // ------------------------------------------------------------------

    /// Runs scheduling iterations until no dispatch is possible. The
    /// structure (pass loop, local-queue priority, idle filtering) is the
    /// driver's; every placement decision is the policy's. Draining GPUs
    /// are invisible to the policy but still serve their own local
    /// queues, so no already-placed request is lost to a scale-down.
    fn schedule_pass(&mut self, events: &mut EventQueue<Event>) {
        self.profile.schedule_passes += 1;
        let mut sched = self.sched.take().expect("scheduler in place");
        loop {
            self.profile.pass_rounds += 1;
            debug_assert_eq!(
                self.idle_online,
                self.units
                    .iter()
                    .filter(|u| u.state == UnitState::Online && u.is_idle())
                    .count(),
                "idle_online counter out of sync"
            );
            debug_assert_eq!(
                self.holding_units,
                self.units.iter().filter(|u| u.holding.is_some()).count(),
                "holding_units counter out of sync"
            );
            debug_assert_eq!(
                self.draining_units,
                self.units
                    .iter()
                    .filter(|u| u.state == UnitState::Draining)
                    .count(),
                "draining_units counter out of sync"
            );
            // The saturated common case: nothing to top up, nothing to
            // drain, nowhere to dispatch — the pass is provably a no-op.
            if self.idle_online == 0 && self.holding_units == 0 && self.draining_units == 0 {
                break;
            }
            let mut progress = false;
            // Held batches vacuum up matching new arrivals and launch
            // early once full (no-op under per-request dispatch).
            if self.holding_units > 0 && !self.batcher.is_passthrough() {
                for gi in 0..self.units.len() {
                    if self.units[gi].holding.is_some() && self.fill_hold(gi, events) {
                        progress = true;
                    }
                }
            }
            // Drain victims run down their local queues (always resident
            // hits) but receive no new work.
            if self.draining_units > 0 {
                for gi in 0..self.units.len() {
                    if self.units[gi].state == UnitState::Draining && self.units[gi].is_idle() {
                        if let Some(r) = self.units[gi].local_queue.pop_front() {
                            debug_assert!(
                                self.cache.is_cached(self.units[gi].id(), r.model),
                                "local-queue request's model must be resident"
                            );
                            self.agg_remove(gi, &r);
                            self.dispatch_batched(gi, r, true, events);
                            progress = true;
                        }
                    }
                }
            }
            // Online idle GPUs with work available to them, Algorithm 1's
            // input. The candidate list lives in a recycled buffer — a
            // pass runs on every arrival, so per-pass allocation is hot.
            let mut idle = std::mem::take(&mut self.idle_scratch);
            idle.clear();
            if self.idle_online > 0 {
                idle.extend(
                    self.units
                        .iter()
                        .filter(|u| u.state == UnitState::Online && u.is_idle())
                        .filter(|u| !u.local_queue.is_empty() || !self.global_queue.is_empty())
                        .map(|u| u.id()),
                );
            }
            if idle.is_empty() {
                self.idle_scratch = idle;
                if progress {
                    continue;
                }
                break;
            }
            let mut ctx = SchedCtx {
                cluster: self,
                events,
                progress,
            };
            sched.idle_order(&ctx, &mut idle);
            for &g in &idle {
                let gi = g.0 as usize;
                if !ctx.cluster.units[gi].is_idle() {
                    continue; // became busy earlier in this iteration
                }
                // Algorithm 1 lines 2–5: the local queue has priority.
                if let Some(r) = ctx.cluster.units[gi].local_queue.pop_front() {
                    debug_assert!(
                        ctx.cluster.cache.is_cached(g, r.model),
                        "local-queue request's model must be resident"
                    );
                    ctx.cluster.agg_remove(gi, &r);
                    ctx.cluster.dispatch_batched(gi, r, true, ctx.events);
                    ctx.progress = true;
                    continue;
                }
                if ctx.cluster.global_queue.is_empty() {
                    continue;
                }
                let dispatch = sched.on_gpu_idle(g, &mut ctx);
                ctx.apply(g, dispatch);
            }
            let made_progress = ctx.progress;
            self.idle_scratch = idle;
            if !made_progress {
                break;
            }
        }
        self.sched = Some(sched);
    }

    // ------------------------------------------------------------------
    // Dispatch execution
    // ------------------------------------------------------------------

    /// Starts a cache-hit inference on an idle GPU — one invocation
    /// serving every request in `requests` (one, unless a batch policy
    /// coalesced more).
    fn execute_hit(&mut self, gi: usize, requests: Vec<Request>, events: &mut EventQueue<Event>) {
        let g = self.units[gi].id();
        let model = requests[0].model;
        debug_assert!(self.cache.is_cached(g, model), "hit without residency");
        debug_assert!(requests.iter().all(|r| r.model == model));
        // Every coalesced request is a hit decision and a cache access.
        for _ in &requests {
            self.metrics.record_dispatch(true, false);
        }
        for _ in &requests {
            self.cache.touch(g, model);
        }
        let items: usize = requests.iter().map(|r| r.batch).sum();
        let dur = self.infer_time_on(gi, model, items);
        let done = self.units[gi]
            .device
            .start_inference(self.now, model, dur)
            .expect("hit dispatch on idle GPU");
        let seq = self.dispatch_seq;
        self.dispatch_seq += 1;
        if self.recorder.is_some() {
            let (lead, coalesced) = (requests[0].id, requests.len());
            self.emit(ObsEvent::Dispatch {
                gpu: g,
                lead,
                model,
                hit: true,
                false_miss: false,
                coalesced,
            });
            self.emit(ObsEvent::InferStart {
                gpu: g,
                model,
                batch: seq,
                requests: coalesced,
                items,
            });
        }
        self.units[gi].in_flight = Some(InFlight {
            requests,
            phase: Phase::Running,
            was_hit: true,
            started: self.now,
            seq,
            tier: Tier::HBM,
        });
        self.report_status(g, "busy");
        self.schedule_inference_outcome(gi, done, dur, events);
    }

    /// Starts a cache-miss (load, then inference) on an idle GPU,
    /// evicting victims as needed. The lead request pays the miss;
    /// coalesced requests ride the same upload and count as hits.
    fn execute_miss(&mut self, gi: usize, requests: Vec<Request>, events: &mut EventQueue<Event>) {
        let g = self.units[gi].id();
        let model = requests[0].model;
        debug_assert!(!self.cache.is_cached(g, model), "miss with residency");
        debug_assert!(requests.iter().all(|r| r.model == model));
        let false_miss = self.cache.cached_anywhere(model);
        self.metrics.record_dispatch(false, false_miss);
        for _ in 1..requests.len() {
            self.metrics.record_dispatch(true, false);
        }
        if self.recorder.is_some() {
            let (lead, coalesced) = (requests[0].id, requests.len());
            self.emit(ObsEvent::Dispatch {
                gpu: g,
                lead,
                model,
                hit: false,
                false_miss,
                coalesced,
            });
        }

        let occupancy = self.registry.occupancy_bytes(model);
        // The Cache Manager provisions against capacity minus its OOM
        // headroom (see `ClusterConfig::mem_headroom_mib`).
        let headroom = self.config.mem_headroom_mib * gfaas_gpu::MIB;
        let free = self.units[gi].device.free_bytes().saturating_sub(headroom);
        let registry = &self.registry;
        let victims = self
            .cache
            .select_victims(g, occupancy, free, |m| registry.occupancy_bytes(m), &[])
            .unwrap_or_else(|| {
                panic!(
                    "model {} ({} B) cannot fit GPU {} ({} B capacity)",
                    model,
                    occupancy,
                    g,
                    self.units[gi].device.spec().memory_bytes
                )
            });
        for v in victims {
            self.units[gi]
                .device
                .evict(v)
                .expect("victims on an idle GPU are evictable");
            self.on_residency_change(v);
            // Eviction demotes: the victim's weights land in the host
            // cache (a device→host writeback overlaps compute, so the
            // demotion itself is free), making the next miss for it a
            // host hit instead of an origin fetch.
            if !self.store_flat {
                let bytes = self.registry.occupancy_bytes(v);
                self.store.demote(self.now, v, bytes);
            }
            if self.recorder.is_some() {
                self.emit(ObsEvent::Eviction { gpu: g, model: v });
            }
        }
        // The store prices (and accounts) the upload: the flat backend
        // echoes the per-device profile time; a tiered backend settles
        // background transfers, serves from host if resident, joins an
        // in-flight prefetch, or queues an origin fetch.
        let flat_load = self
            .registry
            .load_time(model)
            .mul_f64(self.units[gi].device.spec().load_scale);
        let (tier, load_time) = if self.store_flat {
            (Tier::ORIGIN, flat_load)
        } else {
            self.store.begin_load(self.now, model, occupancy, flat_load)
        };
        let (_pid, ready) = self.units[gi]
            .device
            .start_load_timed(self.now, model, occupancy, load_time)
            .expect("load after eviction fits");
        self.cache.insert(g, model);
        self.on_residency_change(model);
        // Riding requests access the freshly inserted model (frequency
        // for TinyLFU-style evictors; a no-op for the insert-hot LRU).
        for _ in 1..requests.len() {
            self.cache.touch(g, model);
        }
        self.report_lru(g);
        let seq = self.dispatch_seq;
        self.dispatch_seq += 1;
        if self.recorder.is_some() {
            self.emit(ObsEvent::LoadStart {
                gpu: g,
                model,
                batch: seq,
                tier,
            });
        }
        self.units[gi].in_flight = Some(InFlight {
            requests,
            phase: Phase::Loading,
            was_hit: false,
            started: self.now,
            seq,
            tier,
        });
        self.report_status(g, "busy");
        events.schedule(ready, Event::GpuDone(g, seq));
    }

    fn on_residency_change(&mut self, model: ModelId) {
        if self.hot_model == Some(model) {
            let replicas = self.cache.replica_count(model);
            self.metrics.record_hot_replicas(self.now, replicas);
            if self.recorder.is_some() {
                self.emit(ObsEvent::HotReplicas { replicas });
            }
        }
    }

    // ------------------------------------------------------------------
    // Datastore mirroring (paper Fig 2: components coordinate via etcd)
    // ------------------------------------------------------------------

    fn report_status(&self, g: GpuId, status: &str) {
        if !self.config.report_to_datastore {
            return;
        }
        if let Some(ds) = &self.datastore {
            ds.put(status_key(g), status.to_string());
        }
    }

    fn report_lru(&self, g: GpuId) {
        if !self.config.report_to_datastore {
            return;
        }
        if let Some(ds) = &self.datastore {
            let list = self
                .cache
                .resident(g)
                .iter()
                .map(|m| m.0.to_string())
                .collect::<Vec<_>>()
                .join(",");
            ds.put(lru_key(g), list);
        }
    }

    fn report_latency(&self, r: &Request, latency: SimDuration) {
        if !self.config.report_to_datastore {
            return;
        }
        if let Some(ds) = &self.datastore {
            ds.put(
                format!("/latency/{}", r.id),
                format!("{:.6}", latency.as_secs_f64()),
            );
        }
    }

    // ------------------------------------------------------------------
    // Versioned state: snapshot / rollback / commit (gfaas-snap)
    // ------------------------------------------------------------------

    /// Pins the complete mutable simulation state in the snapshot
    /// journal and returns a handle. The cluster keeps running normally;
    /// [`Cluster::rollback`] restores this instant byte-identically,
    /// [`Cluster::commit`] retires the pin. Zero-cost when unused: no
    /// run-loop path touches the journal.
    pub fn snapshot(&mut self) -> SnapId {
        let img = self.capture_image(&self.events);
        self.journal.snapshot(img)
    }

    /// Restores the state pinned by `id`, discarding everything that
    /// happened since — metrics, RNG, queues, residency, pending events,
    /// the arrival cursor, all of it. The pin survives, so the same
    /// snapshot can be rolled back to again. Returns false for a dead or
    /// foreign id. Attached recorders and datastores are *not* rewound:
    /// rolling back mid-recording leaves already-emitted telemetry in
    /// the sinks (the lookahead forks stash the recorder first for
    /// exactly that reason).
    pub fn rollback(&mut self, id: SnapId) -> bool {
        let Some(img) = self.journal.rollback(id) else {
            return false;
        };
        let mut events = std::mem::take(&mut self.events);
        self.apply_image(img, &mut events);
        self.events = events;
        true
    }

    /// Retires the pin `id` (and any older pins), keeping the current
    /// timeline. Returns false for a dead or foreign id.
    pub fn commit(&mut self, id: SnapId) -> bool {
        self.journal.commit(id)
    }

    /// Journal counters: snapshots taken, rollbacks (including
    /// speculative forks), commits.
    pub fn journal_stats(&self) -> JournalStats {
        self.journal.stats()
    }

    /// Live (uncommitted, un-rolled-back) pins in the journal.
    pub fn journal_depth(&self) -> usize {
        self.journal.depth()
    }

    /// Deep-copies every piece of mutable simulation state into a
    /// [`ClusterImage`]. The event heap is passed in because the drive
    /// loop owns it (`mem::take`n) while a speculation fork captures.
    fn capture_image(&self, events: &EventQueue<Event>) -> ClusterImage {
        let blob_of = |f: &dyn Fn(&mut Enc)| {
            let mut enc = Enc::new();
            f(&mut enc);
            enc.into_bytes()
        };
        ClusterImage {
            units: self.units.clone(),
            cache_blob: blob_of(&|e| self.cache.save_state(e)),
            sched_blob: self.sched.as_ref().map(|s| blob_of(&|e| s.save_state(e))),
            batcher_blob: blob_of(&|e| self.batcher.save_state(e)),
            store_blob: blob_of(&|e| self.store.save_state(e)),
            autoscaler_blob: self
                .autoscaler
                .as_ref()
                .map(|a| blob_of(&|e| a.save_state(e))),
            global_queue: self.global_queue.clone(),
            metrics: self.metrics.snapshot_image(),
            now: self.now,
            last_completion: self.last_completion,
            hot_model: self.hot_model,
            local_moves: self.local_moves,
            crashes: self.crashes,
            dispatch_seq: self.dispatch_seq,
            rng: self.rng.state(),
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            online_low: self.online_low,
            online_high: self.online_high,
            pending_total: self.pending_total,
            idle_online: self.idle_online,
            holding_units: self.holding_units,
            draining_units: self.draining_units,
            busy_secs: self.busy_secs,
            local_aggs: self.local_aggs.clone(),
            events: events.clone(),
            next_arrival: self.next_arrival,
            run_started: self.run_started,
            profile: self.profile.clone(),
            estimator_calls: self.estimator_calls.get(),
            #[cfg(feature = "simcheck")]
            simcheck: self.simcheck.clone(),
        }
    }

    /// Restores an image captured by [`Cluster::capture_image`],
    /// byte-for-byte. Policy objects (scheduler, batcher, store,
    /// evictor, autoscaler) are the same *objects* — only their mutable
    /// state is rewound, through their save/load hooks.
    fn apply_image(&mut self, img: ClusterImage, events: &mut EventQueue<Event>) {
        self.metrics.restore_image(&img.metrics);
        self.units = img.units;
        let mut dec = Dec::new(&img.cache_blob);
        self.cache
            .load_state(&mut dec)
            .expect("journaled cache image decodes");
        match (self.sched.as_mut(), &img.sched_blob) {
            (Some(s), Some(b)) => {
                let mut dec = Dec::new(b);
                s.load_state(&mut dec)
                    .expect("journaled scheduler image decodes");
            }
            (None, None) => {}
            _ => unreachable!("snapshot and rollback straddle a scheduling pass"),
        }
        let mut dec = Dec::new(&img.batcher_blob);
        self.batcher
            .load_state(&mut dec)
            .expect("journaled batcher image decodes");
        let mut dec = Dec::new(&img.store_blob);
        self.store
            .load_state(&mut dec)
            .expect("journaled store image decodes");
        match (self.autoscaler.as_mut(), &img.autoscaler_blob) {
            (Some(a), Some(b)) => {
                let mut dec = Dec::new(b);
                a.load_state(&mut dec)
                    .expect("journaled autoscaler image decodes");
            }
            (None, None) => {}
            _ => unreachable!("autoscaler presence cannot change mid-run"),
        }
        self.global_queue = img.global_queue;
        self.now = img.now;
        self.last_completion = img.last_completion;
        self.hot_model = img.hot_model;
        self.local_moves = img.local_moves;
        self.crashes = img.crashes;
        self.dispatch_seq = img.dispatch_seq;
        self.rng = DetRng::from_state(img.rng);
        self.scale_ups = img.scale_ups;
        self.scale_downs = img.scale_downs;
        self.online_low = img.online_low;
        self.online_high = img.online_high;
        self.pending_total = img.pending_total;
        self.idle_online = img.idle_online;
        self.holding_units = img.holding_units;
        self.draining_units = img.draining_units;
        self.busy_secs = img.busy_secs;
        self.local_aggs = img.local_aggs;
        *events = img.events;
        self.next_arrival = img.next_arrival;
        self.run_started = img.run_started;
        self.profile = img.profile;
        self.estimator_calls.set(img.estimator_calls);
        #[cfg(feature = "simcheck")]
        {
            self.simcheck = img.simcheck;
        }
    }

    // ------------------------------------------------------------------
    // Trace checkpoint / warm start (on-disk form of the state image)
    // ------------------------------------------------------------------

    /// FNV digest of the full config debug form — the checkpoint
    /// envelope's compatibility fingerprint.
    fn config_digest(&self) -> u64 {
        fnv1a(format!("{:?}", self.config).as_bytes())
    }

    /// Serialises the paused run into a self-describing byte image. The
    /// envelope carries digests of the config and the trace, so a
    /// [`Cluster::restore`] into a different world is rejected instead of
    /// silently diverging. Call between [`Cluster::run_until`] and
    /// [`Cluster::resume`]; a warm-started run's metrics are
    /// byte-identical to an uninterrupted one.
    pub fn checkpoint(&self, trace: &Trace) -> Vec<u8> {
        let mut enc = Enc::new();
        write_header(
            &mut enc,
            self.config_digest(),
            trace_digest(trace),
            trace.len(),
        );
        for u in &self.units {
            save_unit(&mut enc, u);
        }
        self.cache.save_state(&mut enc);
        self.sched
            .as_ref()
            .expect("checkpoint outside a scheduling pass")
            .save_state(&mut enc);
        self.batcher.save_state(&mut enc);
        self.store.save_state(&mut enc);
        enc.put_bool(self.autoscaler.is_some());
        if let Some(a) = &self.autoscaler {
            a.save_state(&mut enc);
        }
        enc.put_usize(self.global_queue.len());
        for r in &self.global_queue {
            save_request(&mut enc, r);
        }
        self.metrics.save_state(&mut enc);
        enc.put_time(self.now);
        enc.put_time(self.last_completion);
        enc.put_bool(self.hot_model.is_some());
        if let Some(m) = self.hot_model {
            enc.put_u32(m.0);
        }
        enc.put_u64(self.local_moves);
        enc.put_u64(self.crashes);
        enc.put_u64(self.dispatch_seq);
        for w in self.rng.state() {
            enc.put_u64(w);
        }
        enc.put_u64(self.scale_ups);
        enc.put_u64(self.scale_downs);
        enc.put_usize(self.online_low);
        enc.put_usize(self.online_high);
        enc.put_u64(self.pending_total);
        enc.put_usize(self.idle_online);
        enc.put_usize(self.holding_units);
        enc.put_usize(self.draining_units);
        enc.put_f64(self.busy_secs);
        save_events(&mut enc, &self.events);
        enc.put_usize(self.next_arrival);
        enc.put_bool(self.run_started);
        // The sanitizer slot is written unconditionally so the wire
        // layout is identical with and without the `simcheck` feature —
        // a checkpoint taken by either build restores under either.
        #[cfg(feature = "simcheck")]
        self.simcheck.save_state(&mut enc);
        #[cfg(not(feature = "simcheck"))]
        {
            enc.put_u64(0);
            enc.put_time(SimTime::ZERO);
            enc.put_u64(0);
            enc.put_u64(0);
            enc.put_time(SimTime::ZERO);
            enc.put_usize(0);
            enc.put_u128(0);
        }
        enc.into_bytes()
    }

    /// Restores a [`Cluster::checkpoint`] image into this cluster, which
    /// must have been built from the same config and be resuming the
    /// same trace (both enforced by the envelope digests). On success
    /// the cluster is exactly the paused instant; drive it with
    /// [`Cluster::resume`] or [`Cluster::run_until`].
    pub fn restore(&mut self, bytes: &[u8], trace: &Trace) -> Result<(), SnapError> {
        let mut dec = Dec::new(bytes);
        read_header(
            &mut dec,
            self.config_digest(),
            trace_digest(trace),
            trace.len(),
        )?;
        for u in &mut self.units {
            load_unit(&mut dec, u)?;
        }
        self.cache.load_state(&mut dec)?;
        self.sched
            .as_mut()
            .expect("restore outside a scheduling pass")
            .load_state(&mut dec)?;
        self.batcher.load_state(&mut dec)?;
        self.store.load_state(&mut dec)?;
        if dec.bool()? != self.autoscaler.is_some() {
            return Err(SnapError::Corrupt("autoscaler presence mismatch"));
        }
        if let Some(a) = self.autoscaler.as_mut() {
            a.load_state(&mut dec)?;
        }
        let qlen = dec.usize()?;
        let mut queue = VecDeque::with_capacity(qlen.min(dec.remaining()));
        for _ in 0..qlen {
            queue.push_back(load_request(&mut dec)?);
        }
        self.global_queue = queue;
        self.metrics = MetricsCollector::load_state(&mut dec)?;
        self.now = dec.time()?;
        self.last_completion = dec.time()?;
        self.hot_model = if dec.bool()? {
            Some(ModelId(dec.u32()?))
        } else {
            None
        };
        self.local_moves = dec.u64()?;
        self.crashes = dec.u64()?;
        self.dispatch_seq = dec.u64()?;
        let mut rng_state = [0u64; 4];
        for w in &mut rng_state {
            *w = dec.u64()?;
        }
        if rng_state == [0u64; 4] {
            return Err(SnapError::Corrupt("all-zero rng state"));
        }
        self.rng = DetRng::from_state(rng_state);
        self.scale_ups = dec.u64()?;
        self.scale_downs = dec.u64()?;
        self.online_low = dec.usize()?;
        self.online_high = dec.usize()?;
        self.pending_total = dec.u64()?;
        self.idle_online = dec.usize()?;
        self.holding_units = dec.usize()?;
        self.draining_units = dec.usize()?;
        self.busy_secs = dec.f64()?;
        self.events = load_events(&mut dec)?;
        self.next_arrival = dec.usize()?;
        if self.next_arrival > trace.len() {
            return Err(SnapError::Corrupt("arrival cursor past trace end"));
        }
        self.run_started = dec.bool()?;
        #[cfg(feature = "simcheck")]
        self.simcheck.load_state(&mut dec)?;
        #[cfg(not(feature = "simcheck"))]
        {
            let _ = dec.u64()?;
            let _ = dec.time()?;
            let _ = dec.u64()?;
            let _ = dec.u64()?;
            let _ = dec.time()?;
            let _ = dec.usize()?;
            let _ = dec.u128()?;
        }
        dec.finish()?;
        // Derived state follows the restored queues.
        for gi in 0..self.units.len() {
            self.agg_rebuild(gi);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Speculative what-if scheduling (the lookahead policy's fork engine)
    // ------------------------------------------------------------------

    /// Forks the world, performs one candidate placement for the queued
    /// request at `queue_index`, replays up to `horizon` pending runtime
    /// events under a plain greedy LALBO3 scheduler, scores the outcome,
    /// and rolls everything back. The fork is invisible: recorder and
    /// datastore are stashed for its duration, and every other mutable
    /// bit — metrics, RNG, residency, queues, the event heap — is
    /// journaled and restored byte-identically.
    pub(crate) fn speculate_placement(
        &mut self,
        events: &mut EventQueue<Event>,
        queue_index: usize,
        placement: SpecPlacement,
        horizon: usize,
    ) -> SpecScore {
        let recorder = self.recorder.take();
        let datastore = self.datastore.take();
        let id = self.journal.snapshot(self.capture_image(events));
        let completed0 = self.metrics.completed();
        let lat0 = self.metrics.latency_sample_count();

        // The candidate leaves the global queue before placement — the
        // same bookkeeping as `SchedCtx::take_queued`, so conservation
        // audits hold inside the fork.
        let r = self
            .global_queue
            .remove(queue_index)
            .expect("speculated index in bounds");
        let qlen = self.global_queue.len();
        let now = self.now;
        self.note_queue_depth(now, qlen);
        match placement {
            SpecPlacement::HitOn(g) => self.dispatch_batched(g.0 as usize, r, true, events),
            SpecPlacement::MissOn(g) => self.dispatch_batched(g.0 as usize, r, false, events),
            SpecPlacement::WaitOn(g) => {
                let gi = g.0 as usize;
                self.agg_push(gi, &r);
                self.units[gi].local_queue.push_back(r);
                self.local_moves += 1;
            }
        }

        // The fork starts mid-pass: idle GPUs *after* the served one in
        // the round's order still have undrained local queues, which the
        // rest of the outer round would serve next (Algorithm 1's local
        // priority). Serve them now so the replay's own passes see the
        // post-round invariant — an idle GPU never sits on queued work.
        for gi in 0..self.units.len() {
            if self.units[gi].state != UnitState::Offline && self.units[gi].is_idle() {
                if let Some(r) = self.units[gi].local_queue.pop_front() {
                    self.agg_remove(gi, &r);
                    self.dispatch_batched(gi, r, true, events);
                }
            }
        }

        // Inside the fork the world advances under greedy LALBO3 — the
        // lookahead recursing into its own forks would never terminate.
        // Future *arrivals* are invisible to the fork; only the already
        // -pending runtime events replay.
        let outer = self
            .sched
            .replace(Box::new(LalbScheduler::new(DEFAULT_O3_LIMIT)));
        for _ in 0..horizon {
            let Some((t, ev)) = events.pop() else {
                break;
            };
            debug_assert!(t >= self.now, "event delivered out of order");
            self.profile.events_popped += 1;
            self.now = t;
            #[cfg(feature = "simcheck")]
            if self.simcheck.on_event(t) {
                self.audit_invariants();
            }
            self.handle_event(ev, events);
        }
        self.sched = outer;

        // The waiting bill: completions pay their latency, everything
        // still outstanding pays its age as of the fork's end time.
        let end = self.now;
        let age = |r: &Request| end.duration_since(r.arrival).as_micros() as u128;
        let mut cost_ticks = self.metrics.latency_ticks_from(lat0) as u128;
        cost_ticks += self.global_queue.iter().map(age).sum::<u128>();
        let mut pending = self.global_queue.len();
        for u in &self.units {
            pending += u.local_queue.len();
            cost_ticks += u.local_queue.iter().map(age).sum::<u128>();
            if let Some(f) = &u.in_flight {
                cost_ticks += f.requests.iter().map(age).sum::<u128>();
            }
            if let Some(h) = &u.holding {
                cost_ticks += h.requests.iter().map(age).sum::<u128>();
            }
        }
        let score = SpecScore {
            completed: self.metrics.completed() - completed0,
            cost_ticks,
            pending,
        };

        // `take` (not commit) retires only this fork's frame, so pins
        // the caller holds across the pass survive.
        let img = self.journal.take(id).expect("speculation frame is live");
        self.apply_image(img, events);
        self.recorder = recorder;
        self.datastore = datastore;
        score
    }

    /// [`GpuUnit::estimated_join_wait`] evaluated from the incremental
    /// aggregate: the preceding coalesced groups are charged from
    /// [`LocalAgg`]'s first-push-ordered sums and the walk early-returns
    /// at the request's own group, so the estimate costs O(preceding
    /// groups) instead of rebuilding a group list from the whole queue on
    /// every call. Byte-identical to the naive walk (same group order,
    /// same totals); debug builds assert that on every call, which is
    /// also what the property tests lean on.
    fn estimated_join_wait_fast(&self, gi: usize, model: ModelId) -> SimDuration {
        self.estimator_calls.set(self.estimator_calls.get() + 1);
        let unit = &self.units[gi];
        let mut wait = unit
            .device
            .busy_until()
            .map(|t| t.duration_since(self.now))
            .unwrap_or(SimDuration::ZERO);
        'done: {
            if let Some(f) = &unit.in_flight {
                if f.phase == Phase::Loading {
                    if f.model() == model {
                        break 'done; // joins the forming invocation
                    }
                    wait += self.infer_time_on(gi, f.model(), f.items());
                }
            }
            if let Some(h) = &unit.holding {
                wait += h.release_at.duration_since(self.now.min(h.release_at));
                if h.model() == model {
                    break 'done; // joins the held batch at its release
                }
                if !unit.device.has_model(h.model()) {
                    wait += self.load_time_on(gi, h.model());
                }
                wait += self.infer_time_on(gi, h.model(), h.items());
            }
            for &(m, items, _) in &self.local_aggs[gi].groups {
                if m == model {
                    break 'done; // shares its own group's invocation
                }
                if !unit.device.has_model(m) {
                    wait += self.load_time_on(gi, m);
                }
                wait += self.infer_time_on(gi, m, items);
            }
        }
        #[cfg(debug_assertions)]
        {
            let spec = unit.device.spec();
            let (compute_scale, load_scale) = (spec.compute_scale, spec.load_scale);
            let registry = &self.registry;
            let naive = unit.estimated_join_wait(
                self.now,
                model,
                |m, b| registry.infer_time(m, b).mul_f64(compute_scale),
                |m| self.load_cost_scaled(m, load_scale),
            );
            debug_assert_eq!(wait, naive, "join-wait aggregate out of sync on GPU {gi}");
        }
        wait
    }
}

/// A deep copy of every piece of mutable simulation state, pinned in the
/// snapshot journal. GPU units, queues, and the event heap are plain
/// clones; policy objects (scheduler, batcher, store, evictor inside the
/// cache, autoscaler) contribute their mutable state through the same
/// save/load hooks the on-disk checkpoint uses. Scratch buffers
/// (`batch_pool`, `idle_scratch`, `obs_scratch`) and attached sinks
/// (recorder, datastore) are deliberately not part of the image.
#[derive(Clone)]
struct ClusterImage {
    units: Vec<GpuUnit>,
    cache_blob: Vec<u8>,
    /// `None` exactly when captured during a scheduling pass (the policy
    /// is `mem::take`n then) — restore must agree on presence.
    sched_blob: Option<Vec<u8>>,
    batcher_blob: Vec<u8>,
    store_blob: Vec<u8>,
    autoscaler_blob: Option<Vec<u8>>,
    global_queue: VecDeque<Request>,
    metrics: MetricsImage,
    now: SimTime,
    last_completion: SimTime,
    hot_model: Option<ModelId>,
    local_moves: u64,
    crashes: u64,
    dispatch_seq: u64,
    rng: [u64; 4],
    scale_ups: u64,
    scale_downs: u64,
    online_low: usize,
    online_high: usize,
    pending_total: u64,
    idle_online: usize,
    holding_units: usize,
    draining_units: usize,
    busy_secs: f64,
    local_aggs: Vec<LocalAgg>,
    events: EventQueue<Event>,
    next_arrival: usize,
    run_started: bool,
    profile: SelfProfile,
    estimator_calls: u64,
    #[cfg(feature = "simcheck")]
    simcheck: SimChecker,
}

/// A candidate placement a lookahead policy can fork on — the three §IV
/// arms, addressed at an explicit GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecPlacement {
    /// Dispatch as a cache hit on this idle GPU.
    HitOn(GpuId),
    /// Join this busy GPU's local queue (Algorithm 2's wait arm).
    WaitOn(GpuId),
    /// Dispatch as a miss — load the model — on this idle GPU.
    MissOn(GpuId),
}

/// What a speculative fork observed over its replay horizon. Compared
/// lexicographically: more completions, then a smaller waiting bill.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecScore {
    /// Requests completed inside the fork.
    pub completed: u64,
    /// The fork's total waiting bill in integer microseconds: latency
    /// accumulated by its completions *plus* the age (time since
    /// arrival) of every request still outstanding — queued globally or
    /// locally, in flight, or held in a forming batch — when the horizon
    /// ended. Charging outstanding work its age (not a headcount) makes
    /// starvation visible to the scorer: a placement that serves the
    /// young and strands the old loses to one that drains the tail.
    pub cost_ticks: u128,
    /// Requests still queued (global + local) when the horizon ended.
    pub pending: usize,
}

impl SpecScore {
    /// Strict "this fork won": ties on every field answer false, so a
    /// deterministic caller iterating candidates in index order keeps
    /// the earliest of equals.
    pub fn better_than(&self, other: &SpecScore) -> bool {
        if self.completed != other.completed {
            return self.completed > other.completed;
        }
        if self.cost_ticks != other.cost_ticks {
            return self.cost_ticks < other.cost_ticks;
        }
        self.pending < other.pending
    }
}

/// FNV digest over the trace's observable arrival stream — the
/// checkpoint envelope's proof that a warm start resumes the same
/// workload it paused.
fn trace_digest(trace: &Trace) -> u64 {
    let mut h = Fnv1a::new();
    for r in trace.requests() {
        h.write_u64(r.at.as_micros());
        h.write_u64(r.function as u64);
        h.write_u64(r.model as u64);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Checkpoint codecs for the driver-owned plain-data state
// ---------------------------------------------------------------------------

fn save_request(enc: &mut Enc, r: &Request) {
    enc.put_u64(r.id);
    enc.put_u32(r.function);
    enc.put_u32(r.model.0);
    enc.put_usize(r.batch);
    enc.put_time(r.arrival);
    enc.put_u32(r.visits);
    enc.put_u16(r.tenant);
}

fn load_request(dec: &mut Dec<'_>) -> Result<Request, SnapError> {
    Ok(Request {
        id: dec.u64()?,
        function: dec.u32()?,
        model: ModelId(dec.u32()?),
        batch: dec.usize()?,
        arrival: dec.time()?,
        visits: dec.u32()?,
        tenant: dec.u16()?,
    })
}

fn save_inflight(enc: &mut Enc, f: &InFlight) {
    enc.put_usize(f.requests.len());
    for r in &f.requests {
        save_request(enc, r);
    }
    enc.put_u8(match f.phase {
        Phase::Loading => 0,
        Phase::Running => 1,
    });
    enc.put_bool(f.was_hit);
    enc.put_time(f.started);
    enc.put_u64(f.seq);
    enc.put_u8(f.tier.0);
}

fn load_inflight(dec: &mut Dec<'_>) -> Result<InFlight, SnapError> {
    let n = dec.usize()?;
    let mut requests = Vec::with_capacity(n.min(dec.remaining()));
    for _ in 0..n {
        requests.push(load_request(dec)?);
    }
    let phase = match dec.u8()? {
        0 => Phase::Loading,
        1 => Phase::Running,
        _ => return Err(SnapError::Corrupt("unknown in-flight phase")),
    };
    Ok(InFlight {
        requests,
        phase,
        was_hit: dec.bool()?,
        started: dec.time()?,
        seq: dec.u64()?,
        tier: Tier(dec.u8()?),
    })
}

fn save_hold(enc: &mut Enc, h: &HoldSlot) {
    enc.put_usize(h.requests.len());
    for r in &h.requests {
        save_request(enc, r);
    }
    enc.put_usize(h.max_requests);
    enc.put_bool(h.hit);
    enc.put_time(h.release_at);
    enc.put_u64(h.seq);
}

fn load_hold(dec: &mut Dec<'_>) -> Result<HoldSlot, SnapError> {
    let n = dec.usize()?;
    let mut requests = Vec::with_capacity(n.min(dec.remaining()));
    for _ in 0..n {
        requests.push(load_request(dec)?);
    }
    Ok(HoldSlot {
        requests,
        max_requests: dec.usize()?,
        hit: dec.bool()?,
        release_at: dec.time()?,
        seq: dec.u64()?,
    })
}

fn save_unit(enc: &mut Enc, u: &GpuUnit) {
    u.device.save_state(enc);
    enc.put_usize(u.local_queue.len());
    for r in &u.local_queue {
        save_request(enc, r);
    }
    enc.put_bool(u.in_flight.is_some());
    if let Some(f) = &u.in_flight {
        save_inflight(enc, f);
    }
    enc.put_bool(u.holding.is_some());
    if let Some(h) = &u.holding {
        save_hold(enc, h);
    }
    enc.put_u64(u.hits);
    enc.put_time(u.idle_since);
    enc.put_u8(match u.state {
        UnitState::Online => 0,
        UnitState::Draining => 1,
        UnitState::Offline => 2,
    });
    enc.put_time(u.online_since);
    enc.put_dur(u.provisioned);
}

fn load_unit(dec: &mut Dec<'_>, u: &mut GpuUnit) -> Result<(), SnapError> {
    u.device.load_state(dec)?;
    let n = dec.usize()?;
    let mut queue = VecDeque::with_capacity(n.min(dec.remaining()));
    for _ in 0..n {
        queue.push_back(load_request(dec)?);
    }
    u.local_queue = queue;
    u.in_flight = if dec.bool()? {
        Some(load_inflight(dec)?)
    } else {
        None
    };
    u.holding = if dec.bool()? {
        Some(load_hold(dec)?)
    } else {
        None
    };
    u.hits = dec.u64()?;
    u.idle_since = dec.time()?;
    u.state = match dec.u8()? {
        0 => UnitState::Online,
        1 => UnitState::Draining,
        2 => UnitState::Offline,
        _ => return Err(SnapError::Corrupt("unknown unit state")),
    };
    u.online_since = dec.time()?;
    u.provisioned = dec.dur()?;
    Ok(())
}

fn save_events(enc: &mut Enc, q: &EventQueue<Event>) {
    enc.put_u64(q.next_seq());
    enc.put_u64(q.total_scheduled());
    enc.put_u64(q.total_delivered());
    let entries = q.entries();
    enc.put_usize(entries.len());
    for (t, seq, ev) in entries {
        enc.put_time(t);
        enc.put_u64(seq);
        save_event(enc, ev);
    }
}

fn load_events(dec: &mut Dec<'_>) -> Result<EventQueue<Event>, SnapError> {
    let next_seq = dec.u64()?;
    let scheduled = dec.u64()?;
    let delivered = dec.u64()?;
    let n = dec.usize()?;
    let mut entries = Vec::with_capacity(n.min(dec.remaining()));
    for _ in 0..n {
        let t = dec.time()?;
        let seq = dec.u64()?;
        entries.push((t, seq, load_event(dec)?));
    }
    Ok(EventQueue::from_parts(
        entries, next_seq, scheduled, delivered,
    ))
}

fn save_event(enc: &mut Enc, ev: &Event) {
    match ev {
        Event::GpuDone(g, seq) => {
            enc.put_u8(0);
            enc.put_u16(g.0);
            enc.put_u64(*seq);
        }
        Event::GpuCrash(g, seq) => {
            enc.put_u8(1);
            enc.put_u16(g.0);
            enc.put_u64(*seq);
        }
        Event::ScaleTick => enc.put_u8(2),
        Event::BatchHold(g, seq) => {
            enc.put_u8(3);
            enc.put_u16(g.0);
            enc.put_u64(*seq);
        }
        Event::ObsTick => enc.put_u8(4),
    }
}

fn load_event(dec: &mut Dec<'_>) -> Result<Event, SnapError> {
    Ok(match dec.u8()? {
        0 => Event::GpuDone(GpuId(dec.u16()?), dec.u64()?),
        1 => Event::GpuCrash(GpuId(dec.u16()?), dec.u64()?),
        2 => Event::ScaleTick,
        3 => Event::BatchHold(GpuId(dec.u16()?), dec.u64()?),
        4 => Event::ObsTick,
        _ => return Err(SnapError::Corrupt("unknown event tag")),
    })
}

/// The borrowed cluster view a [`SchedulerPolicy`] works through during a
/// scheduling pass: read access to the global queue, GPU/cache/finish-time
/// state, plus the two Algorithm 2 placement commands that execute on
/// *other* GPUs ([`SchedCtx::dispatch_hit`], [`SchedCtx::enqueue_local`]).
pub struct SchedCtx<'a> {
    cluster: &'a mut Cluster,
    events: &'a mut EventQueue<Event>,
    progress: bool,
}

impl SchedCtx<'_> {
    // --- global queue -------------------------------------------------

    /// Requests currently waiting in the global queue.
    pub fn queue_len(&self) -> usize {
        self.cluster.global_queue.len()
    }

    /// The queued request at position `i` (0 = head, arrival order).
    pub fn queued(&self, i: usize) -> &Request {
        &self.cluster.global_queue[i]
    }

    /// Removes and returns the queued request at position `i` for
    /// dispatch.
    pub fn take_queued(&mut self, i: usize) -> Request {
        let r = self
            .cluster
            .global_queue
            .remove(i)
            .expect("index in bounds");
        let qlen = self.cluster.global_queue.len();
        let now = self.cluster.now;
        self.cluster.note_queue_depth(now, qlen);
        if self.cluster.recorder.is_some() {
            self.cluster.emit(ObsEvent::QueueDepth { len: qlen });
        }
        r
    }

    /// Records that the request at position `i` was passed over by
    /// out-of-order dispatch (Algorithm 1's visit counter).
    pub fn note_skip(&mut self, i: usize) {
        self.cluster.global_queue[i].visits += 1;
    }

    /// True iff §VI isolation forbids dispatching more work for `tenant`.
    pub fn tenant_blocked(&self, tenant: u16) -> bool {
        self.cluster.tenant_blocked(tenant)
    }

    // --- GPU state ----------------------------------------------------

    /// True iff `gpu` has no request in flight.
    pub fn is_idle(&self, gpu: GpuId) -> bool {
        self.cluster.units[gpu.0 as usize].is_idle()
    }

    /// Requests waiting in `gpu`'s local queue. An idle GPU with a
    /// backlog is mid-pass — Algorithm 1's local priority will serve it
    /// before new work may target it, so hit-elsewhere arms must skip it.
    pub fn local_backlog(&self, gpu: GpuId) -> usize {
        self.cluster.units[gpu.0 as usize].local_queue.len()
    }

    /// Cache hits `gpu` has served (Algorithm 1's frequency ordering key).
    pub fn hits(&self, gpu: GpuId) -> u64 {
        self.cluster.units[gpu.0 as usize].hits
    }

    /// When `gpu` last became idle (LB's longest-idle ordering key).
    pub fn idle_since(&self, gpu: GpuId) -> SimTime {
        self.cluster.units[gpu.0 as usize].idle_since
    }

    /// Estimated time until `gpu` drains its in-flight request and local
    /// queue (the paper's finish-time estimate), on this GPU's own
    /// compute and PCIe profiles. Queued requests whose model is not
    /// resident are charged their upload as well as their inference, so
    /// the wait-vs-load comparison stays honest for policies that queue
    /// non-resident work. When a batching policy is active, same-model
    /// queued work is charged as one coalesced invocation — the time the
    /// driver will actually spend — which makes waiting at a busy holder
    /// correctly cheaper than replicating the model.
    pub fn estimated_wait(&self, gpu: GpuId) -> SimDuration {
        self.cluster.estimated_wait_fast(gpu.0 as usize)
    }

    /// The wait a request for `model` would see before being *served* if
    /// queued at busy `gpu` — what Algorithm 2 compares against the load
    /// time. Under per-request dispatch this is exactly
    /// [`SchedCtx::estimated_wait`]; under batching the request shares
    /// its model's coalesced invocation (a forming load, a held batch,
    /// or a local-queue group), so only preceding work counts.
    pub fn estimated_wait_for(&self, gpu: GpuId, model: ModelId) -> SimDuration {
        if self.cluster.batcher.is_passthrough() {
            return self.estimated_wait(gpu);
        }
        self.cluster.estimated_join_wait_fast(gpu.0 as usize, model)
    }

    /// Time to upload `model` onto `gpu` (scaled by its PCIe profile).
    pub fn load_time(&self, gpu: GpuId, model: ModelId) -> SimDuration {
        self.cluster.load_time_on(gpu.0 as usize, model)
    }

    // --- cache state --------------------------------------------------

    /// True iff `model` is resident on `gpu`.
    pub fn is_cached(&self, gpu: GpuId, model: ModelId) -> bool {
        self.cluster.cache.is_cached(gpu, model)
    }

    /// GPUs currently holding `model`, in id order (the §VI replica
    /// list). Only online GPUs count: a draining GPU still holds its
    /// models but must not attract new work, and its residents are about
    /// to be evicted anyway.
    pub fn holders(&self, model: ModelId) -> Vec<GpuId> {
        self.cluster
            .cache
            .holders(model)
            .iter()
            .copied()
            .filter(|&g| self.cluster.units[g.0 as usize].state == UnitState::Online)
            .collect()
    }

    // --- config / time ------------------------------------------------

    /// Algorithm 2's busy-holder handling (ablation knob).
    pub fn busy_wait(&self) -> BusyWaitPolicy {
        self.cluster.config.busy_wait
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.cluster.now
    }

    // --- placement commands (execute immediately) ---------------------

    /// Dispatches `r` as a cache hit on idle GPU `gpu` (Algorithm 2's
    /// hit-elsewhere arm). Executes immediately so later decisions in the
    /// same pass see `gpu` busy.
    pub fn dispatch_hit(&mut self, gpu: GpuId, r: Request) {
        let gi = gpu.0 as usize;
        debug_assert!(
            self.cluster.units[gi].local_queue.is_empty(),
            "idle GPUs have drained local queues"
        );
        if self.cluster.recorder.is_some() {
            let id = r.id;
            self.cluster.emit(ObsEvent::SchedArm {
                req: id,
                arm: Arm::HitRemote,
            });
        }
        self.cluster.dispatch_batched(gi, r, true, self.events);
        self.progress = true;
    }

    /// Appends `r` to busy GPU `gpu`'s local queue (Algorithm 2's
    /// wait-on-busy arm). Executes immediately so later finish-time
    /// estimates in the same pass include `r`.
    pub fn enqueue_local(&mut self, gpu: GpuId, r: Request) {
        let gi = gpu.0 as usize;
        if self.cluster.recorder.is_some() {
            let (id, model) = (r.id, r.model);
            self.cluster.emit(ObsEvent::SchedArm {
                req: id,
                arm: Arm::WaitBusy,
            });
            self.cluster.emit(ObsEvent::LocalEnqueue {
                req: id,
                gpu,
                model,
            });
        }
        self.cluster.agg_push(gi, &r);
        self.cluster.units[gi].local_queue.push_back(r);
        self.cluster.local_moves += 1;
        self.progress = true;
    }

    /// Dispatches `r` as a cache miss (load, then inference) on idle GPU
    /// `gpu` — completes the placement command set so a policy can
    /// execute any [`SpecPlacement`] it scored, not just the arms
    /// addressed at the GPU currently being served.
    pub fn dispatch_miss(&mut self, gpu: GpuId, r: Request) {
        let gi = gpu.0 as usize;
        if self.cluster.recorder.is_some() {
            let id = r.id;
            self.cluster.emit(ObsEvent::SchedArm {
                req: id,
                arm: Arm::Miss,
            });
        }
        self.cluster.dispatch_batched(gi, r, false, self.events);
        self.progress = true;
    }

    /// What-if fork: tries placing the queued request at `queue_index`
    /// per `placement`, replays up to `horizon` pending runtime events
    /// under greedy LALBO3, and reports the outcome — then restores the
    /// world byte-identically, as if the fork never ran.
    pub fn speculate(
        &mut self,
        queue_index: usize,
        placement: SpecPlacement,
        horizon: usize,
    ) -> SpecScore {
        self.cluster
            .speculate_placement(self.events, queue_index, placement, horizon)
    }

    /// Executes a policy's dispatch for `gpu` (driver-internal).
    fn apply(&mut self, gpu: GpuId, dispatch: Dispatch) {
        let gi = gpu.0 as usize;
        match dispatch {
            Dispatch::None => {}
            Dispatch::Hit(r) => {
                if self.cluster.recorder.is_some() {
                    let id = r.id;
                    self.cluster.emit(ObsEvent::SchedArm {
                        req: id,
                        arm: Arm::HitLocal,
                    });
                }
                self.cluster.dispatch_batched(gi, r, true, self.events);
                self.progress = true;
            }
            Dispatch::Miss(r) => {
                if self.cluster.recorder.is_some() {
                    let id = r.id;
                    self.cluster.emit(ObsEvent::SchedArm {
                        req: id,
                        arm: Arm::Miss,
                    });
                }
                self.cluster.dispatch_batched(gi, r, false, self.events);
                self.progress = true;
            }
        }
    }
}

/// The borrowed, read-only cluster view an [`Autoscaler`] observes on
/// each step: global queue depth, fleet composition, and per-GPU
/// utilisation and residency signals.
pub struct ScaleView<'a> {
    pub(crate) cluster: &'a Cluster,
}

impl ScaleView<'_> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.cluster.now
    }

    /// Requests waiting in the global queue — the pressure signal.
    pub fn queue_len(&self) -> usize {
        self.cluster.global_queue.len()
    }

    /// Devices in the pool (online + draining + offline) — the autoscale
    /// `max_gpus`.
    pub fn total_gpus(&self) -> usize {
        self.cluster.units.len()
    }

    /// Online (dispatchable) GPUs.
    pub fn active_gpus(&self) -> usize {
        self.cluster.online_gpus()
    }

    /// GPUs currently draining toward offline.
    pub fn draining_gpus(&self) -> usize {
        self.cluster
            .units
            .iter()
            .filter(|u| u.state == UnitState::Draining)
            .count()
    }

    /// Online GPUs with a request in flight.
    pub fn busy_gpus(&self) -> usize {
        self.cluster
            .units
            .iter()
            .filter(|u| u.state == UnitState::Online && !u.is_idle())
            .count()
    }

    /// The online GPUs, in id order.
    pub fn online(&self) -> Vec<GpuId> {
        self.cluster
            .units
            .iter()
            .filter(|u| u.state == UnitState::Online)
            .map(|u| u.id())
            .collect()
    }

    /// How long `gpu` has been idle, or `None` when busy or not online.
    pub fn idle_secs(&self, gpu: GpuId) -> Option<f64> {
        let unit = &self.cluster.units[gpu.0 as usize];
        (unit.state == UnitState::Online && unit.is_idle()).then(|| {
            self.cluster
                .now
                .duration_since(unit.idle_since)
                .as_secs_f64()
        })
    }

    /// Depth of `gpu`'s local queue.
    pub fn local_depth(&self, gpu: GpuId) -> usize {
        self.cluster.units[gpu.0 as usize].local_queue.len()
    }

    /// Number of models resident on `gpu`.
    pub fn resident_models(&self, gpu: GpuId) -> usize {
        self.cluster.units[gpu.0 as usize].device.resident_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Policy;
    use gfaas_models::zoo::{Family, ModelSpec};
    use gfaas_trace::TraceRequest;

    /// A registry of `n` identical small models: 100 MiB, 1 s load, 1 s
    /// inference at batch 32 — easy arithmetic for assertions.
    fn toy_registry(n: usize) -> ModelRegistry {
        let specs: Vec<ModelSpec> = (0..n)
            .map(|i| ModelSpec {
                name: Box::leak(format!("toy{i}").into_boxed_str()),
                occupancy_mib: 100,
                load_secs: 1.0,
                infer_secs_b32: 1.0,
                family: Family::ResNet,
            })
            .collect();
        ModelRegistry::from_specs(specs)
    }

    fn trace_of(reqs: &[(f64, u32)]) -> Trace {
        Trace::new(
            reqs.iter()
                .map(|&(s, m)| TraceRequest {
                    at: SimTime::from_secs_f64(s),
                    function: m,
                    model: m,
                })
                .collect(),
        )
    }

    fn cluster(gpus: usize, mem_mib: u64, policy: Policy, nmodels: usize) -> Cluster {
        Cluster::new(
            ClusterConfig::test(gpus, mem_mib, policy),
            toy_registry(nmodels),
        )
    }

    #[test]
    fn single_request_is_a_cold_miss() {
        let mut c = cluster(1, 1000, Policy::lalb(), 1);
        let m = c.run(&trace_of(&[(0.0, 0)]));
        assert_eq!(m.completed, 1);
        assert_eq!(m.miss_ratio, 1.0);
        assert_eq!(m.false_miss_ratio, 0.0, "cold miss is not a false miss");
        // Latency = load (1 s) + inference (1 s).
        assert!((m.avg_latency_secs - 2.0).abs() < 1e-6);
    }

    #[test]
    fn repeat_requests_hit_the_cache() {
        let mut c = cluster(1, 1000, Policy::lalb(), 1);
        let m = c.run(&trace_of(&[(0.0, 0), (10.0, 0), (20.0, 0)]));
        assert_eq!(m.completed, 3);
        assert!((m.miss_ratio - 1.0 / 3.0).abs() < 1e-9);
        // Hits take only the 1 s inference.
        assert!((m.max_latency_secs - 2.0).abs() < 1e-6);
    }

    #[test]
    fn lalb_routes_to_the_gpu_with_the_model() {
        // Two GPUs; model 0 lands on one of them; a later request for
        // model 0 must hit even though the other GPU is idle (and longest
        // idle, which would attract an LB dispatch).
        let mut c = cluster(2, 1000, Policy::lalb(), 2);
        let m = c.run(&trace_of(&[(0.0, 0), (10.0, 1), (20.0, 0)]));
        assert_eq!(m.completed, 3);
        assert_eq!(m.misses, 2, "only the two cold loads miss");
        assert_eq!(m.false_misses, 0);
    }

    #[test]
    fn lb_ignores_locality_and_false_misses() {
        // Two GPUs. Request A(m0) → gpu0. B(m1) → gpu1. C(m0) arrives when
        // both idle; LB picks the longest-idle GPU = gpu0 — which *does*
        // hold m0... so use 3 GPUs to force the false miss deterministically:
        // gpu2 has been idle longest (never used) and lacks m0.
        let mut c = cluster(3, 1000, Policy::lb(), 2);
        let m = c.run(&trace_of(&[(0.0, 0), (10.0, 1), (20.0, 0)]));
        assert_eq!(m.completed, 3);
        assert_eq!(m.misses, 3, "LB sends the repeat to the cold GPU");
        assert_eq!(m.false_misses, 1, "the repeat was cached elsewhere");
    }

    #[test]
    fn lalb_waits_on_busy_holder_when_faster_than_loading() {
        // One GPU holds model 0 and is busy with a 1 s inference; load
        // time is 1 s. A second request for model 0 arrives mid-inference:
        // remaining wait (~0.5 s) < load (1 s) → join the local queue, hit.
        let mut c = cluster(2, 1000, Policy::lalb(), 1);
        let m = c.run(&trace_of(&[(0.0, 0), (2.5, 0)]));
        // First: load 1s + infer 1s, busy [0,2]... arrives 2.5 when idle.
        // Make it overlap instead:
        assert_eq!(m.completed, 2);
        let mut c2 = cluster(2, 1000, Policy::lalb(), 1);
        let m2 = c2.run(&trace_of(&[(0.0, 0), (1.5, 0)]));
        // At t=1.5 gpu0 is inferring until t=2 (wait 0.5 < load 1).
        assert_eq!(m2.misses, 1, "second request waits for the busy holder");
        assert_eq!(c2.local_moves(), 1);
        // First request: load+infer = 2 s latency. Second: starts at t=2
        // off the local queue, finishes t=3 → latency 1.5 s.
        assert!((m2.max_latency_secs - 2.0).abs() < 1e-6);
        assert!((m2.avg_latency_secs - 1.75).abs() < 1e-6);
    }

    #[test]
    fn lalb_prefers_idle_miss_when_busy_holder_is_slow() {
        // gpu0 holds model 0 but has a long local backlog; a cold load on
        // idle gpu1 (1 s) beats waiting. Build backlog with three quick
        // requests for model 0 arriving together, then the probe.
        let mut c = cluster(2, 1000, Policy::lalb(), 1);
        let m = c.run(&trace_of(&[(0.0, 0), (0.1, 0), (0.2, 0), (0.3, 0)]));
        // t=0: miss on gpu0 (load until 1, infer until 2).
        // t=0.1: holder busy, wait = 1.9 > load 1 → miss on gpu1.
        // t=0.2: holders both busy; waits (1.8, 1.9-ish)... with both busy
        // and no idle GPU nothing dispatches until one frees.
        assert_eq!(m.completed, 4);
        assert_eq!(m.misses, 2, "duplicate replica created by load balancing");
        assert_eq!(
            m.false_misses, 1,
            "the replica is a false miss by definition"
        );
    }

    #[test]
    fn o3_dispatches_later_hit_ahead_of_head() {
        // gpu0 holds m0, gpu1 holds m1; both become idle at t≈2. Queue at
        // that moment: [m2 (cold), m0]. With O3, gpu0 should serve m0
        // first (hit), skipping m2; m2 then loads on gpu1's... gpu1 scans:
        // no m1 request; LLB places m2 as a miss there.
        let mut c = cluster(2, 1000, Policy::lalbo3(), 3);
        let m = c.run(&trace_of(&[(0.0, 0), (0.0, 1), (1.5, 2), (1.6, 0)]));
        assert_eq!(m.completed, 4);
        // Misses: m0 cold, m1 cold, m2 cold = 3. The m0 repeat must hit.
        assert_eq!(m.misses, 3);
        assert_eq!(m.hit_ratio, 0.25);
    }

    #[test]
    fn lalb_without_o3_serves_in_order() {
        // Same workload as the O3 test but limit 0: when gpu0 frees up,
        // the head (m2, cold) is placed there first, and m0's repeat then
        // replicates m0 onto gpu1 because waiting behind m2's load+infer
        // (2 s) is slower than a fresh 1 s load. In-order service costs a
        // fourth miss — and it is a false miss — exactly the behaviour O3
        // dispatch eliminates (compare `o3_dispatches_later_hit_ahead_of_head`).
        let mut c = cluster(2, 1000, Policy::lalb(), 3);
        let m = c.run(&trace_of(&[(0.0, 0), (0.0, 1), (1.5, 2), (1.6, 0)]));
        assert_eq!(m.completed, 4);
        assert_eq!(m.misses, 4);
        assert_eq!(m.false_misses, 1);
    }

    #[test]
    fn starvation_limit_bounds_visits() {
        // One m1 request queues at the head while a long stream of m0
        // hits arrives behind it (m0 is resident, m1 is not). O3 keeps
        // skipping the m1 head in favour of the m0 hits, incrementing its
        // visit counter each pass; once the counter reaches the limit the
        // head must be dispatched regardless. We read the per-request
        // latency back through the datastore mirror.
        let run = |limit: u32| {
            let mut cfg = ClusterConfig::test(1, 250, Policy::lalb_with_limit(limit));
            cfg.report_to_datastore = true;
            let ds = Arc::new(Datastore::new());
            let mut c = Cluster::new(cfg, toy_registry(2)).with_datastore(Arc::clone(&ds));
            let mut reqs = vec![(0.0, 0), (0.1, 1)]; // id 0 = m0, id 1 = m1
            for i in 0..20 {
                reqs.push((0.2 + i as f64 * 0.01, 0));
            }
            let m = c.run(&trace_of(&reqs));
            assert_eq!(m.completed, 22);
            let lat: f64 = String::from_utf8(ds.get("/latency/1").unwrap().value.to_vec())
                .unwrap()
                .parse()
                .unwrap();
            lat
        };
        // Limit 2: m1 is skipped twice (t=2, t=3 passes), then force-
        // dispatched: load 4→5, infer 5→6 → latency ≈ 5.9 s.
        let bounded = run(2);
        assert!((bounded - 5.9).abs() < 0.01, "bounded latency {bounded}");
        // A huge limit starves m1 behind all 20 hits: served at t≈22.
        let starved = run(1000);
        assert!(starved > 20.0, "starved latency {starved}");
    }

    #[test]
    fn eviction_under_memory_pressure() {
        // GPU fits two 100 MiB models; touch three models round-robin.
        let mut c = cluster(1, 250, Policy::lalb(), 3);
        let m = c.run(&trace_of(&[
            (0.0, 0),
            (10.0, 1),
            (20.0, 2), // evicts m0 (LRU)
            (30.0, 0), // miss again (was evicted), evicts m1
        ]));
        assert_eq!(m.completed, 4);
        assert_eq!(m.misses, 4);
        assert_eq!(c.evictions(), 2);
    }

    #[test]
    fn duplicates_metric_tracks_hot_model() {
        let mut c = cluster(3, 1000, Policy::lb(), 2);
        // Hot model 0 gets replicated by LB across GPUs.
        let m = c.run(&trace_of(&[
            (0.0, 0),
            (0.1, 0),
            (0.2, 0),
            (10.0, 0),
            (10.1, 0),
        ]));
        assert_eq!(m.completed, 5);
        assert!(m.avg_duplicates > 0.5, "duplicates {:?}", m.avg_duplicates);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = trace_of(&[(0.0, 0), (0.5, 1), (1.0, 2), (1.5, 0), (2.0, 1)]);
        let m1 = cluster(2, 250, Policy::lalbo3(), 3).run(&t);
        let m2 = cluster(2, 250, Policy::lalbo3(), 3).run(&t);
        assert_eq!(m1, m2);
    }

    #[test]
    fn saturated_queue_eventually_drains() {
        // 50 requests for 5 models on 1 small GPU: heavy thrash, but all
        // must complete and the makespan must be finite and consistent.
        let reqs: Vec<(f64, u32)> = (0..50).map(|i| (i as f64 * 0.01, (i % 5) as u32)).collect();
        let mut c = cluster(1, 250, Policy::lalbo3(), 5);
        let m = c.run(&trace_of(&reqs));
        assert_eq!(m.completed, 50);
        assert!(m.makespan_secs > 50.0, "50 × ≥1 s of serial inference");
        assert!(m.queue_peak > 10);
    }

    #[test]
    fn datastore_mirroring_writes_keys() {
        let ds = Arc::new(Datastore::new());
        let mut cfg = ClusterConfig::test(1, 1000, Policy::lalb());
        cfg.report_to_datastore = true;
        let mut c = Cluster::new(cfg, toy_registry(1)).with_datastore(Arc::clone(&ds));
        c.run(&trace_of(&[(0.0, 0)]));
        assert_eq!(
            ds.get("/gpu/0/status").unwrap().value,
            bytes::Bytes::from_static(b"idle")
        );
        assert!(ds.get("/gpu/0/lru").is_some());
        assert!(ds.get("/latency/0").is_some());
    }

    #[test]
    fn heterogeneous_gpu_uses_its_own_profile() {
        // One GPU scaled to half load and half inference time: a cold
        // request costs 0.5 + 0.5 = 1 s instead of 2 s.
        let mut cfg = ClusterConfig::test(1, 1000, Policy::lalb());
        cfg.hetero_specs = Some(vec![gfaas_gpu::GpuSpec::test(1000).with_scales(0.5, 0.5)]);
        let mut c = Cluster::new(cfg, toy_registry(1));
        let m = c.run(&trace_of(&[(0.0, 0)]));
        assert!(
            (m.avg_latency_secs - 1.0).abs() < 1e-6,
            "{}",
            m.avg_latency_secs
        );
    }

    #[test]
    fn heterogeneous_estimation_prefers_fast_busy_holder() {
        // gpu0 (fast, holds m0, busy) vs gpu1 (slow, idle). The fast
        // holder's estimated wait (0.25 s remaining) beats a slow cold
        // load (1 s) → the repeat request queues locally and hits.
        let mut cfg = ClusterConfig::test(2, 1000, Policy::lalb());
        cfg.hetero_specs = Some(vec![
            gfaas_gpu::GpuSpec::test(1000).with_scales(0.5, 0.5),
            gfaas_gpu::GpuSpec::test(1000),
        ]);
        let mut c = Cluster::new(cfg, toy_registry(1));
        // First m0 at t=0 → fast gpu0 (ids tie-break): busy until t=1.0.
        // Second m0 at t=0.75: gpu0 wait 0.25 < load-on-gpu1 1.0 → wait.
        let m = c.run(&trace_of(&[(0.0, 0), (0.75, 0)]));
        assert_eq!(m.misses, 1, "repeat must wait for the fast holder");
        assert_eq!(c.local_moves(), 1);
    }

    #[test]
    fn tenant_cap_serialises_one_tenant() {
        // Tenant 0 (even functions) capped at 1 concurrent request; three
        // of its requests arrive together on a 3-GPU cluster. They must
        // run one at a time even though GPUs are free.
        let mut cfg = ClusterConfig::test(3, 1000, Policy::lalbo3());
        cfg.num_tenants = 2;
        cfg.tenant_max_inflight = Some(1);
        let mut c = Cluster::new(cfg, toy_registry(1));
        let m = c.run(&trace_of(&[(0.0, 0), (0.0, 0), (0.0, 0)]));
        assert_eq!(m.completed, 3);
        // Serialised: 2 s (cold) + 1 s + 1 s → last completes at t=4,
        // so max latency is 4 s (vs 2 s if run in parallel).
        assert!(
            (m.max_latency_secs - 4.0).abs() < 1e-6,
            "{}",
            m.max_latency_secs
        );
    }

    #[test]
    fn tenant_cap_does_not_starve_other_tenants() {
        // Tenant 0 floods; tenant 1's single request (odd function rank)
        // must still be served promptly on a free GPU.
        let mut cfg = ClusterConfig::test(2, 1000, Policy::lalbo3());
        cfg.num_tenants = 2;
        cfg.tenant_max_inflight = Some(1);
        cfg.report_to_datastore = true;
        let ds = Arc::new(Datastore::new());
        let mut c = Cluster::new(cfg, toy_registry(2)).with_datastore(Arc::clone(&ds));
        // ids: 0..4 are tenant 0 (function 0 → model 0); id 5 is tenant 1.
        let m = c.run(&trace_of(&[
            (0.0, 0),
            (0.0, 0),
            (0.0, 0),
            (0.0, 0),
            (0.0, 0),
            (0.1, 1),
        ]));
        assert_eq!(m.completed, 6);
        let lat: f64 = String::from_utf8(ds.get("/latency/5").unwrap().value.to_vec())
            .unwrap()
            .parse()
            .unwrap();
        // Tenant 1's request cold-loads immediately on the second GPU:
        // ~2 s, not behind tenant 0's ~6 s backlog.
        assert!(lat < 2.5, "tenant 1 latency {lat}");
    }

    #[test]
    fn crashes_are_retried_and_complete() {
        let mut cfg = ClusterConfig::test(2, 1000, Policy::lalbo3());
        cfg.crash_rate = 0.3;
        cfg.seed = 5;
        let mut c = Cluster::new(cfg, toy_registry(3));
        let reqs: Vec<(f64, u32)> = (0..40).map(|i| (i as f64 * 0.8, (i % 3) as u32)).collect();
        let m = c.run(&trace_of(&reqs));
        // Every request completes exactly once despite crashes.
        assert_eq!(m.completed, 40);
        assert!(c.crashes() > 0, "30% crash rate must fire at least once");
        // A crashed model was evicted, so crashes inflate the miss count
        // beyond the distinct-model minimum.
        assert!(m.misses > 3);
        // Ratios stay sane.
        assert!(m.miss_ratio <= 1.0 && m.hit_ratio <= 1.0);
    }

    #[test]
    fn crash_free_config_never_crashes() {
        let mut c = cluster(2, 1000, Policy::lalbo3(), 2);
        let m = c.run(&trace_of(&[(0.0, 0), (1.0, 1), (2.0, 0)]));
        assert_eq!(c.crashes(), 0);
        assert_eq!(m.completed, 3);
    }

    #[test]
    fn crash_latency_includes_the_retry() {
        // With crash_rate 1.0 nothing would ever complete (every attempt
        // crashes); use a rate that certainly fires on the first draw for
        // this seed but lets the retry through. Probe seeds for one where
        // exactly the first attempt crashes.
        for seed in 0..50u64 {
            let mut cfg = ClusterConfig::test(1, 1000, Policy::lalb());
            cfg.crash_rate = 0.5;
            cfg.seed = seed;
            let mut c = Cluster::new(cfg, toy_registry(1));
            let m = c.run(&trace_of(&[(0.0, 0)]));
            assert_eq!(m.completed, 1);
            if c.crashes() == 1 {
                // load 1s + partial inference + reload 1s + inference 1s
                // → latency strictly above the crash-free 2 s.
                assert!(m.avg_latency_secs > 2.0, "latency {}", m.avg_latency_secs);
                return;
            }
        }
        panic!("no seed in 0..50 produced exactly one crash");
    }

    #[test]
    fn sm_utilization_counts_inference_only() {
        // One request: load 1 s + infer 1 s → SM busy 1 of 2 s.
        let mut c = cluster(1, 1000, Policy::lalb(), 1);
        let m = c.run(&trace_of(&[(0.0, 0)]));
        assert!((m.sm_utilization - 0.5).abs() < 1e-6);
    }

    // ------------------------------------------------------------------
    // Autoscaling
    // ------------------------------------------------------------------

    #[test]
    fn fixed_cluster_reports_full_fleet_gpu_seconds() {
        let mut c = cluster(2, 1000, Policy::lalb(), 1);
        let m = c.run(&trace_of(&[(0.0, 0)]));
        assert!(
            (m.gpu_seconds_provisioned - 2.0 * m.makespan_secs).abs() < 1e-9,
            "{} vs {}",
            m.gpu_seconds_provisioned,
            m.makespan_secs
        );
        assert_eq!(m.scale_up_events, 0);
        assert_eq!(m.scale_down_events, 0);
        assert_eq!(c.online_bounds(), (2, 2));
    }

    #[test]
    fn queue_pressure_scales_up_then_releases_the_quiet_fleet() {
        let mut cfg = ClusterConfig::test(2, 1000, Policy::lalbo3());
        cfg.autoscale = Some("queue:min=1,max=4,up=3,down=0,cadence=1".parse().unwrap());
        let mut c = Cluster::new(cfg, toy_registry(4));
        // A 12-request burst at t=0 swamps the 2-GPU initial fleet; a
        // long quiet gap then lets the autoscaler release capacity before
        // a final straggler arrives.
        let mut reqs: Vec<(f64, u32)> = (0..12).map(|i| (0.0, (i % 4) as u32)).collect();
        reqs.push((40.0, 0));
        let m = c.run(&trace_of(&reqs));
        assert_eq!(m.completed, 13, "no request lost across scale events");
        assert!(m.scale_up_events >= 2, "burst must provision GPUs");
        assert!(m.scale_down_events >= 1, "quiet gap must release GPUs");
        let (low, high) = c.online_bounds();
        assert!(high > 2 && high <= 4, "high watermark {high}");
        assert_eq!(low, 1, "fleet must drain to the configured minimum");
        // Elasticity must cost less than keeping the peak fleet all run.
        assert!(m.gpu_seconds_provisioned < 4.0 * m.makespan_secs);
        assert!(m.gpu_seconds_provisioned > 0.0);
    }

    #[test]
    fn autoscaled_runs_are_deterministic() {
        let run = || {
            let mut cfg = ClusterConfig::test(2, 500, Policy::lalbo3());
            cfg.autoscale = Some("queue:min=1,max=4,up=2,down=0,cadence=1".parse().unwrap());
            let mut c = Cluster::new(cfg, toy_registry(5));
            let reqs: Vec<(f64, u32)> = (0..30).map(|i| (i as f64 * 0.2, (i % 5) as u32)).collect();
            c.run(&trace_of(&reqs))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn draining_gpu_finishes_in_flight_and_local_queue_then_goes_offline() {
        /// Returns `Down(1)` on its first step, then holds — pinning the
        /// drain to an instant where both GPUs are busy, so the victim
        /// must wind down real work.
        #[derive(Debug)]
        struct DrainOnce {
            fired: bool,
        }
        impl crate::autoscale::Autoscaler for DrainOnce {
            fn name(&self) -> String {
                "drain-once".into()
            }
            fn cadence(&self) -> SimDuration {
                SimDuration::from_secs_f64(1.5)
            }
            fn step(&mut self, view: &ScaleView<'_>) -> ScaleDecision {
                if self.fired {
                    return ScaleDecision::Hold;
                }
                self.fired = true;
                assert_eq!(view.busy_gpus(), 3, "drain must hit a fully busy fleet");
                ScaleDecision::Down(1)
            }
        }

        let mut cfg = ClusterConfig::test(3, 1000, Policy::lalb());
        cfg.autoscale = Some("queue:min=1,max=3,up=9,down=0,cadence=1".parse().unwrap());
        let mut c = Cluster::new(cfg, toy_registry(3));
        c.set_autoscaler(Box::new(DrainOnce { fired: false }));
        // t=0: m0 → gpu0 (load 1 + infer 1). t=0.1: m1 → gpu1. t=1.2:
        // m0 again — gpu0's remaining wait (0.8 s) beats a 1 s load, so
        // idle gpu2's pass queues it locally at gpu0. t=1.3: cold m2
        // occupies gpu2, so the tick at t=1.5 sees all three GPUs busy
        // and drains the tie-break victim gpu0 — which must still serve
        // both its in-flight request and the locally queued hit before
        // going offline. A final m2 repeat at t=3.5 hits the survivor.
        let m = c.run(&trace_of(&[
            (0.0, 0),
            (0.1, 1),
            (1.2, 0),
            (1.3, 2),
            (3.5, 2),
        ]));
        assert_eq!(m.completed, 5, "drained requests are not lost");
        assert_eq!(c.local_moves(), 1, "the repeat queued at the busy holder");
        assert_eq!(m.misses, 3, "the locally queued request still hits");
        assert_eq!(m.scale_down_events, 1);
        assert_eq!(c.online_bounds(), (2, 3));
        assert_eq!(c.online_gpus(), 2);
        // Drain evictions clear the victim's device without polluting the
        // replacement-policy eviction count.
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.units[0].device.resident_count(), 0);
        assert_eq!(c.units[0].state, UnitState::Offline);
    }

    #[test]
    #[should_panic(expected = "set_autoscaler")]
    fn set_autoscaler_requires_an_autoscale_config() {
        let mut c = cluster(1, 1000, Policy::lalb(), 1);
        c.set_autoscaler(
            crate::autoscale::AutoscaleSpec::default()
                .build()
                .expect("default spec builds"),
        );
    }

    // ------------------------------------------------------------------
    // The pluggable policy surface
    // ------------------------------------------------------------------

    #[test]
    fn spec_strings_drive_the_cluster() {
        let mut cfg = ClusterConfig::test(2, 1000, Policy::lalbo3());
        cfg.policy = "lalbo3:25".parse().unwrap();
        cfg.replacement = "tinylfu:0.9".parse().unwrap();
        let mut c = Cluster::new(cfg, toy_registry(2));
        assert_eq!(c.scheduler_name(), "LALBO3");
        assert_eq!(c.evictor_name(), "tinylfu");
        let m = c.run(&trace_of(&[(0.0, 0), (1.0, 1), (10.0, 0)]));
        assert_eq!(m.completed, 3);
    }

    #[test]
    fn try_new_surfaces_bad_specs_and_configs() {
        let mut cfg = ClusterConfig::test(2, 1000, Policy::lalb());
        cfg.policy = crate::policy::PolicySpec::bare("belady");
        assert!(Cluster::try_new(cfg, toy_registry(1)).is_err());
        let mut cfg = ClusterConfig::test(2, 1000, Policy::lalb());
        cfg.batch_size = 0;
        assert!(matches!(
            Cluster::try_new(cfg, toy_registry(1)),
            Err(ConfigError::ZeroBatch)
        ));
    }

    #[test]
    #[should_panic(expected = "invalid cluster config")]
    fn new_panics_on_invalid_config() {
        let mut cfg = ClusterConfig::test(4, 1000, Policy::lalb());
        cfg.gpus_per_node = 3; // does not divide 4
        let _ = Cluster::new(cfg, toy_registry(1));
    }

    #[test]
    fn injected_policy_objects_match_the_enum_path() {
        // The open path (`with_policies`) must behave bit-identically to
        // the compat enum path for the paper's policies.
        let t = trace_of(&[(0.0, 0), (0.3, 1), (0.9, 2), (1.5, 0), (2.0, 1), (2.2, 2)]);
        let via_enum = cluster(2, 250, Policy::lalbo3(), 3).run(&t);
        let cfg = ClusterConfig::test(2, 250, Policy::lalbo3());
        let seed = cfg.seed;
        let mut injected = Cluster::with_policies(
            cfg,
            toy_registry(3),
            Box::new(crate::scheduler::LalbScheduler::new(25)),
            crate::cache::ReplacementPolicy::Lru.build(seed),
        )
        .unwrap();
        assert_eq!(injected.run(&t), via_enum);
    }

    // ------------------------------------------------------------------
    // Request batching
    // ------------------------------------------------------------------

    /// A test cluster with the given batching spec.
    fn batched_cluster(gpus: usize, nmodels: usize, batching: &str) -> Cluster {
        let mut cfg = ClusterConfig::test(gpus, 1000, Policy::lalb());
        cfg.batching = batching.parse().unwrap();
        Cluster::new(cfg, toy_registry(nmodels))
    }

    #[test]
    fn coalesce_merges_a_same_model_backlog_into_one_invocation() {
        // Four m0 requests arrive together on one GPU. Per-request: load
        // 1 s + 4 sequential 1 s inferences (done at 2, 3, 4, 5). With
        // coalescing, the three requests queued behind the lead join its
        // invocation when the load completes: one batch-128 inference =
        // 0.1 + 0.9 × 4 = 3.7 s, everyone done at 4.7 s.
        let mut c = batched_cluster(1, 1, "coalesce:max=8,wait=0.05");
        assert_eq!(c.batcher_name(), "coalesce(max=8)");
        let m = c.run(&trace_of(&[(0.0, 0), (0.01, 0), (0.02, 0), (0.03, 0)]));
        assert_eq!(m.completed, 4);
        assert_eq!(m.invocations, 1, "one coalesced invocation");
        assert_eq!(m.avg_effective_batch, 4.0);
        assert_eq!(m.batched_requests, 4);
        assert_eq!(m.effective_batch_hist, vec![(4, 1)]);
        assert_eq!(m.misses, 1, "riders share the lead's upload");
        assert!((m.makespan_secs - 4.7).abs() < 1e-6, "{}", m.makespan_secs);
        // Busy time: 1 s load + 3.7 s inference.
        assert!((m.gpu_busy_seconds - 4.7).abs() < 1e-6);
    }

    #[test]
    fn held_batch_launches_early_when_it_fills() {
        // m0's cold load+infer occupies the GPU until t=2 while two more
        // m0 requests queue up. At t=2 the dispatch coalesces both (take
        // 2 < max 3) and holds until 2.5; the arrival at t=2.2 fills the
        // batch, which launches immediately: 3-request inference =
        // 0.1 + 0.9 × 3 = 2.8 s → makespan 5.0, not 2.5 + 2.8.
        let mut c = batched_cluster(1, 1, "coalesce:max=3,wait=0.5");
        let m = c.run(&trace_of(&[(0.0, 0), (1.5, 0), (1.6, 0), (2.2, 0)]));
        assert_eq!(m.completed, 4);
        assert_eq!(m.effective_batch_hist, vec![(1, 1), (3, 1)]);
        assert_eq!(m.batched_requests, 3);
        assert!((m.makespan_secs - 5.0).abs() < 1e-6, "{}", m.makespan_secs);
    }

    #[test]
    fn hold_timer_fires_when_no_one_joins() {
        // As above but nothing arrives during the hold: the BatchHold
        // timer fires at t=2.5 and launches the partial 2-request batch
        // (0.1 + 0.9 × 2 = 1.9 s) → makespan 4.4.
        let mut c = batched_cluster(1, 1, "coalesce:max=3,wait=0.5");
        let m = c.run(&trace_of(&[(0.0, 0), (1.5, 0), (1.6, 0)]));
        assert_eq!(m.completed, 3);
        assert_eq!(m.effective_batch_hist, vec![(1, 1), (2, 1)]);
        assert_eq!(m.batched_requests, 2);
        assert!((m.makespan_secs - 4.4).abs() < 1e-6, "{}", m.makespan_secs);
    }

    #[test]
    fn batching_none_is_identical_to_the_paper_path() {
        let reqs: Vec<(f64, u32)> = (0..60).map(|i| (i as f64 * 0.11, (i % 5) as u32)).collect();
        let t = trace_of(&reqs);
        let legacy = cluster(3, 400, Policy::lalbo3(), 5).run(&t);
        let mut cfg = ClusterConfig::test(3, 400, Policy::lalbo3());
        cfg.batching = "none".parse().unwrap();
        let none = Cluster::new(cfg, toy_registry(5)).run(&t);
        assert_eq!(legacy, none);
    }

    #[test]
    fn batched_runs_are_deterministic_and_conserve_requests() {
        let reqs: Vec<(f64, u32)> = (0..80).map(|i| (i as f64 * 0.07, (i % 6) as u32)).collect();
        let t = trace_of(&reqs);
        for spec in [
            "coalesce:max=4,wait=0.05",
            "adaptive:slo=20,max=8,wait=0.05",
        ] {
            let a = batched_cluster(3, 6, spec).run(&t);
            let b = batched_cluster(3, 6, spec).run(&t);
            assert_eq!(a, b, "{spec}");
            assert_eq!(a.completed, 80, "{spec}");
            assert!(a.batched_requests > 0, "{spec} must coalesce something");
        }
    }

    #[test]
    fn coalescing_respects_the_tenant_inflight_cap() {
        // §VI isolation must hold through the batching layer: with a
        // 1-request tenant cap, a coalesced dispatch may not pull the
        // capped tenant's queued requests into its batch (the forming
        // batch itself counts toward the cap). The three requests
        // serialise exactly like the per-request dispatch test:
        // 2 s (cold) + 1 s + 1 s → max latency 4 s.
        let mut cfg = ClusterConfig::test(3, 1000, Policy::lalbo3());
        cfg.num_tenants = 2;
        cfg.tenant_max_inflight = Some(1);
        cfg.batching = "coalesce:max=8,wait=0.05".parse().unwrap();
        let mut c = Cluster::new(cfg, toy_registry(1));
        let m = c.run(&trace_of(&[(0.0, 0), (0.0, 0), (0.0, 0)]));
        assert_eq!(m.completed, 3);
        assert_eq!(m.batched_requests, 0, "the cap forbids coalescing here");
        assert!(
            (m.max_latency_secs - 4.0).abs() < 1e-6,
            "{}",
            m.max_latency_secs
        );
    }

    #[test]
    fn batching_survives_crashes_without_losing_requests() {
        let mut cfg = ClusterConfig::test(2, 1000, Policy::lalbo3());
        cfg.batching = "coalesce:max=4,wait=0.05".parse().unwrap();
        cfg.crash_rate = 0.3;
        cfg.seed = 5;
        let mut c = Cluster::new(cfg, toy_registry(3));
        let reqs: Vec<(f64, u32)> = (0..40).map(|i| (i as f64 * 0.3, (i % 3) as u32)).collect();
        let m = c.run(&trace_of(&reqs));
        assert_eq!(m.completed, 40, "crashed batches retry whole");
        assert!(c.crashes() > 0);
    }

    #[test]
    fn draining_gpu_with_held_batch_finishes_before_going_offline() {
        // A GPU drained *mid-hold* must still launch and finish its held
        // batch before going offline.
        #[derive(Debug)]
        struct DrainAll;
        impl crate::autoscale::Autoscaler for DrainAll {
            fn name(&self) -> String {
                "drain-all".into()
            }
            fn cadence(&self) -> SimDuration {
                SimDuration::from_secs_f64(2.2)
            }
            fn step(&mut self, _view: &ScaleView<'_>) -> ScaleDecision {
                ScaleDecision::Down(1)
            }
        }
        let mut cfg = ClusterConfig::test(2, 1000, Policy::lalb());
        cfg.batching = "coalesce:max=4,wait=0.5".parse().unwrap();
        cfg.autoscale = Some(
            "queue:min=1,max=2,up=99,down=0,cadence=2.2"
                .parse()
                .unwrap(),
        );
        let mut c = Cluster::new(cfg, toy_registry(2));
        c.set_autoscaler(Box::new(DrainAll));
        // gpu0 runs m0 until t=2 while two more m0 requests queue; at t=2
        // they form a held batch (release 2.5). gpu1 runs m1 work and is
        // busy again at the t=2.2 tick, so the victim order (both busy,
        // stalest idle_since first) drains gpu0 — mid-hold. The hold must
        // still fire, run its batch on the draining GPU, and only then
        // take it offline.
        let m = c.run(&trace_of(&[
            (0.0, 0),
            (0.1, 1),
            (1.5, 0),
            (1.6, 0),
            (2.15, 1),
        ]));
        assert_eq!(m.completed, 5, "held requests survive the drain");
        assert_eq!(m.scale_down_events, 1);
        assert_eq!(m.effective_batch_hist, vec![(1, 3), (2, 1)]);
        assert_eq!(c.units[0].state, UnitState::Offline);
        assert!(c.units[0].holding.is_none());
        assert_eq!(c.online_gpus(), 1);
    }

    #[test]
    fn injected_custom_batcher_overrides_the_spec() {
        /// Merges everything available, never holds.
        #[derive(Debug)]
        struct TakeAll;
        impl crate::batching::BatchPolicy for TakeAll {
            fn name(&self) -> String {
                "take-all".into()
            }
            fn plan(&mut self, view: &crate::batching::BatchView) -> crate::batching::BatchPlan {
                crate::batching::BatchPlan {
                    max_requests: 1 + view.available,
                    hold: None,
                }
            }
        }
        let mut c = batched_cluster(1, 1, "none");
        c.set_batcher(Box::new(TakeAll));
        assert_eq!(c.batcher_name(), "take-all");
        let m = c.run(&trace_of(&[(0.0, 0), (0.01, 0), (0.02, 0)]));
        assert_eq!(m.completed, 3);
        assert_eq!(m.invocations, 1);
        assert_eq!(m.avg_effective_batch, 3.0);
    }

    #[test]
    fn custom_scheduler_plugs_into_the_cluster() {
        /// Dispatches the queue head to the *lowest-id* idle GPU,
        /// ignoring locality and idle time — not a builtin policy.
        #[derive(Debug)]
        struct FirstGpu;
        impl SchedulerPolicy for FirstGpu {
            fn name(&self) -> String {
                "first-gpu".into()
            }
            fn idle_order(&mut self, _ctx: &SchedCtx<'_>, idle: &mut Vec<GpuId>) {
                idle.sort();
            }
            fn on_gpu_idle(&mut self, gpu: GpuId, ctx: &mut SchedCtx<'_>) -> Dispatch {
                if ctx.queue_len() == 0 {
                    return Dispatch::None;
                }
                let r = ctx.take_queued(0);
                if ctx.is_cached(gpu, r.model) {
                    Dispatch::Hit(r)
                } else {
                    Dispatch::Miss(r)
                }
            }
        }

        let cfg = ClusterConfig::test(3, 1000, Policy::lalb());
        let seed = cfg.seed;
        let mut c = Cluster::with_policies(
            cfg,
            toy_registry(2),
            Box::new(FirstGpu),
            crate::cache::ReplacementPolicy::Lru.build(seed),
        )
        .unwrap();
        assert_eq!(c.scheduler_name(), "first-gpu");
        // Requests arriving while all GPUs idle always land on gpu0.
        let m = c.run(&trace_of(&[(0.0, 0), (10.0, 1), (20.0, 0)]));
        assert_eq!(m.completed, 3);
        // gpu0 evicted nothing (1000 MiB fits both models), served all
        // three: the repeat of m0 is a hit because gpu0 still holds it.
        assert_eq!(m.misses, 2);
    }

    // ------------------------------------------------------------------
    // Versioned state: snapshot / rollback / checkpoint / lookahead
    // ------------------------------------------------------------------

    /// A busy little workload: 30 requests over 6 models on 3 GPUs with
    /// 300 MiB each (evictions!), batching and autoscaling enabled — every
    /// journaled component carries non-trivial state.
    fn snap_fixture() -> (ClusterConfig, Trace) {
        let mut cfg = ClusterConfig::test(3, 300, Policy::lalbo3());
        cfg.batching = "coalesce:max=4,wait=0.05".parse().unwrap();
        cfg.autoscale = Some("queue:min=2,max=4,up=6,down=1".parse().unwrap());
        let reqs: Vec<(f64, u32)> = (0..30).map(|i| (i as f64 * 0.13, (i % 6) as u32)).collect();
        (cfg, trace_of(&reqs))
    }

    fn snap_cluster(cfg: &ClusterConfig) -> Cluster {
        Cluster::new(cfg.clone(), toy_registry(6))
    }

    #[test]
    fn run_until_then_resume_is_byte_identical_to_a_full_run() {
        let (cfg, t) = snap_fixture();
        let full = snap_cluster(&cfg).run(&t);
        let mut paused = snap_cluster(&cfg);
        paused.run_until(&t, SimTime::from_secs_f64(3.0));
        assert!(paused.metrics.completed() > 0, "the pause point is mid-run");
        assert!(paused.metrics.completed() < 30);
        paused.run_until(&t, SimTime::from_secs_f64(5.0));
        assert_eq!(paused.resume(&t), full, "pausing must not perturb the run");
    }

    #[test]
    fn rollback_restores_byte_identical_state() {
        let (cfg, t) = snap_fixture();
        let mut c = snap_cluster(&cfg);
        c.run_until(&t, SimTime::from_secs_f64(1.3));
        let before = c.checkpoint(&t);
        let id = c.snapshot();
        assert_eq!(c.journal_depth(), 1);
        c.run_until(&t, SimTime::from_secs_f64(2.9));
        assert_ne!(c.checkpoint(&t), before, "the run advanced past the pin");
        assert!(c.rollback(id));
        // The checkpoint codec serialises every field of mutable state, so
        // byte equality here is the strongest restore check we can make.
        assert_eq!(c.checkpoint(&t), before, "rollback must be byte-exact");
        // The pin survives rollback: advance and rewind a second time.
        c.run_until(&t, SimTime::from_secs_f64(4.2));
        assert!(c.rollback(id));
        assert_eq!(c.checkpoint(&t), before);
        // A rolled-back cluster finishes exactly like an unperturbed one.
        let full = snap_cluster(&cfg).run(&t);
        assert_eq!(c.resume(&t), full);
    }

    #[test]
    fn commit_retires_pins_and_rollback_of_retired_pin_fails() {
        let (cfg, t) = snap_fixture();
        let mut c = snap_cluster(&cfg);
        c.run_until(&t, SimTime::from_secs_f64(1.0));
        let old = c.snapshot();
        c.run_until(&t, SimTime::from_secs_f64(1.5));
        let new = c.snapshot();
        assert_eq!(c.journal_depth(), 2);
        // Committing the newer pin retires it *and* everything older.
        assert!(c.commit(new));
        assert_eq!(c.journal_depth(), 0);
        assert!(!c.rollback(old), "retired pins must not restore");
        assert!(!c.rollback(new));
        assert!(!c.commit(new), "double-commit is rejected");
        let stats = c.journal_stats();
        assert_eq!(stats.snapshots, 2);
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.rollbacks, 0, "failed rollbacks do not count");
    }

    #[test]
    fn plain_runs_never_touch_the_journal() {
        // Zero-cost guarantee: without snapshots or lookahead, the
        // journal stays empty for the whole run.
        let (cfg, t) = snap_fixture();
        let mut c = snap_cluster(&cfg);
        c.run(&t);
        let stats = c.journal_stats();
        assert_eq!(stats.snapshots, 0);
        assert_eq!(stats.rollbacks, 0);
        assert_eq!(stats.commits, 0);
        assert_eq!(c.journal_depth(), 0);
    }

    #[test]
    fn checkpoint_restore_warm_start_is_byte_identical() {
        let (cfg, t) = snap_fixture();
        let full = snap_cluster(&cfg).run(&t);
        let mut c = snap_cluster(&cfg);
        c.run_until(&t, SimTime::from_secs_f64(1.9));
        let bytes = c.checkpoint(&t);
        // Restore into a *fresh* cluster with the same config and warm-start.
        let mut warm = snap_cluster(&cfg);
        warm.restore(&bytes, &t).unwrap();
        assert_eq!(warm.checkpoint(&t), bytes, "restore round-trips the wire");
        assert_eq!(warm.resume(&t), full, "warm start reproduces the full run");
        // The original paused cluster agrees too.
        assert_eq!(c.resume(&t), full);
    }

    #[test]
    fn restore_rejects_foreign_and_corrupt_checkpoints() {
        let (cfg, t) = snap_fixture();
        let mut c = snap_cluster(&cfg);
        c.run_until(&t, SimTime::from_secs_f64(1.0));
        let bytes = c.checkpoint(&t);

        // Wrong config: different fleet size.
        let mut other = Cluster::new(
            ClusterConfig::test(4, 300, Policy::lalbo3()),
            toy_registry(6),
        );
        assert!(matches!(
            other.restore(&bytes, &t),
            Err(SnapError::ConfigMismatch)
        ));

        // Wrong trace: one extra request.
        let mut reqs: Vec<(f64, u32)> =
            (0..30).map(|i| (i as f64 * 0.13, (i % 6) as u32)).collect();
        reqs.push((9.9, 0));
        assert!(matches!(
            snap_cluster(&cfg).restore(&bytes, &trace_of(&reqs)),
            Err(SnapError::TraceMismatch)
        ));

        // Truncated payload.
        assert!(snap_cluster(&cfg)
            .restore(&bytes[..bytes.len() - 3], &t)
            .is_err());

        // Corrupt magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            snap_cluster(&cfg).restore(&bad, &t),
            Err(SnapError::BadMagic)
        ));

        // A failed restore leaves the target untouched and runnable.
        let full = snap_cluster(&cfg).run(&t);
        let mut target = snap_cluster(&cfg);
        assert!(target.restore(&bad, &t).is_err());
        assert_eq!(target.run(&t), full);
    }

    /// A test cluster driven by the lookahead what-if scheduler.
    fn lookahead_cluster(gpus: usize, mem_mib: u64, nmodels: usize, k: usize) -> Cluster {
        let cfg = ClusterConfig::test(gpus, mem_mib, Policy::lalbo3());
        let seed = cfg.seed;
        Cluster::with_policies(
            cfg,
            toy_registry(nmodels),
            Box::new(crate::scheduler::LookaheadScheduler::new(k, 8, 25)),
            crate::cache::ReplacementPolicy::Lru.build(seed),
        )
        .unwrap()
    }

    #[test]
    fn lookahead_serves_every_request_and_retires_every_fork() {
        let reqs: Vec<(f64, u32)> = (0..60).map(|i| (i as f64 * 0.09, (i % 5) as u32)).collect();
        let t = trace_of(&reqs);
        let mut c = lookahead_cluster(3, 300, 5, 4);
        assert_eq!(c.scheduler_name(), "Lookahead(k=4,h=8)");
        let m = c.run(&t);
        assert_eq!(m.completed, 60);
        let stats = c.journal_stats();
        assert!(stats.snapshots > 0, "contended placements must speculate");
        assert_eq!(
            stats.snapshots, stats.rollbacks,
            "every fork is rolled back, none leaks"
        );
        assert_eq!(c.journal_depth(), 0, "no frames survive the run");
    }

    #[test]
    fn lookahead_runs_are_deterministic() {
        let reqs: Vec<(f64, u32)> = (0..60).map(|i| (i as f64 * 0.09, (i % 5) as u32)).collect();
        let t = trace_of(&reqs);
        let a = lookahead_cluster(3, 300, 5, 4).run(&t);
        let b = lookahead_cluster(3, 300, 5, 4).run(&t);
        assert_eq!(a, b);
    }

    #[test]
    fn lookahead_with_k1_executes_without_forking() {
        // k=1 keeps only the first candidate arm: placement is decided
        // without speculation, so the journal must stay untouched.
        let reqs: Vec<(f64, u32)> = (0..40).map(|i| (i as f64 * 0.11, (i % 4) as u32)).collect();
        let t = trace_of(&reqs);
        let mut c = lookahead_cluster(2, 300, 4, 1);
        let m = c.run(&t);
        assert_eq!(m.completed, 40);
        assert_eq!(c.journal_stats().snapshots, 0);
    }

    #[test]
    fn speculation_does_not_perturb_the_chosen_timeline() {
        // The lookahead run must itself be a valid simulation: conserve
        // requests and, like every policy, produce identical metrics when
        // paused and resumed (the fork/rollback machinery composes with
        // the user-facing snapshot API).
        let reqs: Vec<(f64, u32)> = (0..50).map(|i| (i as f64 * 0.08, (i % 5) as u32)).collect();
        let t = trace_of(&reqs);
        let full = lookahead_cluster(3, 300, 5, 4).run(&t);
        let mut paused = lookahead_cluster(3, 300, 5, 4);
        paused.run_until(&t, SimTime::from_secs_f64(2.0));
        assert_eq!(paused.resume(&t), full);
    }
}
