//! Dynamic request batching: coalescing same-model requests into one GPU
//! invocation.
//!
//! The paper fixes the inference batch at 32 inputs per request and
//! dispatches every request as its own GPU invocation. But the registry's
//! latency profile is *affine* in batch size (`t(b) = base + per_item·b`,
//! [`gfaas_models::LatencyProfile`]), so `k` queued requests for the same
//! model can run as a single invocation of `k × 32` inputs and amortise
//! `k − 1` copies of the fixed per-invocation cost — the classic
//! throughput lever of serving systems (Clipper's adaptive batching,
//! Clockwork's predictable executors). Coalescing also amortises *loads*:
//! requests that ride a batch behind a cache miss share one model upload
//! instead of risking replica misses on other GPUs.
//!
//! # The policy surface
//!
//! [`BatchPolicy`] is the open trait. Whenever the scheduler has chosen a
//! lead request for a GPU, the cluster driver builds a [`BatchView`] —
//! the model's affine latency coefficients on *that* GPU, the lead's age,
//! and how many same-model requests are immediately coalescable — and
//! asks the policy for a [`BatchPlan`]: how many requests may share the
//! invocation, and whether to hold the dispatch briefly to gather more.
//! Held batches sit in a [`crate::gpu_manager::HoldSlot`] on the GPU (a `BatchHold` timer
//! event releases them; a filled batch launches early).
//!
//! Three policies ship, named by [`crate::policy::PolicyRegistry`] specs:
//!
//! * `none` — per-request dispatch, byte-identical to the paper pipeline;
//! * `coalesce[:max=8,wait=0.05]` — greedy same-model merge up to `max`
//!   requests, holding a partially filled batch up to `wait` seconds
//!   (only when at least two requests are already merged, so a hold never
//!   delays a solo request);
//! * `adaptive[:slo=30,max=32,wait=0.05]` — SLO-aware sizing: caps the
//!   batch so predicted service time (load on a miss + affine inference)
//!   stays within half the target p95, and holds only while the lead's
//!   predicted completion still meets the SLO.

use std::fmt;

use gfaas_gpu::ModelId;
use gfaas_sim::time::{SimDuration, SimTime};

/// Default maximum requests per coalesced invocation for the greedy
/// `coalesce` policy. Tuned on the `fig_batching` study: 8 maximises
/// busy-time throughput at paper scale (deeper merges inflate the tail
/// faster than they amortise the base term there), while `adaptive`
/// grows the cap with its SLO budget for saturated production runs.
pub const DEFAULT_MAX_COALESCE: usize = 8;
/// Default hard cap for the `adaptive` policy (its SLO budget usually
/// binds first).
pub const DEFAULT_MAX_ADAPTIVE: usize = 32;
/// Default hold timer for partially filled batches, seconds.
pub const DEFAULT_HOLD_WAIT_SECS: f64 = 0.05;
/// Default p95 latency target for the `adaptive` policy, seconds.
pub const DEFAULT_SLO_SECS: f64 = 30.0;
/// Fraction of the SLO the `adaptive` policy budgets for the coalesced
/// invocation's own service time (load + inference); the rest is queueing
/// slack.
pub const ADAPTIVE_SERVICE_FRACTION: f64 = 0.5;

/// What the cluster driver shows a [`BatchPolicy`] before a dispatch: the
/// lead request's context plus the model's latency profile scaled to the
/// target GPU (§VI heterogeneity), so policies can predict invocation
/// latency with the registry's affine model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchView {
    /// The model the invocation will run.
    pub model: ModelId,
    /// True iff the lead dispatch is a cache hit (a miss pays `load_secs`
    /// before inference starts).
    pub hit: bool,
    /// The current virtual time.
    pub now: SimTime,
    /// When the lead (oldest) request arrived.
    pub lead_arrival: SimTime,
    /// Additional same-model requests immediately coalescable (waiting in
    /// this GPU's local queue or the global queue).
    pub available: usize,
    /// Inputs per request (the paper's fixed 32).
    pub items_per_request: usize,
    /// Batch-independent inference overhead on this GPU, seconds — the
    /// cost each coalesced request amortises.
    pub infer_base_secs: f64,
    /// Per-input inference cost on this GPU, seconds.
    pub infer_item_secs: f64,
    /// Model upload time onto this GPU, seconds (paid once on a miss).
    pub load_secs: f64,
}

impl BatchView {
    /// Predicted inference time of an invocation coalescing `requests`
    /// requests, from the affine model.
    pub fn infer_secs(&self, requests: usize) -> f64 {
        self.infer_base_secs + self.infer_item_secs * (requests * self.items_per_request) as f64
    }

    /// Predicted service time (load on a miss + inference) of an
    /// invocation coalescing `requests` requests.
    pub fn service_secs(&self, requests: usize) -> f64 {
        let load = if self.hit { 0.0 } else { self.load_secs };
        load + self.infer_secs(requests)
    }

    /// How long the lead request has already been queued.
    pub fn lead_age_secs(&self) -> f64 {
        self.now.duration_since(self.lead_arrival).as_secs_f64()
    }
}

/// A [`BatchPolicy`]'s answer for one imminent dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPlan {
    /// Maximum requests (including the lead) the invocation may coalesce.
    /// The driver pulls same-model requests up to this cap; values are
    /// clamped to at least 1.
    pub max_requests: usize,
    /// If set and the collected batch is still below `max_requests`, the
    /// driver parks the batch in a hold slot for this long before
    /// launching (an early launch fires as soon as the batch fills).
    /// Policies should only hold when at least two requests are already
    /// merged — the driver launches a solo batch immediately regardless.
    pub hold: Option<SimDuration>,
}

impl BatchPlan {
    /// The pass-through plan: one request, no hold.
    pub fn solo() -> BatchPlan {
        BatchPlan {
            max_requests: 1,
            hold: None,
        }
    }
}

/// A batching policy: decides, per imminent dispatch, how many queued
/// same-model requests to coalesce into the invocation and how long to
/// hold for more.
///
/// Implementations must be deterministic: any randomness must come from
/// owned, seeded state.
pub trait BatchPolicy: fmt::Debug + Send {
    /// Registry-style display name (`"none"`, `"coalesce(max=8)"`, …).
    fn name(&self) -> String;

    /// Plans one dispatch. See [`BatchView`] for what the policy observes
    /// and [`BatchPlan`] for what it controls.
    fn plan(&mut self, view: &BatchView) -> BatchPlan;

    /// True for the `none` policy: the driver then skips coalescing
    /// bookkeeping entirely, keeping the per-request hot path (and its
    /// published outputs) byte-identical to the paper pipeline.
    fn is_passthrough(&self) -> bool {
        false
    }

    /// Serialises any mutable policy state into a snapshot blob. The
    /// three builtin policies are pure functions of their configuration,
    /// so the default no-op is exact for them; stateful policies must
    /// override both hooks.
    fn save_state(&self, enc: &mut gfaas_snap::Enc) {
        let _ = enc;
    }

    /// Restores the state written by [`BatchPolicy::save_state`] onto a
    /// policy built from the same spec.
    fn load_state(&mut self, dec: &mut gfaas_snap::Dec<'_>) -> Result<(), gfaas_snap::SnapError> {
        let _ = dec;
        Ok(())
    }
}

/// Per-request dispatch (the paper's behaviour; spec key `none`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBatch;

impl BatchPolicy for NoBatch {
    fn name(&self) -> String {
        "none".to_string()
    }

    fn plan(&mut self, _view: &BatchView) -> BatchPlan {
        BatchPlan::solo()
    }

    fn is_passthrough(&self) -> bool {
        true
    }
}

/// Greedy same-model coalescing up to a fixed cap, with a bounded hold
/// timer for partially filled batches (spec key `coalesce`).
#[derive(Debug, Clone, Copy)]
pub struct CoalesceBatch {
    max_requests: usize,
    hold_wait: SimDuration,
}

impl CoalesceBatch {
    /// A coalescing policy merging up to `max_requests` requests and
    /// holding partial batches (of at least two) up to `hold_wait`.
    ///
    /// # Panics
    /// If `max_requests` is zero.
    pub fn new(max_requests: usize, hold_wait: SimDuration) -> Self {
        assert!(max_requests > 0, "coalesce max must be positive");
        CoalesceBatch {
            max_requests,
            hold_wait,
        }
    }

    /// The configured cap and hold timer.
    pub fn limits(&self) -> (usize, SimDuration) {
        (self.max_requests, self.hold_wait)
    }
}

impl Default for CoalesceBatch {
    fn default() -> Self {
        CoalesceBatch::new(
            DEFAULT_MAX_COALESCE,
            SimDuration::from_secs_f64(DEFAULT_HOLD_WAIT_SECS),
        )
    }
}

impl BatchPolicy for CoalesceBatch {
    fn name(&self) -> String {
        format!("coalesce(max={})", self.max_requests)
    }

    fn plan(&mut self, view: &BatchView) -> BatchPlan {
        let take = (1 + view.available).min(self.max_requests);
        // Hold only when the merge is already underway (≥ 2 requests) but
        // unfilled: a solo request never waits, and a full batch launches
        // now. A miss never holds either — its model upload is itself a
        // seconds-long gathering window (the driver tops the batch up
        // when the load completes), and delaying the load would both
        // stall the lead and invite replica misses elsewhere.
        let hold = (view.hit && take >= 2 && take < self.max_requests && !self.hold_wait.is_zero())
            .then_some(self.hold_wait);
        BatchPlan {
            max_requests: self.max_requests,
            hold,
        }
    }
}

/// SLO-aware adaptive batch sizing (spec key `adaptive`): the batch is
/// capped so the predicted invocation service time — load on a miss plus
/// the affine inference time — fits within [`ADAPTIVE_SERVICE_FRACTION`]
/// of the target p95, and a partial batch is held only while the lead
/// request's predicted completion still meets the SLO.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveBatch {
    slo_secs: f64,
    max_requests: usize,
    hold_wait: SimDuration,
}

impl AdaptiveBatch {
    /// An adaptive policy targeting `slo_secs` p95, merging at most
    /// `max_requests` and holding partial batches up to `hold_wait`.
    ///
    /// # Panics
    /// If the SLO is not positive and finite, or `max_requests` is zero.
    pub fn new(slo_secs: f64, max_requests: usize, hold_wait: SimDuration) -> Self {
        assert!(
            slo_secs.is_finite() && slo_secs > 0.0,
            "adaptive slo must be positive, got {slo_secs}"
        );
        assert!(max_requests > 0, "adaptive max must be positive");
        AdaptiveBatch {
            slo_secs,
            max_requests,
            hold_wait,
        }
    }

    /// The configured SLO target, seconds.
    pub fn slo_secs(&self) -> f64 {
        self.slo_secs
    }

    /// Largest request count whose predicted service time fits the SLO's
    /// service budget on the viewed GPU (always at least 1: a solo
    /// request must run even when the budget is already blown).
    fn slo_cap(&self, view: &BatchView) -> usize {
        let budget = ADAPTIVE_SERVICE_FRACTION * self.slo_secs;
        let mut cap = self.max_requests;
        while cap > 1 && view.service_secs(cap) > budget {
            // The affine model is monotone in the batch, so the largest
            // admissible cap could be solved in closed form; the zoo's
            // caps are ≤ 64, so the walk is cheaper than it looks and
            // avoids float-edge surprises.
            cap -= 1;
        }
        cap
    }
}

impl Default for AdaptiveBatch {
    fn default() -> Self {
        AdaptiveBatch::new(
            DEFAULT_SLO_SECS,
            DEFAULT_MAX_ADAPTIVE,
            SimDuration::from_secs_f64(DEFAULT_HOLD_WAIT_SECS),
        )
    }
}

impl BatchPolicy for AdaptiveBatch {
    fn name(&self) -> String {
        format!("adaptive(slo={}s,max={})", self.slo_secs, self.max_requests)
    }

    fn plan(&mut self, view: &BatchView) -> BatchPlan {
        let cap = self.slo_cap(view);
        let take = (1 + view.available).min(cap);
        // Headroom the lead still has before the SLO: holding is only
        // worthwhile while a maximal batch launched after the hold would
        // still complete in time. Misses never hold — the upload is the
        // gathering window (see [`CoalesceBatch`]).
        let headroom = self.slo_secs - view.lead_age_secs() - view.service_secs(cap);
        let hold =
            if view.hit && take >= 2 && take < cap && headroom > 0.0 && !self.hold_wait.is_zero() {
                Some(SimDuration::from_secs_f64(
                    headroom.min(self.hold_wait.as_secs_f64()),
                ))
            } else {
                None
            };
        BatchPlan {
            max_requests: cap,
            hold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A view over a toy profile: 0.1 s base + 0.9 s per 32-input
    /// request, 1 s load — the shape of a Table I mid-size model.
    fn view(hit: bool, available: usize, age_secs: f64) -> BatchView {
        BatchView {
            model: ModelId(0),
            hit,
            now: SimTime::from_secs_f64(age_secs),
            lead_arrival: SimTime::ZERO,
            available,
            items_per_request: 32,
            infer_base_secs: 0.1,
            infer_item_secs: 0.9 / 32.0,
            load_secs: 1.0,
        }
    }

    #[test]
    fn view_predicts_affine_latency() {
        let v = view(true, 0, 0.0);
        assert!((v.infer_secs(1) - 1.0).abs() < 1e-12);
        assert!((v.infer_secs(3) - (0.1 + 2.7)).abs() < 1e-12);
        assert!((v.service_secs(1) - 1.0).abs() < 1e-12);
        let miss = view(false, 0, 0.0);
        assert!((miss.service_secs(1) - 2.0).abs() < 1e-12);
        assert_eq!(view(true, 0, 2.5).lead_age_secs(), 2.5);
    }

    #[test]
    fn none_is_a_passthrough_solo_plan() {
        let mut p = NoBatch;
        assert!(p.is_passthrough());
        assert_eq!(p.plan(&view(true, 50, 0.0)), BatchPlan::solo());
        assert_eq!(p.name(), "none");
    }

    #[test]
    fn coalesce_holds_only_partial_multi_request_batches() {
        let mut p = CoalesceBatch::new(4, SimDuration::from_millis(50));
        assert!(!p.is_passthrough());
        // Solo: no hold — a lone request never waits.
        assert_eq!(p.plan(&view(true, 0, 0.0)).hold, None);
        // Partial merge: hold for more.
        let plan = p.plan(&view(true, 1, 0.0));
        assert_eq!(plan.max_requests, 4);
        assert_eq!(plan.hold, Some(SimDuration::from_millis(50)));
        // Full (or overfull): launch immediately.
        assert_eq!(p.plan(&view(true, 3, 0.0)).hold, None);
        assert_eq!(p.plan(&view(true, 9, 0.0)).hold, None);
    }

    #[test]
    fn coalesce_with_zero_wait_never_holds() {
        let mut p = CoalesceBatch::new(8, SimDuration::ZERO);
        assert_eq!(p.plan(&view(true, 3, 0.0)).hold, None);
    }

    #[test]
    fn adaptive_caps_the_batch_to_the_slo_budget() {
        // Budget = 5 s; hit service of k requests ≈ 0.1 + 0.9k → cap 5.
        let mut p = AdaptiveBatch::new(10.0, 64, SimDuration::from_millis(50));
        let plan = p.plan(&view(true, 63, 0.0));
        assert_eq!(plan.max_requests, 5);
        assert_eq!(plan.hold, None, "a full-to-cap batch launches now");
        // A miss spends 1 s of the budget on the load → smaller cap.
        let miss_plan = p.plan(&view(false, 63, 0.0));
        assert_eq!(miss_plan.max_requests, 4);
    }

    #[test]
    fn adaptive_always_admits_the_solo_request() {
        // Service time of even one request blows the budget → cap 1, no
        // hold: the request must still run.
        let mut p = AdaptiveBatch::new(0.5, 64, SimDuration::from_millis(50));
        let plan = p.plan(&view(false, 10, 0.0));
        assert_eq!(plan.max_requests, 1);
        assert_eq!(plan.hold, None);
    }

    #[test]
    fn adaptive_stops_holding_when_the_lead_is_out_of_headroom() {
        let mut p = AdaptiveBatch::new(10.0, 64, SimDuration::from_millis(50));
        // Fresh lead, partial batch: holds.
        assert!(p.plan(&view(true, 1, 0.0)).hold.is_some());
        // Lead already ~SLO old: no hold.
        assert_eq!(p.plan(&view(true, 1, 9.9)).hold, None);
        // Hold is clamped to the remaining headroom.
        let cap_service = view(true, 1, 0.0).service_secs(5);
        let tight_age = 10.0 - cap_service - 0.01;
        let hold = p.plan(&view(true, 1, tight_age)).hold.unwrap();
        assert!(hold <= SimDuration::from_millis(50));
        assert!(hold > SimDuration::ZERO);
    }

    #[test]
    fn names_describe_the_configuration() {
        assert_eq!(CoalesceBatch::default().name(), "coalesce(max=8)");
        assert_eq!(AdaptiveBatch::default().name(), "adaptive(slo=30s,max=32)");
        assert_eq!(CoalesceBatch::default().limits().0, DEFAULT_MAX_COALESCE);
        assert_eq!(AdaptiveBatch::default().slo_secs(), DEFAULT_SLO_SECS);
    }

    #[test]
    #[should_panic(expected = "max must be positive")]
    fn coalesce_rejects_zero_max() {
        CoalesceBatch::new(0, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "slo must be positive")]
    fn adaptive_rejects_bad_slo() {
        AdaptiveBatch::new(0.0, 4, SimDuration::ZERO);
    }
}
