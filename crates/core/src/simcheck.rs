//! Runtime invariant sanitizer, compiled in with `--features simcheck`.
//!
//! The static rules in `gfaas-analyze` catch *patterns* that can break
//! determinism; this module checks the *state* the simulator actually
//! produces. [`SimChecker`] threads through the cluster event loop and
//! asserts, while the run is in progress:
//!
//! * **timeline monotonicity** — arrivals and popped events never move
//!   virtual time backwards;
//! * **request conservation** — at every audit point, requests that
//!   arrived but have not completed are all accounted for in the global
//!   queue, a local queue, an in-flight invocation, or a held batch;
//! * **capacity conservation** — per GPU, the registry sizes of the
//!   resident models sum exactly to the device's used bytes, which never
//!   exceed the device's HBM; the store's host tier never exceeds its
//!   capacity;
//! * **queue-integral consistency** — an independent mirror of the
//!   metrics queue-depth integral must reproduce `avg_queue_depth`
//!   *bit-for-bit* at the end of the run.
//!
//! The checker observes and asserts but never mutates simulation state,
//! and the feature gates every call site, so a `simcheck` build's
//! [`RunMetrics`] are byte-identical to a default build's — CI enforces
//! this by diffing a smoke run under both builds. Violations panic with
//! the failing quantity; a sanitizer that logs-and-continues would just
//! move the confusing failure downstream.
//!
//! Audits that walk the fleet run on every `ScaleTick`, at end of run,
//! and on every 1024th popped event — frequent enough to localise a
//! violation, cheap enough (fleet-sized, not trace-sized) to keep
//! `simcheck` test runs fast.

use gfaas_models::ModelRegistry;
use gfaas_obs::ledger::Ledger;
use gfaas_sim::time::SimTime;
use gfaas_store::ModelStore;

use crate::gpu_manager::GpuUnit;
use crate::metrics::RunMetrics;

/// How many popped events between fleet audits.
const AUDIT_EVERY: u64 = 1024;

/// The invariant checker. One per [`crate::Cluster`], alive for the
/// whole run; every hook is called from the event loop under
/// `cfg(feature = "simcheck")`. `Clone` so the snapshot machinery can
/// journal the checker alongside the state it audits — a rollback must
/// rewind the arrival/event counters too, or conservation would fail
/// spuriously after the replayed events re-arrive.
#[derive(Debug, Default, Clone)]
pub struct SimChecker {
    /// Arrivals seen (the conservation left-hand side).
    arrivals: u64,
    /// Latest virtual time seen on the main timeline.
    last_t: SimTime,
    /// Popped runtime events, for the audit cadence.
    events: u64,
    /// Fleet audits performed (so `finish` can prove audits ran at all).
    audits: u64,
    /// Mirror of the metrics queue-depth integral: last observation time,
    /// last observed length, accumulated micros·depth ticks. Must use
    /// *exactly* the arithmetic of `MetricsCollector::observe_queue_depth`
    /// or the bit-for-bit comparison in [`SimChecker::finish`] is
    /// meaningless.
    q_last_t: SimTime,
    q_last_len: usize,
    q_ticks: u128,
}

impl SimChecker {
    /// A fresh checker; all hooks assume time starts at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A trace request entered the global queue at time `t`.
    pub fn on_arrival(&mut self, t: SimTime) {
        assert!(
            t >= self.last_t,
            "simcheck: arrival at {t:?} moves time backwards (last {:?})",
            self.last_t
        );
        self.last_t = t;
        self.arrivals += 1;
    }

    /// A runtime event popped at time `t`. Returns true when a periodic
    /// fleet audit is due.
    pub fn on_event(&mut self, t: SimTime) -> bool {
        assert!(
            t >= self.last_t,
            "simcheck: event at {t:?} moves time backwards (last {:?})",
            self.last_t
        );
        self.last_t = t;
        self.events += 1;
        self.events.is_multiple_of(AUDIT_EVERY)
    }

    /// Mirrors one `MetricsCollector::observe_queue_depth` call.
    pub fn observe_queue_depth(&mut self, t: SimTime, len: usize) {
        if t > self.q_last_t {
            self.q_ticks +=
                (t.as_micros() - self.q_last_t.as_micros()) as u128 * self.q_last_len as u128;
            self.q_last_t = t;
        }
        self.q_last_len = len;
    }

    /// Fleet audit: request conservation plus residency/host-tier
    /// capacity conservation. `completed` is the metrics completion
    /// count; `global_queue` the current global-queue depth.
    pub fn audit(
        &mut self,
        completed: u64,
        global_queue: usize,
        units: &[GpuUnit],
        registry: &ModelRegistry,
        store: &dyn ModelStore,
    ) {
        self.audits += 1;
        let mut held = 0u64;
        for u in units {
            held += u.local_queue.len() as u64;
            held += u.in_flight.as_ref().map_or(0, |f| f.requests.len()) as u64;
            held += u.holding.as_ref().map_or(0, |h| h.requests.len()) as u64;
        }
        let outstanding = global_queue as u64 + held;
        assert!(
            self.arrivals == completed + outstanding,
            "simcheck: request conservation violated: {} arrivals != {} completed + {} \
             outstanding ({} global + {} on GPUs)",
            self.arrivals,
            completed,
            outstanding,
            global_queue,
            held
        );
        for u in units {
            let accounted: u64 = u
                .device
                .resident_models()
                .map(|m| registry.occupancy_bytes(m))
                .sum();
            let used = u.device.used_bytes();
            assert!(
                accounted == used,
                "simcheck: GPU {:?} residency bytes diverged: registry accounts {} for {} \
                 resident models, device reports {} used",
                u.id(),
                accounted,
                u.device.resident_models().count(),
                used
            );
            let hbm = u.device.spec().memory_bytes;
            assert!(
                used <= hbm,
                "simcheck: GPU {:?} over capacity: {} used > {} HBM bytes",
                u.id(),
                used,
                hbm
            );
        }
        let s = store.stats();
        assert!(
            s.host_bytes_used <= s.host_capacity,
            "simcheck: host tier over capacity: {} used > {} bytes",
            s.host_bytes_used,
            s.host_capacity
        );
    }

    /// End-of-run checks, called after the event queue drained and the
    /// metrics were finalised: every arrival completed, at least one
    /// audit ran, and the independent queue integral reproduces
    /// `avg_queue_depth` bit-for-bit.
    pub fn finish(
        &mut self,
        end: SimTime,
        metrics: &RunMetrics,
        units: &[GpuUnit],
        registry: &ModelRegistry,
        store: &dyn ModelStore,
    ) {
        // Drained run: nothing outstanding anywhere.
        self.audit(metrics.completed, 0, units, registry, store);
        assert!(
            self.arrivals == metrics.completed,
            "simcheck: run drained with {} arrivals but {} completions",
            self.arrivals,
            metrics.completed
        );
        assert!(self.audits > 0, "simcheck: no fleet audit ever ran");
        // Mirror of `MetricsCollector::finish`: integrate the final
        // stretch to the makespan, divide by it. Same inputs, same
        // arithmetic, so the f64s must agree in every bit.
        let ticks = self.q_ticks
            + end.as_micros().saturating_sub(self.q_last_t.as_micros()) as u128
                * self.q_last_len as u128;
        let expect = if end == SimTime::ZERO {
            0.0
        } else {
            ticks as f64 / end.as_micros() as f64
        };
        assert!(
            expect.to_bits() == metrics.avg_queue_depth.to_bits(),
            "simcheck: queue-depth integral diverged: sanitizer mirror {} vs metrics {} \
             (bitwise {:#x} vs {:#x})",
            expect,
            metrics.avg_queue_depth,
            expect.to_bits(),
            metrics.avg_queue_depth.to_bits()
        );
    }

    /// Serialises the checker for an on-disk checkpoint, so a
    /// warm-started `simcheck` build resumes with consistent conservation
    /// counters instead of asserting spuriously on the first audit.
    pub fn save_state(&self, enc: &mut gfaas_snap::Enc) {
        enc.put_u64(self.arrivals);
        enc.put_time(self.last_t);
        enc.put_u64(self.events);
        enc.put_u64(self.audits);
        enc.put_time(self.q_last_t);
        enc.put_usize(self.q_last_len);
        enc.put_u128(self.q_ticks);
    }

    /// Restores state written by [`SimChecker::save_state`].
    pub fn load_state(
        &mut self,
        dec: &mut gfaas_snap::Dec<'_>,
    ) -> Result<(), gfaas_snap::SnapError> {
        self.arrivals = dec.u64()?;
        self.last_t = dec.time()?;
        self.events = dec.u64()?;
        self.audits = dec.u64()?;
        self.q_last_t = dec.time()?;
        self.q_last_len = dec.usize()?;
        self.q_ticks = dec.u128()?;
        Ok(())
    }

    /// Cross-checks the observability ledger against the metrics
    /// pipeline — the two independent accountings of every request's
    /// latency. Asserts, for a drained run:
    ///
    /// * every completed row's four lifecycle segments sum *exactly*
    ///   (integer ticks) to its recorded latency;
    /// * the ledger completed exactly as many rows as the metrics
    ///   pipeline counted completions;
    /// * the sum of ledger latencies equals, tick for tick, the sum of
    ///   the latency histogram's samples (`latency_tick_sum`, captured
    ///   from the collector before `finish` consumed it). Histogram
    ///   samples are seconds as `f64`; whole microsecond counts below
    ///   2^53 round-trip through that representation exactly, so the
    ///   comparison is exact, not approximate.
    pub fn check_ledger(&self, ledger: &Ledger, completed: u64, latency_tick_sum: u64) {
        let mut rows_completed = 0u64;
        let mut ledger_ticks = 0u64;
        for row in ledger.rows() {
            if !row.completed {
                continue;
            }
            rows_completed += 1;
            ledger_ticks += row.latency.as_micros();
            assert!(
                row.segments_sum() == row.latency,
                "simcheck: ledger row {} segments sum to {:?} but latency is {:?}",
                row.req,
                row.segments_sum(),
                row.latency
            );
        }
        assert!(
            rows_completed == completed && rows_completed == ledger.completed() as u64,
            "simcheck: ledger completed {} rows (counter {}) but metrics counted {}",
            rows_completed,
            ledger.completed(),
            completed
        );
        assert!(
            ledger_ticks == latency_tick_sum,
            "simcheck: ledger latencies sum to {ledger_ticks} µs but the metrics histogram \
             holds {latency_tick_sum} µs"
        );
    }
}
