//! `gfaas-core` — the paper's contribution: GPU-enabled FaaS with
//! co-designed scheduling and cache management.
//!
//! Three components extend the FaaS substrate (`gfaas-faas`) with GPU
//! support (paper Fig 2):
//!
//! * [`cache::CacheManager`] — global; treats models uploaded to each GPU's
//!   memory as cache items under per-GPU LRU lists (FIFO/random available
//!   for the §VI ablation), picks eviction victims on misses, and maintains
//!   the model→GPUs residency index the scheduler searches.
//! * [`gpu_manager`] — per-GPU execution state: the local queue, the
//!   in-flight request, hit counters, and the estimated-finish-time
//!   computation Algorithm 2 compares against model load time.
//! * [`scheduler`] — the policies: the default load-balancing baseline
//!   (**LB**), locality-aware load balancing (**LALB**, Algorithms 1–2),
//!   and LALB with out-of-order dispatch (**LALB+O3**) with its
//!   starvation limit.
//!
//! [`cluster::Cluster`] wires everything to the discrete-event engine and
//! runs a workload trace to completion, producing [`metrics::RunMetrics`] —
//! exactly the quantities the paper's Figs 4–7 plot (average latency,
//! cache miss ratio, SM utilisation, false-miss ratio, hot-model
//! duplicates, latency variance).

#![warn(missing_docs)]

pub mod cache;
pub mod cluster;
pub mod config;
pub mod gpu_manager;
pub mod live;
pub mod metrics;
pub mod request;
pub mod scheduler;

pub use cache::{CacheManager, ReplacementPolicy};
pub use cluster::Cluster;
pub use config::ClusterConfig;
pub use live::{LiveResponse, LiveServer};
pub use metrics::RunMetrics;
pub use request::Request;
pub use scheduler::Policy;
