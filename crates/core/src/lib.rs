//! `gfaas-core` — the paper's contribution: GPU-enabled FaaS with
//! co-designed scheduling and cache management.
//!
//! Three components extend the FaaS substrate (`gfaas-faas`) with GPU
//! support (paper Fig 2):
//!
//! * [`cache::CacheManager`] — global; treats models uploaded to each GPU's
//!   memory as cache items, asks its pluggable [`cache::Evictor`] for
//!   victims on misses (per-GPU LRU by default; FIFO/random for the §VI
//!   ablation, TinyLFU for drift-heavy workloads), and maintains the
//!   model→GPUs residency index the scheduler searches.
//! * [`gpu_manager`] — per-GPU execution state: the local queue, the
//!   in-flight request, hit counters, and the estimated-finish-time
//!   computation Algorithm 2 compares against model load time.
//! * [`scheduler`] — the policy surface: the open
//!   [`scheduler::SchedulerPolicy`] trait plus the paper's impls — the
//!   load-balancing baseline (**LB**), locality-aware load balancing
//!   (**LALB**, Algorithms 1–2), and LALB with out-of-order dispatch
//!   (**LALB+O3**) with its starvation limit.
//!
//! Schedulers and evictors are named by string specs (`"lalbo3:25"`,
//! `"tinylfu:0.9"`) resolved through [`policy::PolicyRegistry`]; the
//! [`Policy`] / [`ReplacementPolicy`] enums remain as thin constructors
//! for the paper's closed set.
//!
//! Beyond the paper's fixed 12-GPU testbed, [`autoscale`] adds elastic
//! capacity: an open [`autoscale::Autoscaler`] trait stepped on a virtual
//! cadence over a borrowed [`cluster::ScaleView`], with a builtin
//! queue-pressure hysteresis policy
//! (`ClusterConfig::autoscale = Some("queue:min=4,max=16,up=12,down=2".parse()?)`)
//! that provisions cold GPUs under backlog and drains idle ones — no
//! request lost — when the queue stays quiet.
//!
//! [`cluster::Cluster`] wires everything to the discrete-event engine and
//! runs a workload trace to completion, producing [`metrics::RunMetrics`] —
//! exactly the quantities the paper's Figs 4–7 plot (average latency,
//! cache miss ratio, SM utilisation, false-miss ratio, hot-model
//! duplicates, latency variance).

#![warn(missing_docs)]

pub mod autoscale;
pub mod batching;
pub mod cache;
pub mod cluster;
pub mod config;
pub mod gpu_manager;
pub mod live;
pub mod metrics;
pub mod policy;
pub mod request;
pub mod scheduler;
#[cfg(feature = "simcheck")]
pub mod simcheck;
pub mod tinylfu;

/// Re-export of the observability layer ([`gfaas_obs`]): the [`obs::Recorder`]
/// trait the cluster's lifecycle hooks feed, the concrete recorders
/// (ledger / Perfetto / sampler), and the `--record` spec.
pub use gfaas_obs as obs;

/// Re-export of the versioned-state layer ([`gfaas_snap`]): the undo-log
/// [`snap::Journal`] behind [`cluster::Cluster::snapshot`] /
/// [`cluster::Cluster::rollback`], plus the checkpoint wire codec
/// ([`snap::Enc`] / [`snap::Dec`]) and its header/digest helpers.
pub use gfaas_snap as snap;

/// Re-export of the storage hierarchy ([`gfaas_store`]): the
/// [`store::ModelStore`] backend trait behind the cluster's load path,
/// the flat (paper-identical) and tiered (HBM ↔ host ↔ origin) backends,
/// and the `flat` | `tiered:host=64G,…` spec grammar.
pub use gfaas_store as store;

pub use autoscale::{
    AutoscaleError, AutoscaleSpec, Autoscaler, QueuePressureAutoscaler, ScaleDecision,
};
pub use batching::{AdaptiveBatch, BatchPlan, BatchPolicy, BatchView, CoalesceBatch, NoBatch};
pub use cache::{CacheManager, Evictor, FifoEvictor, LruEvictor, RandomEvictor, ReplacementPolicy};
pub use cluster::{Cluster, ScaleView, SchedCtx, SpecPlacement, SpecScore};
pub use config::{ClusterConfig, ConfigError};
pub use gfaas_obs::{NullRecorder, ObsEvent, RecordSpec, Recorder, SelfProfile};
pub use gfaas_store::{FlatStore, ModelStore, StoreError, StoreSpec, StoreStats, TieredStore};
pub use live::{LiveResponse, LiveServer};
pub use metrics::RunMetrics;
pub use policy::{PolicyError, PolicyRegistry, PolicySpec};
pub use request::Request;
pub use scheduler::{
    Dispatch, LalbScheduler, LbScheduler, LookaheadScheduler, Policy, SchedulerPolicy,
};
pub use tinylfu::TinyLfuEvictor;
