//! Per-GPU execution state and finish-time estimation (paper §III-C).
//!
//! The paper runs one GPU Manager per node; each manages its GPUs'
//! processes, enforces one-request-at-a-time, reports busy/idle status, and
//! estimates the finish time of a GPU's queued work — the quantity
//! Algorithm 2 compares against a model's load time when deciding between
//! a hit on a busy GPU and a miss on an idle one.
//!
//! [`GpuUnit`] is that per-GPU state: the simulated device, the local
//! queue of requests scheduled to it while busy, the in-flight request, and
//! the hit counter used to sort idle GPUs "by frequency" (Algorithm 1's
//! input ordering).

use std::collections::VecDeque;

use gfaas_gpu::{GpuDevice, GpuId, ModelId};
use gfaas_sim::time::{SimDuration, SimTime};

use crate::request::Request;

/// Which phase the in-flight request is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Uploading the model (cache-miss path).
    Loading,
    /// Running the inference.
    Running,
}

/// The request currently executing on a GPU.
#[derive(Debug, Clone, Copy)]
pub struct InFlight {
    /// The request.
    pub request: Request,
    /// Load-then-infer (miss) or infer-only (hit).
    pub phase: Phase,
    /// Whether the dispatch was a cache hit.
    pub was_hit: bool,
    /// When execution started on the device.
    pub started: SimTime,
    /// Dispatch sequence token; completion/crash events must match it
    /// (a crash invalidates the token so stale completions are ignored).
    pub seq: u64,
}

/// Per-GPU execution state.
#[derive(Debug)]
pub struct GpuUnit {
    /// The simulated device.
    pub device: GpuDevice,
    /// Requests scheduled to this GPU while it was busy (always cache hits
    /// by construction — Algorithm 2 only moves a request here when the
    /// model is resident).
    pub local_queue: VecDeque<Request>,
    /// The in-flight request, if any.
    pub in_flight: Option<InFlight>,
    /// Cache hits served; Algorithm 1 sorts idle GPUs by this frequency.
    pub hits: u64,
    /// When the GPU last became idle (for the LB baseline's longest-idle
    /// selection).
    pub idle_since: SimTime,
}

impl GpuUnit {
    /// Wraps a fresh device.
    pub fn new(device: GpuDevice) -> Self {
        GpuUnit {
            device,
            local_queue: VecDeque::new(),
            in_flight: None,
            hits: 0,
            idle_since: SimTime::ZERO,
        }
    }

    /// The device id.
    pub fn id(&self) -> GpuId {
        self.device.id()
    }

    /// True iff no request is in flight (the *device* may briefly report
    /// idle between load completion and inference start; the unit is the
    /// authority).
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none()
    }

    /// Estimated time from `now` until this GPU has drained its current
    /// request and local queue (paper: "the time to wait for the busy GPU
    /// to finish its current request and requests already queued in its
    /// local queue"). If the in-flight request is still uploading its
    /// model, its own inference is still ahead and counts too. Local-queue
    /// entries are hits, so they cost only inference time. `infer_time`
    /// maps (model, batch) to latency.
    pub fn estimated_wait(
        &self,
        now: SimTime,
        infer_time: impl Fn(ModelId, usize) -> SimDuration,
    ) -> SimDuration {
        let mut wait = self
            .device
            .busy_until()
            .map(|t| t.duration_since(now))
            .unwrap_or(SimDuration::ZERO);
        if let Some(f) = &self.in_flight {
            if f.phase == Phase::Loading {
                wait += infer_time(f.request.model, f.request.batch);
            }
        }
        wait + self
            .local_queue
            .iter()
            .map(|r| infer_time(r.model, r.batch))
            .sum()
    }

    /// Estimated finish time of a *new* hit request appended after the
    /// queue (wait + its own inference).
    pub fn estimated_finish(
        &self,
        now: SimTime,
        request: &Request,
        infer_time: impl Fn(ModelId, usize) -> SimDuration,
    ) -> SimDuration {
        self.estimated_wait(now, &infer_time) + infer_time(request.model, request.batch)
    }
}

/// Status string the GPU Manager publishes to the Datastore (paper: the
/// Scheduler reads GPU busy/idle status and estimated finish times from
/// etcd).
pub fn status_key(gpu: GpuId) -> String {
    format!("/gpu/{}/status", gpu.0)
}

/// Datastore key for a GPU's LRU list.
pub fn lru_key(gpu: GpuId) -> String {
    format!("/gpu/{}/lru", gpu.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfaas_gpu::{GpuSpec, MIB};

    fn unit() -> GpuUnit {
        GpuUnit::new(GpuDevice::new(GpuId(3), GpuSpec::test(8192)))
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn req(id: u64, model: u32) -> Request {
        Request::new(id, 0, ModelId(model), 32, SimTime::ZERO)
    }

    #[test]
    fn idle_unit_has_zero_wait() {
        let u = unit();
        assert!(u.is_idle());
        assert_eq!(u.estimated_wait(t(0), |_, _| d(1)), SimDuration::ZERO);
    }

    #[test]
    fn wait_includes_current_work_and_local_queue() {
        let mut u = unit();
        // Occupy the device until t=10.
        let (_, ready) = u.device.start_load(t(0), ModelId(0), 100 * MIB).unwrap();
        u.device.complete_load(ready, ModelId(0)).unwrap();
        u.device.start_inference(ready, ModelId(0), d(10)).unwrap();
        u.in_flight = Some(InFlight {
            request: req(1, 0),
            phase: Phase::Running,
            was_hit: true,
            started: ready,
            seq: 0,
        });
        u.local_queue.push_back(req(2, 0));
        u.local_queue.push_back(req(3, 0));
        let wait = u.estimated_wait(ready, |_, _| d(2));
        // Remaining inference (10 s) + 2 local hits × 2 s.
        assert_eq!(wait, d(14));
        let finish = u.estimated_finish(ready, &req(4, 0), |_, _| d(2));
        assert_eq!(finish, d(16));
        assert!(!u.is_idle());
    }

    #[test]
    fn wait_shrinks_as_time_passes() {
        let mut u = unit();
        let (_, ready) = u.device.start_load(t(0), ModelId(0), 100 * MIB).unwrap();
        u.device.complete_load(ready, ModelId(0)).unwrap();
        u.device.start_inference(ready, ModelId(0), d(10)).unwrap();
        let early = u.estimated_wait(ready, |_, _| d(0));
        let late = u.estimated_wait(ready + d(6), |_, _| d(0));
        assert_eq!(early, d(10));
        assert_eq!(late, d(4));
    }

    #[test]
    fn datastore_keys_are_stable() {
        assert_eq!(status_key(GpuId(7)), "/gpu/7/status");
        assert_eq!(lru_key(GpuId(0)), "/gpu/0/lru");
    }
}
