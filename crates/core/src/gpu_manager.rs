//! Per-GPU execution state and finish-time estimation (paper §III-C).
//!
//! The paper runs one GPU Manager per node; each manages its GPUs'
//! processes, enforces one-request-at-a-time, reports busy/idle status, and
//! estimates the finish time of a GPU's queued work — the quantity
//! Algorithm 2 compares against a model's load time when deciding between
//! a hit on a busy GPU and a miss on an idle one.
//!
//! [`GpuUnit`] is that per-GPU state: the simulated device, the local
//! queue of requests scheduled to it while busy, the in-flight request, and
//! the hit counter used to sort idle GPUs "by frequency" (Algorithm 1's
//! input ordering).

use std::collections::VecDeque;

use gfaas_gpu::{GpuDevice, GpuId, ModelId, Tier};
use gfaas_sim::time::{SimDuration, SimTime};

use crate::request::Request;

/// Which phase the in-flight request is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Uploading the model (cache-miss path).
    Loading,
    /// Running the inference.
    Running,
}

/// The work currently executing on a GPU: one invocation serving one or
/// more coalesced same-model requests (one, unless a
/// [`crate::batching::BatchPolicy`] merged a batch).
#[derive(Debug, Clone)]
pub struct InFlight {
    /// The coalesced requests, lead first (the lead's dispatch decided
    /// placement and hit/miss accounting). Never empty; all share one
    /// model.
    pub requests: Vec<Request>,
    /// Load-then-infer (miss) or infer-only (hit).
    pub phase: Phase,
    /// Whether the lead dispatch was a cache hit (riding requests always
    /// count as hits — they share the lead's upload or residency).
    pub was_hit: bool,
    /// When execution started on the device.
    pub started: SimTime,
    /// Dispatch sequence token; completion/crash events must match it
    /// (a crash invalidates the token so stale completions are ignored).
    pub seq: u64,
    /// Which storage tier served the lead dispatch: [`Tier::HBM`] for a
    /// cache hit, the tier [`gfaas_store::ModelStore::begin_load`] reported
    /// for a miss (host cache vs origin under a tiered store; a flat store
    /// always reports origin). Carried so the load-complete event can be
    /// labelled with where the bytes actually came from.
    pub tier: Tier,
}

impl InFlight {
    /// A single-request invocation (the paper's per-request dispatch).
    /// The tier defaults to [`Tier::HBM`] — the hit path; miss paths set
    /// the serving tier explicitly from the store's answer.
    pub fn solo(request: Request, phase: Phase, was_hit: bool, started: SimTime, seq: u64) -> Self {
        InFlight {
            requests: vec![request],
            phase,
            was_hit,
            started,
            seq,
            tier: Tier::HBM,
        }
    }

    /// The invocation's model (shared by every coalesced request).
    pub fn model(&self) -> ModelId {
        self.requests[0].model
    }

    /// The lead request.
    pub fn lead(&self) -> &Request {
        &self.requests[0]
    }

    /// Total inference inputs across the coalesced requests — what the
    /// affine latency model is charged with.
    pub fn items(&self) -> usize {
        self.requests.iter().map(|r| r.batch).sum()
    }
}

/// A batch parked on a GPU by a [`crate::batching::BatchPolicy`] hold:
/// the dispatch is delayed briefly so more same-model requests can join.
/// The GPU is reserved (not idle) while holding; a `BatchHold` timer —
/// or the batch filling to `max_requests` — launches it.
#[derive(Debug, Clone)]
pub struct HoldSlot {
    /// The requests gathered so far, lead first (never empty).
    pub requests: Vec<Request>,
    /// Fill target: reaching it launches the batch before the timer.
    pub max_requests: usize,
    /// Whether the lead dispatch was a cache hit.
    pub hit: bool,
    /// When the hold timer fires.
    pub release_at: SimTime,
    /// Sequence token matching the scheduled `BatchHold` event (an early
    /// launch clears the slot; the stale timer is then ignored).
    pub seq: u64,
}

impl HoldSlot {
    /// The held batch's model.
    pub fn model(&self) -> ModelId {
        self.requests[0].model
    }

    /// Total inference inputs gathered so far.
    pub fn items(&self) -> usize {
        self.requests.iter().map(|r| r.batch).sum()
    }
}

/// Provisioning state of a GPU in an elastic cluster.
///
/// Fixed clusters keep every unit [`UnitState::Online`] for the whole
/// run; the other states exist for the autoscaler
/// ([`crate::autoscale`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitState {
    /// Not provisioned: invisible to the scheduler, holds no models.
    Offline,
    /// Provisioned and dispatchable.
    Online,
    /// Scale-down victim: finishes its in-flight request and local queue
    /// but receives no new work; once drained, its resident models are
    /// evicted and it goes [`UnitState::Offline`].
    Draining,
}

/// Per-GPU execution state.
#[derive(Debug, Clone)]
pub struct GpuUnit {
    /// The simulated device.
    pub device: GpuDevice,
    /// Requests scheduled to this GPU while it was busy (always cache hits
    /// by construction — Algorithm 2 only moves a request here when the
    /// model is resident).
    pub local_queue: VecDeque<Request>,
    /// The in-flight invocation, if any.
    pub in_flight: Option<InFlight>,
    /// A batch held back for coalescing ([`HoldSlot`]), if any. A holding
    /// GPU is reserved: not idle, but nothing runs on the device yet.
    pub holding: Option<HoldSlot>,
    /// Cache hits served; Algorithm 1 sorts idle GPUs by this frequency.
    pub hits: u64,
    /// When the GPU last became idle (for the LB baseline's longest-idle
    /// selection).
    pub idle_since: SimTime,
    /// Provisioning state ([`UnitState::Online`] in fixed clusters).
    pub state: UnitState,
    /// When the current online interval began (meaningful while not
    /// [`UnitState::Offline`]).
    pub online_since: SimTime,
    /// Provisioned time accumulated over *completed* online intervals;
    /// the open interval is closed by [`GpuUnit::provisioned_until`].
    pub provisioned: SimDuration,
}

impl GpuUnit {
    /// Wraps a fresh device, online from time zero.
    pub fn new(device: GpuDevice) -> Self {
        GpuUnit {
            device,
            local_queue: VecDeque::new(),
            in_flight: None,
            holding: None,
            hits: 0,
            idle_since: SimTime::ZERO,
            state: UnitState::Online,
            online_since: SimTime::ZERO,
            provisioned: SimDuration::ZERO,
        }
    }

    /// Total provisioned (online or draining) time up to `end`: completed
    /// intervals plus the still-open one. The integral behind
    /// `gpu_seconds_provisioned`.
    pub fn provisioned_until(&self, end: SimTime) -> SimDuration {
        let open = match self.state {
            UnitState::Offline => SimDuration::ZERO,
            UnitState::Online | UnitState::Draining => end.duration_since(self.online_since),
        };
        self.provisioned + open
    }

    /// The device id.
    pub fn id(&self) -> GpuId {
        self.device.id()
    }

    /// True iff no invocation is in flight and no held batch reserves the
    /// GPU (the *device* may briefly report idle between load completion
    /// and inference start; the unit is the authority).
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none() && self.holding.is_none()
    }

    /// Estimated time from `now` until this GPU has drained its current
    /// request and local queue (paper: "the time to wait for the busy GPU
    /// to finish its current request and requests already queued in its
    /// local queue"). If the in-flight request is still uploading its
    /// model, its own inference is still ahead and counts too.
    ///
    /// Local-queue entries are charged their inference time plus — for any
    /// queued request whose model is *not* resident on this device — one
    /// model upload (`load_time`), counted once per distinct missing
    /// model. Algorithm 2 only queues residents locally, so under the
    /// paper's scheduler the load term is zero and the estimate is
    /// unchanged; the term matters for custom policies (and crash/drain
    /// races) that leave non-resident work queued, where the old
    /// infer-only sum biased the wait-vs-load comparison toward waiting.
    /// `infer_time` maps (model, batch) to latency; `load_time` maps a
    /// model to its upload time on this GPU.
    ///
    /// With `coalesced` set (a [`crate::batching::BatchPolicy`] other
    /// than `none` is active), same-model local-queue entries are charged
    /// as *one* invocation over their combined inputs — the affine
    /// latency model's batch time, not a per-request sum — since that is
    /// how the driver will actually run them. Per-request dispatch keeps
    /// the paper's per-request sum, byte-identically.
    pub fn estimated_wait(
        &self,
        now: SimTime,
        coalesced: bool,
        infer_time: impl Fn(ModelId, usize) -> SimDuration,
        load_time: impl Fn(ModelId) -> SimDuration,
    ) -> SimDuration {
        let mut wait = self
            .device
            .busy_until()
            .map(|t| t.duration_since(now))
            .unwrap_or(SimDuration::ZERO);
        if let Some(f) = &self.in_flight {
            if f.phase == Phase::Loading {
                // A coalesced invocation is charged its whole batch, not
                // one request's worth.
                wait += infer_time(f.model(), f.items());
            }
        }
        if let Some(h) = &self.holding {
            // A held batch still has its hold remainder, its upload when
            // the model is not resident, and its coalesced inference
            // ahead of it.
            wait += h.release_at.duration_since(now.min(h.release_at));
            if !self.device.has_model(h.model()) {
                wait += load_time(h.model());
            }
            wait += infer_time(h.model(), h.items());
        }
        if coalesced {
            // Same-model entries will run as one coalesced invocation:
            // charge each distinct model one upload (when missing) and
            // one affine inference over the group's combined inputs.
            let mut groups: Vec<(ModelId, usize)> = Vec::new();
            for r in &self.local_queue {
                match groups.iter_mut().find(|(m, _)| *m == r.model) {
                    Some(g) => g.1 += r.batch,
                    None => groups.push((r.model, r.batch)),
                }
            }
            for (model, items) in groups {
                if !self.device.has_model(model) {
                    wait += load_time(model);
                }
                wait += infer_time(model, items);
            }
        } else {
            let mut pending_loads: Vec<ModelId> = Vec::new();
            for r in &self.local_queue {
                if !self.device.has_model(r.model) && !pending_loads.contains(&r.model) {
                    pending_loads.push(r.model);
                    wait += load_time(r.model);
                }
                wait += infer_time(r.model, r.batch);
            }
        }
        wait
    }

    /// Estimated time from `now` until a request for `model` joining this
    /// GPU's local queue would *start being served* under coalescing: it
    /// rides the in-flight invocation if that is still uploading `model`,
    /// joins a held batch of `model`, or shares its model's local-queue
    /// group's invocation — so preceding work is charged, but never the
    /// group it merges into. With no same-model work queued, this is the
    /// full coalesced drain ([`GpuUnit::estimated_wait`] with
    /// `coalesced`). Algorithm 2's wait-vs-load comparison uses this
    /// under batching: joining a busy holder is cheaper than the
    /// per-request drain suggests, which is what makes waiting beat
    /// replicating the model.
    pub fn estimated_join_wait(
        &self,
        now: SimTime,
        model: ModelId,
        infer_time: impl Fn(ModelId, usize) -> SimDuration,
        load_time: impl Fn(ModelId) -> SimDuration,
    ) -> SimDuration {
        let mut wait = self
            .device
            .busy_until()
            .map(|t| t.duration_since(now))
            .unwrap_or(SimDuration::ZERO);
        if let Some(f) = &self.in_flight {
            if f.phase == Phase::Loading {
                if f.model() == model {
                    // Joins the forming invocation when the upload ends.
                    return wait;
                }
                wait += infer_time(f.model(), f.items());
            }
        }
        if let Some(h) = &self.holding {
            wait += h.release_at.duration_since(now.min(h.release_at));
            if h.model() == model {
                return wait; // joins the held batch at its release
            }
            if !self.device.has_model(h.model()) {
                wait += load_time(h.model());
            }
            wait += infer_time(h.model(), h.items());
        }
        // Local-queue groups run in first-entry order; the request shares
        // its own model's group, so later groups never count.
        let mut groups: Vec<(ModelId, usize)> = Vec::new();
        for r in &self.local_queue {
            match groups.iter_mut().find(|(m, _)| *m == r.model) {
                Some(g) => g.1 += r.batch,
                None => groups.push((r.model, r.batch)),
            }
        }
        for (m, items) in groups {
            if m == model {
                return wait;
            }
            if !self.device.has_model(m) {
                wait += load_time(m);
            }
            wait += infer_time(m, items);
        }
        wait
    }

    /// Estimated finish time of a *new* request appended after the queue:
    /// the drain estimate, plus the request's own upload when its model is
    /// not yet resident (and not already charged by a queued request),
    /// plus its inference. With `coalesced` set, a request whose model
    /// already has queued (or held) work joins that invocation and is
    /// charged only the *marginal* affine cost of its inputs.
    pub fn estimated_finish(
        &self,
        now: SimTime,
        coalesced: bool,
        request: &Request,
        infer_time: impl Fn(ModelId, usize) -> SimDuration,
        load_time: impl Fn(ModelId) -> SimDuration,
    ) -> SimDuration {
        let mut finish = self.estimated_wait(now, coalesced, &infer_time, &load_time);
        let group_items: usize = self
            .local_queue
            .iter()
            .filter(|r| r.model == request.model)
            .map(|r| r.batch)
            .sum::<usize>()
            + self
                .holding
                .as_ref()
                .filter(|h| h.model() == request.model)
                .map_or(0, |h| h.items());
        if !self.device.has_model(request.model) && group_items == 0 {
            finish += load_time(request.model);
        }
        if coalesced && group_items > 0 {
            // Marginal cost of joining the group's invocation: the base
            // term is already charged by the drain estimate.
            finish
                + infer_time(request.model, group_items + request.batch)
                    .saturating_sub(infer_time(request.model, group_items))
        } else {
            finish + infer_time(request.model, request.batch)
        }
    }
}

/// Status string the GPU Manager publishes to the Datastore (paper: the
/// Scheduler reads GPU busy/idle status and estimated finish times from
/// etcd).
pub fn status_key(gpu: GpuId) -> String {
    format!("/gpu/{}/status", gpu.0)
}

/// Datastore key for a GPU's LRU list.
pub fn lru_key(gpu: GpuId) -> String {
    format!("/gpu/{}/lru", gpu.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfaas_gpu::{GpuSpec, MIB};

    fn unit() -> GpuUnit {
        GpuUnit::new(GpuDevice::new(GpuId(3), GpuSpec::test(8192)))
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn req(id: u64, model: u32) -> Request {
        Request::new(id, 0, ModelId(model), 32, SimTime::ZERO)
    }

    /// No queued model misses residency in these tests unless stated, so
    /// the load closure is a loud sentinel: charging it is a bug.
    fn no_load(_: ModelId) -> SimDuration {
        SimDuration::from_secs(9999)
    }

    #[test]
    fn idle_unit_has_zero_wait() {
        let u = unit();
        assert!(u.is_idle());
        assert_eq!(
            u.estimated_wait(t(0), false, |_, _| d(1), no_load),
            SimDuration::ZERO
        );
    }

    #[test]
    fn wait_includes_current_work_and_local_queue() {
        let mut u = unit();
        // Occupy the device until t=10.
        let (_, ready) = u.device.start_load(t(0), ModelId(0), 100 * MIB).unwrap();
        u.device.complete_load(ready, ModelId(0)).unwrap();
        u.device.start_inference(ready, ModelId(0), d(10)).unwrap();
        u.in_flight = Some(InFlight::solo(req(1, 0), Phase::Running, true, ready, 0));
        u.local_queue.push_back(req(2, 0));
        u.local_queue.push_back(req(3, 0));
        let wait = u.estimated_wait(ready, false, |_, _| d(2), no_load);
        // Remaining inference (10 s) + 2 resident local hits × 2 s.
        assert_eq!(wait, d(14));
        let finish = u.estimated_finish(ready, false, &req(4, 0), |_, _| d(2), no_load);
        assert_eq!(finish, d(16));
        assert!(!u.is_idle());
    }

    #[test]
    fn wait_shrinks_as_time_passes() {
        let mut u = unit();
        let (_, ready) = u.device.start_load(t(0), ModelId(0), 100 * MIB).unwrap();
        u.device.complete_load(ready, ModelId(0)).unwrap();
        u.device.start_inference(ready, ModelId(0), d(10)).unwrap();
        let early = u.estimated_wait(ready, false, |_, _| d(0), no_load);
        let late = u.estimated_wait(ready + d(6), false, |_, _| d(0), no_load);
        assert_eq!(early, d(10));
        assert_eq!(late, d(4));
    }

    #[test]
    fn wait_charges_one_load_per_distinct_missing_model() {
        let mut u = unit();
        // Device busy running model 0 until t=10; the local queue holds
        // two requests for missing model 7, one for missing model 8, and
        // one resident hit for model 0.
        let (_, ready) = u.device.start_load(t(0), ModelId(0), 100 * MIB).unwrap();
        u.device.complete_load(ready, ModelId(0)).unwrap();
        u.device.start_inference(ready, ModelId(0), d(10)).unwrap();
        u.in_flight = Some(InFlight::solo(req(1, 0), Phase::Running, true, ready, 0));
        u.local_queue.push_back(req(2, 7));
        u.local_queue.push_back(req(3, 7));
        u.local_queue.push_back(req(4, 8));
        u.local_queue.push_back(req(5, 0));
        let wait = u.estimated_wait(ready, false, |_, _| d(2), |_| d(3));
        // 10 (in flight) + 4 × 2 (inferences) + 2 × 3 (loads of 7 and 8,
        // each charged once).
        assert_eq!(wait, d(24));
    }

    #[test]
    fn finish_charges_the_new_request_load_only_when_missing_and_uncharged() {
        let mut u = unit();
        let (_, ready) = u.device.start_load(t(0), ModelId(0), 100 * MIB).unwrap();
        u.device.complete_load(ready, ModelId(0)).unwrap();
        u.device.start_inference(ready, ModelId(0), d(10)).unwrap();
        u.in_flight = Some(InFlight::solo(req(1, 0), Phase::Running, true, ready, 0));
        // Missing model, nothing queued for it: wait 10 + load 3 + infer 2.
        let cold = u.estimated_finish(ready, false, &req(2, 7), |_, _| d(2), |_| d(3));
        assert_eq!(cold, d(15));
        // Resident model: no load term.
        let hit = u.estimated_finish(ready, false, &req(3, 0), |_, _| d(2), |_| d(3));
        assert_eq!(hit, d(12));
        // Missing model already charged by a queued request: the new
        // request rides the same upload (wait 10 + load 3 + infer 2,
        // plus its own infer 2).
        u.local_queue.push_back(req(4, 7));
        let shared = u.estimated_finish(ready, false, &req(5, 7), |_, _| d(2), |_| d(3));
        assert_eq!(shared, d(17));
    }

    #[test]
    fn estimate_matches_actual_drain_replayed_on_the_device() {
        // Accuracy check against real device transitions: the unit runs
        // m0 until t=10 with a local queue of [m0 hit, m7 (not resident)].
        // The estimator must predict exactly the drain time the device
        // realises when the schedule is replayed: 10 (in flight) + 2 (m0
        // hit) + 3 (m7 load) + 2 (m7 infer) = 17.
        let infer = |_: ModelId, _: usize| d(2);
        let load = |_: ModelId| d(3);
        let mut u = unit();
        let (_, ready) = u.device.start_load(t(0), ModelId(0), 100 * MIB).unwrap();
        u.device.complete_load(ready, ModelId(0)).unwrap();
        u.device.start_inference(ready, ModelId(0), d(10)).unwrap();
        u.in_flight = Some(InFlight::solo(req(1, 0), Phase::Running, true, ready, 0));
        u.local_queue.push_back(req(2, 0));
        u.local_queue.push_back(req(3, 7));
        let estimate = u.estimated_wait(ready, false, infer, load);

        // Replay the actual schedule.
        let end_inflight = ready + d(10);
        u.device
            .complete_inference(end_inflight, ModelId(0))
            .unwrap();
        let hit_done = u
            .device
            .start_inference(end_inflight, ModelId(0), infer(ModelId(0), 32))
            .unwrap();
        u.device.complete_inference(hit_done, ModelId(0)).unwrap();
        let (_, m7_ready) = u
            .device
            .start_load_timed(hit_done, ModelId(7), 100 * MIB, load(ModelId(7)))
            .unwrap();
        u.device.complete_load(m7_ready, ModelId(7)).unwrap();
        let drained = u
            .device
            .start_inference(m7_ready, ModelId(7), infer(ModelId(7), 32))
            .unwrap();
        assert_eq!(drained.duration_since(ready), estimate);
        assert_eq!(estimate, d(17));
    }

    #[test]
    fn datastore_keys_are_stable() {
        assert_eq!(status_key(GpuId(7)), "/gpu/7/status");
        assert_eq!(lru_key(GpuId(0)), "/gpu/0/lru");
    }
}
