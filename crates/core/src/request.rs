//! Inference requests as the scheduler sees them.

use gfaas_gpu::ModelId;
use gfaas_sim::time::SimTime;

/// One queued inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Unique, monotone request id (assignment order = arrival order).
    pub id: u64,
    /// The function rank that issued the request (for reporting).
    pub function: u32,
    /// The model the request needs.
    pub model: ModelId,
    /// Inference batch size.
    pub batch: usize,
    /// Arrival time at the scheduler's global queue.
    pub arrival: SimTime,
    /// How many times the out-of-order dispatcher has skipped this request
    /// (Algorithm 1's visit counter; compared against the starvation limit).
    pub visits: u32,
    /// Owning tenant (§VI multi-tenancy; 0 when tenancy is disabled).
    pub tenant: u16,
}

impl Request {
    /// Builds a fresh request with a zero visit counter, owned by tenant 0.
    pub fn new(id: u64, function: u32, model: ModelId, batch: usize, arrival: SimTime) -> Self {
        Request {
            id,
            function,
            model,
            batch,
            arrival,
            visits: 0,
            tenant: 0,
        }
    }

    /// Assigns the owning tenant (builder style).
    pub fn with_tenant(mut self, tenant: u16) -> Self {
        self.tenant = tenant;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_request_has_no_visits() {
        let r = Request::new(1, 0, ModelId(3), 32, SimTime::from_secs(5));
        assert_eq!(r.visits, 0);
        assert_eq!(r.model, ModelId(3));
        assert_eq!(r.batch, 32);
    }
}
