//! Scheduling policies (paper §IV) — an open trait surface.
//!
//! * **LB** — the default load-balancing baseline: "simply dispatches the
//!   request at the head of the global queue whenever a GPU becomes idle"
//!   (§V-A). When several GPUs are idle, the longest-idle one is used
//!   (classic load balancing); locality is ignored, though an accidental
//!   hit still skips the upload.
//! * **LALB** — locality-aware load balancing, Algorithms 1 and 2. The
//!   O3 limit is 0: requests are considered strictly in arrival order, but
//!   each is *placed* with locality awareness (idle GPU with the model →
//!   hit; busy GPU with the model that will free up sooner than a model
//!   load → local queue; otherwise a miss on the idle GPU).
//! * **LALB+O3** — the same with out-of-order dispatch: a later request
//!   whose model is cached on the idle GPU may jump the queue; every
//!   request it jumps over has its visit counter incremented, and a request
//!   whose counter reaches the limit (default 25) is dispatched immediately
//!   via `LocalityLoadBalance` regardless of hit or miss (§IV-B's
//!   starvation guard).
//!
//! # The trait surface
//!
//! Policies implement [`SchedulerPolicy`]: the cluster driver calls
//! [`SchedulerPolicy::on_gpu_idle`] for each idle GPU with a borrowed
//! [`SchedCtx`] view of the queue, residency, and finish-time state, and
//! the policy answers with a [`Dispatch`] for that GPU (placements on
//! *other* GPUs — Algorithm 2's hit-elsewhere / wait-on-busy arms —
//! execute immediately through the context). The paper's three policies
//! are [`LbScheduler`] and [`LalbScheduler`]; the [`Policy`] enum survives
//! as a thin constructor facade, and string specs (`"lb"`, `"lalbo3:25"`)
//! resolve through [`crate::policy::PolicyRegistry`].

use crate::cluster::{SchedCtx, SpecPlacement, SpecScore};
use crate::config::BusyWaitPolicy;
use crate::request::Request;
use gfaas_gpu::GpuId;
use gfaas_sim::time::SimDuration;

/// The paper's default starvation limit for out-of-order dispatch.
pub const DEFAULT_O3_LIMIT: u32 = 25;

/// A scheduling policy — the paper's closed set, kept as a thin
/// constructor facade over the [`SchedulerPolicy`] impls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Default load balancing (the paper's baseline).
    LoadBalance,
    /// Locality-aware load balancing; `o3_limit == 0` disables
    /// out-of-order dispatch (pure LALB), `o3_limit > 0` enables it
    /// (LALB+O3) with that many allowed skips per request.
    Lalb {
        /// Maximum times a request may be skipped before it is dispatched
        /// unconditionally.
        o3_limit: u32,
    },
}

impl Policy {
    /// The LB baseline.
    pub fn lb() -> Policy {
        Policy::LoadBalance
    }

    /// LALB without out-of-order dispatch.
    pub fn lalb() -> Policy {
        Policy::Lalb { o3_limit: 0 }
    }

    /// LALB with out-of-order dispatch at the paper's default limit (25).
    pub fn lalbo3() -> Policy {
        Policy::Lalb {
            o3_limit: DEFAULT_O3_LIMIT,
        }
    }

    /// LALB with out-of-order dispatch at a custom limit (Fig 7's sweep).
    pub fn lalb_with_limit(o3_limit: u32) -> Policy {
        Policy::Lalb { o3_limit }
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Policy::LoadBalance => "LB".to_string(),
            Policy::Lalb { o3_limit: 0 } => "LALB".to_string(),
            Policy::Lalb { o3_limit } if *o3_limit == DEFAULT_O3_LIMIT => "LALBO3".to_string(),
            Policy::Lalb { o3_limit } => format!("LALBO3(limit={o3_limit})"),
        }
    }

    /// True for the locality-aware variants.
    pub fn is_locality_aware(&self) -> bool {
        matches!(self, Policy::Lalb { .. })
    }

    /// Builds the trait-object scheduler this enum variant names.
    pub fn build(self) -> Box<dyn SchedulerPolicy> {
        match self {
            Policy::LoadBalance => Box::new(LbScheduler),
            Policy::Lalb { o3_limit } => Box::new(LalbScheduler::new(o3_limit)),
        }
    }
}

/// What a policy decided for the idle GPU it was asked about.
#[derive(Debug, Clone, Copy)]
pub enum Dispatch {
    /// Nothing can be dispatched to this GPU in this pass.
    None,
    /// Run `Request` on the idle GPU as a cache hit (its model must be
    /// resident there).
    Hit(Request),
    /// Load the request's model on the idle GPU, evicting as needed, then
    /// run (the miss path).
    Miss(Request),
}

/// A scheduling policy driving the cluster's dispatch decisions.
///
/// The driver runs scheduling passes "when at least one request is
/// waiting in the global queue and at least one GPU is idle". Each pass it
/// collects the idle GPUs, lets the policy order them
/// ([`SchedulerPolicy::idle_order`]), and calls
/// [`SchedulerPolicy::on_gpu_idle`] per GPU until no policy makes
/// progress. Serving a GPU's own local queue first (Algorithm 1 lines
/// 2–5) is structural and stays in the driver.
///
/// Implementations must be deterministic: any randomness must come from
/// owned, seeded state.
pub trait SchedulerPolicy: std::fmt::Debug + Send {
    /// Display name for reports (the paper uses `LB` / `LALB` / `LALBO3`).
    fn name(&self) -> String;

    /// Orders the idle GPUs for one scheduling pass. The default is the
    /// locality-aware rule — "the list of idle GPUs (sorted by
    /// frequency)": more cache hits served first, then GPU id.
    fn idle_order(&mut self, ctx: &SchedCtx<'_>, idle: &mut Vec<GpuId>) {
        idle.sort_by(|&a, &b| ctx.hits(b).cmp(&ctx.hits(a)).then(a.cmp(&b)));
    }

    /// Decides what idle GPU `gpu` should run next. Placements on *other*
    /// GPUs (hit-elsewhere, wait-on-busy) execute immediately through
    /// `ctx`; the returned [`Dispatch`] is executed on `gpu` itself.
    fn on_gpu_idle(&mut self, gpu: GpuId, ctx: &mut SchedCtx<'_>) -> Dispatch;

    /// Serialises the policy's mutable state for a snapshot or
    /// checkpoint. The paper's policies (LB, LALB, LALB+O3) are
    /// stateless — configuration like the O3 limit is rebuilt from the
    /// spec, not serialised — so the default writes nothing; stateful
    /// policies must override both hooks symmetrically.
    fn save_state(&self, enc: &mut gfaas_snap::Enc) {
        let _ = enc;
    }

    /// Restores state written by [`SchedulerPolicy::save_state`] into a
    /// policy freshly built from the same spec.
    fn load_state(&mut self, dec: &mut gfaas_snap::Dec<'_>) -> Result<(), gfaas_snap::SnapError> {
        let _ = dec;
        Ok(())
    }
}

/// The LB baseline: head of the global queue to the longest-idle GPU,
/// locality ignored.
#[derive(Debug, Clone, Copy, Default)]
pub struct LbScheduler;

impl SchedulerPolicy for LbScheduler {
    fn name(&self) -> String {
        "LB".to_string()
    }

    /// LB: longest idle first (pure load spreading).
    fn idle_order(&mut self, ctx: &SchedCtx<'_>, idle: &mut Vec<GpuId>) {
        idle.sort_by(|&a, &b| ctx.idle_since(a).cmp(&ctx.idle_since(b)).then(a.cmp(&b)));
    }

    fn on_gpu_idle(&mut self, gpu: GpuId, ctx: &mut SchedCtx<'_>) -> Dispatch {
        if ctx.queue_len() == 0 {
            return Dispatch::None;
        }
        if ctx.tenant_blocked(ctx.queued(0).tenant) {
            return Dispatch::None; // §VI isolation: the head's tenant is at its cap
        }
        let r = ctx.take_queued(0);
        if ctx.is_cached(gpu, r.model) {
            Dispatch::Hit(r) // accidental hit still skips the upload
        } else {
            Dispatch::Miss(r)
        }
    }
}

/// Locality-aware load balancing (Algorithms 1 and 2); `o3_limit > 0`
/// adds out-of-order dispatch with that starvation limit.
#[derive(Debug, Clone, Copy)]
pub struct LalbScheduler {
    o3_limit: u32,
}

impl LalbScheduler {
    /// A LALB scheduler; `o3_limit == 0` is pure LALB, `> 0` is LALB+O3.
    pub fn new(o3_limit: u32) -> Self {
        LalbScheduler { o3_limit }
    }

    /// The configured starvation limit.
    pub fn o3_limit(&self) -> u32 {
        self.o3_limit
    }

    /// Algorithm 2. Places `r`, preferring (1) a miss on `gpu` if the model
    /// is cached nowhere, (2) a hit on another idle GPU, (3) the local
    /// queue of the busy holder with the smallest estimated wait when that
    /// wait beats the model's load time, (4) otherwise a miss on `gpu`.
    /// Returns `Some(Dispatch)` iff the request targets `gpu` itself.
    fn locality_load_balance(gpu: GpuId, r: Request, ctx: &mut SchedCtx<'_>) -> Option<Dispatch> {
        let holders = ctx.holders(r.model);
        if holders.is_empty() {
            // Lines 1–3: cached nowhere → allow the miss here.
            return Some(Dispatch::Miss(r));
        }
        // Lines 4–6: cached on another idle GPU → hit there. An idle
        // holder still carrying a local backlog is mid-pass (its queue
        // drains under Algorithm 1's local priority before it can accept
        // new work), so it is not an immediate-hit target.
        if let Some(&j) = holders
            .iter()
            .find(|&&j| j != gpu && ctx.is_idle(j) && ctx.local_backlog(j) == 0)
        {
            ctx.dispatch_hit(j, r);
            return None;
        }
        // Lines 8–15: cached only on busy GPUs. Compare the best holder's
        // estimated finish time against the load time of a cold start.
        // `busy_wait` ablates this decision (DESIGN.md §4). Under a
        // batching policy the wait is join-aware (the request shares its
        // model's coalesced invocation); per-request dispatch keeps the
        // paper's drain estimate byte-identically.
        let load_time = ctx.load_time(gpu, r.model);
        let best = holders
            .iter()
            .map(|&j| (ctx.estimated_wait_for(j, r.model), j))
            .min_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        if let Some((wait, j)) = best {
            let join_queue = match ctx.busy_wait() {
                BusyWaitPolicy::Estimate => wait < load_time,
                BusyWaitPolicy::Never => false,
                BusyWaitPolicy::Always => true,
            };
            if join_queue {
                ctx.enqueue_local(j, r);
                return None;
            }
        }
        // Lines 16–18: the busy hit would be slower → allow the miss here.
        Some(Dispatch::Miss(r))
    }
}

impl SchedulerPolicy for LalbScheduler {
    fn name(&self) -> String {
        Policy::Lalb {
            o3_limit: self.o3_limit,
        }
        .name()
    }

    /// Algorithm 1 for one idle GPU.
    fn on_gpu_idle(&mut self, gpu: GpuId, ctx: &mut SchedCtx<'_>) -> Dispatch {
        // Lines 6–16: scan the global queue in arrival order for a request
        // whose model is cached on this GPU; skipped requests accumulate
        // visits, and a request at the limit is placed immediately.
        let mut i = 0;
        while i < ctx.queue_len() {
            if !ctx.is_idle(gpu) {
                return Dispatch::None; // got work via LocalityLoadBalance
            }
            let (tenant, model, visits) = {
                let r = ctx.queued(i);
                (r.tenant, r.model, r.visits)
            };
            if ctx.tenant_blocked(tenant) {
                // §VI isolation: capped tenants are passed over without
                // O3 visit accounting (they are blocked, not skipped).
                i += 1;
                continue;
            }
            if ctx.is_cached(gpu, model) {
                return Dispatch::Hit(ctx.take_queued(i));
            }
            if visits >= self.o3_limit {
                let r = ctx.take_queued(i);
                if let Some(d) = Self::locality_load_balance(gpu, r, ctx) {
                    return d;
                }
                // r went to another GPU or a local queue; the element at
                // index i is now the next request — do not advance i.
            } else {
                ctx.note_skip(i);
                i += 1;
            }
        }

        // Lines 17–21: no queued request has its model cached here; give
        // each request (arrival order) its best placement until this GPU
        // receives one. Capped tenants stay queued.
        let mut i = 0;
        while i < ctx.queue_len() {
            if !ctx.is_idle(gpu) {
                return Dispatch::None;
            }
            if ctx.tenant_blocked(ctx.queued(i).tenant) {
                i += 1;
                continue;
            }
            let r = ctx.take_queued(i);
            if let Some(d) = Self::locality_load_balance(gpu, r, ctx) {
                return d;
            }
        }
        Dispatch::None
    }
}

/// Speculative what-if scheduling on top of the snapshot journal.
///
/// Where LALB *estimates* the cost of each §IV placement arm with the
/// finish-time model, this policy *measures* it: for each of up to `k`
/// candidate placements (hit on an idle holder, wait at a busy holder,
/// miss here) it forks the world through [`SchedCtx::speculate`], replays
/// the next `horizon` pending runtime events under greedy LALBO3, scores
/// the fork (completions, then latency ticks, then backlog), and rolls
/// it back byte-identically. The winning arm is then executed for real.
///
/// The O3 hit scan (Algorithm 1 lines 6–16) is kept verbatim — a
/// cached-here hit needs no speculation to be right — so the forks only
/// pay off on the contended placements where the estimate is blind:
/// cascading effects of evictions, batch formation, and queue drains
/// inside the horizon.
#[derive(Debug, Clone, Copy)]
pub struct LookaheadScheduler {
    /// Maximum candidate placements forked per decision.
    k: usize,
    /// Pending runtime events replayed inside each fork.
    horizon: usize,
    /// Starvation limit for the out-of-order hit scan (as LALB+O3).
    o3_limit: u32,
}

/// Default candidate budget for [`LookaheadScheduler`].
pub const DEFAULT_LOOKAHEAD_K: usize = 4;
/// Default replay horizon for [`LookaheadScheduler`].
pub const DEFAULT_LOOKAHEAD_HORIZON: usize = 8;

impl LookaheadScheduler {
    /// A lookahead scheduler forking up to `k` candidates, each replayed
    /// `horizon` events deep, with the given O3 starvation limit.
    pub fn new(k: usize, horizon: usize, o3_limit: u32) -> Self {
        LookaheadScheduler {
            k: k.max(1),
            horizon,
            o3_limit,
        }
    }

    /// The issue's default configuration: `k=4`, `horizon=8`, O3 at the
    /// paper's limit.
    pub fn default_config() -> Self {
        Self::new(
            DEFAULT_LOOKAHEAD_K,
            DEFAULT_LOOKAHEAD_HORIZON,
            DEFAULT_O3_LIMIT,
        )
    }

    /// Picks and executes the best placement for the queued request at
    /// index `i`, forking the candidates when more than one arm is open.
    fn place(&self, gpu: GpuId, i: usize, ctx: &mut SchedCtx<'_>) -> Dispatch {
        let model = ctx.queued(i).model;
        let holders = ctx.holders(model);
        if holders.is_empty() {
            // Cached nowhere: the miss here is the only open arm
            // (Algorithm 2 lines 1–3) — nothing to speculate between.
            return Dispatch::Miss(ctx.take_queued(i));
        }
        // Candidate 0 is greedy LALBO3's own arm (Algorithm 2 verbatim):
        // first idle holder with an empty backlog, else the cheapest
        // estimated join-wait when it beats a cold load, else the miss
        // here. Anchoring the greedy arm first means a score tie — and
        // the strict comparison below — reproduces the baseline exactly;
        // the policy deviates only when a fork *measured* a strictly
        // better outcome than the estimate's pick.
        let idle_hit = holders
            .iter()
            .copied()
            .find(|&j| j != gpu && ctx.is_idle(j) && ctx.local_backlog(j) == 0);
        let mut waits: Vec<(SimDuration, GpuId)> = holders
            .iter()
            .map(|&j| (ctx.estimated_wait_for(j, model), j))
            .collect();
        waits.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let greedy = if let Some(j) = idle_hit {
            SpecPlacement::HitOn(j)
        } else {
            let join = waits
                .first()
                .is_some_and(|&(wait, _)| match ctx.busy_wait() {
                    BusyWaitPolicy::Estimate => wait < ctx.load_time(gpu, model),
                    BusyWaitPolicy::Never => false,
                    BusyWaitPolicy::Always => true,
                });
            if join {
                SpecPlacement::WaitOn(waits[0].1)
            } else {
                SpecPlacement::MissOn(gpu)
            }
        };
        // Alternatives, deterministic order: the remaining idle hits (id
        // order), waits at busy holders (cheapest estimate first), then
        // the miss here — deduplicated against the greedy arm, capped at
        // `k` forks total.
        let mut cands: Vec<SpecPlacement> = Vec::with_capacity(self.k);
        cands.push(greedy);
        let alts = holders
            .iter()
            .copied()
            .filter(|&j| j != gpu && ctx.is_idle(j) && ctx.local_backlog(j) == 0)
            .map(SpecPlacement::HitOn)
            .chain(
                waits
                    .iter()
                    .filter(|&&(_, j)| !ctx.is_idle(j))
                    .map(|&(_, j)| SpecPlacement::WaitOn(j)),
            )
            .chain(std::iter::once(SpecPlacement::MissOn(gpu)));
        for p in alts {
            if cands.len() >= self.k {
                break;
            }
            if !cands.contains(&p) {
                cands.push(p);
            }
        }
        if cands.len() == 1 {
            return Self::execute(gpu, i, cands[0], ctx);
        }
        let mut best = cands[0];
        let mut best_score: SpecScore = ctx.speculate(i, cands[0], self.horizon);
        for &cand in &cands[1..] {
            let score = ctx.speculate(i, cand, self.horizon);
            // Strict comparison: the earliest candidate wins ties, so
            // the choice is deterministic.
            if score.better_than(&best_score) {
                best = cand;
                best_score = score;
            }
        }
        Self::execute(gpu, i, best, ctx)
    }

    /// Executes the chosen arm for real.
    fn execute(gpu: GpuId, i: usize, placement: SpecPlacement, ctx: &mut SchedCtx<'_>) -> Dispatch {
        match placement {
            SpecPlacement::HitOn(j) if j == gpu => Dispatch::Hit(ctx.take_queued(i)),
            SpecPlacement::HitOn(j) => {
                let r = ctx.take_queued(i);
                ctx.dispatch_hit(j, r);
                Dispatch::None
            }
            SpecPlacement::WaitOn(j) => {
                let r = ctx.take_queued(i);
                ctx.enqueue_local(j, r);
                Dispatch::None
            }
            SpecPlacement::MissOn(j) if j == gpu => Dispatch::Miss(ctx.take_queued(i)),
            SpecPlacement::MissOn(j) => {
                let r = ctx.take_queued(i);
                ctx.dispatch_miss(j, r);
                Dispatch::None
            }
        }
    }
}

impl SchedulerPolicy for LookaheadScheduler {
    fn name(&self) -> String {
        format!("Lookahead(k={},h={})", self.k, self.horizon)
    }

    fn on_gpu_idle(&mut self, gpu: GpuId, ctx: &mut SchedCtx<'_>) -> Dispatch {
        // The O3 hit scan, verbatim from LALB: a request whose model is
        // cached here is a free win, and skipped requests accumulate
        // visits toward the starvation limit.
        let mut i = 0;
        while i < ctx.queue_len() {
            if !ctx.is_idle(gpu) {
                return Dispatch::None;
            }
            let (tenant, model, visits) = {
                let r = ctx.queued(i);
                (r.tenant, r.model, r.visits)
            };
            if ctx.tenant_blocked(tenant) {
                i += 1;
                continue;
            }
            if ctx.is_cached(gpu, model) {
                return Dispatch::Hit(ctx.take_queued(i));
            }
            if visits >= self.o3_limit {
                // Starvation guard: place this request now, but let the
                // forks pick which arm serves it best.
                return self.place(gpu, i, ctx);
            }
            ctx.note_skip(i);
            i += 1;
        }
        // No cached-here hit: speculatively place the head-most
        // unblocked request. One placement per call — if it lands on
        // another GPU the pass loop calls back while progress holds.
        let mut i = 0;
        while i < ctx.queue_len() {
            if !ctx.is_idle(gpu) {
                return Dispatch::None;
            }
            if ctx.tenant_blocked(ctx.queued(i).tenant) {
                i += 1;
                continue;
            }
            return self.place(gpu, i, ctx);
        }
        Dispatch::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_names() {
        assert_eq!(Policy::lb().name(), "LB");
        assert_eq!(Policy::lalb().name(), "LALB");
        assert_eq!(Policy::lalbo3().name(), "LALBO3");
        assert_eq!(Policy::lalb_with_limit(45).name(), "LALBO3(limit=45)");
        assert_eq!(Policy::lalbo3(), Policy::lalb_with_limit(25));
    }

    #[test]
    fn lalb_is_limit_zero() {
        assert_eq!(Policy::lalb(), Policy::Lalb { o3_limit: 0 });
        assert!(Policy::lalb().is_locality_aware());
        assert!(!Policy::lb().is_locality_aware());
    }

    #[test]
    fn enum_builds_matching_trait_impls() {
        assert_eq!(Policy::lb().build().name(), "LB");
        assert_eq!(Policy::lalb().build().name(), "LALB");
        assert_eq!(Policy::lalbo3().build().name(), "LALBO3");
        assert_eq!(Policy::lalb_with_limit(7).build().name(), "LALBO3(limit=7)");
    }

    #[test]
    fn lalb_scheduler_exposes_its_limit() {
        assert_eq!(LalbScheduler::new(25).o3_limit(), 25);
    }
}
