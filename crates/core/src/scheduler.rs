//! Scheduling policies (paper §IV).
//!
//! * **LB** — the default load-balancing baseline: "simply dispatches the
//!   request at the head of the global queue whenever a GPU becomes idle"
//!   (§V-A). When several GPUs are idle, the longest-idle one is used
//!   (classic load balancing); locality is ignored, though an accidental
//!   hit still skips the upload.
//! * **LALB** — locality-aware load balancing, Algorithms 1 and 2. The
//!   O3 limit is 0: requests are considered strictly in arrival order, but
//!   each is *placed* with locality awareness (idle GPU with the model →
//!   hit; busy GPU with the model that will free up sooner than a model
//!   load → local queue; otherwise a miss on the idle GPU).
//! * **LALB+O3** — the same with out-of-order dispatch: a later request
//!   whose model is cached on the idle GPU may jump the queue; every
//!   request it jumps over has its visit counter incremented, and a request
//!   whose counter reaches the limit (default 25) is dispatched immediately
//!   via `LocalityLoadBalance` regardless of hit or miss (§IV-B's
//!   starvation guard).
//!
//! The algorithm implementation lives in [`crate::cluster`], which owns the
//! state the pseudo-code mutates; this module defines the policy surface.

/// The paper's default starvation limit for out-of-order dispatch.
pub const DEFAULT_O3_LIMIT: u32 = 25;

/// A scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Default load balancing (the paper's baseline).
    LoadBalance,
    /// Locality-aware load balancing; `o3_limit == 0` disables
    /// out-of-order dispatch (pure LALB), `o3_limit > 0` enables it
    /// (LALB+O3) with that many allowed skips per request.
    Lalb {
        /// Maximum times a request may be skipped before it is dispatched
        /// unconditionally.
        o3_limit: u32,
    },
}

impl Policy {
    /// The LB baseline.
    pub fn lb() -> Policy {
        Policy::LoadBalance
    }

    /// LALB without out-of-order dispatch.
    pub fn lalb() -> Policy {
        Policy::Lalb { o3_limit: 0 }
    }

    /// LALB with out-of-order dispatch at the paper's default limit (25).
    pub fn lalbo3() -> Policy {
        Policy::Lalb {
            o3_limit: DEFAULT_O3_LIMIT,
        }
    }

    /// LALB with out-of-order dispatch at a custom limit (Fig 7's sweep).
    pub fn lalb_with_limit(o3_limit: u32) -> Policy {
        Policy::Lalb { o3_limit }
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Policy::LoadBalance => "LB".to_string(),
            Policy::Lalb { o3_limit: 0 } => "LALB".to_string(),
            Policy::Lalb { o3_limit } if *o3_limit == DEFAULT_O3_LIMIT => "LALBO3".to_string(),
            Policy::Lalb { o3_limit } => format!("LALBO3(limit={o3_limit})"),
        }
    }

    /// True for the locality-aware variants.
    pub fn is_locality_aware(&self) -> bool {
        matches!(self, Policy::Lalb { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_names() {
        assert_eq!(Policy::lb().name(), "LB");
        assert_eq!(Policy::lalb().name(), "LALB");
        assert_eq!(Policy::lalbo3().name(), "LALBO3");
        assert_eq!(Policy::lalb_with_limit(45).name(), "LALBO3(limit=45)");
        assert_eq!(Policy::lalbo3(), Policy::lalb_with_limit(25));
    }

    #[test]
    fn lalb_is_limit_zero() {
        assert_eq!(Policy::lalb(), Policy::Lalb { o3_limit: 0 });
        assert!(Policy::lalb().is_locality_aware());
        assert!(!Policy::lb().is_locality_aware());
    }
}
