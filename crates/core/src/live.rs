//! Live mode: the same placement and caching logic, backed by *real*
//! (CPU) inference.
//!
//! The experiments run on virtual time against the Table I latency
//! profiles. [`LiveServer`] is the other execution mode: a synchronous
//! model server that makes the identical cache/placement decisions —
//! residency-first placement, LRU eviction with the Cache Manager,
//! per-model processes on the simulated devices — but executes each
//! request as an actual `gfaas-tensor` forward pass over the model's
//! miniature network. Virtual time still drives the device state machine
//! (advanced by the profiled load/inference durations), so live results
//! report both the wall-clock compute time and the virtual latency the
//! full-size model would have had.
//!
//! `LiveServer` implements [`gfaas_faas::Dispatcher`], so a Gateway can
//! route GPU-enabled functions straight into it (see the quickstart
//! example).

use std::collections::BTreeMap;

use gfaas_faas::{Dispatcher, Invocation, InvocationResult};
use gfaas_gpu::{GpuDevice, GpuId, GpuSpec, ModelId};
use gfaas_models::live::{live_model, synthetic_batch, LiveModel};
use gfaas_models::ModelRegistry;
use gfaas_sim::time::{SimDuration, SimTime};

use crate::cache::{CacheManager, ReplacementPolicy};

/// Outcome of one live inference.
#[derive(Debug, Clone)]
pub struct LiveResponse {
    /// Predicted class per batch row.
    pub labels: Vec<usize>,
    /// Whether the model was already resident on the serving GPU.
    pub cache_hit: bool,
    /// The GPU that served the request.
    pub gpu: GpuId,
    /// The latency the full-size model would have had (profiled load —
    /// on a miss — plus profiled inference).
    pub virtual_latency: SimDuration,
    /// Wall-clock time of the actual CPU forward pass.
    pub wall: std::time::Duration,
}

/// Errors from the live server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveError {
    /// The model name is not in the registry.
    UnknownModel(String),
    /// The model cannot fit the GPU at all.
    TooLarge(ModelId),
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::UnknownModel(n) => write!(f, "unknown model {n:?}"),
            LiveError::TooLarge(m) => write!(f, "{m} exceeds GPU capacity"),
        }
    }
}

impl std::error::Error for LiveError {}

struct LiveGpu {
    device: GpuDevice,
    // `BTreeMap` keeps gfaas-core entirely free of hash-order state
    // (this map is lookup-only, but see `gfaas-analyze` rule D1).
    resident: BTreeMap<ModelId, LiveModel>,
    hits: u64,
}

/// A synchronous model server with locality-aware placement and real
/// CPU inference.
pub struct LiveServer {
    registry: ModelRegistry,
    cache: CacheManager,
    gpus: Vec<LiveGpu>,
    clock: SimTime,
    served: u64,
    results: Vec<InvocationResult>,
}

impl LiveServer {
    /// A server over `num_gpus` devices of the given spec.
    pub fn new(num_gpus: usize, spec: GpuSpec, registry: ModelRegistry) -> Self {
        let gpus: Vec<LiveGpu> = (0..num_gpus)
            .map(|i| LiveGpu {
                device: GpuDevice::new(GpuId(i as u16), spec.clone()),
                resident: BTreeMap::new(),
                hits: 0,
            })
            .collect();
        let cache = CacheManager::new(
            gpus.iter().map(|g| g.device.id()),
            ReplacementPolicy::Lru,
            7,
        );
        LiveServer {
            registry,
            cache,
            gpus,
            clock: SimTime::ZERO,
            served: 0,
            results: Vec::new(),
        }
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Results accumulated from [`Dispatcher`] dispatches.
    pub fn take_results(&mut self) -> Vec<InvocationResult> {
        std::mem::take(&mut self.results)
    }

    /// Picks the serving GPU: prefer a resident copy (hit), else the GPU
    /// with the most free memory (miss with the least eviction).
    fn place(&self, model: ModelId) -> (usize, bool) {
        if let Some(&g) = self.cache.gpus_with(model).first() {
            return (g.0 as usize, true);
        }
        let gi = (0..self.gpus.len())
            .max_by_key(|&i| (self.gpus[i].device.free_bytes(), usize::MAX - i))
            .expect("at least one GPU");
        (gi, false)
    }

    /// Serves one inference for `model_name` on a synthetic batch of
    /// `batch` inputs derived from `input_seed`.
    pub fn serve(
        &mut self,
        model_name: &str,
        batch: usize,
        input_seed: u64,
    ) -> Result<LiveResponse, LiveError> {
        let model = self
            .registry
            .by_name(model_name)
            .ok_or_else(|| LiveError::UnknownModel(model_name.to_string()))?;
        let occupancy = self.registry.occupancy_bytes(model);
        let (gi, hit) = self.place(model);
        let gpu = self.gpus[gi].device.id();

        let mut virtual_latency = SimDuration::ZERO;
        if !hit {
            // Make room, kill victims' processes, upload (virtually) and
            // instantiate the runnable network (really).
            let registry = &self.registry;
            let free = self.gpus[gi].device.free_bytes();
            let victims = self
                .cache
                .select_victims(gpu, occupancy, free, |m| registry.occupancy_bytes(m), &[])
                .ok_or(LiveError::TooLarge(model))?;
            for v in victims {
                self.gpus[gi].device.evict(v).expect("victims are ready");
                self.gpus[gi].resident.remove(&v);
            }
            let load_time = self.registry.load_time(model);
            let (_, ready) = self.gpus[gi]
                .device
                .start_load_timed(self.clock, model, occupancy, load_time)
                .expect("load fits after eviction");
            self.clock = ready;
            self.gpus[gi]
                .device
                .complete_load(ready, model)
                .expect("load completes");
            self.cache.insert(gpu, model);
            self.gpus[gi]
                .resident
                .insert(model, live_model(&self.registry, model));
            virtual_latency += load_time;
        } else {
            self.cache.touch(gpu, model);
            self.gpus[gi].hits += 1;
        }

        // Real compute: forward the miniature network on a synthetic batch.
        let (labels, wall) = {
            let live = &self.gpus[gi].resident[&model];
            let input = synthetic_batch(live.input, batch, input_seed);
            let start = std::time::Instant::now();
            let labels = live.network.classify(&input);
            (labels, start.elapsed())
        };
        let infer_time = self.registry.infer_time(model, batch);
        let done = self.gpus[gi]
            .device
            .start_inference(self.clock, model, infer_time)
            .expect("serving GPU is idle in synchronous mode");
        self.clock = done;
        self.gpus[gi]
            .device
            .complete_inference(done, model)
            .expect("inference completes");
        virtual_latency += infer_time;
        self.served += 1;

        Ok(LiveResponse {
            labels,
            cache_hit: hit,
            gpu,
            virtual_latency,
            wall,
        })
    }
}

impl Dispatcher for LiveServer {
    fn dispatch(&mut self, invocation: Invocation) {
        // The Gateway stores the model name as the function's model; the
        // payload seeds the synthetic input.
        let seed = invocation
            .payload
            .iter()
            .fold(0u64, |acc, &b| acc.wrapping_mul(31).wrapping_add(b as u64));
        // Function specs name the model after the part following "fn-",
        // or use the function name itself as a model name.
        let name = invocation
            .function
            .strip_prefix("fn-")
            .unwrap_or(&invocation.function)
            .to_string();
        let result = match self.serve(&name, invocation.batch_size, seed) {
            Ok(resp) => InvocationResult {
                id: invocation.id,
                output: bytes::Bytes::from(
                    resp.labels
                        .iter()
                        .map(|l| l.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                ),
                latency: resp.virtual_latency,
                cache_hit: Some(resp.cache_hit),
            },
            Err(e) => InvocationResult {
                id: invocation.id,
                output: bytes::Bytes::from(format!("error: {e}")),
                latency: SimDuration::ZERO,
                cache_hit: None,
            },
        };
        self.results.push(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(gpus: usize) -> LiveServer {
        LiveServer::new(gpus, GpuSpec::rtx2080(), ModelRegistry::table1())
    }

    #[test]
    fn cold_then_warm_serving() {
        let mut s = server(2);
        let cold = s.serve("resnet50", 4, 1).unwrap();
        assert!(!cold.cache_hit);
        assert_eq!(cold.labels.len(), 4);
        // Virtual latency includes the 2.67 s load.
        assert!(cold.virtual_latency.as_secs_f64() > 2.0);
        let warm = s.serve("resnet50", 4, 2).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.gpu, cold.gpu, "hit served by the resident GPU");
        assert!(warm.virtual_latency < cold.virtual_latency);
        assert_eq!(s.served(), 2);
    }

    #[test]
    fn eviction_under_pressure_still_serves() {
        // One 8 GiB GPU cannot hold three VGG-class models at once.
        let mut s = server(1);
        for name in ["vgg11", "vgg16", "vgg19", "vgg11"] {
            let resp = s.serve(name, 2, 9).unwrap();
            assert_eq!(resp.labels.len(), 2);
        }
        // The final vgg11 was evicted in between → cold again.
        assert_eq!(s.served(), 4);
    }

    #[test]
    fn unknown_model_is_an_error() {
        let mut s = server(1);
        assert_eq!(
            s.serve("nope", 1, 0).unwrap_err(),
            LiveError::UnknownModel("nope".into())
        );
    }

    #[test]
    fn misses_spread_over_gpus() {
        let mut s = server(2);
        s.serve("resnet18", 1, 0).unwrap();
        let second = s.serve("vgg19", 1, 0).unwrap();
        // Second model goes to the emptier (other) GPU.
        assert_eq!(second.gpu, GpuId(1));
    }

    #[test]
    fn dispatcher_integration() {
        use gfaas_sim::time::SimTime;
        let mut s = server(1);
        let inv = Invocation {
            id: 7,
            function: "fn-squeezenet1.1".into(),
            payload: bytes::Bytes::from_static(b"img"),
            arrived_at: SimTime::ZERO,
            batch_size: 3,
        };
        s.dispatch(inv);
        let results = s.take_results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, 7);
        assert_eq!(results[0].cache_hit, Some(false));
        let labels = String::from_utf8(results[0].output.to_vec()).unwrap();
        assert_eq!(labels.split(',').count(), 3);
        assert!(s.take_results().is_empty(), "take drains");
    }
}
