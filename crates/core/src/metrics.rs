//! Run metrics: exactly the quantities the paper's evaluation plots.
//!
//! * Fig 4a — average function latency (arrival → completion);
//! * Fig 4b — cache miss ratio over scheduling decisions;
//! * Fig 4c — average SM utilisation across GPUs;
//! * Fig 5  — false-miss ratio: misses dispatched while the model was
//!   resident on *another* GPU, over all misses;
//! * Fig 6  — time-averaged number of GPUs holding the hottest model;
//! * Fig 7  — latency variance (the O3 sensitivity study).

use gfaas_sim::stats::{Histogram, Ratio, TimeWeighted, Welford};
use gfaas_sim::time::{SimDuration, SimTime};
use gfaas_snap::{Dec, Enc, SnapError};

/// Live collector, updated by the cluster driver as events complete.
#[derive(Debug)]
pub struct MetricsCollector {
    latency: Welford,
    latency_hist: Histogram,
    hits: Ratio,
    false_misses: u64,
    duplicates: TimeWeighted,
    completed: u64,
    queue_peak: usize,
    // Queue-depth integral in integer ticks (∫ depth d(ticks)): this is
    // bumped on every depth transition in the hot arrival/dispatch path,
    // so it avoids TimeWeighted's f64 conversions; u128 cannot overflow
    // (depth and tick count are both far below 2^64).
    queue_last_t: SimTime,
    queue_last_len: usize,
    queue_ticks: u128,
    /// Completed GPU invocations indexed by effective batch (coalesced
    /// requests per invocation); per-request dispatch puts everything in
    /// bucket 1. A flat array because this is bumped once per invocation
    /// and batch sizes are small.
    invocation_batches: Vec<u64>,
    batched_requests: u64,
}

impl Default for MetricsCollector {
    fn default() -> Self {
        MetricsCollector {
            latency: Welford::new(),
            // 1-second bins over 10 minutes of latency; quantiles are
            // exact (the histogram keeps samples), bins are for display.
            latency_hist: Histogram::new(1.0, 600),
            hits: Ratio::new(),
            false_misses: 0,
            duplicates: TimeWeighted::new(),
            completed: 0,
            queue_peak: 0,
            queue_last_t: SimTime::ZERO,
            queue_last_len: 0,
            queue_ticks: 0,
            invocation_batches: Vec::new(),
            batched_requests: 0,
        }
    }
}

impl MetricsCollector {
    /// An empty collector.
    pub fn new() -> Self {
        MetricsCollector::default()
    }

    /// Records a completed request's end-to-end latency.
    pub fn record_completion(&mut self, latency: SimDuration) {
        self.latency.push_duration(latency);
        self.latency_hist.push(latency.as_secs_f64());
        self.completed += 1;
    }

    /// Records a scheduling decision: hit or miss, and — for misses —
    /// whether the model was resident elsewhere (a false miss, Fig 5).
    pub fn record_dispatch(&mut self, hit: bool, false_miss: bool) {
        self.hits.record(hit);
        if false_miss {
            debug_assert!(!hit, "a hit cannot be a false miss");
            self.false_misses += 1;
        }
    }

    /// Records a change in the hottest model's replica count at time `t`.
    pub fn record_hot_replicas(&mut self, t: SimTime, replicas: usize) {
        self.duplicates.set(t, replicas as f64);
    }

    /// Observes the global queue depth at time `t`.
    ///
    /// Tracks both the high-water mark and a time-weighted depth
    /// integral. Before PR 7 the queue was only peeked at arrival time,
    /// so idle stretches (depth 0) and hold/drain periods were invisible
    /// and no average could be reported; the driver now calls this at
    /// *every* depth transition (push, dispatch pop, crash requeue),
    /// which makes `avg_queue_depth` an exact time average rather than
    /// an arrival-biased sample. `queue_peak` is unchanged by this: the
    /// queue can only reach a new maximum on a push, and every push was
    /// already observed.
    pub fn observe_queue_depth(&mut self, t: SimTime, len: usize) {
        self.queue_peak = self.queue_peak.max(len);
        if t > self.queue_last_t {
            self.queue_ticks += (t.as_micros() - self.queue_last_t.as_micros()) as u128
                * self.queue_last_len as u128;
            self.queue_last_t = t;
        }
        self.queue_last_len = len;
    }

    /// Records a completed GPU invocation that served `requests` coalesced
    /// requests (1 for per-request dispatch).
    pub fn record_invocation(&mut self, requests: usize) {
        if requests >= self.invocation_batches.len() {
            self.invocation_batches.resize(requests + 1, 0);
        }
        self.invocation_batches[requests] += 1;
        if requests > 1 {
            self.batched_requests += requests as u64;
        }
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Sum of the latency histogram's samples in whole microseconds, for
    /// the simcheck ledger cross-check. Each sample was pushed as a
    /// `SimDuration` converted to seconds; whole-microsecond counts below
    /// 2^53 round-trip through `f64` exactly, so rounding back recovers
    /// the original integer tick count.
    pub fn latency_tick_sum(&self) -> u64 {
        self.latency_hist
            .samples()
            .iter()
            .map(|&secs| (secs * 1e6).round() as u64)
            .sum()
    }

    /// Latency samples recorded so far (completions), for delta scoring.
    pub(crate) fn latency_sample_count(&self) -> usize {
        self.latency_hist.mark().0
    }

    /// [`MetricsCollector::latency_tick_sum`] restricted to samples from
    /// index `start` on — what a speculative replay scores its own
    /// completions with, without re-walking the whole histogram.
    pub(crate) fn latency_ticks_from(&self, start: usize) -> u64 {
        self.latency_hist.samples()[start..]
            .iter()
            .map(|&secs| (secs * 1e6).round() as u64)
            .sum()
    }

    /// Captures the collector's mutable state for the snapshot journal.
    /// The latency histogram is captured as a rewind mark (two words)
    /// rather than a sample-buffer clone: during a run nothing but
    /// `push` touches it (quantile queries happen only in
    /// [`MetricsCollector::finish`]), which is exactly the contract
    /// [`Histogram::rewind`] requires.
    pub(crate) fn snapshot_image(&self) -> MetricsImage {
        MetricsImage {
            latency: self.latency.clone(),
            hist_mark: self.latency_hist.mark(),
            hits: self.hits,
            false_misses: self.false_misses,
            duplicates: self.duplicates.clone(),
            completed: self.completed,
            queue_peak: self.queue_peak,
            queue_last_t: self.queue_last_t,
            queue_last_len: self.queue_last_len,
            queue_ticks: self.queue_ticks,
            invocation_batches: self.invocation_batches.clone(),
            batched_requests: self.batched_requests,
        }
    }

    /// Restores the collector to a [`MetricsCollector::snapshot_image`].
    pub(crate) fn restore_image(&mut self, img: &MetricsImage) {
        self.latency = img.latency.clone();
        self.latency_hist.rewind(img.hist_mark);
        self.hits = img.hits;
        self.false_misses = img.false_misses;
        self.duplicates = img.duplicates.clone();
        self.completed = img.completed;
        self.queue_peak = img.queue_peak;
        self.queue_last_t = img.queue_last_t;
        self.queue_last_len = img.queue_last_len;
        self.queue_ticks = img.queue_ticks;
        self.invocation_batches.clone_from(&img.invocation_batches);
        self.batched_requests = img.batched_requests;
    }

    /// Serialises the collector for an on-disk checkpoint. Unlike
    /// [`MetricsCollector::snapshot_image`] this must be standalone, so
    /// the full histogram sample buffer is written out.
    pub(crate) fn save_state(&self, enc: &mut Enc) {
        let (n, mean, m2, min, max) = self.latency.raw_parts();
        enc.put_u64(n);
        enc.put_f64(mean);
        enc.put_f64(m2);
        enc.put_f64(min);
        enc.put_f64(max);
        let (mark_len, sorted) = self.latency_hist.mark();
        enc.put_f64(self.latency_hist.bin_width());
        enc.put_usize(self.latency_hist.bins().len());
        enc.put_usize(mark_len);
        for &s in self.latency_hist.samples() {
            enc.put_f64(s);
        }
        enc.put_bool(sorted);
        enc.put_u64(self.hits.hits());
        enc.put_u64(self.hits.total());
        enc.put_u64(self.false_misses);
        let (tw_last, tw_val, tw_int, tw_started, tw_start) = self.duplicates.raw_parts();
        enc.put_time(tw_last);
        enc.put_f64(tw_val);
        enc.put_f64(tw_int);
        enc.put_bool(tw_started);
        enc.put_time(tw_start);
        enc.put_u64(self.completed);
        enc.put_usize(self.queue_peak);
        enc.put_time(self.queue_last_t);
        enc.put_usize(self.queue_last_len);
        enc.put_u128(self.queue_ticks);
        enc.put_usize(self.invocation_batches.len());
        for &n in &self.invocation_batches {
            enc.put_u64(n);
        }
        enc.put_u64(self.batched_requests);
    }

    /// Rebuilds a collector from [`MetricsCollector::save_state`] bytes.
    pub(crate) fn load_state(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let n = dec.u64()?;
        let mean = dec.f64()?;
        let m2 = dec.f64()?;
        let min = dec.f64()?;
        let max = dec.f64()?;
        let latency = Welford::from_raw_parts((n, mean, m2, min, max));
        let bin_width = dec.f64()?;
        let nbins = dec.usize()?;
        // NaN-safe: a NaN bin width must also be rejected, so the
        // comparison goes through `partial_cmp`, not a negated `>`.
        // gfaas-lint: allow(float-ord, decoder validation rejecting NaN — Greater is the only accepted outcome)
        if bin_width.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || nbins == 0 {
            return Err(SnapError::Corrupt("invalid histogram configuration"));
        }
        let nsamples = dec.usize()?;
        let mut samples = Vec::with_capacity(nsamples.min(dec.remaining() / 8));
        for _ in 0..nsamples {
            samples.push(dec.f64()?);
        }
        let sorted = dec.bool()?;
        let latency_hist = Histogram::from_raw_parts(bin_width, nbins, samples, sorted);
        let hits_n = dec.u64()?;
        let total = dec.u64()?;
        if hits_n > total {
            return Err(SnapError::Corrupt("hit count exceeds total"));
        }
        let hits = Ratio::from_raw_parts(hits_n, total);
        let false_misses = dec.u64()?;
        let tw_last = dec.time()?;
        let tw_val = dec.f64()?;
        let tw_int = dec.f64()?;
        let tw_started = dec.bool()?;
        let tw_start = dec.time()?;
        let duplicates =
            TimeWeighted::from_raw_parts((tw_last, tw_val, tw_int, tw_started, tw_start));
        let completed = dec.u64()?;
        let queue_peak = dec.usize()?;
        let queue_last_t = dec.time()?;
        let queue_last_len = dec.usize()?;
        let queue_ticks = dec.u128()?;
        let nbatches = dec.usize()?;
        let mut invocation_batches = Vec::with_capacity(nbatches.min(dec.remaining() / 8));
        for _ in 0..nbatches {
            invocation_batches.push(dec.u64()?);
        }
        let batched_requests = dec.u64()?;
        Ok(MetricsCollector {
            latency,
            latency_hist,
            hits,
            false_misses,
            duplicates,
            completed,
            queue_peak,
            queue_last_t,
            queue_last_len,
            queue_ticks,
            invocation_batches,
            batched_requests,
        })
    }

    /// Finalises the run into a [`RunMetrics`]. `sm_utilization` is
    /// computed by the caller from the devices; `end` is the completion
    /// time of the last request.
    pub fn finish(mut self, end: SimTime, sm_utilization: f64) -> RunMetrics {
        let misses = self.hits.misses();
        // One sort serves all three tail queries (`Histogram::quantiles`).
        let ps = self.latency_hist.quantiles(&[0.5, 0.95, 0.99]);
        let (p50, p95, p99) = (
            ps[0].unwrap_or(0.0),
            ps[1].unwrap_or(0.0),
            ps[2].unwrap_or(0.0),
        );
        let invocations: u64 = self.invocation_batches.iter().sum();
        // Integrate the queue's final stretch out to the makespan; the
        // driver anchors depth 0 at t=0, so the average spans the run.
        let queue_ticks = self.queue_ticks
            + end
                .as_micros()
                .saturating_sub(self.queue_last_t.as_micros()) as u128
                * self.queue_last_len as u128;
        let coalesced: u64 = self
            .invocation_batches
            .iter()
            .enumerate()
            .map(|(b, &n)| b as u64 * n)
            .sum();
        RunMetrics {
            p50_latency_secs: p50,
            p95_latency_secs: p95,
            p99_latency_secs: p99,
            completed: self.completed,
            avg_latency_secs: self.latency.mean(),
            latency_variance: self.latency.variance(),
            max_latency_secs: self.latency.max(),
            miss_ratio: self.hits.complement(),
            hit_ratio: self.hits.ratio(),
            false_miss_ratio: if misses == 0 {
                0.0
            } else {
                self.false_misses as f64 / misses as f64
            },
            false_misses: self.false_misses,
            misses,
            sm_utilization,
            avg_duplicates: self.duplicates.average_until(end),
            makespan_secs: end.as_secs_f64(),
            queue_peak: self.queue_peak,
            avg_queue_depth: if end == SimTime::ZERO {
                0.0
            } else {
                queue_ticks as f64 / end.as_micros() as f64
            },
            gpu_seconds_provisioned: 0.0,
            scale_up_events: 0,
            scale_down_events: 0,
            gpu_busy_seconds: 0.0,
            invocations,
            avg_effective_batch: if invocations == 0 {
                0.0
            } else {
                coalesced as f64 / invocations as f64
            },
            batched_requests: self.batched_requests,
            effective_batch_hist: self
                .invocation_batches
                .into_iter()
                .enumerate()
                .filter(|&(_, n)| n > 0)
                .collect(),
        }
    }
}

/// A journaled image of [`MetricsCollector`]'s mutable state. Everything
/// is cloned except the latency histogram, whose sample buffer is
/// append-only during a run and is captured as a
/// [`Histogram::mark`]/[`Histogram::rewind`] pair instead.
#[derive(Debug, Clone)]
pub(crate) struct MetricsImage {
    latency: Welford,
    hist_mark: (usize, bool),
    hits: Ratio,
    false_misses: u64,
    duplicates: TimeWeighted,
    completed: u64,
    queue_peak: usize,
    queue_last_t: SimTime,
    queue_last_len: usize,
    queue_ticks: u128,
    invocation_batches: Vec<u64>,
    batched_requests: u64,
}

/// Final metrics of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Requests completed.
    pub completed: u64,
    /// Mean end-to-end latency in seconds (Fig 4a).
    pub avg_latency_secs: f64,
    /// Population variance of latency (Fig 7's right axis companion).
    pub latency_variance: f64,
    /// Median end-to-end latency in seconds.
    pub p50_latency_secs: f64,
    /// 95th-percentile end-to-end latency in seconds.
    pub p95_latency_secs: f64,
    /// 99th-percentile end-to-end latency in seconds.
    pub p99_latency_secs: f64,
    /// Worst latency observed.
    pub max_latency_secs: f64,
    /// Misses / decisions (Fig 4b).
    pub miss_ratio: f64,
    /// Hits / decisions.
    pub hit_ratio: f64,
    /// False misses / misses (Fig 5).
    pub false_miss_ratio: f64,
    /// Raw false-miss count.
    pub false_misses: u64,
    /// Raw miss count.
    pub misses: u64,
    /// Mean SM utilisation across GPUs over the makespan (Fig 4c).
    pub sm_utilization: f64,
    /// Time-averaged replicas of the hottest model (Fig 6).
    pub avg_duplicates: f64,
    /// Completion time of the last request, seconds.
    pub makespan_secs: f64,
    /// Global-queue high-water mark.
    pub queue_peak: usize,
    /// Time-averaged global-queue depth over the makespan (exact: the
    /// driver records every depth transition, so idle stretches count).
    pub avg_queue_depth: f64,
    /// Integrated provisioned GPU capacity over the run, in GPU-seconds —
    /// the cost side of the autoscaling trade-off. A fixed cluster
    /// reports exactly `num_gpus × makespan`; an elastic cluster counts
    /// each GPU only while it is online or draining. Filled in by the
    /// cluster driver (the collector does not see provisioning events).
    pub gpu_seconds_provisioned: f64,
    /// GPUs brought online by the autoscaler over the run (0 for fixed
    /// clusters).
    pub scale_up_events: u64,
    /// GPUs drained offline by the autoscaler over the run (0 for fixed
    /// clusters).
    pub scale_down_events: u64,
    /// Integrated GPU *busy* time over the run, in GPU-seconds: every
    /// model-upload and inference interval actually executed (including
    /// work lost to injected crashes). The hardware cost per completed
    /// request that batching amortises; always ≤
    /// `gpu_seconds_provisioned`. Filled in by the cluster driver.
    pub gpu_busy_seconds: f64,
    /// GPU inference invocations completed. Equals `completed` under
    /// per-request dispatch; lower when a
    /// [`crate::batching::BatchPolicy`] coalesces requests.
    pub invocations: u64,
    /// Mean coalesced requests per invocation (`completed / invocations`;
    /// 1.0 under per-request dispatch, 0 for an empty run).
    pub avg_effective_batch: f64,
    /// Requests served by invocations that coalesced at least two
    /// requests (0 under per-request dispatch).
    pub batched_requests: u64,
    /// Effective-batch histogram: `(requests per invocation, invocation
    /// count)` pairs, ascending.
    pub effective_batch_hist: Vec<(usize, u64)>,
}

impl RunMetrics {
    /// Relative reduction of `ours` vs a `baseline` value, as the paper
    /// reports ("reduces X of LB by NN%"). Positive = improvement.
    pub fn reduction(baseline: f64, ours: f64) -> f64 {
        if baseline == 0.0 {
            0.0
        } else {
            (baseline - ours) / baseline
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_aggregates_latency_and_ratios() {
        let mut c = MetricsCollector::new();
        c.record_completion(SimDuration::from_secs(2));
        c.record_completion(SimDuration::from_secs(4));
        c.record_dispatch(true, false);
        c.record_dispatch(false, true);
        c.record_dispatch(false, false);
        c.observe_queue_depth(SimTime::from_secs(0), 7);
        c.observe_queue_depth(SimTime::from_secs(50), 3);
        let m = c.finish(SimTime::from_secs(100), 0.5);
        assert_eq!(m.completed, 2);
        assert_eq!(m.p50_latency_secs, 2.0);
        assert_eq!(m.p95_latency_secs, 4.0);
        assert_eq!(m.p99_latency_secs, 4.0);
        assert!((m.avg_latency_secs - 3.0).abs() < 1e-12);
        assert!((m.latency_variance - 1.0).abs() < 1e-12);
        assert!((m.miss_ratio - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.false_miss_ratio - 0.5).abs() < 1e-12);
        assert_eq!(m.queue_peak, 7);
        // Depth 7 for 50 s then 3 for 50 s = time-average 5.
        assert!((m.avg_queue_depth - 5.0).abs() < 1e-12);
        assert_eq!(m.makespan_secs, 100.0);
        assert_eq!(m.sm_utilization, 0.5);
    }

    #[test]
    fn duplicates_time_average() {
        let mut c = MetricsCollector::new();
        c.record_hot_replicas(SimTime::from_secs(0), 1);
        c.record_hot_replicas(SimTime::from_secs(50), 3);
        let m = c.finish(SimTime::from_secs(100), 0.0);
        assert!((m.avg_duplicates - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_all_zeros() {
        let m = MetricsCollector::new().finish(SimTime::ZERO, 0.0);
        assert_eq!(m.completed, 0);
        assert_eq!(m.avg_latency_secs, 0.0);
        assert_eq!(m.miss_ratio, 0.0);
        assert_eq!(m.false_miss_ratio, 0.0);
    }

    #[test]
    fn invocation_accounting_tracks_effective_batches() {
        let mut c = MetricsCollector::new();
        // Two solo invocations, one 3-request batch, one 2-request batch.
        for _ in 0..7 {
            c.record_completion(SimDuration::from_secs(1));
        }
        c.record_invocation(1);
        c.record_invocation(1);
        c.record_invocation(3);
        c.record_invocation(2);
        let m = c.finish(SimTime::from_secs(10), 0.0);
        assert_eq!(m.invocations, 4);
        assert!((m.avg_effective_batch - 7.0 / 4.0).abs() < 1e-12);
        assert_eq!(m.batched_requests, 5, "only multi-request invocations");
        assert_eq!(m.effective_batch_hist, vec![(1, 2), (2, 1), (3, 1)]);
    }

    #[test]
    fn per_request_dispatch_reports_unit_batches() {
        let mut c = MetricsCollector::new();
        for _ in 0..3 {
            c.record_completion(SimDuration::from_secs(1));
            c.record_invocation(1);
        }
        let m = c.finish(SimTime::from_secs(5), 0.0);
        assert_eq!(m.invocations, m.completed);
        assert_eq!(m.avg_effective_batch, 1.0);
        assert_eq!(m.batched_requests, 0);
        assert_eq!(m.effective_batch_hist, vec![(1, 3)]);
    }

    fn busy_collector() -> MetricsCollector {
        let mut c = MetricsCollector::new();
        c.record_completion(SimDuration::from_micros(2_500_000));
        c.record_completion(SimDuration::from_micros(1_234_567));
        c.record_dispatch(true, false);
        c.record_dispatch(false, true);
        c.record_hot_replicas(SimTime::from_secs(1), 2);
        c.observe_queue_depth(SimTime::from_secs(0), 4);
        c.observe_queue_depth(SimTime::from_secs(2), 1);
        c.record_invocation(2);
        c
    }

    #[test]
    fn latency_tick_sum_is_exact() {
        let c = busy_collector();
        assert_eq!(c.latency_tick_sum(), 2_500_000 + 1_234_567);
    }

    #[test]
    fn snapshot_image_rolls_back_later_updates() {
        let mut c = busy_collector();
        let img = c.snapshot_image();
        let baseline = format!("{c:?}");
        c.record_completion(SimDuration::from_secs(9));
        c.record_dispatch(false, false);
        c.observe_queue_depth(SimTime::from_secs(5), 9);
        c.record_invocation(3);
        c.restore_image(&img);
        assert_eq!(format!("{c:?}"), baseline);
        let m = c.finish(SimTime::from_secs(10), 0.0);
        assert_eq!(m.completed, 2);
        assert_eq!(m.queue_peak, 4);
    }

    #[test]
    fn save_load_round_trips_the_collector() {
        let c = busy_collector();
        let mut enc = Enc::new();
        c.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let loaded = MetricsCollector::load_state(&mut dec).expect("load");
        dec.finish().expect("no trailing bytes");
        assert_eq!(format!("{loaded:?}"), format!("{c:?}"));
        // The rebuilt collector finalises to the same RunMetrics.
        let a = busy_collector().finish(SimTime::from_secs(10), 0.25);
        let b = loaded.finish(SimTime::from_secs(10), 0.25);
        assert_eq!(a, b);
    }

    #[test]
    fn reduction_helper() {
        assert!((RunMetrics::reduction(10.0, 2.0) - 0.8).abs() < 1e-12);
        assert_eq!(RunMetrics::reduction(0.0, 5.0), 0.0);
        assert!(RunMetrics::reduction(2.0, 4.0) < 0.0);
    }
}
