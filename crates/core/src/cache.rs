//! The global Cache Manager (paper §III-D) and the open [`Evictor`] API.
//!
//! Models uploaded to GPU memory are cache items. The manager keeps one
//! replacement-policy bookkeeping list per GPU plus a global model→GPUs
//! residency index. On a miss it asks its [`Evictor`] for victims from the
//! target GPU's list until the incoming model fits; the paper's GPU Manager
//! then kills the victims' processes.
//!
//! The residency index is the §VI scalability structure: "the Cache
//! Manager maintains the lists of GPUs where each model is cached", which
//! bounds the scheduler's per-request search by the number of replicas
//! rather than the cluster size.
//!
//! # Replacement as an open trait
//!
//! Eviction behaviour is pluggable: anything implementing [`Evictor`] can
//! drive replacement. The paper's three policies ship as
//! [`LruEvictor`] (default), [`FifoEvictor`], and [`RandomEvictor`]; the
//! frequency-decay policy lives in [`crate::tinylfu::TinyLfuEvictor`]. The
//! [`ReplacementPolicy`] enum survives as a thin constructor over those
//! impls so existing configs and figures are untouched, and string specs
//! (`"lru"`, `"tinylfu:0.9"`) resolve through
//! [`crate::policy::PolicyRegistry`].

use std::collections::VecDeque;

use gfaas_gpu::{GpuId, ModelId};
use gfaas_sim::rng::DetRng;
use gfaas_snap::{Dec, Enc, SnapError};

/// Which item a GPU's list evicts first — the paper's closed policy set,
/// kept as a thin constructor facade over the [`Evictor`] impls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Least recently *used* (the paper's default).
    Lru,
    /// Oldest *inserted* first, ignoring use.
    Fifo,
    /// Uniformly random resident model (ablation baseline).
    Random,
}

impl ReplacementPolicy {
    /// Builds the trait-object evictor this enum variant names. The seed
    /// only matters for [`ReplacementPolicy::Random`].
    pub fn build(self, seed: u64) -> Box<dyn Evictor> {
        match self {
            ReplacementPolicy::Lru => Box::new(LruEvictor::default()),
            ReplacementPolicy::Fifo => Box::new(FifoEvictor::default()),
            ReplacementPolicy::Random => Box::new(RandomEvictor::new(seed)),
        }
    }
}

/// A cache replacement policy: per-GPU victim selection with full view of
/// insert/hit/remove events.
///
/// The [`CacheManager`] owns the residency index and the greedy
/// make-room loop; the evictor owns per-GPU ordering state and answers
/// one question — *which resident model dies next* ([`Evictor::pick_victim`],
/// called repeatedly until enough bytes are reclaimed).
///
/// Implementations must be deterministic for a given construction (any
/// randomness must come from an owned, seeded generator) so simulation
/// runs stay reproducible.
pub trait Evictor: std::fmt::Debug + Send {
    /// Registry-style key for reports (`"lru"`, `"tinylfu"`, …).
    fn name(&self) -> &'static str;

    /// Called once per GPU before any traffic, so per-GPU state exists.
    fn attach_gpu(&mut self, gpu: GpuId);

    /// `model` was uploaded to `gpu` (it enters the GPU's list hottest).
    fn on_insert(&mut self, gpu: GpuId, model: ModelId);

    /// `model` served a cache hit on `gpu`.
    fn on_hit(&mut self, gpu: GpuId, model: ModelId);

    /// `model` left `gpu` (evicted, or its process died).
    fn on_remove(&mut self, gpu: GpuId, model: ModelId);

    /// The models resident on `gpu` in this policy's bookkeeping order
    /// (coldest first for the recency/insertion-list policies). This is
    /// the candidate list [`CacheManager::select_victims`] offers to
    /// [`Evictor::pick_victim`] and what [`CacheManager::resident`]
    /// reports; only for prefix-picking policies (LRU/FIFO) is it also
    /// the exact eviction order.
    fn order(&self, gpu: GpuId) -> Vec<ModelId>;

    /// Chooses the next victim among `candidates` (a subset of
    /// [`Evictor::order`], pinned models already removed). Returns `None`
    /// when no candidate may be evicted. Called repeatedly by
    /// [`CacheManager::select_victims`] with already-picked victims
    /// removed from `candidates`.
    fn pick_victim(&mut self, gpu: GpuId, candidates: &[ModelId]) -> Option<ModelId>;

    /// Serialises the evictor's mutable state (bookkeeping lists, RNG
    /// streams, frequency sketches) for a snapshot or checkpoint. The
    /// default writes nothing — correct only for genuinely stateless
    /// evictors; every builtin overrides it.
    fn save_state(&self, enc: &mut Enc) {
        let _ = enc;
    }

    /// Restores state written by [`Evictor::save_state`] into an evictor
    /// freshly built from the same spec and attached to the same GPUs.
    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapError> {
        let _ = dec;
        Ok(())
    }
}

/// Per-GPU ordered model lists — the bookkeeping every builtin evictor
/// shares. Front = next victim, back = most recently inserted/used.
#[derive(Debug, Clone, Default)]
pub(crate) struct OrderLists {
    /// Indexed by `GpuId`; `None` until [`OrderLists::attach`] — a flat
    /// array, since every hot-path caller holds a dense GPU id.
    per_gpu: Vec<Option<VecDeque<ModelId>>>,
}

impl OrderLists {
    pub(crate) fn attach(&mut self, gpu: GpuId) {
        let gi = gpu.0 as usize;
        if gi >= self.per_gpu.len() {
            self.per_gpu.resize(gi + 1, None);
        }
        self.per_gpu[gi].get_or_insert_with(VecDeque::new);
    }

    pub(crate) fn push_hot(&mut self, gpu: GpuId, model: ModelId) {
        self.per_gpu
            .get_mut(gpu.0 as usize)
            .and_then(Option::as_mut)
            .expect("unknown GPU")
            .push_back(model);
    }

    /// Moves `model` to the hot end (LRU touch).
    pub(crate) fn touch(&mut self, gpu: GpuId, model: ModelId) {
        let order = self
            .per_gpu
            .get_mut(gpu.0 as usize)
            .and_then(Option::as_mut)
            .expect("unknown GPU");
        if order.back() == Some(&model) {
            return; // already hottest — the common case for coalesced hits
        }
        if let Some(pos) = order.iter().position(|&m| m == model) {
            order.remove(pos);
            order.push_back(model);
        }
    }

    pub(crate) fn remove(&mut self, gpu: GpuId, model: ModelId) {
        if let Some(Some(order)) = self.per_gpu.get_mut(gpu.0 as usize) {
            if let Some(pos) = order.iter().position(|&m| m == model) {
                order.remove(pos);
            }
        }
    }

    pub(crate) fn order(&self, gpu: GpuId) -> Vec<ModelId> {
        self.per_gpu
            .get(gpu.0 as usize)
            .and_then(Option::as_ref)
            .map(|o| o.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Serialises every per-GPU list (presence tag + model ids in order).
    pub(crate) fn save_state(&self, enc: &mut Enc) {
        enc.put_usize(self.per_gpu.len());
        for slot in &self.per_gpu {
            match slot {
                None => enc.put_u8(0),
                Some(order) => {
                    enc.put_u8(1);
                    enc.put_usize(order.len());
                    for &m in order {
                        enc.put_u32(m.0);
                    }
                }
            }
        }
    }

    /// Rebuilds the lists from [`OrderLists::save_state`] bytes.
    pub(crate) fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapError> {
        let ngpus = dec.usize()?;
        let mut per_gpu = Vec::with_capacity(ngpus.min(dec.remaining()));
        for _ in 0..ngpus {
            per_gpu.push(match dec.u8()? {
                0 => None,
                1 => {
                    let len = dec.usize()?;
                    let mut order = VecDeque::with_capacity(len.min(dec.remaining() / 4));
                    for _ in 0..len {
                        order.push_back(ModelId(dec.u32()?));
                    }
                    Some(order)
                }
                _ => return Err(SnapError::Corrupt("bad order-list tag")),
            });
        }
        self.per_gpu = per_gpu;
        Ok(())
    }
}

/// Least-recently-used eviction (the paper's default).
#[derive(Debug, Clone, Default)]
pub struct LruEvictor {
    lists: OrderLists,
}

impl Evictor for LruEvictor {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn attach_gpu(&mut self, gpu: GpuId) {
        self.lists.attach(gpu);
    }

    fn on_insert(&mut self, gpu: GpuId, model: ModelId) {
        self.lists.push_hot(gpu, model);
    }

    fn on_hit(&mut self, gpu: GpuId, model: ModelId) {
        self.lists.touch(gpu, model);
    }

    fn on_remove(&mut self, gpu: GpuId, model: ModelId) {
        self.lists.remove(gpu, model);
    }

    fn order(&self, gpu: GpuId) -> Vec<ModelId> {
        self.lists.order(gpu)
    }

    fn pick_victim(&mut self, _gpu: GpuId, candidates: &[ModelId]) -> Option<ModelId> {
        candidates.first().copied() // coldest first
    }

    fn save_state(&self, enc: &mut Enc) {
        self.lists.save_state(enc);
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapError> {
        self.lists.load_state(dec)
    }
}

/// First-in-first-out eviction: insertion order, use ignored.
#[derive(Debug, Clone, Default)]
pub struct FifoEvictor {
    lists: OrderLists,
}

impl Evictor for FifoEvictor {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn attach_gpu(&mut self, gpu: GpuId) {
        self.lists.attach(gpu);
    }

    fn on_insert(&mut self, gpu: GpuId, model: ModelId) {
        self.lists.push_hot(gpu, model);
    }

    fn on_hit(&mut self, _gpu: GpuId, _model: ModelId) {}

    fn on_remove(&mut self, gpu: GpuId, model: ModelId) {
        self.lists.remove(gpu, model);
    }

    fn order(&self, gpu: GpuId) -> Vec<ModelId> {
        self.lists.order(gpu)
    }

    fn pick_victim(&mut self, _gpu: GpuId, candidates: &[ModelId]) -> Option<ModelId> {
        candidates.first().copied() // oldest insertion first
    }

    fn save_state(&self, enc: &mut Enc) {
        self.lists.save_state(enc);
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapError> {
        self.lists.load_state(dec)
    }
}

/// Uniformly random eviction (the §VI ablation baseline). Deterministic
/// per seed.
#[derive(Debug, Clone)]
pub struct RandomEvictor {
    lists: OrderLists,
    rng: DetRng,
}

impl RandomEvictor {
    /// A random evictor drawing from a deterministic stream.
    pub fn new(seed: u64) -> Self {
        RandomEvictor {
            lists: OrderLists::default(),
            rng: DetRng::new(seed),
        }
    }
}

impl Evictor for RandomEvictor {
    fn name(&self) -> &'static str {
        "random"
    }

    fn attach_gpu(&mut self, gpu: GpuId) {
        self.lists.attach(gpu);
    }

    fn on_insert(&mut self, gpu: GpuId, model: ModelId) {
        self.lists.push_hot(gpu, model);
    }

    fn on_hit(&mut self, _gpu: GpuId, _model: ModelId) {}

    fn on_remove(&mut self, gpu: GpuId, model: ModelId) {
        self.lists.remove(gpu, model);
    }

    fn order(&self, gpu: GpuId) -> Vec<ModelId> {
        self.lists.order(gpu)
    }

    fn pick_victim(&mut self, _gpu: GpuId, candidates: &[ModelId]) -> Option<ModelId> {
        self.rng.choose(candidates).copied()
    }

    fn save_state(&self, enc: &mut Enc) {
        self.lists.save_state(enc);
        for w in self.rng.state() {
            enc.put_u64(w);
        }
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapError> {
        self.lists.load_state(dec)?;
        let mut state = [0u64; 4];
        for w in &mut state {
            *w = dec.u64()?;
        }
        if state == [0; 4] {
            return Err(SnapError::Corrupt("all-zero RNG state"));
        }
        self.rng = DetRng::from_state(state);
        Ok(())
    }
}

/// The global cache manager.
#[derive(Debug)]
pub struct CacheManager {
    evictor: Box<dyn Evictor>,
    /// The §VI residency index as a flat per-model array: replica lists
    /// indexed by `ModelId`, each kept sorted by `GpuId` — O(1) to reach
    /// a model's holders, O(replicas) to scan them.
    residency: Vec<Vec<GpuId>>,
    evictions: u64,
}

impl CacheManager {
    /// A manager over `gpus` with one of the paper's closed policies (the
    /// compat path). The RNG seed only matters for
    /// [`ReplacementPolicy::Random`].
    pub fn new(
        gpus: impl IntoIterator<Item = GpuId>,
        policy: ReplacementPolicy,
        seed: u64,
    ) -> Self {
        CacheManager::with_evictor(gpus, policy.build(seed))
    }

    /// A manager over `gpus` driven by an arbitrary [`Evictor`] — the open
    /// path; string specs resolve here via
    /// [`crate::policy::PolicyRegistry::evictor`].
    pub fn with_evictor(
        gpus: impl IntoIterator<Item = GpuId>,
        mut evictor: Box<dyn Evictor>,
    ) -> Self {
        for gpu in gpus {
            evictor.attach_gpu(gpu);
        }
        CacheManager {
            evictor,
            residency: Vec::new(),
            evictions: 0,
        }
    }

    /// The active evictor's registry key (`"lru"`, `"tinylfu"`, …).
    pub fn evictor_name(&self) -> &'static str {
        self.evictor.name()
    }

    /// True iff `model` is resident on `gpu`.
    pub fn is_cached(&self, gpu: GpuId, model: ModelId) -> bool {
        self.holders(model).contains(&gpu)
    }

    /// GPUs currently holding `model` (the §VI replica list), in id
    /// order, as a borrowed slice — the allocation-free hot-path lookup.
    pub fn holders(&self, model: ModelId) -> &[GpuId] {
        self.residency
            .get(model.0 as usize)
            .map_or(&[], |gpus| gpus.as_slice())
    }

    /// GPUs currently holding `model` (the §VI replica list), in id order.
    pub fn gpus_with(&self, model: ModelId) -> Vec<GpuId> {
        self.holders(model).to_vec()
    }

    /// Number of GPUs holding `model` (Fig 6's duplicates count).
    pub fn replica_count(&self, model: ModelId) -> usize {
        self.holders(model).len()
    }

    /// True iff `model` is resident on at least one GPU.
    pub fn cached_anywhere(&self, model: ModelId) -> bool {
        self.replica_count(model) > 0
    }

    /// The models resident on `gpu` in the evictor's bookkeeping order
    /// (coldest first under LRU — and for LRU/FIFO that is exactly the
    /// eviction order; frequency/random evictors pick victims out of this
    /// order).
    pub fn resident(&self, gpu: GpuId) -> Vec<ModelId> {
        self.evictor.order(gpu)
    }

    /// Records that `model` was uploaded to `gpu` (inserted hottest).
    pub fn insert(&mut self, gpu: GpuId, model: ModelId) {
        debug_assert!(
            !self.is_cached(gpu, model),
            "{model} already cached on {gpu}"
        );
        self.evictor.on_insert(gpu, model);
        let mi = model.0 as usize;
        if mi >= self.residency.len() {
            self.residency.resize_with(mi + 1, Vec::new);
        }
        let gpus = &mut self.residency[mi];
        if let Err(pos) = gpus.binary_search(&gpu) {
            gpus.insert(pos, gpu);
        }
    }

    /// Records a use of `model` on `gpu`. Under LRU this moves the model to
    /// the hot end; TinyLFU bumps its frequency; FIFO/random ignore it.
    pub fn touch(&mut self, gpu: GpuId, model: ModelId) {
        self.evictor.on_hit(gpu, model);
    }

    /// Removes `model` from `gpu`'s cache state (after its process died).
    pub fn remove(&mut self, gpu: GpuId, model: ModelId) {
        self.evictor.on_remove(gpu, model);
        if let Some(gpus) = self.residency.get_mut(model.0 as usize) {
            if let Ok(pos) = gpus.binary_search(&gpu) {
                gpus.remove(pos);
            }
        }
    }

    /// Chooses victims on `gpu` to make room for `need` more bytes given
    /// `free` bytes currently free. Victims are removed from the cache
    /// state and returned in eviction order; the caller must kill their
    /// processes. `size_of` maps a model to its occupancy.
    ///
    /// `pinned` models (e.g. the one a queued local request needs) are
    /// never offered to the evictor. Returns `None` if the space cannot be
    /// assembled; failure leaves residency untouched (the evictor may have
    /// advanced an internal RNG).
    pub fn select_victims(
        &mut self,
        gpu: GpuId,
        need: u64,
        free: u64,
        size_of: impl Fn(ModelId) -> u64,
        pinned: &[ModelId],
    ) -> Option<Vec<ModelId>> {
        if free >= need {
            return Some(Vec::new());
        }
        // Pick into a working copy so failure leaves the state untouched.
        let mut candidates: Vec<ModelId> = self
            .evictor
            .order(gpu)
            .into_iter()
            .filter(|m| !pinned.contains(m))
            .collect();
        let mut reclaimed = free;
        let mut victims = Vec::new();
        while reclaimed < need {
            let m = self.evictor.pick_victim(gpu, &candidates)?;
            let pos = candidates
                .iter()
                .position(|&c| c == m)
                .expect("evictor picked a non-candidate");
            candidates.remove(pos);
            reclaimed += size_of(m);
            victims.push(m);
        }
        for &m in &victims {
            self.remove(gpu, m);
            self.evictions += 1;
        }
        Some(victims)
    }

    /// Total victims selected so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Serialises the full cache state — residency index, eviction
    /// counter, and the evictor's own blob — for a snapshot or
    /// checkpoint. The evictor is a trait object and cannot be cloned, so
    /// the in-memory snapshot journal stores these bytes too.
    pub fn save_state(&self, enc: &mut Enc) {
        enc.put_usize(self.residency.len());
        for gpus in &self.residency {
            enc.put_usize(gpus.len());
            for &g in gpus {
                enc.put_u16(g.0);
            }
        }
        enc.put_u64(self.evictions);
        self.evictor.save_state(enc);
    }

    /// Restores state written by [`CacheManager::save_state`] into a
    /// manager whose evictor was built from the same spec and attached to
    /// the same GPUs.
    pub fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapError> {
        let nmodels = dec.usize()?;
        let mut residency = Vec::with_capacity(nmodels.min(dec.remaining()));
        for _ in 0..nmodels {
            let nreplicas = dec.usize()?;
            let mut gpus = Vec::with_capacity(nreplicas.min(dec.remaining() / 2));
            for _ in 0..nreplicas {
                gpus.push(GpuId(dec.u16()?));
            }
            if !gpus.is_sorted() {
                return Err(SnapError::Corrupt("replica list not sorted"));
            }
            residency.push(gpus);
        }
        self.residency = residency;
        self.evictions = dec.u64()?;
        self.evictor.load_state(dec)
    }

    /// Total resident (gpu, model) pairs across the cluster.
    pub fn total_resident(&self) -> usize {
        self.residency.iter().map(|gpus| gpus.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G0: GpuId = GpuId(0);
    const G1: GpuId = GpuId(1);
    const A: ModelId = ModelId(0);
    const B: ModelId = ModelId(1);
    const C: ModelId = ModelId(2);

    fn mgr(policy: ReplacementPolicy) -> CacheManager {
        CacheManager::new([G0, G1], policy, 42)
    }

    #[test]
    fn insert_and_residency_index() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        m.insert(G1, A);
        m.insert(G0, B);
        assert!(m.is_cached(G0, A));
        assert!(m.is_cached(G1, A));
        assert!(!m.is_cached(G1, B));
        assert_eq!(m.gpus_with(A), vec![G0, G1]);
        assert_eq!(m.replica_count(A), 2);
        assert!(m.cached_anywhere(B));
        assert!(!m.cached_anywhere(C));
        assert_eq!(m.total_resident(), 3);
    }

    #[test]
    fn lru_touch_reorders() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        m.insert(G0, B);
        m.insert(G0, C);
        assert_eq!(m.resident(G0), vec![A, B, C]);
        m.touch(G0, A); // A becomes hottest
        assert_eq!(m.resident(G0), vec![B, C, A]);
    }

    #[test]
    fn fifo_touch_is_noop() {
        let mut m = mgr(ReplacementPolicy::Fifo);
        m.insert(G0, A);
        m.insert(G0, B);
        m.touch(G0, A);
        assert_eq!(m.resident(G0), vec![A, B]);
    }

    #[test]
    fn lru_victim_is_coldest() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        m.insert(G0, B);
        m.touch(G0, A); // order: B, A
        let victims = m
            .select_victims(G0, 100, 0, |_| 100, &[])
            .expect("evictable");
        assert_eq!(victims, vec![B]);
        assert!(!m.is_cached(G0, B));
        assert!(m.is_cached(G0, A));
        assert_eq!(m.evictions(), 1);
    }

    #[test]
    fn multiple_victims_until_fit() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        m.insert(G0, B);
        m.insert(G0, C);
        // need 250, free 0, each model worth 100 → evict A, B, C? 3×100=300≥250.
        let victims = m
            .select_victims(G0, 250, 0, |_| 100, &[])
            .expect("evictable");
        assert_eq!(victims, vec![A, B, C]);
        assert_eq!(m.resident(G0), Vec::<ModelId>::new());
    }

    #[test]
    fn no_eviction_needed_when_space_free() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        let victims = m.select_victims(G0, 100, 150, |_| 100, &[]).unwrap();
        assert!(victims.is_empty());
        assert!(m.is_cached(G0, A));
    }

    #[test]
    fn pinned_models_survive() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        m.insert(G0, B);
        let victims = m.select_victims(G0, 100, 0, |_| 100, &[A]).unwrap();
        assert_eq!(victims, vec![B]);
        assert!(m.is_cached(G0, A));
    }

    #[test]
    fn impossible_request_returns_none_and_keeps_state() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        let got = m.select_victims(G0, 1000, 0, |_| 100, &[]);
        assert!(got.is_none());
        assert!(m.is_cached(G0, A), "failed selection must not evict");
        assert_eq!(m.evictions(), 0);
    }

    #[test]
    fn remove_clears_residency() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        m.insert(G1, A);
        m.remove(G0, A);
        assert_eq!(m.gpus_with(A), vec![G1]);
        m.remove(G1, A);
        assert!(!m.cached_anywhere(A));
        // Double remove is harmless.
        m.remove(G1, A);
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let pick = |seed: u64| {
            let mut m = CacheManager::new([G0], ReplacementPolicy::Random, seed);
            for i in 0..12 {
                m.insert(G0, ModelId(i));
            }
            // Evict half the cache: an ordered 6-victim sequence collides
            // across seeds with negligible probability.
            m.select_victims(G0, 600, 0, |_| 100, &[]).unwrap()
        };
        assert_eq!(pick(1), pick(1));
        assert_ne!(pick(1), pick(2));
    }

    #[test]
    fn per_gpu_lists_are_independent() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        m.insert(G1, B);
        let v = m.select_victims(G0, 100, 0, |_| 100, &[]).unwrap();
        assert_eq!(v, vec![A]);
        assert!(m.is_cached(G1, B));
    }

    #[test]
    fn enum_constructor_matches_direct_evictor_injection() {
        // The compat path (`ReplacementPolicy::Lru`) and the open path
        // (`with_evictor`) must drive identical state.
        let mut a = CacheManager::new([G0], ReplacementPolicy::Lru, 9);
        let mut b = CacheManager::with_evictor([G0], Box::new(LruEvictor::default()));
        for m in [&mut a, &mut b] {
            m.insert(G0, A);
            m.insert(G0, B);
            m.touch(G0, A);
        }
        assert_eq!(a.resident(G0), b.resident(G0));
        assert_eq!(
            a.select_victims(G0, 100, 0, |_| 100, &[]),
            b.select_victims(G0, 100, 0, |_| 100, &[])
        );
        assert_eq!(a.evictor_name(), "lru");
    }

    #[test]
    fn save_load_round_trips_every_builtin_policy() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let mut m = CacheManager::new([G0, G1], policy, 42);
            m.insert(G0, A);
            m.insert(G0, B);
            m.insert(G1, A);
            m.touch(G0, A);
            m.select_victims(G0, 100, 0, |_| 100, &[]).unwrap();

            let mut enc = Enc::new();
            m.save_state(&mut enc);
            let bytes = enc.into_bytes();
            let mut fresh = CacheManager::new([G0, G1], policy, 42);
            let mut dec = Dec::new(&bytes);
            fresh.load_state(&mut dec).expect("load");
            dec.finish().expect("no trailing bytes");

            assert_eq!(fresh.resident(G0), m.resident(G0), "{policy:?}");
            assert_eq!(fresh.resident(G1), m.resident(G1), "{policy:?}");
            assert_eq!(fresh.gpus_with(A), m.gpus_with(A), "{policy:?}");
            assert_eq!(fresh.evictions(), m.evictions(), "{policy:?}");
            // Continued operation is identical — for Random this proves
            // the RNG stream resumed mid-sequence.
            assert_eq!(
                fresh.select_victims(G1, 100, 0, |_| 100, &[]),
                m.select_victims(G1, 100, 0, |_| 100, &[]),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn load_state_rejects_unsorted_replica_lists() {
        let mut enc = Enc::new();
        enc.put_usize(1); // one model
        enc.put_usize(2); // two replicas, out of order
        enc.put_u16(1);
        enc.put_u16(0);
        enc.put_u64(0);
        let bytes = enc.into_bytes();
        let mut m = mgr(ReplacementPolicy::Lru);
        assert!(matches!(
            m.load_state(&mut Dec::new(&bytes)),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn custom_evictor_plugs_in() {
        /// Evicts the *largest* model id first — trivially not a builtin.
        #[derive(Debug, Default)]
        struct BiggestIdFirst {
            lists: OrderLists,
        }
        impl Evictor for BiggestIdFirst {
            fn name(&self) -> &'static str {
                "biggest-id"
            }
            fn attach_gpu(&mut self, gpu: GpuId) {
                self.lists.attach(gpu);
            }
            fn on_insert(&mut self, gpu: GpuId, model: ModelId) {
                self.lists.push_hot(gpu, model);
            }
            fn on_hit(&mut self, _gpu: GpuId, _model: ModelId) {}
            fn on_remove(&mut self, gpu: GpuId, model: ModelId) {
                self.lists.remove(gpu, model);
            }
            fn order(&self, gpu: GpuId) -> Vec<ModelId> {
                self.lists.order(gpu)
            }
            fn pick_victim(&mut self, _gpu: GpuId, candidates: &[ModelId]) -> Option<ModelId> {
                candidates.iter().copied().max()
            }
        }

        let mut m = CacheManager::with_evictor([G0], Box::new(BiggestIdFirst::default()));
        m.insert(G0, A);
        m.insert(G0, B);
        m.insert(G0, C);
        let victims = m.select_victims(G0, 200, 0, |_| 100, &[]).unwrap();
        assert_eq!(victims, vec![C, B], "largest ids evicted first");
        assert_eq!(m.evictor_name(), "biggest-id");
    }
}
