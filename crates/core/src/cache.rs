//! The global Cache Manager (paper §III-D).
//!
//! Models uploaded to GPU memory are cache items. The manager keeps one
//! recency list per GPU (LRU by default; FIFO and random are available for
//! the §VI replacement-policy ablation) plus a global model→GPUs residency
//! index. On a miss it selects victims from the target GPU's list until the
//! incoming model fits; the paper's GPU Manager then kills the victims'
//! processes.
//!
//! The residency index is the §VI scalability structure: "the Cache
//! Manager maintains the lists of GPUs where each model is cached", which
//! bounds the scheduler's per-request search by the number of replicas
//! rather than the cluster size.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use gfaas_gpu::{GpuId, ModelId};
use gfaas_sim::rng::DetRng;

/// Which item a GPU's list evicts first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Least recently *used* (the paper's default).
    Lru,
    /// Oldest *inserted* first, ignoring use.
    Fifo,
    /// Uniformly random resident model (ablation baseline).
    Random,
}

/// Per-GPU cache state.
#[derive(Debug, Clone, Default)]
struct GpuCache {
    /// Recency order: front = coldest (next victim under LRU), back = most
    /// recently used. Under FIFO the order is insertion order and `touch`
    /// leaves it unchanged.
    order: VecDeque<ModelId>,
}

/// The global cache manager.
#[derive(Debug)]
pub struct CacheManager {
    policy: ReplacementPolicy,
    per_gpu: BTreeMap<GpuId, GpuCache>,
    residency: BTreeMap<ModelId, BTreeSet<GpuId>>,
    rng: DetRng,
    evictions: u64,
}

impl CacheManager {
    /// A manager over `gpus` with the given policy. The RNG only matters
    /// for [`ReplacementPolicy::Random`].
    pub fn new(
        gpus: impl IntoIterator<Item = GpuId>,
        policy: ReplacementPolicy,
        seed: u64,
    ) -> Self {
        CacheManager {
            policy,
            per_gpu: gpus.into_iter().map(|g| (g, GpuCache::default())).collect(),
            residency: BTreeMap::new(),
            rng: DetRng::new(seed),
            evictions: 0,
        }
    }

    /// The active replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// True iff `model` is resident on `gpu`.
    pub fn is_cached(&self, gpu: GpuId, model: ModelId) -> bool {
        self.residency
            .get(&model)
            .is_some_and(|gpus| gpus.contains(&gpu))
    }

    /// GPUs currently holding `model` (the §VI replica list), in id order.
    pub fn gpus_with(&self, model: ModelId) -> Vec<GpuId> {
        self.residency
            .get(&model)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of GPUs holding `model` (Fig 6's duplicates count).
    pub fn replica_count(&self, model: ModelId) -> usize {
        self.residency.get(&model).map_or(0, |s| s.len())
    }

    /// True iff `model` is resident on at least one GPU.
    pub fn cached_anywhere(&self, model: ModelId) -> bool {
        self.replica_count(model) > 0
    }

    /// The models resident on `gpu`, coldest first.
    pub fn resident(&self, gpu: GpuId) -> Vec<ModelId> {
        self.per_gpu
            .get(&gpu)
            .map(|c| c.order.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Records that `model` was uploaded to `gpu` (inserted hottest).
    pub fn insert(&mut self, gpu: GpuId, model: ModelId) {
        let cache = self.per_gpu.get_mut(&gpu).expect("unknown GPU");
        debug_assert!(
            !cache.order.contains(&model),
            "{model} already cached on {gpu}"
        );
        cache.order.push_back(model);
        self.residency.entry(model).or_default().insert(gpu);
    }

    /// Records a use of `model` on `gpu`. Under LRU this moves the model to
    /// the hot end; under FIFO/random it is a no-op on the order.
    pub fn touch(&mut self, gpu: GpuId, model: ModelId) {
        if self.policy != ReplacementPolicy::Lru {
            return;
        }
        let cache = self.per_gpu.get_mut(&gpu).expect("unknown GPU");
        if let Some(pos) = cache.order.iter().position(|&m| m == model) {
            cache.order.remove(pos);
            cache.order.push_back(model);
        }
    }

    /// Removes `model` from `gpu`'s cache state (after its process died).
    pub fn remove(&mut self, gpu: GpuId, model: ModelId) {
        if let Some(cache) = self.per_gpu.get_mut(&gpu) {
            if let Some(pos) = cache.order.iter().position(|&m| m == model) {
                cache.order.remove(pos);
            }
        }
        if let Some(gpus) = self.residency.get_mut(&model) {
            gpus.remove(&gpu);
            if gpus.is_empty() {
                self.residency.remove(&model);
            }
        }
    }

    /// Chooses victims on `gpu` to make room for `need` more bytes given
    /// `free` bytes currently free. Victims are removed from the cache
    /// state and returned in eviction order; the caller must kill their
    /// processes. `size_of` maps a model to its occupancy.
    ///
    /// `pinned` models (e.g. the one a queued local request needs) are
    /// never chosen. Returns `None` if the space cannot be assembled.
    pub fn select_victims(
        &mut self,
        gpu: GpuId,
        need: u64,
        free: u64,
        size_of: impl Fn(ModelId) -> u64,
        pinned: &[ModelId],
    ) -> Option<Vec<ModelId>> {
        if free >= need {
            return Some(Vec::new());
        }
        // Work on a copy so failure leaves the state untouched.
        let order: Vec<ModelId> = self.resident(gpu);
        let mut candidates: Vec<ModelId> = order
            .iter()
            .copied()
            .filter(|m| !pinned.contains(m))
            .collect();
        if self.policy == ReplacementPolicy::Random {
            self.rng.shuffle(&mut candidates);
        }
        let mut reclaimed = free;
        let mut victims = Vec::new();
        for m in candidates {
            if reclaimed >= need {
                break;
            }
            reclaimed += size_of(m);
            victims.push(m);
        }
        if reclaimed < need {
            return None;
        }
        for &m in &victims {
            self.remove(gpu, m);
            self.evictions += 1;
        }
        Some(victims)
    }

    /// Total victims selected so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total resident (gpu, model) pairs across the cluster.
    pub fn total_resident(&self) -> usize {
        self.per_gpu.values().map(|c| c.order.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G0: GpuId = GpuId(0);
    const G1: GpuId = GpuId(1);
    const A: ModelId = ModelId(0);
    const B: ModelId = ModelId(1);
    const C: ModelId = ModelId(2);

    fn mgr(policy: ReplacementPolicy) -> CacheManager {
        CacheManager::new([G0, G1], policy, 42)
    }

    #[test]
    fn insert_and_residency_index() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        m.insert(G1, A);
        m.insert(G0, B);
        assert!(m.is_cached(G0, A));
        assert!(m.is_cached(G1, A));
        assert!(!m.is_cached(G1, B));
        assert_eq!(m.gpus_with(A), vec![G0, G1]);
        assert_eq!(m.replica_count(A), 2);
        assert!(m.cached_anywhere(B));
        assert!(!m.cached_anywhere(C));
        assert_eq!(m.total_resident(), 3);
    }

    #[test]
    fn lru_touch_reorders() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        m.insert(G0, B);
        m.insert(G0, C);
        assert_eq!(m.resident(G0), vec![A, B, C]);
        m.touch(G0, A); // A becomes hottest
        assert_eq!(m.resident(G0), vec![B, C, A]);
    }

    #[test]
    fn fifo_touch_is_noop() {
        let mut m = mgr(ReplacementPolicy::Fifo);
        m.insert(G0, A);
        m.insert(G0, B);
        m.touch(G0, A);
        assert_eq!(m.resident(G0), vec![A, B]);
    }

    #[test]
    fn lru_victim_is_coldest() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        m.insert(G0, B);
        m.touch(G0, A); // order: B, A
        let victims = m
            .select_victims(G0, 100, 0, |_| 100, &[])
            .expect("evictable");
        assert_eq!(victims, vec![B]);
        assert!(!m.is_cached(G0, B));
        assert!(m.is_cached(G0, A));
        assert_eq!(m.evictions(), 1);
    }

    #[test]
    fn multiple_victims_until_fit() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        m.insert(G0, B);
        m.insert(G0, C);
        // need 250, free 0, each model worth 100 → evict A, B, C? 3×100=300≥250.
        let victims = m
            .select_victims(G0, 250, 0, |_| 100, &[])
            .expect("evictable");
        assert_eq!(victims, vec![A, B, C]);
        assert_eq!(m.resident(G0), Vec::<ModelId>::new());
    }

    #[test]
    fn no_eviction_needed_when_space_free() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        let victims = m.select_victims(G0, 100, 150, |_| 100, &[]).unwrap();
        assert!(victims.is_empty());
        assert!(m.is_cached(G0, A));
    }

    #[test]
    fn pinned_models_survive() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        m.insert(G0, B);
        let victims = m.select_victims(G0, 100, 0, |_| 100, &[A]).unwrap();
        assert_eq!(victims, vec![B]);
        assert!(m.is_cached(G0, A));
    }

    #[test]
    fn impossible_request_returns_none_and_keeps_state() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        let got = m.select_victims(G0, 1000, 0, |_| 100, &[]);
        assert!(got.is_none());
        assert!(m.is_cached(G0, A), "failed selection must not evict");
        assert_eq!(m.evictions(), 0);
    }

    #[test]
    fn remove_clears_residency() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        m.insert(G1, A);
        m.remove(G0, A);
        assert_eq!(m.gpus_with(A), vec![G1]);
        m.remove(G1, A);
        assert!(!m.cached_anywhere(A));
        // Double remove is harmless.
        m.remove(G1, A);
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let pick = |seed: u64| {
            let mut m = CacheManager::new([G0], ReplacementPolicy::Random, seed);
            for i in 0..12 {
                m.insert(G0, ModelId(i));
            }
            // Evict half the cache: an ordered 6-victim sequence collides
            // across seeds with negligible probability.
            m.select_victims(G0, 600, 0, |_| 100, &[]).unwrap()
        };
        assert_eq!(pick(1), pick(1));
        assert_ne!(pick(1), pick(2));
    }

    #[test]
    fn per_gpu_lists_are_independent() {
        let mut m = mgr(ReplacementPolicy::Lru);
        m.insert(G0, A);
        m.insert(G1, B);
        let v = m.select_victims(G0, 100, 0, |_| 100, &[]).unwrap();
        assert_eq!(v, vec![A]);
        assert!(m.is_cached(G1, B));
    }
}
